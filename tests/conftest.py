"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.relational import Schema
from repro.universe import FactSpace, Naturals


@pytest.fixture
def rng():
    """A deterministic RNG; reseed per test for reproducibility."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def unary_schema():
    return Schema.of(R=1)


@pytest.fixture
def binary_schema():
    return Schema.of(R=2)


@pytest.fixture
def rs_schema():
    return Schema.of(R=1, S=2)


@pytest.fixture
def unary_fact_space(unary_schema):
    return FactSpace(unary_schema, Naturals())

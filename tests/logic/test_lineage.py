"""Tests for Boolean lineage construction and manipulation."""

import itertools

import pytest

from repro.logic import parse_formula
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.semantics import evaluate
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


class TestLineageAlgebra:
    def test_disjunction_simplification(self):
        expr = Lineage.disj([Lineage.false(), Lineage.var(R(1))])
        assert expr == Lineage.var(R(1))

    def test_true_absorbs_disjunction(self):
        assert Lineage.disj([Lineage.var(R(1)), Lineage.true()]).is_constant()

    def test_false_absorbs_conjunction(self):
        assert Lineage.conj([Lineage.var(R(1)), Lineage.false()]).is_constant() is False

    def test_empty_connectives(self):
        assert Lineage.conj([]).is_constant() is True
        assert Lineage.disj([]).is_constant() is False

    def test_double_negation(self):
        var = Lineage.var(R(1))
        assert Lineage.negation(Lineage.negation(var)) == var

    def test_flattening_and_dedup(self):
        a, b = Lineage.var(R(1)), Lineage.var(R(2))
        nested = Lineage.disj([a, Lineage.disj([a, b])])
        assert nested == Lineage.disj([a, b])

    def test_structural_equality_order_independent(self):
        a, b = Lineage.var(R(1)), Lineage.var(R(2))
        assert Lineage.conj([a, b]) == Lineage.conj([b, a])

    def test_facts_collection(self):
        expr = Lineage.conj(
            [Lineage.var(R(1)), Lineage.negation(Lineage.var(R(2)))])
        assert expr.facts() == frozenset({R(1), R(2)})

    def test_evaluate(self):
        expr = Lineage.conj(
            [Lineage.var(R(1)), Lineage.negation(Lineage.var(R(2)))])
        assert expr.evaluate({R(1)})
        assert not expr.evaluate({R(1), R(2)})
        assert not expr.evaluate(set())

    def test_condition_cofactors(self):
        expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
        assert expr.condition(R(1), True).is_constant() is True
        assert expr.condition(R(1), False) == Lineage.var(R(2))


class TestLineageOfFormula:
    def test_exists_becomes_disjunction(self):
        expr = lineage_of(parse_formula("EXISTS x. R(x)", schema),
                          {R(1), R(2)})
        assert expr.facts() == frozenset({R(1), R(2)})
        assert expr.evaluate({R(2)}) and not expr.evaluate(set())

    def test_impossible_atom_is_false(self):
        expr = lineage_of(parse_formula("R(99)", schema), {R(1)})
        assert expr.is_constant() is False

    def test_agrees_with_model_checking(self):
        """Lineage truth on every world == model checking on that world."""
        possible = [R(1), R(2), S(1, 2), S(2, 1)]
        formulas = [
            "EXISTS x. R(x)",
            "EXISTS x, y. R(x) AND S(x, y)",
            "FORALL x. R(x) -> EXISTS y. S(x, y)",
            "NOT EXISTS x. S(x, x)",
            "R(1) -> R(2)",
        ]
        domain = {1, 2}
        for text in formulas:
            formula = parse_formula(text, schema)
            expr = lineage_of(formula, set(possible), domain=domain)
            for mask in range(16):
                world = {f for i, f in enumerate(possible) if mask >> i & 1}
                expected = evaluate(formula, Instance(world), domain=domain)
                assert expr.evaluate(world) == expected, (text, world)

    def test_equality_resolved_statically(self):
        expr = lineage_of(parse_formula("EXISTS x. (x = 1) AND R(x)", schema),
                          {R(1), R(2)})
        assert expr == Lineage.var(R(1))

    def test_quantifier_over_explicit_domain(self):
        expr = lineage_of(parse_formula("FORALL x. R(x)", schema),
                          {R(1), R(2)}, domain={1, 2, 3})
        # R(3) is impossible, so the conjunction contains ⊥.
        assert expr.is_constant() is False

"""Tests for Query / BooleanQuery / View / FOView."""

import pytest

from repro.errors import EvaluationError, SchemaError
from repro.logic import BooleanQuery, FOView, Query, View, parse_formula
from repro.logic.syntax import Variable
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


class TestQuery:
    def test_unary_answers(self):
        q = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
        assert q(Instance([S(1, 2), S(3, 1)])) == {(1,), (3,)}

    def test_boolean_identification(self):
        q = Query(parse_formula("EXISTS x. R(x)", schema), schema)
        assert q.is_boolean
        assert q(Instance([R(1)])) is True
        assert q(Instance()) is False

    def test_variable_order(self):
        q = Query(
            parse_formula("S(x, y)", schema),
            schema,
            variables=(Variable("y"), Variable("x")),
        )
        assert q(Instance([S(1, 2)])) == {(2, 1)}

    def test_wrong_variables_rejected(self):
        with pytest.raises(EvaluationError):
            Query(parse_formula("S(x, y)", schema), schema,
                  variables=(Variable("x"),))

    def test_holds_in_requires_boolean(self):
        q = Query(parse_formula("R(x)", schema), schema)
        with pytest.raises(EvaluationError):
            q.holds_in(Instance())

    def test_as_view(self):
        q = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
        view = q.as_view("Heads")
        image = view(Instance([S(1, 2)]))
        assert image.relation(view.target["Heads"]) == {(1,)}


class TestBooleanQuery:
    def test_rejects_free_variables(self):
        with pytest.raises(EvaluationError):
            BooleanQuery(parse_formula("R(x)", schema), schema)

    def test_holds(self):
        q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
        assert q.holds_in(Instance([R(4)]))
        assert not q.holds_in(Instance())


class TestView:
    def test_functional_view(self):
        target = Schema.of(T=1)
        T = target["T"]
        double = View(
            schema, target,
            lambda D: Instance(T(a * 2) for (a,) in D.relation(R)),
        )
        assert double(Instance([R(3)])).relation(T) == {(6,)}

    def test_image_schema_validated(self):
        target = Schema.of(T=1)
        bad = View(schema, target, lambda D: Instance([R(1)]))
        with pytest.raises(SchemaError):
            bad(Instance())


class TestFOView:
    def test_projection_view(self):
        target = Schema.of(T=1)
        view = FOView(schema, target,
                      {"T": parse_formula("EXISTS y. S(x, y)", schema)})
        image = view(Instance([S(1, 2), S(1, 3), S(4, 4)]))
        assert image.relation(target["T"]) == {(1,), (4,)}

    def test_multi_relation_view(self):
        target = Schema.of(Heads=1, Tails=1)
        view = FOView(schema, target, {
            "Heads": parse_formula("EXISTS y. S(x, y)", schema),
            "Tails": (parse_formula("EXISTS x. S(x, y)", schema),
                      (Variable("y"),)),
        })
        image = view(Instance([S(1, 2)]))
        assert image.relation(target["Heads"]) == {(1,)}
        assert image.relation(target["Tails"]) == {(2,)}

    def test_arity_mismatch_rejected(self):
        target = Schema.of(T=2)
        with pytest.raises(SchemaError):
            FOView(schema, target,
                   {"T": parse_formula("EXISTS y. S(x, y)", schema)})

    def test_missing_relation_rejected(self):
        target = Schema.of(T=1, U=1)
        with pytest.raises(SchemaError):
            FOView(schema, target,
                   {"T": parse_formula("R(x)", schema)})

    def test_boolean_view_relation(self):
        target = Schema.of(NonEmpty=0)
        view = FOView(schema, target,
                      {"NonEmpty": parse_formula("EXISTS x. R(x)", schema)})
        assert view(Instance([R(1)])).relation(target["NonEmpty"]) == {()}
        assert view(Instance()).relation(target["NonEmpty"]) == set()

"""Run the logic-layer doctests as part of tier-1.

The grounding engine and fact index document their contracts as
doctests; this keeps those examples executable without turning on
``--doctest-modules`` globally.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro.logic
from repro.relational import columns as columns_module
from repro.relational import facts as facts_module
from repro.relational import index as index_module
from repro.utils import probability as probability_module


def _logic_modules():
    names = []
    for info in pkgutil.iter_modules(
        repro.logic.__path__, prefix="repro.logic."
    ):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("name", _logic_modules())
def test_logic_module_doctests(name):
    module = importlib.import_module(name)
    failures, _ = doctest.testmod(module, verbose=False)
    assert failures == 0


@pytest.mark.parametrize(
    "module",
    [facts_module, index_module, columns_module, probability_module],
)
def test_relational_support_doctests(module):
    failures, _ = doctest.testmod(module, verbose=False)
    assert failures == 0

"""Tests for the safe-range FO → relational algebra compiler, including
randomized equivalence against model checking."""

import random

import pytest

from repro.errors import UnsafeQueryError
from repro.logic import answer_tuples, parse_formula
from repro.logic.compile_ra import compile_and_evaluate
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def answers_via_ra(text, instance):
    relation = compile_and_evaluate(parse_formula(text, schema), instance)
    return relation.tuples(tuple(sorted(relation.columns)))


def answers_via_mc(text, instance):
    return answer_tuples(parse_formula(text, schema), instance)


class TestBasicShapes:
    D = Instance([R(1), R(2), S(1, 2), S(2, 3), S(3, 3), T(3)])

    def test_atom(self):
        assert answers_via_ra("R(x)", self.D) == {(1,), (2,)}

    def test_atom_with_constant(self):
        assert answers_via_ra("S(x, 3)", self.D) == {(2,), (3,)}

    def test_atom_with_repeated_variable(self):
        assert answers_via_ra("S(x, x)", self.D) == {(3,)}

    def test_join(self):
        assert answers_via_ra("R(x) AND S(x, y)", self.D) == {(1, 2), (2, 3)}

    def test_union(self):
        assert answers_via_ra("R(x) OR T(x)", self.D) == {(1,), (2,), (3,)}

    def test_projection(self):
        assert answers_via_ra("EXISTS y. S(x, y)", self.D) == {(1,), (2,), (3,)}

    def test_guarded_negation(self):
        assert answers_via_ra("R(x) AND NOT S(x, x)", self.D) == {(1,), (2,)}
        assert answers_via_ra(
            "EXISTS y. S(x, y) AND NOT R(x)", self.D) == {(3,)}

    def test_equality_with_constant(self):
        assert answers_via_ra("R(x) AND x = 2", self.D) == {(2,)}

    def test_variable_equality(self):
        assert answers_via_ra("S(x, y) AND x = y", self.D) == {(3, 3)}

    def test_boolean_sentence(self):
        assert len(compile_and_evaluate(
            parse_formula("EXISTS x. R(x)", schema), self.D)) == 1
        assert compile_and_evaluate(
            parse_formula("EXISTS x. T(x) AND R(x)", schema),
            self.D).is_empty()

    def test_negated_sentence_guard(self):
        # R(x) ∧ ¬(∃y T(y) ∧ S(x, y)): guard is Boolean after projection.
        result = answers_via_ra(
            "R(x) AND NOT (EXISTS y. S(x, y) AND T(y))", self.D)
        assert result == {(1,)}


class TestUnsafeRejected:
    def test_bare_negation(self):
        with pytest.raises(UnsafeQueryError):
            compile_and_evaluate(parse_formula("NOT R(x)", schema), Instance())

    def test_bare_equality(self):
        with pytest.raises(UnsafeQueryError):
            compile_and_evaluate(parse_formula("x = 1", schema), Instance())

    def test_bare_forall(self):
        with pytest.raises(UnsafeQueryError):
            compile_and_evaluate(
                parse_formula("FORALL x. R(x)", schema), Instance())

    def test_mismatched_union(self):
        with pytest.raises(UnsafeQueryError):
            compile_and_evaluate(
                parse_formula("R(x) OR S(x, y)", schema), Instance())

    def test_unguarded_negation_variable(self):
        with pytest.raises(UnsafeQueryError):
            compile_and_evaluate(
                parse_formula("R(x) AND NOT S(x, y)", schema), Instance())


SAFE_POOL = [
    "R(x)",
    "S(x, y)",
    "S(x, x)",
    "R(x) AND S(x, y)",
    "EXISTS y. S(x, y)",
    "R(x) AND NOT T(x)",
    "(R(x) AND NOT S(x, x)) OR T(x)",
    "EXISTS x. R(x) AND S(x, y)",
    "S(x, y) AND x = y",
    "R(x) AND x = 1",
    "EXISTS y. S(x, y) AND NOT (EXISTS z. S(y, z))",
]


class TestEquivalenceWithModelChecking:
    @pytest.mark.parametrize("seed", range(10))
    def test_random_instances(self, seed):
        rng = random.Random(seed)
        facts = []
        for _ in range(rng.randint(0, 12)):
            kind = rng.choice(["R", "S", "T"])
            if kind == "R":
                facts.append(R(rng.randint(1, 4)))
            elif kind == "T":
                facts.append(T(rng.randint(1, 4)))
            else:
                facts.append(S(rng.randint(1, 4), rng.randint(1, 4)))
        instance = Instance(facts)
        for text in SAFE_POOL:
            via_ra = answers_via_ra(text, instance)
            via_mc = answers_via_mc(text, instance)
            assert via_ra == via_mc, (seed, text, sorted(map(str, instance)))

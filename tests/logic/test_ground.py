"""Set-at-a-time grounding engine vs. assignment-expansion grounding.

The join engine must be *bit-identical* to the expansion fallback on the
positive-existential fragment: `Lineage.conj`/`disj` canonicalize their
children, so equality of the `.node` trees pins not just logical
equivalence but identical structure.
"""

import pytest

from repro import obs
from repro.errors import EvaluationError
from repro.logic.ground import GroundingEngine, supports_set_at_a_time
from repro.logic.lineage import lineage_of
from repro.logic.parser import parse_formula
from repro.logic.syntax import Variable
from repro.relational import FactIndex, Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

FACTS = frozenset({
    R(1), R(2), R(4),
    S(1, 2), S(2, 3), S(3, 1), S(2, 2), S(4, 1),
    T(2), T(3),
})

#: Positive-existential sentences covering atoms, joins, unions with
#: heterogeneous variable sets, nested quantifiers, shadowing, and
#: equality in every const/var mix.
SENTENCES = [
    "EXISTS x. R(x)",
    "EXISTS x. S(x, x)",
    "EXISTS x, y. S(x, y)",
    "EXISTS x, y. R(x) AND S(x, y)",
    "EXISTS x, y. R(x) AND S(x, y) AND T(y)",
    "EXISTS x, y, z. S(x, y) AND S(y, z)",
    "EXISTS x, y, z. S(x, y) AND S(y, z) AND S(z, x)",
    "EXISTS x. R(x) OR T(x)",
    "EXISTS x, y. R(x) OR S(x, y)",
    "EXISTS x. (EXISTS y. S(x, y)) AND (EXISTS y. S(y, x))",
    "EXISTS x. R(x) AND (EXISTS x. T(x))",  # shadowing
    "EXISTS x. EXISTS x. R(x)",  # direct re-binding
    "EXISTS x. R(x) AND x = 2",
    "EXISTS x, y. S(x, y) AND x = y",
    "EXISTS x. R(x) AND 1 = 1",
    "EXISTS x. R(x) AND 1 = 2",
    "R(1)",
    "R(3)",
    "S(1, 2) AND T(2)",
    "1 = 1",
    "1 = 2",
]

OPEN_FORMULAS = [
    ("R(x)", {"x": 1}),
    ("R(x)", {"x": 3}),
    ("EXISTS y. S(x, y)", {"x": 2}),
    ("EXISTS y. S(x, y) AND T(y)", {"x": 1}),
    ("S(x, y)", {"x": 1, "y": 2}),
    ("R(x) AND (EXISTS x. S(x, x))", {"x": 1}),  # bound var shadowed
    ("x = y", {"x": 1, "y": 1}),
    ("x = y", {"x": 1, "y": 2}),
]


def both_engines(formula, assignment=None, domain=None):
    fast = lineage_of(
        formula, FACTS, domain=domain, assignment=assignment, engine="join")
    slow = lineage_of(
        formula, FACTS, domain=domain, assignment=assignment,
        engine="expansion")
    return fast, slow


class TestBitIdentity:
    @pytest.mark.parametrize("text", SENTENCES)
    def test_sentences_default_domain(self, text):
        formula = parse_formula(text, schema)
        fast, slow = both_engines(formula)
        assert fast.node == slow.node

    @pytest.mark.parametrize("text", SENTENCES)
    def test_sentences_explicit_domain(self, text):
        formula = parse_formula(text, schema)
        fast, slow = both_engines(formula, domain={1, 2, 3})
        assert fast.node == slow.node

    @pytest.mark.parametrize("text,binding", OPEN_FORMULAS)
    def test_prebound_assignments(self, text, binding):
        formula = parse_formula(text, schema)
        assignment = {Variable(name): v for name, v in binding.items()}
        fast, slow = both_engines(formula, assignment=assignment)
        assert fast.node == slow.node

    def test_auto_matches_both(self):
        formula = parse_formula("EXISTS x, y. R(x) AND S(x, y)", schema)
        auto = lineage_of(formula, FACTS)
        fast, slow = both_engines(formula)
        assert auto.node == fast.node == slow.node


class TestFragmentGate:
    @pytest.mark.parametrize("text", [
        "NOT (EXISTS x. R(x))",
        "FORALL x. R(x)",
        "EXISTS x. R(x) -> T(x)",
    ])
    def test_outside_fragment_rejected(self, text):
        formula = parse_formula(text, schema)
        assert not supports_set_at_a_time(formula)
        with pytest.raises(EvaluationError):
            lineage_of(formula, FACTS, engine="join")
        # auto silently falls back to the expansion grounder
        expected = lineage_of(formula, FACTS, engine="expansion")
        assert lineage_of(formula, FACTS).node == expected.node

    def test_unbound_free_variable_rejected(self):
        formula = parse_formula("R(x)", schema)
        with pytest.raises(EvaluationError):
            lineage_of(formula, FACTS, engine="join")

    def test_unknown_engine_rejected(self):
        formula = parse_formula("R(1)", schema)
        with pytest.raises(EvaluationError):
            lineage_of(formula, FACTS, engine="turbo")


class TestEngineInternals:
    def test_reused_index_gives_same_result(self):
        formula = parse_formula("EXISTS x, y. R(x) AND S(x, y)", schema)
        index = FactIndex(FACTS)
        first = lineage_of(formula, FACTS, index=index)
        second = lineage_of(formula, FACTS, index=index)
        baseline = lineage_of(formula, FACTS, engine="expansion")
        assert first.node == second.node == baseline.node

    def test_counters_flow_to_trace(self):
        formula = parse_formula("EXISTS x, y. R(x) AND S(x, y)", schema)
        with obs.trace() as t:
            lineage_of(formula, FACTS, engine="join")
        assert t.counters["grounding.probes"] >= 1
        assert t.counters["grounding.joins"] >= 1
        assert "grounding.fallbacks" not in t.counters

    def test_fallback_counter(self):
        formula = parse_formula("FORALL x. R(x)", schema)
        with obs.trace() as t:
            lineage_of(formula, FACTS)
        assert t.counters["grounding.fallbacks"] == 1

    def test_relation_exposes_answer_support(self):
        formula = parse_formula("EXISTS y. R(x) AND S(x, y)", schema)
        engine = GroundingEngine(FactIndex(FACTS), frozenset({1, 2, 3, 4}))
        rows = engine.relation(formula)
        assert [v.name for v in rows.vars] == ["x"]
        assert set(rows.rows) == {(1,), (2,), (4,)}

"""Tests for the FO formula parser."""

import pytest

from repro.errors import ParseError
from repro.logic import parse_formula
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    FALSE,
    Forall,
    Implies,
    Not,
    Or,
    TRUE,
    Variable,
)
from repro.relational import Schema

schema = Schema.of(R=1, S=2)


class TestAtoms:
    def test_relational_atom(self):
        formula = parse_formula("R(x)", schema)
        assert isinstance(formula, Atom)
        assert formula.terms == (Variable("x"),)

    def test_integer_constant(self):
        formula = parse_formula("R(3)", schema)
        assert formula.terms == (Constant(3),)

    def test_float_constant(self):
        assert parse_formula("R(2.5)", schema).terms == (Constant(2.5),)

    def test_quoted_string_constant(self):
        assert parse_formula("R('abc')", schema).terms == (Constant("abc"),)

    def test_uppercase_identifier_is_constant(self):
        assert parse_formula("R(Alice)", schema).terms == (Constant("Alice"),)

    def test_lowercase_identifier_is_variable(self):
        assert parse_formula("R(alice)", schema).terms == (Variable("alice"),)

    def test_equality(self):
        formula = parse_formula("x = 3", schema)
        assert isinstance(formula, Equals)

    def test_unknown_relation(self):
        with pytest.raises(ParseError):
            parse_formula("T(x)", schema)


class TestConnectives:
    def test_and_or_not(self):
        formula = parse_formula("R(x) AND NOT R(y) OR S(x, y)", schema)
        assert isinstance(formula, Or)  # AND binds tighter than OR
        assert isinstance(formula.left, And)
        assert isinstance(formula.left.right, Not)

    def test_implication_right_associative(self):
        formula = parse_formula("R(x) -> R(y) -> R(z)", schema)
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_symbol_aliases(self):
        assert parse_formula("R(x) & ~R(y)", schema) == parse_formula(
            "R(x) AND NOT R(y)", schema
        )
        assert parse_formula("R(x) | R(y)", schema) == parse_formula(
            "R(x) OR R(y)", schema
        )

    def test_truth_constants(self):
        assert parse_formula("TRUE", schema) is TRUE
        assert parse_formula("FALSE", schema) is FALSE

    def test_keywords_case_insensitive(self):
        assert parse_formula("exists x. R(x)", schema) == parse_formula(
            "EXISTS x. R(x)", schema
        )

    def test_parentheses_override(self):
        formula = parse_formula("R(x) AND (R(y) OR R(z))", schema)
        assert isinstance(formula, And)
        assert isinstance(formula.right, Or)


class TestQuantifiers:
    def test_exists(self):
        formula = parse_formula("EXISTS x. R(x)", schema)
        assert isinstance(formula, Exists)

    def test_forall(self):
        assert isinstance(parse_formula("FORALL x. R(x)", schema), Forall)

    def test_multi_variable_block(self):
        formula = parse_formula("EXISTS x, y. S(x, y)", schema)
        assert isinstance(formula, Exists)
        assert isinstance(formula.body, Exists)

    def test_bound_uppercase_name_is_variable(self):
        # X is bound by the quantifier, so inside it parses as a variable.
        formula = parse_formula("EXISTS X. R(X)", schema)
        assert formula.body.terms == (Variable("X"),)

    def test_nested_scopes(self):
        formula = parse_formula("EXISTS x. (R(x) AND FORALL y. S(x, y))", schema)
        assert isinstance(formula.body.right, Forall)


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_formula("R(x) R(y)", schema)

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_formula("(R(x)", schema)

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_formula("R(x) ? R(y)", schema)

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_formula("EXISTS x R(x)", schema)

    def test_position_reported(self):
        try:
            parse_formula("R(x) %%", schema)
        except ParseError as err:
            assert err.position >= 0
        else:
            pytest.fail("expected ParseError")

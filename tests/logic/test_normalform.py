"""Tests for normal forms and UCQ extraction.

Semantic-preservation tests compare truth values on a battery of
instances before and after each transformation.
"""

import itertools

from repro.logic import evaluate, parse_formula
from repro.logic.normalform import (
    ConjunctiveQuery,
    extract_ucq,
    substitute,
    to_nnf,
    to_prenex,
)
from repro.logic.syntax import (
    And,
    Atom,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Variable,
    walk,
)
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


def all_small_instances():
    """All instances over facts {R(1), R(2), S(1,2), S(2,1)}."""
    facts = [R(1), R(2), S(1, 2), S(2, 1)]
    for mask in range(16):
        yield Instance(f for i, f in enumerate(facts) if mask >> i & 1)


FORMULAS = [
    "EXISTS x. R(x)",
    "NOT EXISTS x. R(x)",
    "FORALL x. R(x) -> EXISTS y. S(x, y)",
    "(EXISTS x. R(x)) AND NOT (EXISTS y. S(y, y))",
    "NOT (R(1) OR NOT R(2))",
    "R(1) -> (R(2) -> S(1, 2))",
]


class TestNNF:
    def test_preserves_semantics(self):
        for text in FORMULAS:
            formula = parse_formula(text, schema)
            nnf = to_nnf(formula)
            for D in all_small_instances():
                assert evaluate(formula, D) == evaluate(nnf, D), (text, D)

    def test_no_implications_and_negations_atomic(self):
        for text in FORMULAS:
            nnf = to_nnf(parse_formula(text, schema))
            for node in walk(nnf):
                assert not isinstance(node, Implies)
                if isinstance(node, Not):
                    assert not node.operand.children()

    def test_double_negation_eliminated(self):
        formula = parse_formula("NOT NOT R(1)", schema)
        assert to_nnf(formula) == parse_formula("R(1)", schema)

    def test_quantifier_duality(self):
        nnf = to_nnf(parse_formula("NOT FORALL x. R(x)", schema))
        assert isinstance(nnf, Exists)
        assert isinstance(nnf.body, Not)


class TestPrenex:
    def test_preserves_semantics(self):
        for text in FORMULAS:
            formula = parse_formula(text, schema)
            pnf = to_prenex(formula)
            for D in all_small_instances():
                assert evaluate(formula, D) == evaluate(pnf, D), (text, D)

    def test_prefix_shape(self):
        pnf = to_prenex(parse_formula(
            "(EXISTS x. R(x)) AND (FORALL y. R(y))", schema))
        # All quantifiers must precede the matrix.
        node = pnf
        while isinstance(node, (Exists, Forall)):
            node = node.body
        for inner in walk(node):
            assert not isinstance(inner, (Exists, Forall))

    def test_capture_avoided(self):
        # Both conjuncts use variable x; prenexing must not merge them.
        formula = parse_formula("(EXISTS x. R(x)) AND (EXISTS x. S(x, x))", schema)
        pnf = to_prenex(formula)
        for D in all_small_instances():
            assert evaluate(formula, D) == evaluate(pnf, D)


class TestSubstitute:
    def test_grounding(self):
        formula = parse_formula("S(x, y)", schema)
        grounded = substitute(
            formula, {Variable("x"): 1, Variable("y"): 2})
        assert evaluate(grounded, Instance([S(1, 2)]))
        assert not evaluate(grounded, Instance([S(2, 1)]))

    def test_bound_variables_untouched(self):
        formula = parse_formula("EXISTS x. S(x, y)", schema)
        grounded = substitute(formula, {Variable("x"): 9, Variable("y"): 2})
        # x is bound — only y must be replaced.
        assert evaluate(grounded, Instance([S(1, 2)]))


class TestUCQExtraction:
    def test_single_cq(self):
        ucq = extract_ucq(parse_formula("EXISTS x. R(x) AND S(x, x)", schema))
        assert ucq is not None and len(ucq.disjuncts) == 1
        assert len(ucq.disjuncts[0].atoms) == 2

    def test_union(self):
        ucq = extract_ucq(parse_formula(
            "(EXISTS x. R(x)) OR (EXISTS x, y. S(x, y))", schema))
        assert ucq is not None and len(ucq.disjuncts) == 2

    def test_distribution_of_and_over_or(self):
        ucq = extract_ucq(parse_formula(
            "(R(1) OR R(2)) AND S(1, 2)", schema))
        assert ucq is not None and len(ucq.disjuncts) == 2

    def test_negation_rejected(self):
        assert extract_ucq(parse_formula("NOT R(1)", schema)) is None

    def test_forall_rejected(self):
        assert extract_ucq(parse_formula("FORALL x. R(x)", schema)) is None

    def test_round_trip_semantics(self):
        text = "(EXISTS x. R(x) AND S(x, x)) OR R(2)"
        formula = parse_formula(text, schema)
        ucq = extract_ucq(formula)
        rebuilt = ucq.to_formula()
        for D in all_small_instances():
            assert evaluate(formula, D) == evaluate(rebuilt, D)

    def test_head_variables_recorded(self):
        ucq = extract_ucq(parse_formula("EXISTS y. S(x, y)", schema))
        assert [v.name for v in ucq.disjuncts[0].head_variables] == ["x"]


class TestConjunctiveQuery:
    def test_existential_variables(self):
        x, y = Variable("x"), Variable("y")
        cq = ConjunctiveQuery([Atom(S, (x, y))], head_variables=(x,))
        assert cq.existential_variables == frozenset({y})

    def test_to_formula_semantics(self):
        x = Variable("x")
        cq = ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, x))])
        formula = cq.to_formula()
        assert evaluate(formula, Instance([R(1), S(1, 1)]))
        assert not evaluate(formula, Instance([R(1), S(2, 2)]))

"""Tests for formula static analysis: free variables, quantifier rank,
constants, safe-range."""

from repro.logic import parse_formula
from repro.logic.analysis import (
    atoms_of,
    constants_of,
    free_variables,
    is_positive,
    is_quantifier_free,
    is_safe_range,
    is_sentence,
    quantifier_rank,
    relations_of,
)
from repro.relational import Schema

schema = Schema.of(R=1, S=2)


def fv(text):
    return {v.name for v in free_variables(parse_formula(text, schema))}


class TestFreeVariables:
    def test_atom(self):
        assert fv("S(x, y)") == {"x", "y"}

    def test_quantifier_binds(self):
        assert fv("EXISTS x. S(x, y)") == {"y"}

    def test_shadowing(self):
        assert fv("R(x) AND EXISTS x. R(x)") == {"x"}

    def test_sentence(self):
        assert fv("EXISTS x, y. S(x, y)") == set()

    def test_equality_variables(self):
        assert fv("x = y") == {"x", "y"}


class TestQuantifierRank:
    def test_quantifier_free(self):
        assert quantifier_rank(parse_formula("R(1) AND R(2)", schema)) == 0

    def test_nesting_counts(self):
        assert quantifier_rank(
            parse_formula("EXISTS x. FORALL y. S(x, y)", schema)) == 2

    def test_parallel_does_not_add(self):
        formula = parse_formula(
            "(EXISTS x. R(x)) AND (EXISTS y. R(y))", schema)
        assert quantifier_rank(formula) == 1

    def test_negation_transparent(self):
        assert quantifier_rank(parse_formula("NOT EXISTS x. R(x)", schema)) == 1


class TestConstants:
    def test_atom_constants(self):
        assert constants_of(parse_formula("S(x, 3) AND R(5)", schema)) == {3, 5}

    def test_equality_constants(self):
        assert constants_of(parse_formula("x = 7", schema)) == {7}

    def test_none(self):
        assert constants_of(parse_formula("EXISTS x. R(x)", schema)) == frozenset()

    def test_string_constants(self):
        assert constants_of(parse_formula("R('a')", schema)) == {"a"}


class TestClassification:
    def test_is_sentence(self):
        assert is_sentence(parse_formula("EXISTS x. R(x)", schema))
        assert not is_sentence(parse_formula("R(x)", schema))

    def test_is_quantifier_free(self):
        assert is_quantifier_free(parse_formula("R(1) OR R(2)", schema))
        assert not is_quantifier_free(parse_formula("EXISTS x. R(x)", schema))

    def test_is_positive(self):
        assert is_positive(parse_formula("R(x) AND S(x, y)", schema))
        assert not is_positive(parse_formula("NOT R(x)", schema))
        assert not is_positive(parse_formula("R(x) -> R(y)", schema))

    def test_atoms_and_relations(self):
        formula = parse_formula("R(x) AND S(x, y) AND R(y)", schema)
        assert len(atoms_of(formula)) == 3
        assert {r.name for r in relations_of(formula)} == {"R", "S"}


class TestSafeRange:
    def test_positive_existential_safe(self):
        assert is_safe_range(parse_formula("EXISTS x. R(x)", schema))

    def test_negated_existential_unsafe(self):
        assert not is_safe_range(parse_formula("EXISTS x. NOT R(x)", schema))

    def test_guarded_negation_safe(self):
        assert is_safe_range(
            parse_formula("EXISTS x. R(x) AND NOT S(x, x)", schema))

    def test_free_variable_must_be_guarded(self):
        assert is_safe_range(parse_formula("R(x)", schema))
        assert not is_safe_range(parse_formula("NOT R(x)", schema))
        assert not is_safe_range(parse_formula("x = x", schema))

    def test_disjunction_requires_both_branches(self):
        assert is_safe_range(parse_formula("R(x) OR S(x, x)", schema))
        assert not is_safe_range(parse_formula("R(x) OR x = 1", schema))

    def test_forall_with_guard(self):
        # ∀x. R(x) → S(x, x): x restricted in the negation of the body.
        assert is_safe_range(
            parse_formula("FORALL x. R(x) -> S(x, x)", schema))

    def test_bare_forall_unsafe(self):
        assert not is_safe_range(parse_formula("FORALL x. R(x)", schema))

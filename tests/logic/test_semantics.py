"""Tests for FO model checking with active-domain semantics."""

import pytest

from repro.errors import EvaluationError
from repro.logic import answer_tuples, evaluate, parse_formula
from repro.logic.syntax import Variable
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


class TestGroundFormulas:
    def test_atom_lookup(self):
        D = Instance([R(1)])
        assert evaluate(parse_formula("R(1)", schema), D)
        assert not evaluate(parse_formula("R(2)", schema), D)

    def test_equality(self):
        assert evaluate(parse_formula("1 = 1", schema), Instance())
        assert not evaluate(parse_formula("1 = 2", schema), Instance())

    def test_connectives(self):
        D = Instance([R(1)])
        assert evaluate(parse_formula("R(1) AND NOT R(2)", schema), D)
        assert evaluate(parse_formula("R(2) OR R(1)", schema), D)
        assert evaluate(parse_formula("R(2) -> R(9)", schema), D)
        assert not evaluate(parse_formula("R(1) -> R(2)", schema), D)

    def test_truth_constants(self):
        assert evaluate(parse_formula("TRUE", schema), Instance())
        assert not evaluate(parse_formula("FALSE", schema), Instance())


class TestQuantifiers:
    def test_exists_over_active_domain(self):
        D = Instance([R(1), R(5)])
        assert evaluate(parse_formula("EXISTS x. R(x)", schema), D)
        assert not evaluate(parse_formula("EXISTS x. R(x)", schema), Instance())

    def test_forall_over_active_domain(self):
        D = Instance([R(1), R(2)])
        assert evaluate(parse_formula("FORALL x. R(x)", schema), D)
        # Adding an S-fact enlarges the domain; R no longer covers it.
        D2 = D | Instance([S(3, 3)])
        assert not evaluate(parse_formula("FORALL x. R(x)", schema), D2)

    def test_formula_constants_extend_domain(self):
        """Fact 2.1: quantifiers range over adom(D) ∪ adom(φ)."""
        D = Instance([R(1)])
        # 9 appears only in the formula, yet the ∃ must consider it.
        formula = parse_formula("EXISTS x. (x = 9) AND NOT R(x)", schema)
        assert evaluate(formula, D)

    def test_explicit_domain_parameter(self):
        D = Instance([R(1)])
        formula = parse_formula("EXISTS x. NOT R(x)", schema)
        assert not evaluate(formula, D)  # active domain is just {1}
        assert evaluate(formula, D, domain=[1, 2])

    def test_nested_quantifiers(self):
        D = Instance([S(1, 2), S(2, 1)])
        symmetric = parse_formula("FORALL x, y. S(x, y) -> S(y, x)", schema)
        assert evaluate(symmetric, D)
        assert not evaluate(symmetric, D | Instance([S(1, 3)]))

    def test_empty_instance_forall_vacuous(self):
        # adom = ∅ and no constants: ∀ is vacuously true.
        assert evaluate(parse_formula("FORALL x. R(x)", schema), Instance())


class TestShadowing:
    def test_inner_quantifier_does_not_unbind_outer(self):
        """Regression: ∃x. ((∃x. R(x)) ∧ S(x, x)) — evaluating the inner
        ∃x must restore the outer binding of x, not delete it."""
        D = Instance([R(1), S(2, 2)])
        formula = parse_formula(
            "EXISTS x. (EXISTS x. R(x)) AND S(x, x)", schema)
        assert evaluate(formula, D)
        without_witness = Instance([R(1), S(2, 3)])
        assert not evaluate(formula, without_witness)

    def test_shadowing_in_forall(self):
        D = Instance([R(1), R(2), S(1, 1), S(2, 2)])
        formula = parse_formula(
            "FORALL x. R(x) -> ((EXISTS x. S(x, x)) AND S(x, x))", schema)
        assert evaluate(formula, D)
        assert not evaluate(formula, D | Instance([R(3)]))

    def test_shadowing_in_lineage(self):
        from repro.logic.lineage import lineage_of

        formula = parse_formula(
            "EXISTS x. (EXISTS x. R(x)) AND S(x, x)", schema)
        possible = {R(1), S(2, 2)}
        expr = lineage_of(formula, possible, domain={1, 2})
        assert expr.evaluate({R(1), S(2, 2)})
        assert not expr.evaluate({S(2, 2)})


class TestAssignments:
    def test_free_variable_needs_assignment(self):
        formula = parse_formula("R(x)", schema)
        with pytest.raises(EvaluationError):
            evaluate(formula, Instance([R(1)]))

    def test_assignment_supplied(self):
        formula = parse_formula("R(x)", schema)
        assert evaluate(formula, Instance([R(1)]), {Variable("x"): 1})
        assert not evaluate(formula, Instance([R(1)]), {Variable("x"): 2})


class TestAnswerTuples:
    def test_simple_selection(self):
        D = Instance([S(1, 2), S(3, 2), S(4, 5)])
        answers = answer_tuples(parse_formula("S(x, 2)", schema), D)
        assert answers == {(1,), (3,)}

    def test_join_query(self):
        D = Instance([R(1), S(1, 2), S(9, 2)])
        formula = parse_formula("R(x) AND S(x, y)", schema)
        assert answer_tuples(formula, D) == {(1, 2)}

    def test_variable_order_respected(self):
        D = Instance([S(1, 2)])
        formula = parse_formula("S(x, y)", schema)
        xy = answer_tuples(formula, D, (Variable("x"), Variable("y")))
        yx = answer_tuples(formula, D, (Variable("y"), Variable("x")))
        assert xy == {(1, 2)} and yx == {(2, 1)}

    def test_boolean_query_unit_answer(self):
        D = Instance([R(1)])
        assert answer_tuples(parse_formula("EXISTS x. R(x)", schema), D) == {()}
        assert answer_tuples(parse_formula("EXISTS x. R(x)", schema), Instance()) == set()

    def test_missing_variable_listed(self):
        with pytest.raises(EvaluationError):
            answer_tuples(parse_formula("S(x, y)", schema), Instance(), (Variable("x"),))

    def test_negation_within_active_domain(self):
        D = Instance([R(1), S(1, 2), S(2, 2)])
        formula = parse_formula("S(x, 2) AND NOT R(x)", schema)
        assert answer_tuples(formula, D) == {(2,)}

"""Tests for the hierarchy test and safe-plan compilation."""

import pytest

from repro.errors import UnsafeQueryError
from repro.logic.hierarchy import (
    FactLeaf,
    IndependentJoin,
    IndependentProject,
    IndependentUnion,
    is_hierarchical,
    is_self_join_free,
    safe_plan,
    safe_plan_ucq,
)
from repro.logic.normalform import ConjunctiveQuery, UnionOfConjunctiveQueries
from repro.logic.syntax import Atom, Constant, Variable
from repro.relational import RelationSymbol

R = RelationSymbol("R", 1)
S = RelationSymbol("S", 2)
T = RelationSymbol("T", 1)
x, y, z = Variable("x"), Variable("y"), Variable("z")


class TestSelfJoinFree:
    def test_distinct_relations(self):
        assert is_self_join_free(ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]))

    def test_repeated_relation(self):
        assert not is_self_join_free(
            ConjunctiveQuery([Atom(R, (x,)), Atom(R, (y,))]))


class TestHierarchy:
    def test_single_atom(self):
        assert is_hierarchical(ConjunctiveQuery([Atom(R, (x,))]))

    def test_nested_variables(self):
        # at(x) = {R, S} ⊇ at(y) = {S}: hierarchical.
        assert is_hierarchical(
            ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]))

    def test_disjoint_variables(self):
        assert is_hierarchical(
            ConjunctiveQuery([Atom(R, (x,)), Atom(T, (y,))]))

    def test_h0_not_hierarchical(self):
        """The classic hard query H₀ = R(x), S(x,y), T(y)."""
        h0 = ConjunctiveQuery(
            [Atom(R, (x,)), Atom(S, (x, y)), Atom(T, (y,))])
        assert not is_hierarchical(h0)

    def test_head_variables_ignored(self):
        # With x as head variable, only y is existential: hierarchical.
        cq = ConjunctiveQuery(
            [Atom(R, (x,)), Atom(S, (x, y)), Atom(T, (y,))],
            head_variables=(x,),
        )
        assert is_hierarchical(cq)


class TestSafePlan:
    def test_single_existential_atom(self):
        plan = safe_plan(ConjunctiveQuery([Atom(R, (x,))]))
        assert isinstance(plan, IndependentProject)
        assert plan.variable == x

    def test_ground_atoms_join(self):
        plan = safe_plan(ConjunctiveQuery(
            [Atom(R, (Constant(1),)), Atom(T, (Constant(2),))]))
        assert isinstance(plan, IndependentJoin)
        assert all(isinstance(c, FactLeaf) for c in plan.children)

    def test_independent_components(self):
        plan = safe_plan(ConjunctiveQuery([Atom(R, (x,)), Atom(T, (y,))]))
        assert isinstance(plan, IndependentJoin)
        assert len(plan.children) == 2

    def test_root_variable_project(self):
        plan = safe_plan(ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]))
        assert isinstance(plan, IndependentProject)
        assert plan.variable == x  # x occurs in all atoms

    def test_h0_rejected(self):
        with pytest.raises(UnsafeQueryError):
            safe_plan(ConjunctiveQuery(
                [Atom(R, (x,)), Atom(S, (x, y)), Atom(T, (y,))]))

    def test_self_join_rejected(self):
        # Symmetric self-join: no variable occupies the same position in
        # both S atoms, so there is no separator.
        with pytest.raises(UnsafeQueryError):
            safe_plan(ConjunctiveQuery([Atom(S, (x, y)), Atom(S, (y, x))]))

    def test_subsumed_self_join_minimizes_to_leaf(self):
        # R(x) ∧ R(1) has the core R(1) (map x ↦ 1): minimization makes
        # the apparent self-join safe.
        plan = safe_plan(ConjunctiveQuery(
            [Atom(R, (x,)), Atom(R, (Constant(1),))]))
        assert isinstance(plan, FactLeaf)

    def test_head_variables_rejected(self):
        with pytest.raises(UnsafeQueryError):
            safe_plan(ConjunctiveQuery([Atom(S, (x, y))], head_variables=(x,)))

    def test_ground_single_leaf(self):
        plan = safe_plan(ConjunctiveQuery([Atom(R, (Constant(3),))]))
        assert isinstance(plan, FactLeaf)


class TestSafePlanUCQ:
    def test_symbol_disjoint_union(self):
        ucq = UnionOfConjunctiveQueries([
            ConjunctiveQuery([Atom(R, (x,))]),
            ConjunctiveQuery([Atom(T, (y,))]),
        ])
        plan = safe_plan_ucq(ucq)
        assert isinstance(plan, IndependentUnion)

    def test_shared_symbols_rejected(self):
        # H1 = (R ⋈ S) ∨ (S ⋈ T): the shared S admits no UCQ separator
        # and the inclusion–exclusion terms are H0-shaped — unsafe.
        ucq = UnionOfConjunctiveQueries([
            ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]),
            ConjunctiveQuery([Atom(S, (x, y)), Atom(T, (y,))]),
        ])
        with pytest.raises(UnsafeQueryError):
            safe_plan_ucq(ucq)

    def test_shared_symbols_with_subsumed_disjunct(self):
        # R(1) ⊑ ∃x R(x): UCQ minimization drops it, leaving one safe
        # disjunct despite the shared symbol.
        ucq = UnionOfConjunctiveQueries([
            ConjunctiveQuery([Atom(R, (x,))]),
            ConjunctiveQuery([Atom(R, (Constant(1),))]),
        ])
        assert isinstance(safe_plan_ucq(ucq), IndependentProject)

    def test_singleton_union_unwrapped(self):
        ucq = UnionOfConjunctiveQueries([ConjunctiveQuery([Atom(R, (x,))])])
        assert isinstance(safe_plan_ucq(ucq), IndependentProject)

"""Direct tests of the FO AST: value semantics, builders, traversal."""

import pytest

from repro.errors import SchemaError
from repro.logic.normalform import standardize_apart
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    FALSE,
    Forall,
    Implies,
    Not,
    Or,
    TRUE,
    Variable,
    as_term,
    conjoin,
    disjoin,
    exists_all,
    walk,
)
from repro.relational import RelationSymbol

R = RelationSymbol("R", 2)
S = RelationSymbol("S", 1)
x, y = Variable("x"), Variable("y")


class TestTerms:
    def test_variable_value_semantics(self):
        assert Variable("x") == Variable("x")
        assert hash(Variable("x")) == hash(Variable("x"))
        assert Variable("x") != Variable("y")

    def test_constant_value_semantics(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant("1")

    def test_as_term_coercion(self):
        assert as_term(5) == Constant(5)
        assert as_term(x) is x


class TestAtoms:
    def test_arity_checked(self):
        with pytest.raises(SchemaError):
            Atom(R, (x,))

    def test_raw_values_coerced(self):
        atom = Atom(R, (x, 3))
        assert atom.terms == (x, Constant(3))

    def test_is_ground(self):
        assert Atom(R, (1, 2)).is_ground()
        assert not Atom(R, (x, 2)).is_ground()

    def test_value_semantics(self):
        assert Atom(R, (x, 1)) == Atom(R, (x, 1))
        assert Atom(R, (x, 1)) != Atom(R, (y, 1))


class TestConnectiveOperators:
    def test_and_or_invert_sugar(self):
        a, b = Atom(S, (x,)), Atom(S, (y,))
        assert isinstance(a & b, And)
        assert isinstance(a | b, Or)
        assert isinstance(~a, Not)

    def test_equality_across_types(self):
        a, b = Atom(S, (x,)), Atom(S, (y,))
        assert And(a, b) != Or(a, b)
        assert And(a, b) == And(a, b)
        assert Implies(a, b) != Implies(b, a)

    def test_quantifier_string_variable(self):
        formula = Exists("z", Atom(S, (Variable("z"),)))
        assert formula.variable == Variable("z")


class TestBuilders:
    def test_exists_all_order(self):
        formula = exists_all(["a", "b"], Atom(R, (Variable("a"), Variable("b"))))
        assert isinstance(formula, Exists) and formula.variable.name == "a"
        assert isinstance(formula.body, Exists)

    def test_conjoin_empty_is_true(self):
        assert conjoin([]) is TRUE

    def test_disjoin_empty_is_false(self):
        assert disjoin([]) is FALSE

    def test_conjoin_single_passthrough(self):
        atom = Atom(S, (x,))
        assert conjoin([atom]) is atom

    def test_conjoin_multiple(self):
        a, b, c = (Atom(S, (Constant(i),)) for i in range(3))
        formula = conjoin([a, b, c])
        assert isinstance(formula, And)


class TestWalk:
    def test_visits_all_nodes(self):
        formula = Exists(x, And(Atom(S, (x,)), Not(Atom(S, (y,)))))
        kinds = [type(node).__name__ for node in walk(formula)]
        assert kinds.count("Atom") == 2
        assert "Exists" in kinds and "Not" in kinds and "And" in kinds

    def test_includes_root(self):
        atom = Atom(S, (x,))
        assert list(walk(atom)) == [atom]


class TestStandardizeApart:
    def test_distinct_scopes_get_distinct_variables(self):
        formula = And(
            Exists(x, Atom(S, (x,))),
            Exists(x, Atom(S, (x,))),
        )
        renamed = standardize_apart(formula)
        assert renamed.left.variable != renamed.right.variable

    def test_free_variables_untouched(self):
        from repro.logic.analysis import free_variables

        formula = And(Atom(S, (y,)), Exists(x, Atom(R, (x, y))))
        renamed = standardize_apart(formula)
        assert free_variables(renamed) == frozenset({y})

    def test_semantics_preserved(self):
        from repro.logic.semantics import evaluate
        from repro.relational import Instance

        formula = And(Exists(x, Atom(S, (x,))), Exists(x, Atom(S, (x,))))
        renamed = standardize_apart(formula)
        for D in (Instance(), Instance([S(1)])):
            assert evaluate(formula, D) == evaluate(renamed, D)

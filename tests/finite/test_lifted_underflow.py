"""Regression: the lifted evaluator's independent-project/union folds
must not lose tiny marginals or underflow on long products.

The historic ``complement *= 1.0 - p`` loop fails twice at scale:
``1 - 1e-20`` rounds to exactly 1.0 (so 10⁵ such facts "contribute
nothing"), and 10⁵ ordinary factors underflow the running product to
0.0.  The shared :class:`repro.utils.probability.ComplementAccumulator`
now rescues both regimes in log space."""

import math

import pytest

from repro.finite.tuple_independent import TupleIndependentTable
from repro.finite.bid import Block, BlockIndependentTable
from repro.finite.lifted import query_probability_lifted
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1, T=1)
R, T = schema["R"], schema["T"]

N = 100_000
TINY = 1e-20


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def tiny_table(n=N, p=TINY):
    return TupleIndependentTable(schema, {R(i): p for i in range(n)})


def test_naive_loop_loses_the_mass():
    """The failure mode being regression-tested: the pre-refactor loop
    returns exactly 0.0 on this input."""
    complement = 1.0
    for _ in range(N):
        complement *= 1.0 - TINY
    assert 1.0 - complement == 0.0


def test_project_over_tiny_marginals():
    # True answer: 1 − (1 − 1e-20)^1e5 = −expm1(1e5 · log1p(−1e-20))
    expected = -math.expm1(N * math.log1p(-TINY))
    assert expected > 0.0
    answer = query_probability_lifted(q("EXISTS x. R(x)"), tiny_table())
    assert answer == pytest.approx(expected, rel=1e-9)
    assert answer == pytest.approx(N * TINY, rel=1e-9)  # ≈ 1e-15


def test_union_of_tiny_disjuncts():
    table = TupleIndependentTable(schema, {R(1): TINY, T(1): TINY})
    answer = query_probability_lifted(q("R(1) OR T(1)"), table)
    assert answer == pytest.approx(2 * TINY, rel=1e-12)


def test_long_product_does_not_underflow():
    # 10⁵ marginals of 0.5: the complement is 2^-100000 — far below the
    # float underflow threshold, so the naive product is exactly 0.0.
    # Here the disjunction is 1.0 either way; the accumulator must reach
    # it through the rescued log residual without raising or returning
    # a denormal artifact.
    table = tiny_table(p=0.5)
    assert query_probability_lifted(q("EXISTS x. R(x)"), table) == 1.0


def test_bid_disjoint_union_of_tiny_alternatives():
    blocks = [
        Block(f"b{i}", {T(i): TINY / 2, T(-i - 1): TINY / 2})
        for i in range(1000)
    ]
    table = BlockIndependentTable(schema, blocks)
    answer = query_probability_lifted(q("EXISTS x. T(x)"), table)
    expected = -math.expm1(1000 * math.log1p(-TINY))
    assert answer == pytest.approx(expected, rel=1e-9)


def test_dyadic_marginals_still_bit_exact():
    """The rescue must not perturb the ordinary regime: on dyadic
    marginals the lifted fold still equals the naive product bit for
    bit (the exact-strategy agreement contract)."""
    marginals = {R(i): (i % 63 + 1) / 64 for i in range(200)}
    table = TupleIndependentTable(schema, marginals)
    complement = 1.0
    for p in marginals.values():
        complement *= 1.0 - p
    answer = query_probability_lifted(q("EXISTS x. R(x)"), table)
    assert answer == 1.0 - complement
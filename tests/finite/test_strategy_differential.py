"""Cross-strategy differential suite: the exact strategies (worlds,
lineage, bdd, auto) must agree — *bit-exactly* on dyadic marginals,
where every intermediate product and sum is representable, so any
disagreement is an algorithmic bug rather than float noise.

Includes the non-hierarchical H₀ query (no safe plan: the worst case
that forces the Shannon/BDD machinery) and BID tables (block-aware
branching on both the lineage and the diagram side).
"""

import pytest

from repro.finite import (
    Block,
    BlockIndependentTable,
    TupleIndependentTable,
    marginal_answer_probabilities,
    query_probability,
)
from repro.finite.evaluation import BDD_AUTO_THRESHOLD
from repro.logic import BooleanQuery, Query, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

EXACT_STRATEGIES = ("worlds", "lineage", "bdd", "auto")

#: Dyadic marginals: exactly representable, products/sums stay exact.
DYADIC = (0.5, 0.25, 0.125, 0.75, 0.375)


def dyadic_ti(n_r=3, n_t=3):
    marginals = {R(i): DYADIC[i % len(DYADIC)] for i in range(1, n_r + 1)}
    marginals.update({
        S(i, j): DYADIC[(i + j) % len(DYADIC)]
        for i in range(1, n_r + 1) for j in range(1, n_t + 1)
    })
    marginals.update({T(j): 0.5 for j in range(1, n_t + 1)})
    return TupleIndependentTable(schema, marginals)


def dyadic_bid():
    return BlockIndependentTable(schema, [
        Block("a", {R(1): 0.5, R(2): 0.25}),
        Block("b", {T(1): 0.5, T(2): 0.125}),
        Block("c", {S(1, 1): 0.5, S(2, 1): 0.25}),
        Block("d", {S(1, 2): 0.375}),
    ])


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


QUERIES = [
    # H₀: the canonical non-hierarchical (#P-hard) query — no safe plan.
    "EXISTS x, y. R(x) AND S(x, y) AND T(y)",
    "EXISTS x. R(x)",
    "EXISTS x, y. S(x, y)",
    "R(1) OR (EXISTS x. T(x) AND NOT R(x))",
    "FORALL x. R(x) -> (EXISTS y. S(x, y))",
    "NOT EXISTS x. R(x) AND T(x)",
]


class TestExactAgreementTI:
    @pytest.mark.parametrize("text", QUERIES)
    def test_all_strategies_bit_equal(self, text):
        table = dyadic_ti()
        values = {
            s: query_probability(q(text), table, strategy=s)
            for s in EXACT_STRATEGIES
        }
        assert len(set(values.values())) == 1, values

    def test_h0_value_nontrivial(self):
        """Guard against vacuous agreement (all strategies returning 0/1)."""
        value = query_probability(q(QUERIES[0]), dyadic_ti(), strategy="bdd")
        assert 0.0 < value < 1.0


class TestExactAgreementBID:
    @pytest.mark.parametrize("text", QUERIES)
    def test_all_strategies_bit_equal(self, text):
        table = dyadic_bid()
        values = {
            s: query_probability(q(text), table, strategy=s)
            for s in ("worlds", "lineage", "bdd")
        }
        assert len(set(values.values())) == 1, values


class TestAutoUsesBDDPastThreshold:
    def test_unsafe_query_on_large_table_is_exact(self):
        """Above the threshold auto routes unsafe TI queries through the
        compiled path; the result must still match lineage exactly."""
        table = dyadic_ti(n_r=4, n_t=4)  # 4 + 16 + 4 facts ≥ threshold
        assert len(table) >= BDD_AUTO_THRESHOLD
        query = q(QUERIES[0])
        assert query_probability(query, table, strategy="auto") == \
            query_probability(query, table, strategy="lineage")


class TestAnswerMarginalDifferential:
    def answer_query(self):
        return Query(
            parse_formula("EXISTS y. R(x) AND S(x, y) AND T(y)", schema),
            schema)

    def test_shared_bdd_matches_per_answer_lineage(self):
        table = dyadic_ti()
        per_answer = marginal_answer_probabilities(
            self.answer_query(), table, strategy="lineage")
        shared = marginal_answer_probabilities(
            self.answer_query(), table, strategy="bdd")
        assert per_answer == shared
        assert per_answer  # nontrivial

    def test_auto_matches_lineage(self):
        table = dyadic_ti()
        assert marginal_answer_probabilities(
            self.answer_query(), table, strategy="auto"
        ) == marginal_answer_probabilities(
            self.answer_query(), table, strategy="lineage")

    def test_bid_shared_matches_per_answer(self):
        table = dyadic_bid()
        per_answer = marginal_answer_probabilities(
            self.answer_query(), table, strategy="lineage")
        shared = marginal_answer_probabilities(
            self.answer_query(), table, strategy="bdd")
        assert per_answer == shared

    def test_k2_fanout_streams_lazily(self):
        """A binary query's candidate² space is enumerated lazily and
        agrees across strategies."""
        table = dyadic_ti()
        query = Query(
            parse_formula("R(x) AND (EXISTS z. S(x, z)) AND T(y)", schema),
            schema)
        assert marginal_answer_probabilities(query, table, strategy="bdd") \
            == marginal_answer_probabilities(query, table, strategy="lineage")

    def test_process_pool_fanout_matches_sequential(self):
        table = dyadic_ti()
        sequential = marginal_answer_probabilities(
            self.answer_query(), table, strategy="bdd")
        parallel = marginal_answer_probabilities(
            self.answer_query(), table, strategy="bdd", workers=2)
        assert sequential == parallel
        assert list(sequential) == list(parallel)  # enumeration order kept

"""Tests for exact query evaluation: all strategies agree with the
possible-worlds ground truth."""

import pytest

from repro.errors import EvaluationError
from repro.finite import (
    BlockIndependentTable,
    Block,
    FinitePDB,
    TupleIndependentTable,
    marginal_answer_probabilities,
    query_probability,
    query_probability_by_worlds,
)
from repro.logic import BooleanQuery, Query, parse_formula
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def small_ti():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.3,
        S(1, 1): 0.7, S(1, 2): 0.2, S(2, 1): 0.4,
        T(1): 0.6,
    })


QUERIES = [
    "EXISTS x. R(x)",
    "EXISTS x, y. S(x, y)",
    "EXISTS x. R(x) AND EXISTS y. S(x, y)",
    "EXISTS x, y. R(x) AND S(x, y) AND T(y)",          # H0: unsafe
    "FORALL x. R(x) -> EXISTS y. S(x, y)",
    "NOT EXISTS x. R(x) AND T(x)",
    "R(1) OR S(2, 1)",
]


class TestStrategyAgreement:
    @pytest.mark.parametrize("text", QUERIES)
    def test_lineage_matches_worlds(self, text):
        table = small_ti()
        expected = query_probability_by_worlds(q(text), table)
        actual = query_probability(q(text), table, strategy="lineage")
        assert actual == pytest.approx(expected, abs=1e-10)

    @pytest.mark.parametrize("text", QUERIES)
    def test_auto_matches_worlds(self, text):
        table = small_ti()
        expected = query_probability_by_worlds(q(text), table)
        actual = query_probability(q(text), table, strategy="auto")
        assert actual == pytest.approx(expected, abs=1e-10)

    def test_unknown_strategy(self):
        with pytest.raises(EvaluationError):
            query_probability(q("EXISTS x. R(x)"), small_ti(), strategy="magic")

    def test_lifted_supports_bid(self):
        # Alternatives of one block are mutually exclusive: the lifted
        # plan applies the disjoint-union rule, P = 0.5 + 0.3.
        bid = BlockIndependentTable(
            schema, [Block("b", {R(1): 0.5, R(2): 0.3})])
        assert query_probability(
            q("EXISTS x. R(x)"), bid, strategy="lifted"
        ) == pytest.approx(0.8)

    def test_lifted_requires_ti_or_bid(self):
        worlds = FinitePDB(schema, {Instance([R(1)]): 0.5, Instance(): 0.5})
        with pytest.raises(EvaluationError):
            query_probability(q("R(1)"), worlds, strategy="lifted")


class TestHandComputedProbabilities:
    def test_exists_r(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        assert query_probability(q("EXISTS x. R(x)"), table) == pytest.approx(0.75)

    def test_conjunction_of_independent_facts(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, T(2): 0.4})
        assert query_probability(q("R(1) AND T(2)"), table) == pytest.approx(0.2)

    def test_negation(self):
        table = TupleIndependentTable(schema, {R(1): 0.3})
        assert query_probability(q("NOT R(1)"), table) == pytest.approx(0.7)

    def test_bid_disjoint_alternatives(self):
        bid = BlockIndependentTable(schema, [
            Block("k", {R(1): 0.5, R(2): 0.5}),
        ])
        # Alternatives are exclusive: P(R(1) AND R(2)) = 0, P(∃x R(x)) = 1.
        assert query_probability(q("R(1) AND R(2)"), bid) == pytest.approx(0.0)
        assert query_probability(q("EXISTS x. R(x)"), bid) == pytest.approx(1.0)

    def test_bid_across_blocks(self):
        bid = BlockIndependentTable(schema, [
            Block("a", {R(1): 0.5}),
            Block("b", {R(2): 0.4}),
        ])
        assert query_probability(q("R(1) AND R(2)"), bid) == pytest.approx(0.2)


class TestMarginalAnswers:
    def test_unary_query_marginals(self):
        table = TupleIndependentTable(schema, {S(1, 1): 0.5, S(2, 1): 0.25})
        query = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
        marginals = marginal_answer_probabilities(query, table)
        assert marginals[(1,)] == pytest.approx(0.5)
        assert marginals[(2,)] == pytest.approx(0.25)

    def test_zero_probability_tuples_omitted(self):
        table = TupleIndependentTable(schema, {S(1, 1): 0.5})
        query = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
        marginals = marginal_answer_probabilities(query, table)
        assert (1,) in marginals and len(marginals) == 1

    def test_boolean_query_unit_key(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        query = Query(parse_formula("EXISTS x. R(x)", schema), schema)
        marginals = marginal_answer_probabilities(query, table)
        assert marginals == {(): pytest.approx(0.5)}

    def test_explicit_domain(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        query = Query(parse_formula("R(x)", schema), schema)
        marginals = marginal_answer_probabilities(query, table, domain=[1, 2])
        assert marginals == {(1,): pytest.approx(0.5)}

    def test_marginals_match_expanded_pdb(self):
        table = small_ti()
        query = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
        marginals = marginal_answer_probabilities(query, table)
        pdb = table.expand()
        for answer, probability in marginals.items():
            direct = pdb.probability(
                lambda D, a=answer: a in
                Query(parse_formula("EXISTS y. S(x, y)", schema), schema)(D))
            assert probability == pytest.approx(direct, abs=1e-10)

"""Tests for pushforward view semantics on finite PDBs (eq. (3))."""

import pytest

from repro.finite import FinitePDB, TupleIndependentTable, apply_query, apply_view
from repro.logic import FOView, Query, parse_formula
from repro.relational import Instance, Schema

source = Schema.of(R=2)
R = source["R"]
target = Schema.of(T=1)
T = target["T"]


def head_view():
    return FOView(source, target,
                  {"T": parse_formula("EXISTS y. R(x, y)", source)})


class TestApplyView:
    def test_pushforward_masses(self):
        pdb = TupleIndependentTable(source, {R(1, 1): 0.5, R(1, 2): 0.5})
        image = apply_view(head_view(), pdb)
        # T(1) holds unless both facts are absent: 1 − 0.25.
        assert image.fact_marginal(T(1)) == pytest.approx(0.75)
        assert image.probability_of(Instance()) == pytest.approx(0.25)

    def test_image_collisions_accumulate(self):
        """Distinct pre-images with equal image merge their mass."""
        pdb = FinitePDB(source, {
            Instance([R(1, 1)]): 0.5,
            Instance([R(1, 2)]): 0.5,
        })
        image = apply_view(head_view(), pdb)
        assert image.probability_of(Instance([T(1)])) == pytest.approx(1.0)
        assert len(image) == 1

    def test_mass_preserved(self):
        pdb = TupleIndependentTable(source, {R(1, 2): 0.3, R(4, 5): 0.9})
        image = apply_view(head_view(), pdb)
        assert sum(image.worlds.values()) == pytest.approx(1.0)

    def test_target_schema(self):
        pdb = TupleIndependentTable(source, {R(1, 2): 0.5})
        image = apply_view(head_view(), pdb)
        assert image.schema == target


class TestApplyQuery:
    def test_query_as_pdb(self):
        pdb = TupleIndependentTable(source, {R(1, 2): 0.4})
        query = Query(parse_formula("EXISTS y. R(x, y)", source), source)
        answers = apply_query(query, pdb)
        answer_symbol = answers.schema["Answer"]
        assert answers.fact_marginal(answer_symbol(1)) == pytest.approx(0.4)

    def test_boolean_query_as_pdb(self):
        pdb = TupleIndependentTable(source, {R(1, 2): 0.4})
        query = Query(parse_formula("EXISTS x, y. R(x, y)", source), source)
        answers = apply_query(query, pdb)
        nonempty = answers.probability(lambda D: D.size > 0)
        assert nonempty == pytest.approx(0.4)

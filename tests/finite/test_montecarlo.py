"""Tests for Monte-Carlo query evaluation."""

import random

import pytest

from repro.finite import (
    TupleIndependentTable,
    query_probability,
    query_probability_monte_carlo,
)
from repro.finite.montecarlo import event_probability_monte_carlo
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


class TestEstimates:
    def test_interval_contains_truth(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.3})
        query = q("EXISTS x. R(x)")
        truth = query_probability(query, table)
        rng = random.Random(17)
        estimate = query_probability_monte_carlo(query, table, 3000, rng)
        assert estimate.contains(truth)

    def test_unsafe_query_estimated(self):
        """MC handles H0 (the #P-hard query) without a safe plan."""
        table = TupleIndependentTable(schema, {
            R(1): 0.5, S(1, 2): 0.5, T(2): 0.5,
        })
        query = q("EXISTS x, y. R(x) AND S(x, y) AND T(y)")
        truth = query_probability(query, table)  # via lineage
        rng = random.Random(18)
        estimate = query_probability_monte_carlo(query, table, 4000, rng)
        assert abs(estimate.estimate - truth) < 0.03

    def test_error_shrinks_with_samples(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        query = q("R(1)")
        rng = random.Random(19)
        small = query_probability_monte_carlo(query, table, 100, rng)
        large = query_probability_monte_carlo(query, table, 10000, rng)
        assert large.half_width < small.half_width

    def test_interval_clipped_to_unit(self):
        table = TupleIndependentTable(schema, {R(1): 0.999})
        rng = random.Random(20)
        estimate = query_probability_monte_carlo(q("R(1)"), table, 100, rng)
        assert 0.0 <= estimate.low <= estimate.high <= 1.0

    def test_invalid_parameters(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        rng = random.Random(21)
        with pytest.raises(ValueError):
            query_probability_monte_carlo(q("R(1)"), table, 0, rng)
        with pytest.raises(ValueError):
            query_probability_monte_carlo(q("R(1)"), table, 10, rng,
                                          confidence=0.5)


class TestEventEstimates:
    def test_size_event(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        rng = random.Random(22)
        estimate = event_probability_monte_carlo(
            lambda D: D.size == 2, table, 4000, rng)
        assert estimate.contains(0.25)

    def test_coverage_calibration(self):
        """~95% of 95% intervals should contain the truth."""
        table = TupleIndependentTable(schema, {R(1): 0.37})
        query = q("R(1)")
        hits = 0
        for trial in range(100):
            rng = random.Random(1000 + trial)
            estimate = query_probability_monte_carlo(query, table, 400, rng)
            if estimate.contains(0.37):
                hits += 1
        assert hits >= 85

"""Tests for Monte-Carlo query evaluation."""

import random

import pytest

from repro.finite import (
    TupleIndependentTable,
    query_probability,
    query_probability_monte_carlo,
)
from repro.finite.montecarlo import event_probability_monte_carlo, z_quantile
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


class TestEstimates:
    def test_interval_contains_truth(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.3})
        query = q("EXISTS x. R(x)")
        truth = query_probability(query, table)
        rng = random.Random(17)
        estimate = query_probability_monte_carlo(query, table, 3000, rng)
        assert estimate.contains(truth)

    def test_unsafe_query_estimated(self):
        """MC handles H0 (the #P-hard query) without a safe plan."""
        table = TupleIndependentTable(schema, {
            R(1): 0.5, S(1, 2): 0.5, T(2): 0.5,
        })
        query = q("EXISTS x, y. R(x) AND S(x, y) AND T(y)")
        truth = query_probability(query, table)  # via lineage
        rng = random.Random(18)
        estimate = query_probability_monte_carlo(query, table, 4000, rng)
        assert abs(estimate.estimate - truth) < 0.03

    def test_error_shrinks_with_samples(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        query = q("R(1)")
        rng = random.Random(19)
        small = query_probability_monte_carlo(query, table, 100, rng)
        large = query_probability_monte_carlo(query, table, 10000, rng)
        assert large.half_width < small.half_width

    def test_interval_clipped_to_unit(self):
        table = TupleIndependentTable(schema, {R(1): 0.999})
        rng = random.Random(20)
        estimate = query_probability_monte_carlo(q("R(1)"), table, 100, rng)
        assert 0.0 <= estimate.low <= estimate.high <= 1.0

    def test_invalid_parameters(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        rng = random.Random(21)
        with pytest.raises(ValueError):
            query_probability_monte_carlo(q("R(1)"), table, 0, rng)
        for confidence in (0.0, 1.0, 1.5, -0.2):
            with pytest.raises(ValueError):
                query_probability_monte_carlo(q("R(1)"), table, 10, rng,
                                              confidence=confidence)
        with pytest.raises(ValueError):
            # No randomness source at all.
            query_probability_monte_carlo(q("R(1)"), table, 10)
        with pytest.raises(ValueError):
            query_probability_monte_carlo(q("R(1)"), table, 10, rng,
                                          backend="fortran")


class TestZQuantile:
    """Regression: any confidence in (0, 1) is accepted (was KeyError →
    ValueError for everything outside the three tabulated levels)."""

    def test_untabulated_confidence_accepted(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        estimate = query_probability_monte_carlo(
            q("R(1)"), table, 500, seed=23, confidence=0.975)
        assert estimate.half_width > 0

    def test_inverse_cdf_matches_known_quantiles(self):
        # Tabulated levels keep their historical rounded values...
        assert z_quantile(0.95) == 1.9600
        assert z_quantile(0.90) == 1.6449
        assert z_quantile(0.99) == 2.5758
        # ...and arbitrary levels go through the inverse normal CDF.
        assert z_quantile(0.975) == pytest.approx(2.2414, abs=1e-4)
        assert z_quantile(0.5) == pytest.approx(0.6745, abs=1e-4)
        assert z_quantile(0.999) == pytest.approx(3.2905, abs=1e-4)

    def test_monotone_in_confidence(self):
        levels = [0.05 * i for i in range(1, 20)]
        quantiles = [z_quantile(level) for level in levels]
        assert quantiles == sorted(quantiles)

    def test_half_width_widens_with_confidence(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        narrow = query_probability_monte_carlo(
            q("R(1)"), table, 400, seed=31, confidence=0.8)
        wide = query_probability_monte_carlo(
            q("R(1)"), table, 400, seed=31, confidence=0.998)
        assert narrow.estimate == wide.estimate
        assert narrow.half_width < wide.half_width

    def test_out_of_range_rejected(self):
        for level in (0.0, 1.0, -1.0, 2.0):
            with pytest.raises(ValueError):
                z_quantile(level)


class TestEventEstimates:
    def test_size_event(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        rng = random.Random(22)
        estimate = event_probability_monte_carlo(
            lambda D: D.size == 2, table, 4000, rng)
        assert estimate.contains(0.25)

    def test_coverage_calibration(self):
        """~95% of 95% intervals should contain the truth."""
        table = TupleIndependentTable(schema, {R(1): 0.37})
        query = q("R(1)")
        hits = 0
        for trial in range(100):
            rng = random.Random(1000 + trial)
            estimate = query_probability_monte_carlo(query, table, 400, rng)
            if estimate.contains(0.37):
                hits += 1
        assert hits >= 85

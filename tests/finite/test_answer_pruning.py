"""Join-derived answer support, fan-out pruning, delta grounding, and
the distinct-constant safety probe."""

from unittest import mock

import pytest

from repro import obs
from repro.finite.compile_cache import SharedGrounding
from repro.finite.evaluation import (
    _grounding_is_safe,
    marginal_answer_probabilities,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.parser import parse_formula
from repro.logic.queries import Query
from repro.logic.syntax import Variable
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

x, y = Variable("x"), Variable("y")


def make_table():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.4, R(5): 0.7,
        S(1, 2): 0.3, S(2, 3): 0.2, S(4, 4): 0.9,
        T(2): 0.6, T(3): 0.8,
    })


class TestGroundingSafetyProbe:
    def test_probe_binding_is_pairwise_distinct(self):
        """A repeated representative constant can collapse distinct
        answer variables and misjudge safety; the probe must bind every
        variable to a different value even with one candidate."""
        query = Query(
            parse_formula("EXISTS z. S(x, z) AND S(y, z)", schema),
            schema, name="q")
        captured = {}

        def spy(formula, binding):
            captured.update(binding)
            from repro.logic.normalform import substitute
            return substitute(formula, binding)

        with mock.patch("repro.finite.evaluation.substitute", side_effect=spy):
            _grounding_is_safe(query, [7])
        values = [captured[v] for v in query.variables]
        assert len(values) == 2
        assert len(set(values)) == len(values)

    def test_verdicts_for_known_queries(self):
        safe = Query(
            parse_formula("EXISTS z. R(x) AND S(x, z)", schema),
            schema, name="safe")
        assert _grounding_is_safe(safe, [7]) is True
        # Distinct probe constants shatter S into two symbols, making z
        # a separator: the grounded sentence is genuinely safe.
        shattered = Query(
            parse_formula("EXISTS z. S(x, z) AND S(y, z)", schema),
            schema, name="shattered")
        assert _grounding_is_safe(shattered, [7]) is True
        assert _grounding_is_safe(shattered, [7, 8]) is True
        # A constant-pinned copy of S alongside an unpinned one cannot
        # be shattered apart: no plan for any grounding.
        unsafe = Query(
            parse_formula(
                "EXISTS y, z. R(y) AND S(y, z) AND S(x, z)", schema),
            schema, name="unsafe")
        assert _grounding_is_safe(unsafe, [7]) is False
        assert _grounding_is_safe(unsafe, [7, 8]) is False

    def test_no_candidates_is_unsafe(self):
        query = Query(parse_formula("R(x)", schema), schema, name="q")
        assert _grounding_is_safe(query, []) is False


class TestAnswerPruning:
    @pytest.mark.parametrize("strategy", ["bdd", "auto"])
    def test_pruned_fanout_matches_full_product(self, strategy):
        table = make_table()
        query = Query(
            parse_formula("EXISTS z. R(x) AND S(x, z) AND S(z, y)", schema),
            schema, name="q2")
        pruned = marginal_answer_probabilities(query, table, strategy=strategy)
        with mock.patch.object(
            SharedGrounding, "answer_support", return_value=None,
        ):
            full = marginal_answer_probabilities(
                query, table, strategy=strategy)
        assert dict(pruned) == dict(full)
        assert list(pruned) == list(full)  # identical enumeration order

    def test_pruned_answers_counter(self):
        table = make_table()
        query = Query(
            parse_formula("EXISTS z. R(x) AND S(x, z) AND S(z, y)", schema),
            schema, name="q2")
        with obs.trace() as t:
            marginal_answer_probabilities(query, table, strategy="bdd")
        assert t.counters.get("grounding.pruned_answers", 0) > 0

    def test_pool_path_matches_serial(self):
        table = make_table()
        query = Query(
            parse_formula("EXISTS z. R(x) AND S(x, z) AND S(z, y)", schema),
            schema, name="q2")
        serial = marginal_answer_probabilities(query, table, strategy="bdd")
        pooled = marginal_answer_probabilities(
            query, table, strategy="bdd", workers=2)
        assert dict(serial) == dict(pooled)
        assert list(serial) == list(pooled)


class TestSharedGroundingDelta:
    def test_extended_reuses_and_delta_extends_index(self):
        table = make_table()
        formula = parse_formula("EXISTS z. R(x) AND S(x, z)", schema)
        grounding = SharedGrounding(formula, table, base_domain={1, 2, 3})
        grown = TupleIndependentTable(schema, dict(
            list(table.marginals.items()) + [(S(5, 1), 0.1), (R(6), 0.2)]))
        with obs.trace() as t:
            extended = grounding.extended(grown, {1, 2, 3, 5, 6})
        assert extended.index is grounding.index
        assert t.counters["grounding.delta_facts"] == 2
        assert S(5, 1) in extended.index

    def test_shrunk_truncation_rebuilds(self):
        table = make_table()
        formula = parse_formula("EXISTS z. R(x) AND S(x, z)", schema)
        grounding = SharedGrounding(formula, table, base_domain={1, 2, 3})
        shrunk = TupleIndependentTable(schema, {R(1): 0.5})
        extended = grounding.extended(shrunk, {1})
        assert extended.index is not grounding.index
        assert len(extended.index) == 1

    def test_answer_support_superset_of_nonzero_answers(self):
        table = make_table()
        formula = parse_formula("EXISTS z. R(x) AND S(x, z)", schema)
        grounding = SharedGrounding(formula, table, base_domain={1, 2, 3, 4, 5})
        support = grounding.answer_support((x,), [1, 2, 3, 4, 5])
        assert support is not None
        for answer in support:
            assert len(answer) == 1
        nonzero = {
            answer
            for answer in [(v,) for v in (1, 2, 3, 4, 5)]
            if grounding.answer_probability((x,), answer) > 0
        }
        assert nonzero <= set(support)

    def test_answer_support_none_outside_fragment(self):
        table = make_table()
        formula = parse_formula("FORALL z. R(x) OR T(z)", schema)
        grounding = SharedGrounding(formula, table, base_domain={1, 2})
        assert grounding.answer_support((x,), [1, 2]) is None

"""Tests for finite block-independent-disjoint tables (§4.4 finite case)."""

import random

import pytest

from repro.errors import ProbabilityError
from repro.finite import Block, BlockIndependentTable
from repro.relational import Instance, Schema

schema = Schema.of(R=2)
R = schema["R"]


def key_table():
    """Two key blocks: key 1 maps to 1 or 2; key 2 maps to 1 (maybe)."""
    return BlockIndependentTable(schema, [
        Block("k1", {R(1, 1): 0.5, R(1, 2): 0.3}),
        Block("k2", {R(2, 1): 0.4}),
    ])


class TestBlock:
    def test_bottom_mass(self):
        block = Block("b", {R(1, 1): 0.3, R(1, 2): 0.5})
        assert block.bottom_mass == pytest.approx(0.2)

    def test_overfull_block_rejected(self):
        with pytest.raises(ProbabilityError):
            Block("b", {R(1, 1): 0.7, R(1, 2): 0.7})

    def test_block_sampling_frequencies(self):
        block = Block("b", {R(1, 1): 0.5, R(1, 2): 0.25})
        rng = random.Random(9)
        outcomes = [block.sample(rng) for _ in range(4000)]
        none_rate = outcomes.count(None) / len(outcomes)
        assert abs(none_rate - 0.25) < 0.03


class TestTable:
    def test_fact_in_two_blocks_rejected(self):
        with pytest.raises(ProbabilityError):
            BlockIndependentTable(schema, [
                Block("a", {R(1, 1): 0.5}),
                Block("b", {R(1, 1): 0.5}),
            ])

    def test_duplicate_block_names_rejected(self):
        with pytest.raises(ProbabilityError):
            BlockIndependentTable(schema, [
                Block("a", {R(1, 1): 0.5}),
                Block("a", {R(2, 2): 0.5}),
            ])

    def test_good_and_bad_instances(self):
        table = key_table()
        assert table.is_good(Instance([R(1, 1), R(2, 1)]))
        assert not table.is_good(Instance([R(1, 1), R(1, 2)]))  # same block
        assert not table.is_good(Instance([R(9, 9)]))  # unknown fact

    def test_instance_probability_product(self):
        table = key_table()
        # P = p_{k1}(R(1,1)) · p_⊥(k2) = 0.5 · 0.6
        assert table.instance_probability(Instance([R(1, 1)])) == pytest.approx(0.3)
        # Both blocks choose a fact: 0.3 · 0.4.
        assert table.instance_probability(
            Instance([R(1, 2), R(2, 1)])) == pytest.approx(0.12)

    def test_bad_instance_zero(self):
        assert key_table().instance_probability(
            Instance([R(1, 1), R(1, 2)])) == 0.0

    def test_marginals(self):
        table = key_table()
        assert table.marginal(R(1, 2)) == 0.3
        assert table.marginal(R(9, 9)) == 0.0

    def test_expected_size(self):
        assert key_table().expected_size() == pytest.approx(1.2)


class TestExpansion:
    def test_expand_sums_to_one(self):
        pdb = key_table().expand()
        assert sum(pdb.worlds.values()) == pytest.approx(1.0)

    def test_expand_matches_instance_probability(self):
        table = key_table()
        pdb = table.expand()
        for instance in pdb.instances():
            assert pdb.probability_of(instance) == pytest.approx(
                table.instance_probability(instance))

    def test_within_block_exclusivity(self):
        """P(E_{B1} ∩ E_{B2}) = 0 for disjoint subsets of one block —
        Definition 4.11 condition (1)."""
        pdb = key_table().expand()
        joint = pdb.probability(lambda D: R(1, 1) in D and R(1, 2) in D)
        assert joint == 0.0

    def test_across_block_independence(self):
        """Condition (2): facts from different blocks are independent."""
        pdb = key_table().expand()
        joint = pdb.probability(lambda D: R(1, 1) in D and R(2, 1) in D)
        assert joint == pytest.approx(
            pdb.fact_marginal(R(1, 1)) * pdb.fact_marginal(R(2, 1)))


class TestConversions:
    def test_singleton_blocks_to_ti(self):
        table = BlockIndependentTable(schema, [
            Block("a", {R(1, 1): 0.5}),
            Block("b", {R(2, 2): 0.25}),
        ])
        ti = table.to_tuple_independent()
        assert ti.marginal(R(1, 1)) == 0.5

    def test_multi_alternative_block_not_ti(self):
        with pytest.raises(ProbabilityError):
            key_table().to_tuple_independent()


class TestSampling:
    def test_never_samples_bad_instances(self):
        table = key_table()
        rng = random.Random(10)
        for _ in range(500):
            assert table.is_good(table.sample(rng))

    def test_block_choice_frequencies(self):
        table = key_table()
        rng = random.Random(12)
        samples = [table.sample(rng) for _ in range(4000)]
        rate = sum(1 for s in samples if R(1, 2) in s) / len(samples)
        assert abs(rate - 0.3) < 0.03

"""Tests for lineage-based exact evaluation (Shannon expansion)."""

import pytest

from repro.finite import BlockIndependentTable, Block, TupleIndependentTable
from repro.finite.lineage_eval import (
    lineage_probability,
    query_probability_by_lineage,
)
from repro.finite.evaluation import query_probability_by_worlds
from repro.logic import BooleanQuery, parse_formula
from repro.logic.lineage import Lineage
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


class TestLineageProbability:
    def test_single_variable(self):
        assert lineage_probability(Lineage.var(R(1)), lambda f: 0.3) == 0.3

    def test_constants(self):
        assert lineage_probability(Lineage.true(), lambda f: 0.0) == 1.0
        assert lineage_probability(Lineage.false(), lambda f: 1.0) == 0.0

    def test_disjunction_inclusion_exclusion(self):
        expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
        assert lineage_probability(expr, lambda f: 0.5) == pytest.approx(0.75)

    def test_negation(self):
        expr = Lineage.negation(Lineage.var(R(1)))
        assert lineage_probability(expr, lambda f: 0.3) == pytest.approx(0.7)

    def test_shared_variable_correlation(self):
        """x ∧ ¬x = ⊥ even though naive independence would give 0.25."""
        x = Lineage.var(R(1))
        expr = Lineage.conj([x, Lineage.negation(x)])
        assert lineage_probability(expr, lambda f: 0.5) == 0.0

    def test_xor_style_expression(self):
        x, y = Lineage.var(R(1)), Lineage.var(R(2))
        xor = Lineage.disj([
            Lineage.conj([x, Lineage.negation(y)]),
            Lineage.conj([Lineage.negation(x), y]),
        ])
        assert lineage_probability(xor, lambda f: 0.5) == pytest.approx(0.5)

    def test_h0_shaped_lineage(self):
        """A non-read-once lineage that forces genuine expansion."""
        expr = Lineage.disj([
            Lineage.conj([Lineage.var(R(1)), Lineage.var(S(1, 1)), Lineage.var(T(1))]),
            Lineage.conj([Lineage.var(R(1)), Lineage.var(S(1, 2)), Lineage.var(T(2))]),
            Lineage.conj([Lineage.var(R(2)), Lineage.var(S(2, 2)), Lineage.var(T(2))]),
        ])
        marginals = {
            R(1): 0.5, R(2): 0.6, S(1, 1): 0.7, S(1, 2): 0.2,
            S(2, 2): 0.9, T(1): 0.4, T(2): 0.3,
        }
        value = lineage_probability(expr, lambda f: marginals[f])
        # Brute-force over the 7 facts.
        import itertools

        facts = list(marginals)
        brute = 0.0
        for mask in itertools.product([0, 1], repeat=len(facts)):
            world = {f for f, bit in zip(facts, mask) if bit}
            mass = 1.0
            for f, bit in zip(facts, mask):
                mass *= marginals[f] if bit else 1 - marginals[f]
            if expr.evaluate(world):
                brute += mass
        assert value == pytest.approx(brute, abs=1e-12)


class TestQueryByLineage:
    def test_matches_worlds_on_ti(self):
        table = TupleIndependentTable(schema, {
            R(1): 0.4, S(1, 2): 0.5, T(2): 0.9,
        })
        for text in ["EXISTS x. R(x)", "EXISTS x, y. R(x) AND S(x, y) AND T(y)"]:
            assert query_probability_by_lineage(q(text), table) == pytest.approx(
                query_probability_by_worlds(q(text), table))

    def test_matches_worlds_on_bid(self):
        bid = BlockIndependentTable(schema, [
            Block("k1", {S(1, 1): 0.5, S(1, 2): 0.3}),
            Block("k2", {S(2, 1): 0.6}),
            Block("r", {R(1): 0.8}),
        ])
        for text in [
            "EXISTS x, y. S(x, y)",
            "EXISTS y. S(1, y) AND S(2, 1)",
            "R(1) AND S(1, 1)",
            "NOT EXISTS y. S(1, y)",
        ]:
            assert query_probability_by_lineage(q(text), bid) == pytest.approx(
                query_probability_by_worlds(q(text), bid)), text

    def test_bid_exclusivity_respected(self):
        bid = BlockIndependentTable(schema, [
            Block("k", {R(1): 0.5, R(2): 0.5}),
        ])
        assert query_probability_by_lineage(q("R(1) AND R(2)"), bid) == 0.0

    def test_tautology_and_contradiction(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        assert query_probability_by_lineage(q("R(1) OR NOT R(1)"), table) == 1.0
        assert query_probability_by_lineage(q("R(1) AND NOT R(1)"), table) == 0.0

"""Dichotomy-boundary differential suite for the safe-plan solver.

Safe side: the three exact engines — lifted plans, compiled ROBDDs, and
lineage/Shannon expansion — must agree to 1e-12 (and with brute-force
world enumeration on small tables).  Unsafe side: queries beyond the
Dalvi–Suciu boundary must raise :class:`UnsafeQueryError` carrying the
minimal offending subquery, and ``strategy="auto"`` must fall back to an
intensional engine while recording ``lifted.unsafe_fallbacks``.
"""

import pytest

from repro.errors import UnsafeQueryError
from repro.finite import TupleIndependentTable, query_probability
from repro.finite.evaluation import query_probability_by_worlds
from repro.finite.lifted import query_probability_lifted
from repro.logic import BooleanQuery, parse_formula
from repro.logic.normalform import ConjunctiveQuery
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1, U=1, V=2)
R, S, T = schema["R"], schema["S"], schema["T"]
U, V = schema["U"], schema["V"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def small_table():
    """Small enough for world enumeration (2^10 worlds)."""
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.3,
        S(1, 1): 0.7, S(1, 2): 0.2, S(2, 1): 0.4,
        T(1): 0.6, T(2): 0.1,
        U(1): 0.8, U(2): 0.25,
        V(2, 1): 0.35,
    })


def wide_table():
    """Too many facts for worlds; exercises the compiled engines."""
    marginals = {}
    for i in range(1, 13):
        marginals[R(i)] = 0.05 + 0.07 * (i % 5)
        marginals[S(i, (i % 7) + 1)] = 0.1 + 0.05 * (i % 3)
        marginals[T(i)] = 0.15 + 0.04 * (i % 4)
        marginals[U(i)] = 0.2 + 0.06 * (i % 2)
        marginals[V(i, (i % 3) + 1)] = 0.12 + 0.03 * (i % 6)
    return TupleIndependentTable(schema, marginals)


SAFE_QUERIES = [
    # chains
    "EXISTS x, y. R(x) AND S(x, y)",
    "EXISTS x, y. S(x, y) AND T(y)",
    # star: x is a root variable of every atom
    "EXISTS x, y, z. R(x) AND S(x, y) AND V(x, z)",
    # hierarchical with a constant pin
    "EXISTS y. S(1, y) AND T(y)",
    # ground conjunction and single facts
    "R(1) AND T(2)",
    "R(1)",
    # symbol-disjoint union
    "(EXISTS x. R(x)) OR (EXISTS x. U(x))",
    # overlapping union with a UCQ-level separator
    "(EXISTS x. R(x) AND U(x)) OR (EXISTS x. R(x) AND T(x))",
    # union where minimization drops the subsumed disjunct
    "(EXISTS x. R(x)) OR R(1)",
    # distinct constant pins shatter S apart
    "EXISTS z. S(1, z) AND S(2, z)",
]

UNSAFE_QUERIES = [
    # H0, the canonical #P-hard query
    "EXISTS x, y. R(x) AND S(x, y) AND T(y)",
    # H1-style union: shared S, no UCQ separator, H0-shaped I-E terms
    "(EXISTS x, y. R(x) AND S(x, y)) OR (EXISTS x, y. S(x, y) AND T(y))",
    # non-shatterable self-join: pinned and unpinned copies of S
    "EXISTS x, y, z. R(x) AND S(x, z) AND S(1, z) AND T(y)",
    # symmetric self-join
    "EXISTS x, y. S(x, y) AND S(y, x)",
]


class TestSafeSideAgreement:
    @pytest.mark.parametrize("text", SAFE_QUERIES)
    def test_engines_agree_small(self, text):
        """lifted ≡ bdd ≡ lineage ≡ worlds on an enumerable table."""
        table = small_table()
        query = q(text)
        truth = query_probability_by_worlds(query, table)
        for strategy in ("lifted", "bdd", "lineage"):
            assert query_probability(
                query, table, strategy=strategy
            ) == pytest.approx(truth, abs=1e-12), strategy

    @pytest.mark.parametrize("text", SAFE_QUERIES)
    def test_engines_agree_wide(self, text):
        """lifted ≡ bdd ≡ lineage on a table worlds cannot enumerate."""
        table = wide_table()
        query = q(text)
        lifted = query_probability(query, table, strategy="lifted")
        assert query_probability(
            query, table, strategy="bdd"
        ) == pytest.approx(lifted, abs=1e-12)
        assert query_probability(
            query, table, strategy="lineage"
        ) == pytest.approx(lifted, abs=1e-12)

    @pytest.mark.parametrize("text", SAFE_QUERIES)
    def test_auto_routes_lifted_without_fallback(self, text):
        value = query_probability(q(text), wide_table(), strategy="auto")
        counters = value.report.counters
        assert counters.get("lifted.unsafe_fallbacks", 0) == 0
        assert counters.get("lifted.plans", 0) + counters.get(
            "lifted.plan_cache_hits", 0) >= 1


class TestUnsafeSide:
    @pytest.mark.parametrize("text", UNSAFE_QUERIES)
    def test_lifted_raises_with_subquery(self, text):
        with pytest.raises(UnsafeQueryError) as excinfo:
            query_probability_lifted(q(text), small_table())
        sub = excinfo.value.subquery
        assert sub is not None
        assert isinstance(sub, ConjunctiveQuery)

    def test_h0_subquery_is_the_whole_component(self):
        with pytest.raises(UnsafeQueryError) as excinfo:
            query_probability_lifted(
                q("EXISTS x, y. R(x) AND S(x, y) AND T(y)"), small_table())
        sub = excinfo.value.subquery
        names = {atom.relation.name for atom in sub.atoms}
        assert names == {"R", "S", "T"}
        assert len(sub.atoms) == 3

    def test_h1_subquery_is_an_ie_term(self):
        # The failure happens inside inclusion–exclusion: the offending
        # subquery is a single conjunction term mentioning S.
        with pytest.raises(UnsafeQueryError) as excinfo:
            query_probability_lifted(
                q("(EXISTS x, y. R(x) AND S(x, y))"
                  " OR (EXISTS x, y. S(x, y) AND T(y))"), small_table())
        sub = excinfo.value.subquery
        assert isinstance(sub, ConjunctiveQuery)
        assert "S" in {atom.relation.name for atom in sub.atoms}

    def test_conjoined_safe_part_does_not_mask_unsafety(self):
        # U(1) ∧ H0: strict planning must reject the whole query even
        # though one component is trivially safe.
        with pytest.raises(UnsafeQueryError) as excinfo:
            query_probability_lifted(
                q("U(1) AND (EXISTS x, y. R(x) AND S(x, y) AND T(y))"),
                small_table())
        sub = excinfo.value.subquery
        assert {atom.relation.name for atom in sub.atoms} == {"R", "S", "T"}

    @pytest.mark.parametrize("text", UNSAFE_QUERIES)
    def test_auto_falls_back_and_stays_exact(self, text):
        table = small_table()
        query = q(text)
        value = query_probability(query, table, strategy="auto")
        assert value == pytest.approx(
            query_probability_by_worlds(query, table), abs=1e-12)
        counters = value.report.counters
        assert counters.get("lifted.unsafe_fallbacks", 0) >= 1
        events = {e["name"] for e in value.report.events}
        assert "lifted.unsafe_fallback" in events

    def test_partial_plan_runs_safe_component_extensionally(self):
        # U(1) ∧ H0 under auto: the safe U(1) leaf evaluates lifted and
        # only the H0 residue is delegated intensionally.
        table = small_table()
        query = q("U(1) AND (EXISTS x, y. R(x) AND S(x, y) AND T(y))")
        value = query_probability(query, table, strategy="auto")
        assert value == pytest.approx(
            query_probability_by_worlds(query, table), abs=1e-12)
        counters = value.report.counters
        assert counters.get("lifted.unsafe_fallbacks", 0) == 1

"""Karp–Luby guards: the DNF expansion budget and the seeded-stream
reproducibility audit (draws come only from ``(seed, batch_index)``
streams — never from module-level random state)."""

import random

import pytest

from repro.errors import EvaluationError
from repro.finite.karp_luby import (
    DEFAULT_MAX_DNF_TERMS,
    lineage_to_dnf,
    query_probability_karp_luby,
)
from repro.logic.lineage import Lineage
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.parser import parse_formula
from repro.logic.queries import BooleanQuery
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def _cnf_lineage(clauses, width):
    """AND of ``clauses`` disjunctions of ``width`` fresh variables —
    the worst case for DNF expansion (width**clauses terms)."""
    return Lineage.conj([
        Lineage.disj([
            Lineage.var(S(c, v)) for v in range(width)
        ])
        for c in range(clauses)
    ])


def test_dnf_expansion_budget_fires_mid_product():
    # 10 clauses × width 10 would expand to 10^10 terms; the guard must
    # abort long before materialising anything of that order.
    expr = _cnf_lineage(clauses=10, width=10)
    with pytest.raises(EvaluationError, match="max_terms=1000"):
        lineage_to_dnf(expr, max_terms=1000)


def test_dnf_expansion_within_budget_is_unchanged():
    expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
    assert len(lineage_to_dnf(expr)) == 2
    # A small CNF that stays under the cap still expands fully.
    expr = _cnf_lineage(clauses=2, width=3)
    assert len(lineage_to_dnf(expr, max_terms=50)) <= 9


def test_dnf_expansion_rejects_nonpositive_budget():
    with pytest.raises(EvaluationError):
        lineage_to_dnf(Lineage.var(R(1)), max_terms=0)


def test_query_probability_karp_luby_forwards_max_terms():
    table = TupleIndependentTable(
        schema, {S(c, v): 0.5 for c in range(6) for v in range(6)})
    # EXISTS-free conjunction of disjunctions: CNF-shaped lineage.
    q = BooleanQuery(
        parse_formula(
            " AND ".join(
                "(" + " OR ".join(f"S({c}, {v})" for v in range(6)) + ")"
                for c in range(6)),
            schema),
        schema)
    with pytest.raises(EvaluationError, match="max_terms"):
        query_probability_karp_luby(q, table, 100, seed=1, max_terms=100)
    assert DEFAULT_MAX_DNF_TERMS >= 10_000


def _join_table():
    marginals = {R(i): 0.4 for i in range(1, 4)}
    marginals.update({S(i, j): 0.3 for i in range(1, 4) for j in range(1, 4)})
    marginals.update({T(j): 0.5 for j in range(1, 4)})
    return TupleIndependentTable(schema, marginals)


def _join_query():
    return BooleanQuery(
        parse_formula("EXISTS x, y. R(x) AND S(x, y) AND T(y)", schema),
        schema)


def test_batched_estimates_reproducible_from_seed():
    table, query = _join_table(), _join_query()
    first = query_probability_karp_luby(query, table, 2000, seed=7)
    second = query_probability_karp_luby(query, table, 2000, seed=7)
    assert first == second
    other = query_probability_karp_luby(query, table, 2000, seed=8)
    assert other != first  # astronomically unlikely to collide


def test_batch_boundaries_draw_independent_streams():
    # Batches are seeded per (seed, batch_index): splitting the same
    # sample count differently still yields a deterministic result per
    # batch_size, and each batch_size is self-consistent.
    table, query = _join_table(), _join_query()
    whole = query_probability_karp_luby(
        query, table, 1000, seed=5, batch_size=1000)
    split = query_probability_karp_luby(
        query, table, 1000, seed=5, batch_size=250)
    assert whole == query_probability_karp_luby(
        query, table, 1000, seed=5, batch_size=1000)
    assert split == query_probability_karp_luby(
        query, table, 1000, seed=5, batch_size=250)
    assert abs(whole.estimate - split.estimate) < 0.2


def test_sampling_never_touches_module_level_random_state():
    table, query = _join_table(), _join_query()
    random.seed(123456)
    before = random.getstate()
    query_probability_karp_luby(query, table, 500, seed=3)
    query_probability_karp_luby(query, table, 500, seed=3, backend="python")
    assert random.getstate() == before

"""The batched set-at-a-time lifted executor: knob routing, BID
fallback, differential agreement with the scalar interpreter, the
executor's obs counters, the fact index's probe-view cache, and the
scalar path's candidate memo."""

import pytest

from repro import obs
from repro.errors import EvaluationError
from repro.finite import TupleIndependentTable, query_probability
from repro.finite.bid import Block, BlockIndependentTable
from repro.finite.compile_cache import CompileCache
from repro.finite.lifted import (
    evaluate_plan,
    query_probability_lifted,
)
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.relational.index import FactIndex

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def make_table():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.25, R(3): 0.8,
        S(1, 1): 0.3, S(1, 2): 0.6, S(2, 1): 0.9, S(3, 3): 0.45,
        T(1): 0.7, T(2): 0.15,
    })


def query(text):
    return BooleanQuery(parse_formula(text, schema), schema)


#: Safe shapes spanning the plan constructors: single project, chain
#: join (separator project over a join), star join, shattered
#: constants, a union (inclusion–exclusion at the root), and a
#: UCQ-separator project.
SAFE_QUERIES = [
    "EXISTS x. R(x)",
    "EXISTS x. EXISTS y. R(x) AND S(x, y)",
    "EXISTS x. EXISTS y. R(x) AND S(x, y) AND T(x)",
    "EXISTS y. S(1, y)",
    "(EXISTS x. R(x)) OR (EXISTS y. T(y))",
    "(EXISTS x. EXISTS y. S(x, y) AND R(x)) OR (EXISTS z. T(z))",
]


class TestExecutorKnob:
    @pytest.mark.parametrize("text", SAFE_QUERIES)
    def test_executors_agree(self, text):
        table = make_table()
        scalar = query_probability_lifted(
            query(text), table, plan_cache=CompileCache(),
            executor="scalar")
        batched = query_probability_lifted(
            query(text), table, plan_cache=CompileCache(),
            executor="batched")
        auto = query_probability_lifted(
            query(text), table, plan_cache=CompileCache(),
            executor="auto")
        assert batched == pytest.approx(scalar, abs=1e-12)
        assert auto == batched

    def test_unknown_executor_rejected(self):
        with pytest.raises(EvaluationError, match="unknown lifted executor"):
            query_probability_lifted(
                query("EXISTS x. R(x)"), make_table(),
                plan_cache=CompileCache(), executor="bogus")

    def test_query_probability_passes_executor_through(self):
        table = make_table()
        values = {
            executor: float(query_probability(
                query("EXISTS x. EXISTS y. R(x) AND S(x, y)"), table,
                compile_cache=CompileCache(), lifted_executor=executor))
            for executor in ("auto", "scalar", "batched")
        }
        assert values["auto"] == values["batched"]
        assert values["scalar"] == pytest.approx(
            values["batched"], abs=1e-12)
        with pytest.raises(EvaluationError, match="unknown lifted executor"):
            query_probability(
                query("EXISTS x. R(x)"), table, lifted_executor="bogus")

    def test_evaluate_plan_knob(self):
        from repro.logic.hierarchy import safe_plan_ucq
        from repro.logic.normalform import extract_ucq

        table = make_table()
        plan = safe_plan_ucq(
            extract_ucq(query("EXISTS x. EXISTS y. R(x) AND S(x, y)").formula))
        assert evaluate_plan(plan, table, executor="batched") == (
            evaluate_plan(plan, table, executor="auto"))
        assert evaluate_plan(plan, table, executor="scalar") == (
            pytest.approx(evaluate_plan(plan, table), abs=1e-12))


class TestBIDFallback:
    def make_bid(self):
        return BlockIndependentTable(schema, [
            Block("k1", {R(1): 0.5, R(2): 0.3}),
            Block("k2", {R(3): 0.4}),
        ])

    def test_batched_on_bid_falls_back_and_counts(self):
        table = self.make_bid()
        q = query("EXISTS x. R(x)")
        with obs.trace() as t:
            forced = query_probability_lifted(
                q, table, plan_cache=CompileCache(), executor="batched")
        assert t.counters.get("lifted.scalar_fallbacks", 0) >= 1
        scalar = query_probability_lifted(
            q, table, plan_cache=CompileCache(), executor="scalar")
        assert forced == scalar

    def test_auto_on_bid_takes_scalar_silently(self):
        table = self.make_bid()
        q = query("EXISTS x. R(x)")
        with obs.trace() as t:
            query_probability_lifted(
                q, table, plan_cache=CompileCache(), executor="auto")
        assert t.counters.get("lifted.scalar_fallbacks", 0) == 0
        assert t.counters.get("lifted.vectorized_nodes", 0) == 0


class TestCounters:
    def test_batched_run_reports_vectorized_nodes_and_group_rows(self):
        table = make_table()
        with obs.trace() as t:
            query_probability_lifted(
                query("EXISTS x. EXISTS y. R(x) AND S(x, y)"), table,
                plan_cache=CompileCache(), executor="batched")
        assert t.counters.get("lifted.vectorized_nodes", 0) > 0
        assert t.counters.get("lifted.group_rows", 0) > 0
        assert t.counters.get("lifted.scalar_fallbacks", 0) == 0

    def test_warm_rerun_reports_cached_groups(self):
        cache = CompileCache()
        table = make_table()
        q = query("EXISTS x. R(x)")
        query_probability_lifted(q, table, plan_cache=cache)
        with obs.trace() as t:
            first = query_probability_lifted(q, table, plan_cache=cache)
        assert t.counters.get("lifted.cached_groups", 0) > 0
        # Growing the table re-executes only the delta's groups.
        table.extend({R(9): 0.35})
        with obs.trace() as t:
            second = query_probability_lifted(q, table, plan_cache=cache)
        assert t.counters.get("lifted.cached_groups", 0) > 0
        fresh = query_probability_lifted(
            q, table, plan_cache=CompileCache())
        assert second == fresh  # delta reuse is bit-identical
        assert second > first


class TestViewCache:
    def test_probe_views_are_cached_by_bucket_identity(self):
        index = FactIndex(make_table().facts())
        first = index.probe(R, {})
        again = index.probe(R, {})
        assert first is again
        assert index.probe(S, {0: 1}) is index.probe(S, {0: 1})
        assert list(first) == list(index.relation_facts(R))

    def test_extension_keeps_views_coherent(self):
        table = make_table()
        index = FactIndex(table.facts())
        before = index.probe(R, {})
        table.extend({R(7): 0.2})
        index.extend(table.facts())
        after = index.probe(R, {})
        assert R(7) in set(after)
        assert len(after) == len(before)  # same live bucket object


class TestScalarCandidateMemo:
    def test_memo_hits_and_epoch_invalidation(self):
        cache = CompileCache()
        table = make_table()
        q = query("EXISTS x. EXISTS y. R(x) AND S(x, y)")
        query_probability_lifted(
            q, table, plan_cache=cache, executor="scalar")
        with obs.trace() as t:
            warm = query_probability_lifted(
                q, table, plan_cache=cache, executor="scalar")
        assert t.counters.get("lifted.candidate_memo_hits", 0) > 0
        # A grown truncation changes the index epoch: the memo entry
        # must be recomputed, not served stale.
        table.extend({R(4): 0.5, S(4, 1): 0.9})
        grown = query_probability_lifted(
            q, table, plan_cache=cache, executor="scalar")
        fresh = query_probability_lifted(
            q, table, plan_cache=CompileCache(), executor="scalar")
        assert grown == fresh
        assert grown > warm

"""Tests for lifted safe-plan evaluation."""

import pytest

from repro.errors import UnsafeQueryError
from repro.finite import TupleIndependentTable
from repro.finite.evaluation import query_probability_by_worlds
from repro.finite.lifted import evaluate_plan, query_probability_lifted
from repro.logic import BooleanQuery, parse_formula
from repro.logic.hierarchy import safe_plan
from repro.logic.normalform import ConjunctiveQuery
from repro.logic.syntax import Atom, Variable
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]
x, y = Variable("x"), Variable("y")


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def medium_table():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.3, R(3): 0.9,
        S(1, 1): 0.7, S(1, 2): 0.2, S(2, 1): 0.4, S(3, 3): 0.6,
        T(1): 0.6, T(3): 0.1,
    })


SAFE_QUERIES = [
    "EXISTS x. R(x)",
    "EXISTS x, y. S(x, y)",
    "EXISTS x, y. R(x) AND S(x, y)",
    "EXISTS x. R(x) AND T(x)",
    "(EXISTS x. R(x)) AND (EXISTS x, y. S(x, y))",
    "R(1) AND T(1)",
    "R(1)",
]


class TestLiftedMatchesGroundTruth:
    @pytest.mark.parametrize("text", SAFE_QUERIES)
    def test_agreement(self, text):
        table = medium_table()
        assert query_probability_lifted(q(text), table) == pytest.approx(
            query_probability_by_worlds(q(text), table), abs=1e-10)

    def test_union_of_disjoint_cqs(self):
        table = medium_table()
        text = "(EXISTS x. R(x)) OR (EXISTS x. T(x))"
        # R and T never co-occur in a disjunct: independent union applies.
        assert query_probability_lifted(q(text), table) == pytest.approx(
            query_probability_by_worlds(q(text), table), abs=1e-10)


class TestUnsafeRejected:
    def test_h0(self):
        with pytest.raises(UnsafeQueryError):
            query_probability_lifted(
                q("EXISTS x, y. R(x) AND S(x, y) AND T(y)"), medium_table())

    def test_non_ucq(self):
        with pytest.raises(UnsafeQueryError):
            query_probability_lifted(q("NOT EXISTS x. R(x)"), medium_table())

    def test_union_sharing_symbols_without_plan(self):
        # H1: the disjuncts share S, no UCQ separator exists, and every
        # inclusion–exclusion conjunction term is H0-shaped.
        with pytest.raises(UnsafeQueryError):
            query_probability_lifted(
                q("(EXISTS x, y. R(x) AND S(x, y))"
                  " OR (EXISTS x, y. S(x, y) AND T(y))"), medium_table())

    def test_union_sharing_symbols_minimizes(self):
        # R(1) is subsumed by ∃x R(x): minimization leaves a single safe
        # disjunct, so the shared symbol is no obstacle.
        table = medium_table()
        text = "(EXISTS x. R(x)) OR R(1)"
        assert query_probability_lifted(q(text), table) == pytest.approx(
            query_probability_by_worlds(q(text), table), abs=1e-10)


class TestEvaluatePlan:
    def test_project_plan(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        plan = safe_plan(ConjunctiveQuery([Atom(R, (x,))]))
        assert evaluate_plan(plan, table) == pytest.approx(0.75)

    def test_join_plan(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, T(2): 0.4})
        plan = safe_plan(ConjunctiveQuery([
            Atom(R, (1,)), Atom(T, (2,)),
        ]))
        assert evaluate_plan(plan, table) == pytest.approx(0.2)

    def test_nested_project(self):
        table = medium_table()
        plan = safe_plan(ConjunctiveQuery([Atom(R, (x,)), Atom(S, (x, y))]))
        expected = query_probability_by_worlds(
            q("EXISTS x, y. R(x) AND S(x, y)"), table)
        assert evaluate_plan(plan, table) == pytest.approx(expected, abs=1e-10)

    def test_missing_fact_leaf_zero(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        plan = safe_plan(ConjunctiveQuery([Atom(R, (7,))]))
        assert evaluate_plan(plan, table) == 0.0


class TestScaling:
    def test_polynomial_scaling_vs_worlds(self):
        """Lifted evaluation handles 60 facts — far beyond expansion."""
        marginals = {}
        for i in range(1, 21):
            marginals[R(i)] = 0.1
            marginals[S(i, i)] = 0.2
            marginals[T(i)] = 0.3
        table = TupleIndependentTable(schema, marginals)
        value = query_probability_lifted(
            q("EXISTS x, y. R(x) AND S(x, y)"), table)
        # Per i: P(R(i) ∧ S(i,i)) = 0.02; independent across i.
        expected = 1 - (1 - 0.02)**20
        assert value == pytest.approx(expected, abs=1e-10)

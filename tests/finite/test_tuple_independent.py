"""Tests for finite tuple-independent tables."""

import itertools
import random

import pytest

from repro.errors import ProbabilityError, SchemaError
from repro.finite import TupleIndependentTable
from repro.relational import Instance, RelationSymbol, Schema

schema = Schema.of(R=1)
R = schema["R"]


class TestConstruction:
    def test_out_of_range_marginal(self):
        with pytest.raises(ProbabilityError):
            TupleIndependentTable(schema, {R(1): 1.5})

    def test_foreign_relation(self):
        S = RelationSymbol("S", 1)
        with pytest.raises(SchemaError):
            TupleIndependentTable(schema, {S(1): 0.5})

    def test_zero_probability_facts_dropped(self):
        table = TupleIndependentTable(schema, {R(1): 0.0, R(2): 0.5})
        assert table.facts() == [R(2)]


class TestInstanceProbability:
    def test_product_formula(self):
        table = TupleIndependentTable(schema, {R(1): 0.8, R(2): 0.5})
        assert table.instance_probability(Instance([R(1)])) == pytest.approx(0.4)
        assert table.instance_probability(Instance([R(1), R(2)])) == pytest.approx(0.4)
        assert table.instance_probability(Instance()) == pytest.approx(0.1)

    def test_impossible_fact_zero(self):
        table = TupleIndependentTable(schema, {R(1): 0.8})
        assert table.instance_probability(Instance([R(9)])) == 0.0

    def test_all_worlds_sum_to_one(self):
        table = TupleIndependentTable(
            schema, {R(i): 0.1 * i for i in range(1, 6)})
        total = sum(
            table.instance_probability(Instance(c))
            for r in range(6)
            for c in itertools.combinations(table.facts(), r)
        )
        assert total == pytest.approx(1.0)

    def test_empty_world_probability(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        assert table.empty_world_probability() == pytest.approx(0.25)


class TestExpansion:
    def test_expand_matches_products(self):
        table = TupleIndependentTable(schema, {R(1): 0.3, R(2): 0.6})
        pdb = table.expand()
        assert len(pdb) == 4
        for instance in pdb.instances():
            assert pdb.probability_of(instance) == pytest.approx(
                table.instance_probability(instance))

    def test_expand_marginals_match(self):
        table = TupleIndependentTable(schema, {R(1): 0.3, R(2): 0.6})
        pdb = table.expand()
        assert pdb.fact_marginal(R(1)) == pytest.approx(0.3)

    def test_expand_size_guard(self):
        table = TupleIndependentTable(
            schema, {R(i): 0.5 for i in range(30)})
        with pytest.raises(ProbabilityError):
            table.expand()


class TestDerivedTables:
    def test_expected_size_is_sum(self):
        table = TupleIndependentTable(schema, {R(1): 0.8, R(2): 0.5})
        assert table.expected_size() == pytest.approx(1.3)

    def test_top_picks_most_probable(self):
        table = TupleIndependentTable(
            schema, {R(1): 0.1, R(2): 0.9, R(3): 0.5})
        assert table.top(2).facts() == [R(2), R(3)]

    def test_restrict(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        assert table.restrict([R(1)]).facts() == [R(1)]


class TestSampling:
    def test_marginal_frequencies(self):
        table = TupleIndependentTable(schema, {R(1): 0.25, R(2): 0.75})
        rng = random.Random(3)
        samples = table.sample_many(4000, rng)
        rate1 = sum(1 for s in samples if R(1) in s) / len(samples)
        rate2 = sum(1 for s in samples if R(2) in s) / len(samples)
        assert abs(rate1 - 0.25) < 0.03 and abs(rate2 - 0.75) < 0.03

    def test_sampled_independence(self):
        """Empirical joint ≈ product of empirical marginals."""
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        rng = random.Random(4)
        samples = table.sample_many(6000, rng)
        both = sum(1 for s in samples if R(1) in s and R(2) in s) / len(samples)
        assert abs(both - 0.25) < 0.03

"""Tests for explicit finite PDBs."""

import random

import pytest

from repro.errors import ProbabilityError, SchemaError
from repro.finite import FinitePDB
from repro.relational import Instance, RelationSymbol, Schema

schema = Schema.of(R=1)
R = schema["R"]


def simple_pdb():
    return FinitePDB(schema, {
        Instance(): 0.2,
        Instance([R(1)]): 0.3,
        Instance([R(1), R(2)]): 0.5,
    })


class TestConstruction:
    def test_mass_must_sum_to_one(self):
        with pytest.raises(ProbabilityError):
            FinitePDB(schema, {Instance(): 0.5})

    def test_negative_mass_rejected(self):
        with pytest.raises(ProbabilityError):
            FinitePDB(schema, {Instance(): 1.5, Instance([R(1)]): -0.5})

    def test_schema_validated(self):
        S = RelationSymbol("S", 1)
        with pytest.raises(SchemaError):
            FinitePDB(schema, {Instance([S(1)]): 1.0})

    def test_duplicate_instances_merge(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 1.0})
        assert pdb.probability_of(Instance([R(1)])) == 1.0


class TestMeasure:
    def test_point_masses(self):
        pdb = simple_pdb()
        assert pdb.probability_of(Instance([R(1)])) == 0.3
        assert pdb.probability_of(Instance([R(9)])) == 0.0

    def test_event_probability(self):
        pdb = simple_pdb()
        assert pdb.probability(lambda D: D.size >= 1) == pytest.approx(0.8)

    def test_fact_marginal(self):
        pdb = simple_pdb()
        assert pdb.fact_marginal(R(1)) == pytest.approx(0.8)
        assert pdb.fact_marginal(R(2)) == pytest.approx(0.5)

    def test_facts_union(self):
        assert simple_pdb().facts() == {R(1), R(2)}

    def test_expected_size(self):
        # 0.2·0 + 0.3·1 + 0.5·2 = 1.3 — equals Σ_f P(E_f) (eq. (5)).
        pdb = simple_pdb()
        assert pdb.expected_size() == pytest.approx(1.3)
        assert pdb.expected_size() == pytest.approx(
            pdb.fact_marginal(R(1)) + pdb.fact_marginal(R(2)))

    def test_size_distribution(self):
        assert simple_pdb().size_distribution() == pytest.approx(
            {0: 0.2, 1: 0.3, 2: 0.5})


class TestConditioning:
    def test_condition_renormalizes(self):
        conditioned = simple_pdb().condition(lambda D: D.size >= 1)
        assert conditioned.probability_of(Instance([R(1)])) == pytest.approx(
            0.3 / 0.8)

    def test_null_event_rejected(self):
        with pytest.raises(ProbabilityError):
            simple_pdb().condition(lambda D: D.size > 99)


class TestSampling:
    def test_sampling_frequencies(self):
        pdb = simple_pdb()
        rng = random.Random(11)
        samples = [pdb.sample(rng) for _ in range(3000)]
        empty_rate = sum(1 for s in samples if s.size == 0) / len(samples)
        assert abs(empty_rate - 0.2) < 0.03

    def test_instances_sorted_deterministically(self):
        listed = list(simple_pdb().instances())
        assert listed == sorted(listed, key=Instance.sort_key)

"""Tests for the finite FO-definability construction (§4.3)."""

import random

import pytest

from repro.errors import ProbabilityError
from repro.finite import FinitePDB, TupleIndependentTable
from repro.finite.representation import (
    apply_representation,
    represent_over_tuple_independent,
    verify_representation,
)
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


class TestSelectorEncoding:
    def test_two_worlds(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 0.3, Instance(): 0.7})
        assert verify_representation(pdb) < 1e-9

    def test_correlated_facts(self):
        """A PDB that is NOT tuple-independent (perfect correlation) is
        still FO-definable over a TI PDB — the §4.3 classical result."""
        pdb = FinitePDB(schema, {
            Instance([R(1), R(2)]): 0.5,
            Instance(): 0.5,
        })
        table, view = represent_over_tuple_independent(pdb)
        image = apply_representation(table, view)
        # Perfect correlation preserved through the view:
        both = image.probability(lambda D: R(1) in D and R(2) in D)
        one = image.probability(lambda D: R(1) in D and R(2) not in D)
        assert both == pytest.approx(0.5) and one == pytest.approx(0.0)

    def test_many_worlds(self):
        rng = random.Random(6)
        worlds = {}
        instances = [
            Instance(),
            Instance([R(1)]),
            Instance([R(2), S(1, 2)]),
            Instance([R(1), R(2)]),
            Instance([S(2, 2)]),
        ]
        masses = [rng.random() for _ in instances]
        total = sum(masses)
        for instance, mass in zip(instances, masses):
            worlds[instance] = mass / total
        pdb = FinitePDB(schema, worlds)
        assert verify_representation(pdb) < 1e-9

    def test_single_world(self):
        pdb = FinitePDB(schema, {Instance([S(1, 1)]): 1.0})
        assert verify_representation(pdb) < 1e-9

    def test_ti_source_is_tuple_independent(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 0.25, Instance(): 0.75})
        table, _ = represent_over_tuple_independent(pdb)
        assert isinstance(table, TupleIndependentTable)
        # One selector fact for m−1 = 1 world boundary.
        assert len(table.facts()) == 1

    def test_selector_name_collision(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 1.0})
        with pytest.raises(ProbabilityError):
            represent_over_tuple_independent(pdb, selector_name="R")

    def test_round_trip_of_ti_table(self):
        """A TI table expanded then represented round-trips exactly."""
        original = TupleIndependentTable(schema, {R(1): 0.6, S(1, 2): 0.4})
        assert verify_representation(original.expand()) < 1e-9

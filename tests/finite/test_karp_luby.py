"""Tests for the Karp–Luby DNF estimator."""

import random

import pytest

from repro.finite import TupleIndependentTable, query_probability
from repro.finite.karp_luby import (
    DNFTerm,
    karp_luby_probability,
    lineage_to_dnf,
    query_probability_karp_luby,
)
from repro.logic import BooleanQuery, parse_formula
from repro.logic.lineage import Lineage
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


class TestDNFConversion:
    def test_disjunction_of_atoms(self):
        expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
        terms = lineage_to_dnf(expr)
        assert len(terms) == 2
        assert all(len(t.positive) == 1 and not t.negative for t in terms)

    def test_negative_literals(self):
        expr = Lineage.conj(
            [Lineage.var(R(1)), Lineage.negation(Lineage.var(R(2)))])
        terms = lineage_to_dnf(expr)
        assert len(terms) == 1
        assert terms[0].positive == frozenset({R(1)})
        assert terms[0].negative == frozenset({R(2)})

    def test_contradictory_terms_dropped(self):
        x = Lineage.var(R(1))
        expr = Lineage.conj([x, Lineage.negation(x)])
        assert lineage_to_dnf(expr) == []

    def test_de_morgan_push(self):
        expr = Lineage.negation(
            Lineage.conj([Lineage.var(R(1)), Lineage.var(R(2))]))
        terms = lineage_to_dnf(expr)
        # ¬(a ∧ b) = ¬a ∨ ¬b: two negative singleton terms.
        assert len(terms) == 2
        assert all(t.negative and not t.positive for t in terms)

    def test_constants(self):
        assert lineage_to_dnf(Lineage.false()) == []
        terms = lineage_to_dnf(Lineage.true())
        assert len(terms) == 1 and not terms[0].positive


class TestTermProbability:
    def test_term_probability_product(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.4})
        term = DNFTerm(frozenset({R(1)}), frozenset({R(2)}))
        assert term.probability(table.marginal) == pytest.approx(0.3)

    def test_satisfied_by(self):
        term = DNFTerm(frozenset({R(1)}), frozenset({R(2)}))
        assert term.satisfied_by({R(1)})
        assert not term.satisfied_by({R(1), R(2)})
        assert not term.satisfied_by(set())


class TestEstimator:
    def test_agrees_with_exact(self):
        table = TupleIndependentTable(schema, {
            R(1): 0.5, R(2): 0.3, S(1, 2): 0.7, T(2): 0.6,
        })
        query = BooleanQuery(parse_formula(
            "(EXISTS x. R(x)) OR (EXISTS x, y. S(x, y) AND T(y))",
            schema), schema)
        truth = query_probability(query, table)
        estimate = query_probability_karp_luby(
            query, table, 6000, random.Random(2))
        assert estimate.estimate == pytest.approx(truth, abs=0.03)

    def test_small_probability_query(self):
        """The Karp–Luby selling point: relative accuracy when P(Q) is
        small (naive MC would see ~0 positives)."""
        table = TupleIndependentTable(schema, {
            R(i): 0.001 for i in range(1, 21)
        })
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        truth = query_probability(query, table)   # ≈ 0.0198
        estimate = query_probability_karp_luby(
            query, table, 4000, random.Random(3))
        assert estimate.estimate == pytest.approx(truth, rel=0.15)

    def test_unsatisfiable_query(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        query = BooleanQuery(
            parse_formula("R(1) AND NOT R(1)", schema), schema)
        estimate = query_probability_karp_luby(
            query, table, 100, random.Random(4))
        assert estimate.estimate == 0.0

    def test_term_mass_is_union_bound(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.5})
        terms = [DNFTerm(frozenset({R(1)}), frozenset()),
                 DNFTerm(frozenset({R(2)}), frozenset())]
        estimate = karp_luby_probability(terms, table, 500, random.Random(5))
        assert estimate.term_mass == pytest.approx(1.0)
        assert estimate.estimate <= estimate.term_mass

    def test_invalid_samples(self):
        from repro.errors import EvaluationError

        table = TupleIndependentTable(schema, {R(1): 0.5})
        with pytest.raises(EvaluationError):
            karp_luby_probability([], table, 0, random.Random(0))

"""Tests for ranked world enumeration."""

import itertools
import random

import pytest

from repro.errors import ProbabilityError
from repro.finite.topk import (
    iter_worlds_by_probability,
    most_probable_world,
    top_k_worlds,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational import Instance, Schema

schema = Schema.of(R=1)
R = schema["R"]


class TestMode:
    def test_majority_choice(self):
        table = TupleIndependentTable(schema, {R(1): 0.9, R(2): 0.2, R(3): 0.6})
        world, probability = most_probable_world(table)
        assert world == Instance([R(1), R(3)])
        assert probability == pytest.approx(0.9 * 0.8 * 0.6)

    def test_empty_table(self):
        table = TupleIndependentTable(schema, {})
        world, probability = most_probable_world(table)
        assert world == Instance() and probability == 1.0


class TestRankedEnumeration:
    def test_order_is_non_increasing(self):
        rng = random.Random(5)
        table = TupleIndependentTable(
            schema, {R(i): rng.uniform(0.05, 0.95) for i in range(1, 9)})
        probabilities = [
            p for _, p in iter_worlds_by_probability(table)]
        assert len(probabilities) == 2**8
        for a, b in zip(probabilities, probabilities[1:]):
            assert a >= b - 1e-12

    def test_complete_and_exact(self):
        table = TupleIndependentTable(
            schema, {R(1): 0.7, R(2): 0.4, R(3): 0.55})
        worlds = list(iter_worlds_by_probability(table))
        assert len(worlds) == 8
        assert len({w for w, _ in worlds}) == 8
        assert sum(p for _, p in worlds) == pytest.approx(1.0)
        for world, probability in worlds:
            assert probability == pytest.approx(
                table.instance_probability(world), abs=1e-12)

    def test_top_k_prefix_of_full_ranking(self):
        rng = random.Random(6)
        table = TupleIndependentTable(
            schema, {R(i): rng.uniform(0.05, 0.95) for i in range(1, 7)})
        full = list(iter_worlds_by_probability(table))
        top = top_k_worlds(table, 5)
        assert [p for _, p in top] == [p for _, p in full[:5]]

    def test_k_larger_than_world_count(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        assert len(top_k_worlds(table, 10)) == 2

    def test_invalid_k(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        with pytest.raises(ProbabilityError):
            top_k_worlds(table, 0)

    def test_certain_fact_handled(self):
        table = TupleIndependentTable(schema, {R(1): 1.0, R(2): 0.5})
        worlds = top_k_worlds(table, 4)
        # Worlds without R(1) have probability 0 and rank last.
        assert all(R(1) in w for w, p in worlds if p > 0)
        assert worlds[0][1] == pytest.approx(0.5)

    def test_matches_brute_force_sorting(self):
        rng = random.Random(7)
        table = TupleIndependentTable(
            schema, {R(i): rng.uniform(0.1, 0.9) for i in range(1, 7)})
        facts = table.facts()
        brute = sorted(
            (
                table.instance_probability(Instance(combo))
                for size in range(len(facts) + 1)
                for combo in itertools.combinations(facts, size)
            ),
            reverse=True,
        )
        ranked = [p for _, p in iter_worlds_by_probability(table)]
        for expected, actual in zip(brute, ranked):
            assert actual == pytest.approx(expected, abs=1e-12)

"""Tests for the compiled-lineage cache: key semantics, manager sharing
and extension across truncations, LRU bounds, the BID diagram scorer,
and the shared answer-fan-out grounding."""

import pytest

from repro.finite import (
    Block,
    BlockIndependentTable,
    CompileCache,
    SharedGrounding,
    TupleIndependentTable,
    bid_bdd_probability,
    query_probability,
    query_probability_by_bdd_cached,
)
from repro.errors import EvaluationError
from repro.finite.compile_cache import DEFAULT_COMPILE_CACHE
from repro.finite.pdb import FinitePDB
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def h0():
    return BooleanQuery(
        parse_formula("EXISTS x, y. R(x) AND S(x, y) AND T(y)", schema),
        schema)


def table(n=3):
    marginals = {R(i): 0.5 for i in range(1, n + 1)}
    marginals.update({
        S(i, j): 0.25 for i in range(1, n + 1) for j in range(1, n + 1)})
    marginals.update({T(j): 0.5 for j in range(1, n + 1)})
    return TupleIndependentTable(schema, marginals)


class TestCacheKeying:
    def test_hit_on_repeat(self):
        cache = CompileCache()
        full = table()
        facts = frozenset(full.marginals)
        first = cache.compiled(h0().formula, facts)
        second = cache.compiled(h0().formula, facts)
        assert first.manager is second.manager
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_distinct_fact_sets_are_distinct_entries(self):
        cache = CompileCache()
        full = table()
        cache.compiled(h0().formula, frozenset(full.top(4).marginals))
        cache.compiled(h0().formula, frozenset(full.top(8).marginals))
        assert cache.stats.misses == 2
        assert len(cache) == 2

    def test_same_query_shares_one_manager(self):
        """Growing truncations extend one manager instead of recompiling
        into a fresh one — the node store carries over."""
        cache = CompileCache()
        full = table()
        small = cache.compiled(h0().formula, frozenset(full.top(5).marginals))
        large = cache.compiled(h0().formula, frozenset(full.marginals))
        assert small.manager is large.manager
        assert cache.stats.extensions == 1
        # The extended order keeps the original prefix intact.
        order = large.manager.order
        assert len(order) == len(set(order))

    def test_lru_eviction_bounds_memory(self):
        cache = CompileCache(max_queries=2)
        full = table()
        facts = frozenset(full.marginals)
        formulas = [
            parse_formula(text, schema)
            for text in ("EXISTS x. R(x)", "EXISTS x. T(x)",
                         "EXISTS x, y. S(x, y)")
        ]
        for formula in formulas:
            cache.compiled(formula, facts)
        assert len(cache._families) == 2  # oldest family evicted


class TestCacheCorrectness:
    def test_reused_diagram_matches_cold_compiles(self):
        """The acceptance-criteria test: the same cached/extended diagram
        evaluated at two truncation sizes gives exactly the answers two
        cold compiles give."""
        warm = CompileCache()
        full = table()
        query = h0()
        truncations = [full.top(6), full]
        warm_values = [
            query_probability_by_bdd_cached(query, t, warm)
            for t in truncations
        ]
        # Re-score through the cache a second time: pure hits.
        rescored = [
            query_probability_by_bdd_cached(query, t, warm)
            for t in truncations
        ]
        cold_values = [
            query_probability_by_bdd_cached(query, t, CompileCache())
            for t in truncations
        ]
        assert warm_values == cold_values == rescored
        assert warm.stats.hits == 2 and warm.stats.misses == 2

    def test_rescoring_under_new_marginals_reuses_diagram(self):
        """Same facts, different marginals: one compilation, two scores."""
        cache = CompileCache()
        query = h0()
        base = table()
        doubled = TupleIndependentTable(
            schema, {f: p / 2 for f, p in base.marginals.items()})
        assert set(base.marginals) == set(doubled.marginals)
        p1 = query_probability_by_bdd_cached(query, base, cache)
        p2 = query_probability_by_bdd_cached(query, doubled, cache)
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        assert p1 != p2  # genuinely re-scored
        assert p2 == query_probability(query, doubled, strategy="lineage")

    def test_clear_resets(self):
        cache = CompileCache()
        query_probability_by_bdd_cached(h0(), table(), cache)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.stats.misses == 0

    def test_default_cache_is_used_by_dispatcher(self):
        hits_before = DEFAULT_COMPILE_CACHE.stats.hits
        misses_before = DEFAULT_COMPILE_CACHE.stats.misses
        full = table()
        query_probability(h0(), full, strategy="bdd")
        query_probability(h0(), full, strategy="bdd")
        gained = (DEFAULT_COMPILE_CACHE.stats.hits - hits_before) + (
            DEFAULT_COMPILE_CACHE.stats.misses - misses_before)
        assert gained == 2
        assert DEFAULT_COMPILE_CACHE.stats.hits - hits_before >= 1


class TestBIDScoring:
    def bid(self):
        return BlockIndependentTable(schema, [
            Block("a", {R(1): 0.5, R(2): 0.25}),
            Block("b", {T(1): 0.5}),
            Block("c", {S(1, 1): 0.5, S(2, 1): 0.25}),
        ])

    def test_bid_bdd_matches_lineage(self):
        cache = CompileCache()
        query = h0()
        value = query_probability_by_bdd_cached(query, self.bid(), cache)
        assert value == query_probability(
            query, self.bid(), strategy="lineage")

    def test_bid_scorer_direct(self):
        cache = CompileCache()
        pdb = self.bid()
        compiled = cache.compiled(h0().formula, frozenset(pdb.facts()))
        assert bid_bdd_probability(
            compiled.manager, compiled.root, pdb
        ) == query_probability(h0(), pdb, strategy="worlds")

    def test_finite_pdb_rejected(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 0.5, Instance(): 0.5})
        with pytest.raises(EvaluationError):
            query_probability_by_bdd_cached(h0(), pdb)


class TestSharedGrounding:
    def test_matches_per_answer_grounding(self):
        from repro.logic.normalform import substitute
        from repro.logic.queries import Query

        full = table()
        query = Query(
            parse_formula("EXISTS y. R(x) AND S(x, y) AND T(y)", schema),
            schema)
        shared = SharedGrounding(
            query.formula, full,
            {v for f in full.facts() for v in f.args})
        for i in range(1, 4):
            answer = (i,)
            grounded = substitute(
                query.formula, dict(zip(query.variables, answer)))
            expected = query_probability(
                BooleanQuery(grounded, schema), full, strategy="lineage")
            got = shared.answer_probability(query.variables, answer)
            assert got == pytest.approx(expected, abs=1e-12)
        # One manager served every answer.
        assert shared.manager.size() > 0

    def test_rejects_finite_pdb(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 1.0})
        with pytest.raises(EvaluationError):
            SharedGrounding(h0().formula, pdb, set())

"""Tests for the auto-dispatch logic of query_probability: safe queries
go lifted, unsafe TI queries fall back to lineage, BID tables use the
block-aware expansion, explicit PDBs enumerate worlds — and all agree."""

import pytest

from repro.finite import (
    Block,
    BlockIndependentTable,
    FinitePDB,
    TupleIndependentTable,
    query_probability,
)
from repro.finite.evaluation import query_probability_by_worlds
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


class TestDispatch:
    def test_safe_query_on_large_ti_table(self):
        """A safe query over 60 facts must go through the lifted path —
        lineage would work too, but worlds would be impossible; success
        itself demonstrates the dispatch."""
        marginals = {}
        for i in range(1, 21):
            marginals[R(i)] = 0.05
            marginals[S(i, i)] = 0.1
            marginals[T(i)] = 0.2
        table = TupleIndependentTable(schema, marginals)
        value = query_probability(q("EXISTS x, y. R(x) AND S(x, y)"), table)
        expected = 1 - (1 - 0.005) ** 20
        assert value == pytest.approx(expected, abs=1e-10)

    def test_unsafe_query_falls_back_to_lineage(self):
        """H0 has no safe plan; auto must still return the exact value."""
        table = TupleIndependentTable(schema, {
            R(1): 0.5, S(1, 2): 0.6, T(2): 0.7, R(2): 0.2, S(2, 2): 0.4,
        })
        query = q("EXISTS x, y. R(x) AND S(x, y) AND T(y)")
        assert query_probability(query, table) == pytest.approx(
            query_probability_by_worlds(query, table), abs=1e-10)

    def test_bid_auto(self):
        bid = BlockIndependentTable(schema, [
            Block("a", {R(1): 0.5, R(2): 0.5}),
            Block("b", {T(1): 0.4}),
        ])
        assert query_probability(q("EXISTS x. R(x)"), bid) == pytest.approx(1.0)
        assert query_probability(q("R(1) AND T(1)"), bid) == pytest.approx(0.2)

    def test_explicit_pdb_auto(self):
        pdb = FinitePDB(schema, {
            Instance([R(1), T(1)]): 0.5,   # correlated
            Instance(): 0.5,
        })
        # Correlation must be respected (lineage independence would say
        # 0.25; world enumeration gives the truth, 0.5).
        assert query_probability(q("R(1) AND T(1)"), pdb) == pytest.approx(0.5)

    def test_nullary_relation_query(self):
        zero_schema = Schema.of(P=0, R=1)
        P = zero_schema["P"]
        table = TupleIndependentTable(zero_schema, {P(): 0.3})
        query = BooleanQuery(parse_formula("P()", zero_schema), zero_schema)
        assert query_probability(query, table) == pytest.approx(0.3)

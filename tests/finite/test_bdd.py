"""Tests for the ROBDD compiler and weighted model counting."""

import itertools

import pytest

from repro.errors import EvaluationError
from repro.finite.bdd import (
    BDDManager,
    ONE,
    ZERO,
    compile_lineage,
    query_probability_by_bdd,
)
from repro.finite.lineage_eval import lineage_probability
from repro.finite.tuple_independent import TupleIndependentTable
from repro.finite.evaluation import query_probability_by_worlds
from repro.logic import BooleanQuery, parse_formula
from repro.logic.lineage import Lineage, lineage_of
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


class TestManagerBasics:
    def test_variable_node(self):
        manager = BDDManager([R(1)])
        node = manager.variable(R(1))
        assert node.low == ZERO and node.high == ONE

    def test_hash_consing(self):
        manager = BDDManager([R(1), R(2)])
        a = manager.variable(R(1))
        b = manager.variable(R(1))
        assert a is b

    def test_redundant_test_eliminated(self):
        manager = BDDManager([R(1)])
        assert manager.make(R(1), ONE, ONE) == ONE

    def test_unknown_variable_rejected(self):
        manager = BDDManager([R(1)])
        with pytest.raises(EvaluationError):
            manager.variable(R(9))

    def test_duplicate_order_rejected(self):
        with pytest.raises(EvaluationError):
            BDDManager([R(1), R(1)])


class TestBooleanOperations:
    def setup_method(self):
        self.manager = BDDManager([R(1), R(2), R(3)])
        self.a = self.manager.variable(R(1))
        self.b = self.manager.variable(R(2))

    def test_conjoin_disjoin_terminals(self):
        m = self.manager
        assert m.conjoin(self.a, ZERO) == ZERO
        assert m.conjoin(self.a, ONE) is self.a
        assert m.disjoin(self.a, ONE) == ONE
        assert m.disjoin(self.a, ZERO) is self.a

    def test_negation_involutive(self):
        m = self.manager
        assert m.negate(m.negate(self.a)) is self.a

    def test_excluded_middle(self):
        m = self.manager
        assert m.disjoin(self.a, m.negate(self.a)) == ONE
        assert m.conjoin(self.a, m.negate(self.a)) == ZERO

    def test_truth_table_via_evaluate(self):
        m = self.manager
        xor = m.disjoin(
            m.conjoin(self.a, m.negate(self.b)),
            m.conjoin(m.negate(self.a), self.b),
        )
        assert m.evaluate(xor, {R(1)})
        assert m.evaluate(xor, {R(2)})
        assert not m.evaluate(xor, {R(1), R(2)})
        assert not m.evaluate(xor, set())

    def test_restrict(self):
        m = self.manager
        conj = m.conjoin(self.a, self.b)
        assert m.restrict(conj, R(1), True) is self.b
        assert m.restrict(conj, R(1), False) == ZERO


class TestProbability:
    def test_simple_disjunction(self):
        manager = BDDManager([R(1), R(2)])
        node = manager.disjoin(manager.variable(R(1)), manager.variable(R(2)))
        assert manager.probability(node, lambda f: 0.5) == pytest.approx(0.75)

    def test_agrees_with_shannon_on_random_lineages(self):
        facts = [R(1), R(2), S(1, 2), T(1)]
        marginals = {R(1): 0.3, R(2): 0.6, S(1, 2): 0.8, T(1): 0.4}
        expressions = [
            Lineage.disj([Lineage.var(R(1)),
                          Lineage.conj([Lineage.var(S(1, 2)),
                                        Lineage.var(T(1))])]),
            Lineage.conj([Lineage.negation(Lineage.var(R(1))),
                          Lineage.disj([Lineage.var(R(2)),
                                        Lineage.var(T(1))])]),
            Lineage.negation(Lineage.disj(
                [Lineage.var(f) for f in facts])),
        ]
        for expr in expressions:
            manager, root = compile_lineage(expr)
            assert manager.probability(
                root, lambda f: marginals[f]) == pytest.approx(
                lineage_probability(expr, lambda f: marginals[f]), abs=1e-12)

    def test_query_probability_matches_worlds(self):
        table = TupleIndependentTable(schema, {
            R(1): 0.5, R(2): 0.3, S(1, 2): 0.7, T(2): 0.6,
        })
        for text in [
            "EXISTS x. R(x)",
            "EXISTS x, y. R(x) AND S(x, y) AND T(y)",
            "FORALL x. R(x) -> T(x)",
        ]:
            query = BooleanQuery(parse_formula(text, schema), schema)
            assert query_probability_by_bdd(query, table) == pytest.approx(
                query_probability_by_worlds(query, table), abs=1e-10)


class TestCompilation:
    def test_constants(self):
        _, root = compile_lineage(Lineage.true())
        assert root == ONE
        _, root = compile_lineage(Lineage.false())
        assert root == ZERO

    def test_contradiction_collapses(self):
        x = Lineage.var(R(1))
        _, root = compile_lineage(Lineage.conj([x, Lineage.negation(x)]))
        assert root == ZERO

    def test_order_affects_size_not_value(self):
        """Different variable orders give different diagram sizes but the
        same probability — the classic BDD lesson."""
        facts = [R(1), R(2), R(3), T(1), T(2), T(3)]
        # Interleaved "multiplexer"-ish function: (R1∧T1)∨(R2∧T2)∨(R3∧T3)
        expr = Lineage.disj([
            Lineage.conj([Lineage.var(R(i)), Lineage.var(T(i))])
            for i in (1, 2, 3)
        ])
        good_order = [R(1), T(1), R(2), T(2), R(3), T(3)]
        bad_order = [R(1), R(2), R(3), T(1), T(2), T(3)]
        m1, root1 = compile_lineage(expr, order=good_order)
        m2, root2 = compile_lineage(expr, order=bad_order)
        assert m1.count_nodes(root1) < m2.count_nodes(root2)
        assert m1.probability(root1, lambda f: 0.5) == pytest.approx(
            m2.probability(root2, lambda f: 0.5))

    def test_satisfying_worlds(self):
        expr = Lineage.conj([Lineage.var(R(1)),
                             Lineage.negation(Lineage.var(R(2)))])
        manager, root = compile_lineage(expr)
        worlds = list(manager.satisfying_worlds(root))
        assert worlds == [frozenset({R(1)})]

    def test_world_count_matches_truth_table(self):
        expr = Lineage.disj([Lineage.var(R(1)), Lineage.var(R(2))])
        manager, root = compile_lineage(expr)
        worlds = set(manager.satisfying_worlds(root))
        brute = {
            frozenset(w)
            for size in range(3)
            for w in itertools.combinations([R(1), R(2)], size)
            if w  # at least one present
        }
        assert worlds == brute

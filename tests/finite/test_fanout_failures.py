"""Failure injection for the ``workers=`` answer-marginal fan-out:
worker exceptions must surface with the original traceback, and
unpicklable payloads must degrade to the serial path (with a trace
event) instead of dying inside the pool."""

import pytest

from repro.errors import UnsafeQueryError
from repro.finite.evaluation import (
    ShardError,
    _pool_pickle_error,
    marginal_answer_probabilities,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.parser import parse_formula
from repro.logic.queries import Query
from repro.relational import Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


def _table():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.25, S(1, 2): 0.8, S(2, 1): 0.4})


def _r_query():
    return Query(parse_formula("R(x)", schema), schema)


def test_pooled_fanout_matches_serial():
    query, table = _r_query(), _table()
    serial = marginal_answer_probabilities(query, table)
    pooled = marginal_answer_probabilities(query, table, workers=2)
    assert dict(pooled) == dict(serial)
    assert list(pooled) == list(serial)  # same enumeration order
    events = {e["name"] for e in pooled.report.events}
    assert "fanout.pool" in events
    assert "fanout.serial_fallback" not in events


def test_shard_exception_propagates_with_remote_traceback():
    # An unsafe self-join under forced "lifted" raises UnsafeQueryError
    # inside the worker; the parent must re-raise the *original*
    # exception type with the worker-side traceback attached as a
    # ShardError cause.
    query = Query(
        parse_formula("EXISTS y, z. R(y) AND S(y, z) AND S(x, z)", schema),
        schema)
    with pytest.raises(UnsafeQueryError) as excinfo:
        marginal_answer_probabilities(
            query, _table(), strategy="lifted", workers=2)
    cause = excinfo.value.__cause__
    if isinstance(excinfo.value, ShardError):
        # The re-raised exception may itself be the shard wrapper only
        # if the original was a ShardError — it is not here.
        pytest.fail("original exception type was replaced")
    assert isinstance(cause, ShardError)
    assert "original traceback" in str(cause)
    assert "UnsafeQueryError" in str(cause)  # the remote format_exc text


def test_unpicklable_payload_degrades_to_serial_with_event():
    table = _table()
    table.not_picklable = lambda: None  # closures cannot cross the pool
    query = _r_query()
    assert _pool_pickle_error((table,)) is not None
    answers = marginal_answer_probabilities(query, table, workers=2)
    assert dict(answers) == dict(marginal_answer_probabilities(query, _table()))
    events = {e["name"]: e for e in answers.report.events}
    assert "fanout.serial_fallback" in events
    assert events["fanout.serial_fallback"]["workers"] == 2
    assert events["fanout.serial_fallback"]["reason"]
    assert "fanout.pool" not in events


def test_pool_pickle_error_passes_clean_payloads():
    assert _pool_pickle_error((_table(), [R(1)], 0, 2, "auto")) is None


def test_fanout_does_not_ship_columnar_arrays():
    """A table with a warm columnar mirror fans out without shipping it
    (the pickled state carries ``_columns=None``), and the pooled
    answers still match the serial path bit-for-bit."""
    import pickle

    query, table = _r_query(), _table()
    table.columns  # warm the columnar mirror before the fan-out
    state = pickle.loads(pickle.dumps(table)).__dict__
    assert state["_columns"] is None
    serial = marginal_answer_probabilities(query, _table())
    pooled = marginal_answer_probabilities(query, table, workers=2)
    assert dict(pooled) == dict(serial)
    events = {e["name"] for e in pooled.report.events}
    assert "fanout.pool" in events
    # The parent-side mirror survives the round-trip untouched.
    assert table._columns is not None
    assert table.expected_size() == _table().expected_size()

"""Fault injection for the persistent shard pool: crashed workers are
respawned and their shards rescheduled (bit-identical results), per-shard
timeouts raise :class:`ShardError`, unpicklable payloads raise
:class:`PoolUnavailableError`, and the process-wide registry reuses warm
pools."""

import os
import signal
import time

import pytest

from repro import obs
from repro.parallel.pool import (
    MAX_SHARD_CRASHES,
    POOL_REUSE_COUNTER,
    WORKER_RESTARTS,
    PoolUnavailableError,
    ShardError,
    ShardPool,
    get_shared_pool,
    shutdown_shared_pools,
)


@pytest.fixture
def pool():
    p = ShardPool(2)
    yield p
    p.close()


# Task functions must be module-level (they cross the process boundary).
def _double(x):
    return 2 * x


def _sleep(seconds):
    time.sleep(seconds)
    return seconds


def _boom():
    raise ValueError("boom in worker")


def _crash_once(marker, x):
    """Kill the worker outright on the first attempt; succeed on retry."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os._exit(1)
    return 2 * x


def _crash_always():
    os._exit(1)


def _pid():
    return os.getpid()


# ------------------------------------------------------------------ basics
def test_map_shards_preserves_task_order(pool):
    tasks = ((_double, (i,)) for i in range(7))  # a lazy generator
    assert pool.map_shards(tasks) == [0, 2, 4, 6, 8, 10, 12]


def test_tasks_actually_run_out_of_process(pool):
    pids = set(pool.map_shards([(_pid, ())] * 4))
    assert pids  # at least one worker ran something
    assert os.getpid() not in pids
    assert pids <= set(pool.worker_pids())


def test_run_on_targets_one_worker(pool):
    assert pool.run_on(1, _double, 21) == 42


def test_worker_exception_reraises_with_remote_traceback(pool):
    with pytest.raises(ValueError) as excinfo:
        pool.map_shards([(_double, (1,)), (_boom, ())])
    cause = excinfo.value.__cause__
    assert isinstance(cause, ShardError)
    assert "original traceback" in str(cause)
    assert "ValueError" in str(cause)
    # The pool survives the failed call.
    assert pool.map_shards([(_double, (5,))]) == [10]


def test_unpicklable_task_raises_pool_unavailable(pool):
    with pytest.raises(PoolUnavailableError):
        pool.map_shards([(_double, (lambda: None,))])


def test_closed_pool_refuses_work(pool):
    pool.close()
    with pytest.raises(PoolUnavailableError):
        pool.map_shards([(_double, (1,))])


# ----------------------------------------------------------------- crashes
def test_crashed_worker_is_respawned_and_shard_rescheduled(pool, tmp_path):
    marker = str(tmp_path / "crashed-once")
    tasks = [(_double, (1,)), (_crash_once, (marker, 5)), (_double, (3,))]
    epochs = [pool.worker_epoch(slot) for slot in range(pool.workers)]
    with obs.trace() as t:
        results = pool.map_shards(tasks)
    assert results == [2, 10, 6]  # bit-identical despite the crash
    assert t.counters.get(WORKER_RESTARTS) == 1
    restarts = [e for e in t.events if e.name == "fanout.worker_restart"]
    assert len(restarts) == 1
    # Exactly one slot's epoch moved — shipped state there is now stale.
    bumped = [
        slot for slot in range(pool.workers)
        if pool.worker_epoch(slot) != epochs[slot]
    ]
    assert len(bumped) == 1


def test_worker_killed_between_calls_recovers(pool):
    assert pool.map_shards([(_double, (i,)) for i in range(4)]) == [0, 2, 4, 6]
    os.kill(pool.worker_pids()[0], signal.SIGKILL)
    with obs.trace() as t:
        results = pool.map_shards([(_double, (i,)) for i in range(4)])
    assert results == [0, 2, 4, 6]
    assert t.counters.get(WORKER_RESTARTS, 0) >= 1


def test_shard_that_always_crashes_is_abandoned(pool):
    with obs.trace() as t, pytest.raises(ShardError) as excinfo:
        pool.map_shards([(_crash_always, ())])
    assert "giving up" in str(excinfo.value)
    assert t.counters.get(WORKER_RESTARTS) == MAX_SHARD_CRASHES
    # The pool is clean afterwards.
    assert pool.map_shards([(_double, (4,))]) == [8]


# ---------------------------------------------------------------- timeouts
def test_per_shard_timeout_raises_shard_error(pool):
    with pytest.raises(ShardError) as excinfo:
        pool.map_shards([(_sleep, (30.0,))], timeout=0.3)
    assert "timed out" in str(excinfo.value)
    # The stuck worker was killed and respawned; the pool still works.
    assert pool.map_shards([(_double, (2,)), (_double, (3,))]) == [4, 6]


def test_run_on_timeout(pool):
    with pytest.raises(ShardError, match="timed out"):
        pool.run_on(0, _sleep, 30.0, timeout=0.3)
    assert pool.run_on(0, _double, 8) == 16


# ------------------------------------------------------------- shared pools
def test_get_shared_pool_reuses_warm_pool():
    shutdown_shared_pools()
    try:
        with obs.trace() as t:
            first = get_shared_pool(2)
            second = get_shared_pool(2)
        assert first is second
        assert not first.closed
        assert t.counters.get(POOL_REUSE_COUNTER) == 1
    finally:
        shutdown_shared_pools()


def test_shared_pool_recreated_after_shutdown():
    pool = get_shared_pool(2)
    shutdown_shared_pools()
    assert pool.closed
    try:
        fresh = get_shared_pool(2)
        assert fresh is not pool
        assert not fresh.closed
    finally:
        shutdown_shared_pools()

"""Chunk schedulers: adaptive chunks tile the answer space exactly,
sizes track observed latency, and the static baseline reproduces the
legacy one-strided-shard-per-worker split."""

from repro.parallel.schedule import (
    TARGET_CHUNK_SECONDS,
    ChunkScheduler,
    StaticStrideScheduler,
)


def _materialize(scheduler):
    return list(scheduler.chunks())


def test_chunks_tile_the_range_exactly_once():
    scheduler = ChunkScheduler(total=101, workers=4)
    chunks = _materialize(scheduler)
    covered = []
    for start, stop, step in chunks:
        assert step == 1
        assert stop > start
        covered.extend(range(start, stop))
    assert covered == list(range(101))
    assert scheduler.issued == len(chunks)


def test_initial_chunks_oversubscribe_the_workers():
    scheduler = ChunkScheduler(total=160, workers=4, oversubscribe=4)
    assert scheduler.initial == 10  # total / (workers * oversubscribe)
    first = next(scheduler.chunks())
    assert first == (0, 10, 1)


def test_tiny_totals_still_yield_whole_chunks():
    assert _materialize(ChunkScheduler(total=3, workers=4)) == [
        (0, 1, 1), (1, 2, 1), (2, 3, 1)]
    assert _materialize(ChunkScheduler(total=0, workers=4)) == []


def test_observed_rate_scales_chunk_size():
    fast = ChunkScheduler(total=10_000, workers=2)
    gen = iter(fast.chunks())
    chunk = next(gen)
    # 1000 answers/second observed -> next chunk targets rate * target
    fast.observe(chunk, (chunk[1] - chunk[0]) / 1000.0)
    start, stop, _ = next(gen)
    assert stop - start == int(1000 * TARGET_CHUNK_SECONDS)

    slow = ChunkScheduler(total=10_000, workers=2)
    gen = iter(slow.chunks())
    chunk = next(gen)
    slow.observe(chunk, (chunk[1] - chunk[0]) / 10.0)  # 10 answers/second
    start, stop, _ = next(gen)
    assert stop - start == max(1, int(10 * TARGET_CHUNK_SECONDS))


def test_tail_is_split_across_workers():
    # A very fast observed rate must not let one chunk swallow the tail:
    # the cap is ceil(remaining / workers).
    scheduler = ChunkScheduler(total=100, workers=4)
    gen = iter(scheduler.chunks())
    chunk = next(gen)
    scheduler.observe(chunk, 1e-9)  # absurdly fast -> huge target size
    start, stop, _ = next(gen)
    remaining = 100 - start
    assert stop - start == -(-remaining // 4)


def test_static_scheduler_reproduces_legacy_strides():
    chunks = _materialize(StaticStrideScheduler(total=10, workers=4))
    assert chunks == [(0, None, 4), (1, None, 4), (2, None, 4), (3, None, 4)]
    indices = sorted(
        i for offset, _, stride in chunks for i in range(offset, 10, stride))
    assert indices == list(range(10))


def test_static_scheduler_caps_shards_at_total():
    assert _materialize(StaticStrideScheduler(total=2, workers=8)) == [
        (0, None, 2), (1, None, 2)]
    assert _materialize(StaticStrideScheduler(total=0, workers=8)) == []


def test_static_observe_is_a_noop():
    scheduler = StaticStrideScheduler(total=10, workers=2)
    scheduler.observe((0, None, 2), 1.0)  # must not raise

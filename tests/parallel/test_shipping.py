"""The shipping layer: pooled results are bit-identical to the serial
path, grown tables ship only their append-only delta, serialization (the
picklability probe included) happens exactly once per payload, and
pickle failures are cached per table identity."""

import pickle

import pytest

from repro import obs
from repro.finite import Block, BlockIndependentTable
from repro.finite.evaluation import marginal_answer_probabilities
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.parser import parse_formula
from repro.logic.queries import Query
from repro.parallel.pool import WORKER_RESTARTS, ShardPool
from repro.parallel.shipping import (
    SHIP_DELTA_BYTES,
    SHIP_FULL_BYTES,
    ShipError,
    pooled_answer_marginals,
    shipper_for,
)
from repro.relational import Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


@pytest.fixture
def pool():
    p = ShardPool(2)
    yield p
    p.close()


def _table():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.25, R(3): 0.75,
        S(1, 2): 0.8, S(2, 1): 0.4,
    })


def _query(text="R(x)"):
    return Query(parse_formula(text, schema), schema)


def _pooled(pool, query, table, **kwargs):
    from repro.finite.evaluation import _candidate_values

    candidates = _candidate_values(query, table, None)
    kwargs.setdefault("strategy", "auto")
    return pooled_answer_marginals(
        pool, query, table, candidates, **kwargs)


# ------------------------------------------------------------- bit-identity
@pytest.mark.parametrize("schedule", ["dynamic", "static"])
def test_pooled_matches_serial_order_included(pool, schedule):
    query, table = _query(), _table()
    serial = marginal_answer_probabilities(query, table)
    pooled = _pooled(pool, query, table, schedule=schedule)
    assert dict(pooled) == dict(serial)
    assert list(pooled) == list(serial)


def test_pooled_matches_serial_on_join_query(pool):
    query, table = _query("EXISTS y. R(x) AND S(x, y)"), _table()
    serial = marginal_answer_probabilities(query, table)
    pooled = _pooled(pool, query, table)
    assert dict(pooled) == dict(serial)
    assert list(pooled) == list(serial)


def test_pooled_matches_serial_on_bid_table(pool):
    table = BlockIndependentTable(schema, [
        Block("k1", {S(1, 1): 0.5, S(1, 2): 0.3}),
        Block("k2", {S(2, 1): 0.4}),
    ])
    query = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
    serial = marginal_answer_probabilities(query, table)
    pooled = _pooled(pool, query, table)
    assert dict(pooled) == dict(serial)
    assert list(pooled) == list(serial)


# ------------------------------------------------------------ delta shipping
def test_grown_table_ships_only_the_delta(pool):
    query, table = _query(), _table()
    with obs.trace() as cold:
        first = _pooled(pool, query, table)
    assert cold.counters.get(SHIP_FULL_BYTES, 0) > 0
    assert cold.counters.get(SHIP_DELTA_BYTES, 0) == 0

    table.extend({R(4): 0.1, R(5): 0.2})
    with obs.trace() as warm:
        second = _pooled(pool, query, table)
    assert warm.counters.get(SHIP_FULL_BYTES, 0) == 0
    delta_bytes = warm.counters.get(SHIP_DELTA_BYTES, 0)
    assert 0 < delta_bytes < len(pickle.dumps(table))
    # The delta-shipped workers agree with a from-scratch serial run.
    serial = marginal_answer_probabilities(query, table)
    assert dict(second) == dict(serial)
    assert list(second) == list(serial)
    assert set(first) < set(second)


def test_unchanged_table_ships_nothing(pool):
    query, table = _query(), _table()
    _pooled(pool, query, table)
    with obs.trace() as t:
        _pooled(pool, query, table)
    assert t.counters.get(SHIP_FULL_BYTES, 0) == 0
    assert t.counters.get(SHIP_DELTA_BYTES, 0) == 0


def test_respawned_worker_gets_a_full_reship(pool):
    import os
    import signal

    query, table = _query(), _table()
    _pooled(pool, query, table)
    os.kill(pool.worker_pids()[0], signal.SIGKILL)
    with obs.trace() as t:
        pooled = _pooled(pool, query, table)
    assert t.counters.get(WORKER_RESTARTS, 0) >= 1
    assert t.counters.get(SHIP_FULL_BYTES, 0) > 0  # epoch moved: re-ship
    serial = marginal_answer_probabilities(query, table)
    assert dict(pooled) == dict(serial)


def test_grown_bid_table_ships_block_delta(pool):
    # Enough blocks that the first call dispatches chunks to (and so
    # warms) every worker — otherwise the second call's first contact
    # with a cold worker is a legitimate full ship.
    table = BlockIndependentTable(schema, [
        Block(f"k{i}", {S(i, 1): 0.5, S(i, 2): 0.3}) for i in range(1, 7)
    ])
    query = Query(parse_formula("EXISTS y. S(x, y)", schema), schema)
    _pooled(pool, query, table)
    table.extend([Block("k9", {S(9, 1): 0.4})])
    with obs.trace() as t:
        pooled = _pooled(pool, query, table)
    assert t.counters.get(SHIP_FULL_BYTES, 0) == 0
    assert t.counters.get(SHIP_DELTA_BYTES, 0) > 0
    serial = marginal_answer_probabilities(query, table)
    assert dict(pooled) == dict(serial)


# ---------------------------------------------------- single serialization
class _CountingTable(TupleIndependentTable):
    """A TI table that counts how often it is pickled."""

    pickles = 0

    def __getstate__(self):
        type(self).pickles += 1
        return super().__getstate__()


def test_table_is_serialized_exactly_once_per_call(pool):
    _CountingTable.pickles = 0
    table = _CountingTable(schema, {
        R(i): 0.5 for i in range(1, 40)})
    query = _query()
    pooled = _pooled(pool, query, table)
    # Cold call: the probe and every worker's full ship share ONE pickle
    # (the old fan-out serialized the table once per probe plus once per
    # executor submission).
    assert _CountingTable.pickles == 1
    assert len(pooled) == 39


class _Bomb:
    attempts = 0

    def __reduce__(self):
        type(self).attempts += 1
        raise RuntimeError("deliberately unpicklable")


def test_pickle_failure_verdict_is_cached(pool):
    _Bomb.attempts = 0
    table = _table()
    table.bomb = _Bomb()  # rides along in the table's pickled state
    query = _query()
    with pytest.raises(ShipError, match="cannot be pickled"):
        _pooled(pool, query, table)
    assert _Bomb.attempts == 1
    with pytest.raises(ShipError, match="cannot be pickled"):
        _pooled(pool, query, table)
    assert _Bomb.attempts == 1  # cached verdict: no second probe


def test_unsupported_table_type_raises_ship_error(pool):
    with pytest.raises(ShipError, match="TI or BID"):
        pooled_answer_marginals(
            pool, _query(), object(), [], strategy="auto")


# ----------------------------------------------------------- shipper state
def test_shipper_is_per_pool(pool):
    other = ShardPool(2)
    try:
        assert shipper_for(pool) is shipper_for(pool)
        assert shipper_for(pool) is not shipper_for(other)
    finally:
        other.close()


def test_same_table_identity_keeps_its_key(pool):
    shipper = shipper_for(pool)
    table = _table()
    key1, _, _ = shipper.table_key(table)
    table.extend({R(9): 0.5})
    key2, _, count = shipper.table_key(table)
    assert key1 == key2
    assert count == len(table.marginals)
    other_key, _, _ = shipper.table_key(_table())
    assert other_key != key1

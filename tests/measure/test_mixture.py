"""Tests for measure mixtures — the Example 2.4 construction."""

import itertools

import pytest

from repro.errors import ProbabilityError
from repro.measure.space import DiscreteProbabilitySpace


class TestFiniteMixtures:
    def test_weighted_masses(self):
        left = DiscreteProbabilitySpace.from_dict({"a": 1.0})
        right = DiscreteProbabilitySpace.from_dict({"b": 0.5, "c": 0.5})
        mixed = DiscreteProbabilitySpace.mixture([(0.25, left), (0.75, right)])
        assert mixed.probability_of("a") == pytest.approx(0.25)
        assert mixed.probability_of("b") == pytest.approx(0.375)
        assert mixed.total_mass() == pytest.approx(1.0)

    def test_overlapping_supports_add(self):
        left = DiscreteProbabilitySpace.from_dict({"x": 1.0})
        right = DiscreteProbabilitySpace.from_dict({"x": 0.5, "y": 0.5})
        mixed = DiscreteProbabilitySpace.mixture([(0.5, left), (0.5, right)])
        assert mixed.probability_of("x") == pytest.approx(0.75)

    def test_weights_validated(self):
        space = DiscreteProbabilitySpace.from_dict({"a": 1.0})
        with pytest.raises(ProbabilityError):
            DiscreteProbabilitySpace.mixture([(0.5, space)])
        with pytest.raises(ProbabilityError):
            DiscreteProbabilitySpace.mixture(
                [(-0.5, space), (1.5, space)])


class TestExample24:
    """Example 2.4: U = Σ* ∪ ℝ with P = ½·P₁ + ½·P₂."""

    @staticmethod
    def word_distribution():
        """P₁({w}) = (6/π²)·(n+1)^{-2}·|Σ|^{-n} over Σ = {0, 1}.

        (The paper's normalization; the n-th length level gets total
        mass (6/π²)/(n+1)².)
        """
        import math

        def masses():
            from repro.utils.enumeration import kleene_star

            for word in kleene_star("01"):
                n = len(word)
                yield "".join(word), (6 / math.pi**2) / ((n + 1) ** 2 * 2**n)

        return DiscreteProbabilitySpace(
            masses, exhaustive=False,
            mass_tail=lambda k: 1.0,  # coarse; tests use small tolerances
        )

    @staticmethod
    def real_distribution():
        """A discretized standard normal (the library's substitution for
        N(0, 1); see DESIGN.md)."""
        import math

        grid = [round(-4 + 0.1 * i, 1) for i in range(81)]
        weights = [math.exp(-0.5 * x * x) for x in grid]
        total = sum(weights)
        return DiscreteProbabilitySpace.from_dict(
            {x: w / total for x, w in zip(grid, weights)})

    def test_mixture_is_a_probability_space(self):
        mixed = DiscreteProbabilitySpace.mixture([
            (0.5, self.word_distribution()),
            (0.5, self.real_distribution()),
        ])
        mass = sum(
            p.mass for p in itertools.islice(mixed.point_masses(), 5000))
        # The word half spreads each level's Θ(1/n²) mass over 2^n
        # words, so 5 000 points only reach length ~11; the un-seen
        # word tail is ≈ 0.5 · 0.6/11 ≈ 0.03.
        assert mass == pytest.approx(1.0, abs=0.05)

    def test_word_part_mass(self):
        """P(Σ*) = ½ — the word half of the universe."""
        mixed = DiscreteProbabilitySpace.mixture([
            (0.5, self.word_distribution()),
            (0.5, self.real_distribution()),
        ])
        word_mass = sum(
            p.mass
            for p in itertools.islice(mixed.point_masses(), 5000)
            if isinstance(p.outcome, str)
        )
        assert word_mass == pytest.approx(0.5, abs=0.05)

    def test_empty_word_probability(self):
        """P({ε}) = ½ · 6/π² (n = 0 level, single word)."""
        import math

        mixed = DiscreteProbabilitySpace.mixture([
            (0.5, self.word_distribution()),
            (0.5, self.real_distribution()),
        ])
        assert mixed.probability(
            lambda o: o == "", tolerance=0.05, max_outcomes=10**4
        ) == pytest.approx(0.5 * 6 / math.pi**2, abs=0.01)

"""Tests for random variables, expectation and moments (§3.2 machinery)."""

import itertools
import math

import pytest

from repro.errors import ProbabilityError
from repro.measure.random_variables import (
    RandomVariable,
    empirical_expectation,
    expectation,
    moment,
    variance,
)
from repro.measure.space import DiscreteProbabilitySpace

identity = RandomVariable(float, name="id")


class TestRandomVariable:
    def test_arithmetic(self):
        X = RandomVariable(lambda o: o + 1.0)
        Y = RandomVariable(lambda o: o * 2.0)
        assert (X + Y)(3) == 10.0
        assert (2 * X)(3) == 8.0

    def test_power(self):
        assert identity.power(3)(2) == 8.0

    def test_indicator(self):
        one = RandomVariable.indicator(lambda o: o > 0)
        assert one(1) == 1.0 and one(-1) == 0.0


class TestExpectation:
    def test_finite(self):
        space = DiscreteProbabilitySpace.from_dict({0: 0.5, 10: 0.5})
        assert expectation(space, identity) == 5.0

    def test_indicator_equals_probability(self):
        space = DiscreteProbabilitySpace.from_dict({1: 0.3, 2: 0.7})
        one = RandomVariable.indicator(lambda o: o == 2)
        assert expectation(space, one) == pytest.approx(0.7)

    def test_linearity(self):
        space = DiscreteProbabilitySpace.from_dict({1: 0.4, 3: 0.6})
        X = RandomVariable(lambda o: o * 1.0)
        Y = RandomVariable(lambda o: o * o * 1.0)
        assert expectation(space, X + Y) == pytest.approx(
            expectation(space, X) + expectation(space, Y))

    def test_infinite_space_geometric(self):
        def masses():
            for i in itertools.count(1):
                yield i, 2.0**-i

        space = DiscreteProbabilitySpace(
            masses, exhaustive=False, mass_tail=lambda n: 2.0**-n)
        # E[i] for geometric(1/2) starting at 1 is 2.
        assert expectation(space, identity, tolerance=1e-10) == pytest.approx(
            2.0, abs=1e-6)

    def test_divergent_expectation_grows_without_bound(self):
        """St. Petersburg-flavoured: value 2^i with mass 2^-i.

        Tail-truncated expectation of an unbounded RV is only a partial
        sum; divergence shows as the estimate growing without bound as
        the tolerance shrinks (each halving of the tolerance adds ≈ 1).
        """
        def make_space():
            def masses():
                for i in itertools.count(1):
                    yield 2**i, 2.0**-i

            return DiscreteProbabilitySpace(
                masses, exhaustive=False, mass_tail=lambda n: 2.0**-n)

        coarse = expectation(make_space(), identity, tolerance=1e-3)
        fine = expectation(make_space(), identity, tolerance=1e-12)
        assert fine > coarse + 20  # ≈ 30 extra doublings seen


class TestMoments:
    def test_second_moment(self):
        space = DiscreteProbabilitySpace.from_dict({1: 0.5, 3: 0.5})
        assert moment(space, identity, 2) == pytest.approx(5.0)

    def test_variance(self):
        space = DiscreteProbabilitySpace.from_dict({0: 0.5, 2: 0.5})
        assert variance(space, identity) == pytest.approx(1.0)


class TestEmpirical:
    def test_empirical_expectation(self):
        assert empirical_expectation([1, 2, 3], identity) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            empirical_expectation([], identity)

"""Tests for independence checking (Definition 4.1's finite engine)."""

from repro.measure.events import Event
from repro.measure.independence import (
    are_independent,
    are_pairwise_independent,
    independence_defect,
    mutually_exclusive,
)
from repro.measure.space import DiscreteProbabilitySpace


def product_space_two_coins():
    return DiscreteProbabilitySpace.from_dict({
        (0, 0): 0.25, (0, 1): 0.25, (1, 0): 0.25, (1, 1): 0.25,
    })


first = Event(lambda o: o[0] == 1, name="first")
second = Event(lambda o: o[1] == 1, name="second")


class TestIndependence:
    def test_product_coins_independent(self):
        space = product_space_two_coins()
        assert are_independent(space, [first, second])
        assert independence_defect(space, [first, second]) < 1e-12

    def test_event_dependent_on_itself(self):
        space = product_space_two_coins()
        assert not are_independent(space, [first, first])

    def test_correlated_events_detected(self):
        space = DiscreteProbabilitySpace.from_dict({
            (0, 0): 0.5, (1, 1): 0.5,
        })
        assert not are_independent(space, [first, second])
        assert independence_defect(space, [first, second]) > 0.2

    def test_pairwise_but_not_mutually_independent(self):
        """The classic XOR example: pairwise independence does not imply
        mutual independence — and our two checks tell them apart."""
        space = DiscreteProbabilitySpace.from_dict({
            (0, 0, 0): 0.25, (0, 1, 1): 0.25,
            (1, 0, 1): 0.25, (1, 1, 0): 0.25,
        })
        events = [Event(lambda o, i=i: o[i] == 1) for i in range(3)]
        assert are_pairwise_independent(space, events)
        assert not are_independent(space, events)

    def test_three_way_independence(self):
        space = DiscreteProbabilitySpace.from_dict({
            (a, b, c): 0.125
            for a in (0, 1) for b in (0, 1) for c in (0, 1)
        })
        events = [Event(lambda o, i=i: o[i] == 1) for i in range(3)]
        assert are_independent(space, events)


class TestMutualExclusion:
    def test_disjoint_outcomes(self):
        space = DiscreteProbabilitySpace.from_dict({"a": 0.5, "b": 0.5})
        events = [Event(lambda o: o == "a"), Event(lambda o: o == "b")]
        assert mutually_exclusive(space, events)

    def test_overlap_detected(self):
        space = DiscreteProbabilitySpace.from_dict({"a": 1.0})
        events = [Event(lambda o: True), Event(lambda o: o == "a")]
        assert not mutually_exclusive(space, events)

"""Tests for the event algebra."""

from repro.measure.events import Event


even = Event(lambda n: n % 2 == 0, name="even")
big = Event(lambda n: n > 10, name="big")


class TestAlgebra:
    def test_complement(self):
        assert (~even)(3) and not (~even)(4)

    def test_intersection(self):
        e = even & big
        assert e(12) and not e(4) and not e(13)

    def test_union(self):
        e = even | big
        assert e(4) and e(13) and not e(3)

    def test_difference(self):
        e = even - big
        assert e(4) and not e(12)

    def test_always_never(self):
        assert Event.always()(object()) and not Event.never()(object())

    def test_names_compose(self):
        assert "even" in (even & big).name


class TestCountableOperations:
    def test_union_of(self):
        events = [Event(lambda n, k=k: n == k) for k in range(5)]
        union = Event.union_of(events)
        assert union(3) and not union(7)

    def test_intersection_of(self):
        events = [Event(lambda n, k=k: n >= k) for k in range(5)]
        intersection = Event.intersection_of(events)
        assert intersection(4) and not intersection(3)

    def test_de_morgan(self):
        for n in range(20):
            lhs = (~(even | big))(n)
            rhs = ((~even) & (~big))(n)
            assert lhs == rhs

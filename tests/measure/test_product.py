"""Tests for product spaces — the Theorem 5.5 glue."""

import itertools

import pytest

from repro.measure.product import product_space
from repro.measure.space import DiscreteProbabilitySpace


def coin(p=0.5):
    return DiscreteProbabilitySpace.from_dict({"H": p, "T": 1 - p})


class TestFiniteProducts:
    def test_masses_multiply(self):
        two = product_space(coin(0.25), coin(0.5))
        assert two.probability_of(("H", "H")) == pytest.approx(0.125)
        assert two.probability_of(("T", "T")) == pytest.approx(0.375)

    def test_total_mass_one(self):
        two = product_space(coin(0.3), coin(0.9))
        assert two.total_mass() == pytest.approx(1.0)

    def test_custom_combine(self):
        left = DiscreteProbabilitySpace.from_dict({1: 0.5, 2: 0.5})
        right = DiscreteProbabilitySpace.from_dict({10: 1.0})
        summed = product_space(left, right, combine=lambda a, b: a + b)
        assert summed.probability_of(11) == pytest.approx(0.5)

    def test_marginals_preserved(self):
        two = product_space(coin(0.25), coin(0.5))
        left_heads = two.probability(lambda o: o[0] == "H")
        assert left_heads == pytest.approx(0.25)

    def test_independence_of_coordinates(self):
        two = product_space(coin(0.3), coin(0.8))
        joint = two.probability(lambda o: o == ("H", "H"))
        assert joint == pytest.approx(0.3 * 0.8)


class TestInfiniteProducts:
    @staticmethod
    def geometric():
        def masses():
            for i in itertools.count(1):
                yield i, 2.0**-i

        return DiscreteProbabilitySpace(
            masses, exhaustive=False, mass_tail=lambda n: 2.0**-n)

    def test_finite_times_infinite(self):
        product = product_space(coin(0.5), self.geometric())
        value = product.probability(
            lambda o: o[0] == "H" and o[1] == 1, tolerance=1e-8)
        assert value == pytest.approx(0.25, abs=1e-6)

    def test_infinite_times_infinite_enumerates_all_pairs(self):
        product = product_space(self.geometric(), self.geometric())
        value = product.probability(
            lambda o: o == (1, 1), tolerance=1e-7)
        assert value == pytest.approx(0.25, abs=1e-5)

"""Tests for discrete probability spaces."""

import itertools
import random

import pytest

from repro.errors import ProbabilityError
from repro.measure.space import DiscreteProbabilitySpace


class TestFiniteSpaces:
    def test_point_masses(self):
        space = DiscreteProbabilitySpace.from_dict({"a": 0.3, "b": 0.7})
        assert space.probability_of("a") == 0.3
        assert space.probability_of("missing") == 0.0

    def test_mass_must_sum_to_one(self):
        with pytest.raises(ProbabilityError):
            DiscreteProbabilitySpace.from_dict({"a": 0.5})

    def test_negative_mass_rejected(self):
        with pytest.raises(ProbabilityError):
            DiscreteProbabilitySpace.from_dict({"a": -0.5, "b": 1.5})

    def test_event_probability(self):
        space = DiscreteProbabilitySpace.from_dict({1: 0.2, 2: 0.3, 3: 0.5})
        assert space.probability(lambda o: o >= 2) == pytest.approx(0.8)

    def test_uniform(self):
        space = DiscreteProbabilitySpace.uniform(range(4))
        assert space.probability_of(2) == 0.25

    def test_uniform_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            DiscreteProbabilitySpace.uniform([])

    def test_degenerate(self):
        space = DiscreteProbabilitySpace.degenerate("x")
        assert space.probability_of("x") == 1.0

    def test_support(self):
        space = DiscreteProbabilitySpace.from_dict({"a": 1.0, "b": 0.0})
        assert space.support() == ["a"]


class TestInfiniteSpaces:
    @staticmethod
    def geometric_space():
        def masses():
            for i in itertools.count(1):
                yield i, 2.0**-i

        return DiscreteProbabilitySpace(
            masses, exhaustive=False, mass_tail=lambda n: 2.0**-n)

    def test_event_probability_with_tolerance(self):
        space = self.geometric_space()
        p_even = space.probability(lambda o: o % 2 == 0, tolerance=1e-9)
        # Σ 2^-2k = 1/3.
        assert p_even == pytest.approx(1.0 / 3.0, abs=1e-8)

    def test_probability_of_scans(self):
        assert self.geometric_space().probability_of(3) == 0.125

    def test_stops_without_tail_when_mass_known(self):
        def masses():
            yield "a", 0.5
            yield "b", 0.5
            # An infinite trail of zero-mass outcomes follows.
            for i in itertools.count():
                yield ("z", i), 0.0

        space = DiscreteProbabilitySpace(masses, exhaustive=False)
        assert space.probability(lambda o: o == "a", tolerance=1e-9) == 0.5

    def test_budget_exhaustion_raises(self):
        def masses():
            for i in itertools.count(1):
                yield i, 0.0  # mass never accumulates

        space = DiscreteProbabilitySpace(masses, exhaustive=False)
        with pytest.raises(ProbabilityError):
            space.probability(lambda o: True, max_outcomes=100)


class TestSampling:
    def test_finite_sampling_frequencies(self):
        space = DiscreteProbabilitySpace.from_dict({"a": 0.25, "b": 0.75})
        rng = random.Random(5)
        samples = space.sample_many(4000, rng)
        frequency = samples.count("b") / len(samples)
        assert abs(frequency - 0.75) < 0.03

    def test_infinite_sampling(self):
        space = TestInfiniteSpaces.geometric_space()
        rng = random.Random(6)
        samples = [space.sample(rng) for _ in range(2000)]
        assert abs(samples.count(1) / 2000 - 0.5) < 0.04


class TestCombinators:
    def test_map_pushforward(self):
        space = DiscreteProbabilitySpace.from_dict({-1: 0.4, 1: 0.6})
        image = space.map(abs)
        assert image.probability_of(1) == pytest.approx(1.0)

    def test_map_lazy_aggregates(self):
        space = TestInfiniteSpaces.geometric_space()
        image = space.map(lambda o: o % 2)
        assert image.probability_of(0) == pytest.approx(1.0 / 3.0, abs=1e-8)

    def test_condition(self):
        space = DiscreteProbabilitySpace.from_dict({1: 0.2, 2: 0.8})
        conditioned = space.condition(lambda o: o == 2)
        assert conditioned.probability_of(2) == pytest.approx(1.0)

    def test_condition_null_event(self):
        space = DiscreteProbabilitySpace.from_dict({1: 1.0})
        with pytest.raises(ProbabilityError):
            space.condition(lambda o: o == 99)

    def test_condition_infinite_unsupported(self):
        with pytest.raises(ProbabilityError):
            TestInfiniteSpaces.geometric_space().condition(lambda o: True)

"""Tests for the limsup event helper (Borel–Cantelli shape)."""

from repro.measure.events import Event


class TestLimsup:
    def test_requires_last_window(self):
        events = [Event(lambda n, k=k: n >= k) for k in range(5)]
        limsup = Event.limsup(events)
        # n = 10 satisfies every event including the last: in limsup.
        assert limsup(10)
        # n = 2 satisfies only the early events: not "infinitely often".
        assert not limsup(2)

    def test_no_occurrence(self):
        events = [Event(lambda n: False) for _ in range(3)]
        assert not Event.limsup(events)(0)

    def test_named(self):
        assert Event.limsup([Event(lambda n: True)], name="io").name == "io"

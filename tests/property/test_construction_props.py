"""Hypothesis property tests on the Theorem 4.8 / 4.15 constructions."""

import math

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.core.tuple_independent import CountableTIPDB, _weighted_subsets
from repro.finite.bid import Block, BlockIndependentTable
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational import Instance, RelationSymbol, Schema
from repro.utils.iteration import powerset

schema = Schema.of(R=1)
R = schema["R"]

probabilities = st.floats(min_value=0.01, max_value=0.99)
marginal_dicts = st.lists(probabilities, min_size=1, max_size=7).map(
    lambda ps: {R(i + 1): p for i, p in enumerate(ps)}
)


class TestTupleIndependentProperties:
    @given(marginal_dicts)
    @settings(max_examples=40, deadline=None)
    def test_measure_sums_to_one(self, marginals):
        table = TupleIndependentTable(schema, marginals)
        total = sum(
            table.instance_probability(Instance(subset))
            for subset in powerset(marginals)
        )
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(marginal_dicts)
    @settings(max_examples=40, deadline=None)
    def test_marginals_recovered_from_worlds(self, marginals):
        table = TupleIndependentTable(schema, marginals)
        for fact, p in marginals.items():
            recovered = sum(
                table.instance_probability(Instance(subset))
                for subset in powerset(marginals)
                if fact in subset
            )
            assert recovered == pytest.approx(p, abs=1e-9)

    @given(marginal_dicts)
    @settings(max_examples=40, deadline=None)
    def test_pairwise_independence_from_worlds(self, marginals):
        table = TupleIndependentTable(schema, marginals)
        facts = list(marginals)
        if len(facts) < 2:
            return
        f, g = facts[0], facts[1]
        joint = sum(
            table.instance_probability(Instance(subset))
            for subset in powerset(marginals)
            if f in subset and g in subset
        )
        assert joint == pytest.approx(marginals[f] * marginals[g], abs=1e-9)

    @given(marginal_dicts)
    @settings(max_examples=30, deadline=None)
    def test_countable_agrees_with_finite_table(self, marginals):
        pdb = CountableTIPDB.from_marginals(schema, marginals)
        table = TupleIndependentTable(schema, marginals)
        for subset in powerset(marginals):
            instance = Instance(subset)
            assert pdb.instance_probability(instance) == pytest.approx(
                table.instance_probability(instance), abs=1e-9)

    @given(st.lists(probabilities, min_size=0, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_weighted_subsets_total_one(self, ps):
        pairs = [(R(i + 1), p) for i, p in enumerate(ps)]
        total = sum(w for _, w in _weighted_subsets(pairs))
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(st.lists(probabilities, min_size=1, max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_weighted_subsets_bijective(self, ps):
        pairs = [(R(i + 1), p) for i, p in enumerate(ps)]
        seen = [frozenset(facts) for facts, _ in _weighted_subsets(pairs)]
        assert len(seen) == 2 ** len(ps)
        assert len(set(seen)) == len(seen)


block_specs = st.lists(
    st.lists(probabilities, min_size=1, max_size=3),
    min_size=1,
    max_size=4,
)


def _blocks_from_spec(spec):
    blocks = []
    fact_id = 1
    for b, block_ps in enumerate(spec):
        total = sum(block_ps)
        alternatives = {}
        for p in block_ps:
            alternatives[R(fact_id)] = p / max(total, 1.0) * 0.9
            fact_id += 1
        blocks.append(Block(f"b{b}", alternatives))
    return blocks


class TestBIDProperties:
    @given(block_specs)
    @settings(max_examples=30, deadline=None)
    def test_expansion_sums_to_one(self, spec):
        table = BlockIndependentTable(schema, _blocks_from_spec(spec))
        pdb = table.expand()
        assert sum(pdb.worlds.values()) == pytest.approx(1.0, abs=1e-9)

    @given(block_specs)
    @settings(max_examples=30, deadline=None)
    def test_countable_matches_finite(self, spec):
        blocks = _blocks_from_spec(spec)
        finite = BlockIndependentTable(schema, blocks)
        countable = CountableBIDPDB(schema, BlockFamily.finite(blocks))
        for instance in finite.expand().instances():
            assert countable.instance_probability(instance) == pytest.approx(
                finite.instance_probability(instance), abs=1e-9)

    @given(block_specs)
    @settings(max_examples=30, deadline=None)
    def test_block_exclusivity_always(self, spec):
        blocks = _blocks_from_spec(spec)
        table = BlockIndependentTable(schema, blocks)
        for block in blocks:
            facts = block.facts()
            if len(facts) >= 2:
                bad = Instance(facts[:2])
                assert table.instance_probability(bad) == 0.0

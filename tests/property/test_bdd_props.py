"""Hypothesis property tests for the ROBDD compiler: agreement with
Shannon expansion and with direct truth-table evaluation on random
lineage expressions."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.finite.bdd import compile_lineage
from repro.finite.lineage_eval import lineage_probability
from repro.logic.lineage import Lineage
from repro.relational import RelationSymbol

R = RelationSymbol("R", 1)
FACTS = [R(1), R(2), R(3), R(4)]


@st.composite
def lineage_exprs(draw, depth=0):
    if depth >= 3:
        return Lineage.var(draw(st.sampled_from(FACTS)))
    kind = draw(st.sampled_from(["var", "not", "and", "or"]))
    if kind == "var":
        return Lineage.var(draw(st.sampled_from(FACTS)))
    if kind == "not":
        return Lineage.negation(draw(lineage_exprs(depth=depth + 1)))
    children = draw(
        st.lists(lineage_exprs(depth=depth + 1), min_size=1, max_size=3))
    return (Lineage.conj if kind == "and" else Lineage.disj)(children)


class TestBDDProperties:
    @given(lineage_exprs(), st.lists(
        st.floats(min_value=0.05, max_value=0.95),
        min_size=len(FACTS), max_size=len(FACTS)))
    @settings(max_examples=80, deadline=None)
    def test_probability_matches_shannon(self, expr, ps):
        marginals = dict(zip(FACTS, ps))
        manager, root = compile_lineage(expr)
        via_bdd = manager.probability(root, lambda f: marginals[f])
        via_shannon = lineage_probability(expr, lambda f: marginals[f])
        assert via_bdd == pytest.approx(via_shannon, abs=1e-10)

    @given(lineage_exprs(), st.sets(st.sampled_from(FACTS)))
    @settings(max_examples=80, deadline=None)
    def test_evaluation_matches_lineage(self, expr, world):
        manager, root = compile_lineage(expr)
        assert manager.evaluate(root, world) == expr.evaluate(world)

    @given(lineage_exprs(), st.sampled_from(FACTS),
           st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_restrict_matches_condition(self, expr, fact, value):
        manager, root = compile_lineage(expr)
        restricted = manager.restrict(root, fact, value)
        conditioned = expr.condition(fact, value)
        via_bdd = manager.probability(restricted, lambda f: 0.5)
        via_shannon = lineage_probability(conditioned, lambda f: 0.5)
        assert via_bdd == pytest.approx(via_shannon, abs=1e-10)

    @given(lineage_exprs(), st.sampled_from(FACTS), st.booleans(),
           st.lists(st.floats(min_value=0.05, max_value=0.95),
                    min_size=len(FACTS), max_size=len(FACTS)))
    @settings(max_examples=60, deadline=None)
    def test_restrict_matches_condition_any_marginals(
            self, expr, fact, value, ps):
        """The restrict/condition agreement must hold pointwise, not
        just at the symmetric p = 1/2."""
        marginals = dict(zip(FACTS, ps))
        manager, root = compile_lineage(expr)
        via_bdd = manager.probability(
            manager.restrict(root, fact, value), lambda f: marginals[f])
        via_shannon = lineage_probability(
            expr.condition(fact, value), lambda f: marginals[f])
        assert via_bdd == pytest.approx(via_shannon, abs=1e-10)

    @given(lineage_exprs(),
           st.dictionaries(st.sampled_from(FACTS), st.booleans(),
                           min_size=1, max_size=len(FACTS)))
    @settings(max_examples=60, deadline=None)
    def test_condition_many_matches_chained_condition(self, expr, assignment):
        chained = expr
        for fact, value in assignment.items():
            chained = chained.condition(fact, value)
        assert expr.condition_many(assignment) == chained

    @given(lineage_exprs(), lineage_exprs())
    @settings(max_examples=40, deadline=None)
    def test_extended_manager_preserves_prior_roots(self, first, second):
        """Building a second expression into the same manager (the
        compile-cache extension move) must not perturb the first
        diagram's semantics."""
        from repro.finite.bdd import BDDManager

        manager = BDDManager([])
        root = manager.build(first)
        before = manager.probability(root, lambda f: 0.3)
        manager.build(second)
        after = manager.probability(root, lambda f: 0.3)
        assert before == after

    @given(lineage_exprs())
    @settings(max_examples=60, deadline=None)
    def test_negation_complements_probability(self, expr):
        manager, root = compile_lineage(expr)
        p = manager.probability(root, lambda f: 0.3)
        q = manager.probability(manager.negate(root), lambda f: 0.3)
        assert p + q == pytest.approx(1.0, abs=1e-10)

    @given(lineage_exprs())
    @settings(max_examples=40, deadline=None)
    def test_canonical_form(self, expr):
        """Compiling the double negation yields the identical root —
        ROBDD canonicity under one manager."""
        manager, root = compile_lineage(expr)
        double = manager.negate(manager.negate(root))
        assert (double if isinstance(double, int) else double.id) == (
            root if isinstance(root, int) else root.id)

"""Hypothesis property tests on the Proposition 6.1 machinery: the
additive guarantee must hold for random finite-support distributions,
random epsilons, and a pool of queries."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.approx import approximate_query_probability, choose_truncation
from repro.core.fact_distribution import TableFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.finite.evaluation import query_probability_by_worlds
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1)
R = schema["R"]

probabilities = st.lists(
    st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=8)
epsilons = st.floats(min_value=0.001, max_value=0.45)

QUERY_POOL = [
    "EXISTS x. R(x)",
    "NOT EXISTS x. R(x)",
    "R(1)",
    "R(1) OR R(2)",
    "FORALL x. R(x) -> R(1)",
]


def make_pdb(ps):
    marginals = {R(i + 1): p for i, p in enumerate(ps)}
    return CountableTIPDB(schema, TableFactDistribution(marginals))


class TestGuaranteeProperties:
    @given(probabilities, epsilons, st.sampled_from(QUERY_POOL))
    @settings(max_examples=60, deadline=None)
    def test_additive_error_bounded(self, ps, epsilon, text):
        pdb = make_pdb(ps)
        query = BooleanQuery(parse_formula(text, schema), schema)
        # Ground truth by exhaustive evaluation over the full support.
        truth = query_probability_by_worlds(query, pdb.truncate(len(ps)))
        result = approximate_query_probability(query, pdb, epsilon)
        assert abs(result.value - truth) <= epsilon + 1e-9

    @given(probabilities, epsilons)
    @settings(max_examples=60, deadline=None)
    def test_truncation_alpha_conditions(self, ps, epsilon):
        import math

        distribution = TableFactDistribution(
            {R(i + 1): p for i, p in enumerate(ps)})
        n = choose_truncation(distribution, epsilon)
        alpha = 1.5 * distribution.tail(n)
        assert math.exp(alpha) <= 1 + epsilon + 1e-9
        assert math.exp(-alpha) >= 1 - epsilon - 1e-9
        assert distribution.tail(n) <= 0.49 + 1e-12

    @given(probabilities)
    @settings(max_examples=40, deadline=None)
    def test_value_is_valid_probability(self, ps):
        pdb = make_pdb(ps)
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        result = approximate_query_probability(query, pdb, 0.1)
        assert 0.0 <= result.value <= 1.0
        assert 0.0 <= result.low <= result.high <= 1.0

"""Hypothesis property tests on enumeration combinatorics and universes."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.relational import Schema
from repro.universe import FactSpace, Naturals, StringUniverse
from repro.utils.enumeration import (
    cantor_pair,
    cantor_unpair,
    paper_pair,
    paper_unpair,
)


class TestPairingProperties:
    @given(st.integers(min_value=0, max_value=10**9),
           st.integers(min_value=0, max_value=10**9))
    @settings(max_examples=100, deadline=None)
    def test_cantor_round_trip(self, x, y):
        assert cantor_unpair(cantor_pair(x, y)) == (x, y)

    @given(st.integers(min_value=0, max_value=10**12))
    @settings(max_examples=100, deadline=None)
    def test_cantor_unpair_total(self, z):
        x, y = cantor_unpair(z)
        assert cantor_pair(x, y) == z

    @given(st.integers(min_value=1, max_value=10**4),
           st.integers(min_value=1, max_value=10**4))
    @settings(max_examples=100, deadline=None)
    def test_paper_round_trip(self, m, n):
        assert paper_unpair(paper_pair(m, n)) == (m, n)


class TestStringRankProperties:
    @given(st.text(alphabet="ab", max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_rank_unrank_inverse(self, word):
        u = StringUniverse("ab")
        assert u.unrank(u.rank(word)) == word

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=100, deadline=None)
    def test_unrank_rank_inverse(self, index):
        u = StringUniverse("abc")
        assert u.rank(u.unrank(index)) == index

    @given(st.text(alphabet="ab", max_size=8),
           st.text(alphabet="ab", max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_shortlex_order_preserved(self, left, right):
        u = StringUniverse("ab")
        shortlex = (len(left), left) < (len(right), right)
        assert (u.rank(left) < u.rank(right)) == shortlex or left == right


class TestFactSpaceProperties:
    @given(st.integers(min_value=0, max_value=300))
    @settings(max_examples=50, deadline=None)
    def test_rank_is_enumeration_index(self, index):
        space = FactSpace(Schema.of(R=1, S=2), Naturals())
        fact = space.unrank(index)
        assert space.rank(fact) == index

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_prefix_has_no_duplicates(self, n):
        space = FactSpace(Schema.of(R=2), Naturals())
        prefix = space.prefix(n)
        assert len(set(prefix)) == n

"""Hypothesis properties for the set-at-a-time grounding engine.

Random positive-existential formulas (with quantifier shadowing and
const/var equality mixes), random fact subsets, random worlds:

* the join engine and the expansion grounder return *bit-identical*
  lineage (`.node` equality — the canonicalized tree, not just logical
  equivalence);
* evaluating that lineage on a world agrees with FO model checking
  (:func:`repro.logic.semantics.evaluate`) over the same domain.
"""

from hypothesis import given, settings, strategies as st

from repro.logic.lineage import lineage_of
from repro.logic.semantics import evaluate
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Or,
    Variable,
)
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]

DOMAIN = frozenset({1, 2, 3})
ALL_FACTS = [
    R(1), R(2), R(3),
    S(1, 2), S(2, 3), S(3, 1), S(2, 2), S(1, 3),
]
VARIABLES = [Variable("x"), Variable("y")]


def terms(draw, bound):
    """A term usable at the current point: a constant, or a variable
    that is either already bound or about to be quantified — the
    strategy wraps every open formula in EXISTS for each variable, so
    any variable is fine."""
    kind = draw(st.sampled_from(["const", "var"]))
    if kind == "const":
        return Constant(draw(st.sampled_from(sorted(DOMAIN))))
    return draw(st.sampled_from(VARIABLES))


@st.composite
def pe_formulas(draw, depth=0):
    """Random positive-existential formulas over R, S — possibly with
    shadowed quantifiers and every Equals const/var mix."""
    if depth >= 3:
        kind = draw(st.sampled_from(["atom", "equals"]))
    else:
        kind = draw(st.sampled_from(
            ["atom", "equals", "and", "or", "exists", "exists"]))
    if kind == "atom":
        relation = draw(st.sampled_from([R, S]))
        args = tuple(terms(draw, None) for _ in range(relation.arity))
        return Atom(relation, args)
    if kind == "equals":
        return Equals(terms(draw, None), terms(draw, None))
    if kind == "and":
        return And(draw(pe_formulas(depth=depth + 1)),
                   draw(pe_formulas(depth=depth + 1)))
    if kind == "or":
        return Or(draw(pe_formulas(depth=depth + 1)),
                  draw(pe_formulas(depth=depth + 1)))
    variable = draw(st.sampled_from(VARIABLES))
    return Exists(variable, draw(pe_formulas(depth=depth + 1)))


def close(formula):
    """Existentially close: every free variable gets a quantifier, so
    inner same-named quantifiers in the random body are shadowed."""
    for variable in VARIABLES:
        formula = Exists(variable, formula)
    return formula


@st.composite
def fact_subsets(draw):
    return frozenset(draw(
        st.lists(st.sampled_from(ALL_FACTS), min_size=1, unique=True)))


class TestGroundingEngineProperties:
    @settings(max_examples=300, deadline=None)
    @given(pe_formulas(), fact_subsets())
    def test_join_engine_bit_identical_to_expansion(self, body, possible):
        formula = close(body)
        fast = lineage_of(formula, possible, domain=DOMAIN, engine="join")
        slow = lineage_of(
            formula, possible, domain=DOMAIN, engine="expansion")
        assert fast.node == slow.node

    @settings(max_examples=300, deadline=None)
    @given(pe_formulas(), fact_subsets(), st.data())
    def test_lineage_agrees_with_model_checking(self, body, possible, data):
        formula = close(body)
        world = data.draw(
            st.sets(st.sampled_from(sorted(possible, key=str))),
            label="world")
        expr = lineage_of(formula, possible, domain=DOMAIN)
        assert expr.evaluate(world) == evaluate(
            formula, Instance(world), domain=DOMAIN)

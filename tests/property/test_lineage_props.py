"""Hypothesis property tests: lineage probability == brute force on
random Boolean expressions; lineage truth == model checking on random
formulas and worlds."""

import itertools

from hypothesis import given, settings, strategies as st

import pytest

from repro.finite.lineage_eval import lineage_probability
from repro.logic.lineage import Lineage, lineage_of
from repro.logic.parser import parse_formula
from repro.logic.semantics import evaluate
from repro.relational import Instance, RelationSymbol, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]

FACTS = [R(1), R(2), R(3), S(1, 2), S(2, 1)]


@st.composite
def lineage_exprs(draw, depth=0):
    """Random lineage expressions over FACTS."""
    if depth >= 3:
        return Lineage.var(draw(st.sampled_from(FACTS)))
    kind = draw(st.sampled_from(["var", "not", "and", "or", "true", "false"]))
    if kind == "var":
        return Lineage.var(draw(st.sampled_from(FACTS)))
    if kind == "true":
        return Lineage.true()
    if kind == "false":
        return Lineage.false()
    if kind == "not":
        return Lineage.negation(draw(lineage_exprs(depth=depth + 1)))
    children = draw(
        st.lists(lineage_exprs(depth=depth + 1), min_size=1, max_size=3))
    if kind == "and":
        return Lineage.conj(children)
    return Lineage.disj(children)


def brute_force_probability(expr, marginals):
    total = 0.0
    facts = sorted(marginals)
    for mask in itertools.product([0, 1], repeat=len(facts)):
        world = {f for f, bit in zip(facts, mask) if bit}
        mass = 1.0
        for f, bit in zip(facts, mask):
            mass *= marginals[f] if bit else 1 - marginals[f]
        if expr.evaluate(world):
            total += mass
    return total


class TestLineageProbabilityProperties:
    @given(lineage_exprs(), st.lists(
        st.floats(min_value=0.05, max_value=0.95),
        min_size=len(FACTS), max_size=len(FACTS)))
    @settings(max_examples=60, deadline=None)
    def test_shannon_equals_brute_force(self, expr, ps):
        marginals = dict(zip(FACTS, ps))
        exact = lineage_probability(expr, lambda f: marginals[f])
        brute = brute_force_probability(expr, marginals)
        assert exact == pytest.approx(brute, abs=1e-9)

    @given(lineage_exprs())
    @settings(max_examples=60, deadline=None)
    def test_negation_complements(self, expr):
        p = lineage_probability(expr, lambda f: 0.5)
        q = lineage_probability(Lineage.negation(expr), lambda f: 0.5)
        assert p + q == pytest.approx(1.0, abs=1e-9)

    @given(lineage_exprs(), st.sampled_from(FACTS))
    @settings(max_examples=60, deadline=None)
    def test_shannon_identity(self, expr, fact):
        """P(λ) = p·P(λ|f) + (1−p)·P(λ|¬f) for any pivot."""
        p_fact = 0.3
        whole = lineage_probability(expr, lambda f: p_fact)
        high = lineage_probability(expr.condition(fact, True), lambda f: p_fact)
        low = lineage_probability(expr.condition(fact, False), lambda f: p_fact)
        assert whole == pytest.approx(
            p_fact * high + (1 - p_fact) * low, abs=1e-9)


FORMULA_POOL = [
    "EXISTS x. R(x)",
    "EXISTS x, y. S(x, y) AND R(x)",
    "FORALL x. R(x) -> EXISTS y. S(x, y)",
    "NOT EXISTS x. S(x, x)",
    "(EXISTS x. R(x)) AND (EXISTS x, y. S(x, y))",
]


class TestLineageVsModelChecking:
    @given(
        st.sampled_from(FORMULA_POOL),
        st.sets(st.sampled_from(FACTS)),
    )
    @settings(max_examples=100, deadline=None)
    def test_lineage_truth_equals_model_checking(self, text, world):
        formula = parse_formula(text, schema)
        domain = {1, 2, 3}
        expr = lineage_of(formula, set(FACTS), domain=domain)
        expected = evaluate(formula, Instance(world), domain=domain)
        assert expr.evaluate(world) == expected

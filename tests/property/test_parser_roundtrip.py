"""Hypothesis round-trip: ``parse(str(formula)) == formula`` for random
formulas, and semantic invariance of the printer."""

from hypothesis import given, settings, strategies as st

from repro.logic import evaluate, parse_formula
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Forall,
    Implies,
    Not,
    Or,
    Variable,
)
from repro.relational import Instance, Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]

variables = st.sampled_from([Variable("x"), Variable("y"), Variable("z")])
constants = st.sampled_from([Constant(1), Constant(2), Constant("abc")])
terms = st.one_of(variables, constants)


@st.composite
def formulas(draw, depth=0, bound=()):
    """Random formulas whose free variables are drawn from ``bound`` —
    generated closed (sentences) at the top level so evaluation needs no
    assignment."""
    if depth >= 3:
        choices = ["atom", "equals"] if bound else ["ground_atom"]
    else:
        choices = ["atom", "equals", "not", "and", "or", "implies",
                   "exists", "forall"]
        if not bound:
            choices = [c for c in choices if c not in ("atom", "equals")]
            choices.append("ground_atom")
    kind = draw(st.sampled_from(choices))
    if kind == "ground_atom":
        relation = draw(st.sampled_from([R, S]))
        args = [draw(constants) for _ in range(relation.arity)]
        return Atom(relation, args)
    if kind == "atom":
        relation = draw(st.sampled_from([R, S]))
        pool = st.one_of(st.sampled_from(list(bound)), constants)
        return Atom(relation, [draw(pool) for _ in range(relation.arity)])
    if kind == "equals":
        pool = st.one_of(st.sampled_from(list(bound)), constants)
        return Equals(draw(pool), draw(pool))
    if kind == "not":
        return Not(draw(formulas(depth=depth + 1, bound=bound)))
    if kind in ("and", "or", "implies"):
        builder = {"and": And, "or": Or, "implies": Implies}[kind]
        return builder(
            draw(formulas(depth=depth + 1, bound=bound)),
            draw(formulas(depth=depth + 1, bound=bound)),
        )
    variable = draw(variables)
    builder = Exists if kind == "exists" else Forall
    return builder(
        variable,
        draw(formulas(depth=depth + 1, bound=tuple(set(bound) | {variable}))),
    )


WORLDS = [
    Instance(),
    Instance([R(1)]),
    Instance([R(1), S(1, 2)]),
    Instance([S(2, 1), S(1, 1), R(2)]),
]


class TestRoundTrip:
    @given(formulas())
    @settings(max_examples=120, deadline=None)
    def test_parse_of_str_is_identity(self, formula):
        assert parse_formula(str(formula), schema) == formula

    @given(formulas())
    @settings(max_examples=80, deadline=None)
    def test_printed_formula_semantics(self, formula):
        reparsed = parse_formula(str(formula), schema)
        for world in WORLDS:
            assert evaluate(formula, world) == evaluate(reparsed, world)

"""Hypothesis differential properties for the batched lifted executor.

Over random tables and the plan shapes that exercise every grouped
constructor (chain joins, star joins, shattered constants, unions with
UCQ separators), the batched set-at-a-time executor must agree with the
scalar interpreter and the compiled-BDD strategy to 1e-12 on *both*
columnar backends — and a refinement sweep's delta-extended re-runs
must be bit-identical to fresh full evaluations at the same
truncations.
"""

from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.utils.probability as probability_module
from repro import obs
from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.refine import RefinementSession
from repro.core.tuple_independent import CountableTIPDB
from repro.finite import TupleIndependentTable, query_probability
from repro.finite.compile_cache import CompileCache
from repro.finite.lifted import query_probability_lifted
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.relational.columns import available_backends
from repro.universe import FactSpace, Naturals

BACKENDS = available_backends()

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

#: One query per grouped-plan shape: leaf project, chain join, star
#: join, shattered constants, root union (inclusion–exclusion), and a
#: union whose disjuncts share a separator (the UCQ-separator project).
SHAPES = {
    "leaf": "EXISTS x. R(x)",
    "chain": "EXISTS x. EXISTS y. R(x) AND S(x, y)",
    "star": "EXISTS x. EXISTS y. R(x) AND S(x, y) AND T(x)",
    "shattered": "EXISTS y. S(1, y) AND R(1)",
    "union": "(EXISTS x. R(x) AND T(x)) OR (EXISTS y. S(2, y))",
    "ucq-separator": (
        "(EXISTS x. R(x)) OR (EXISTS x. EXISTS y. S(x, y) AND T(x))"
    ),
}

FACT_POOL = (
    [R(i) for i in (1, 2, 3)]
    + [S(i, j) for i in (1, 2, 3) for j in (1, 2, 3)]
    + [T(i) for i in (1, 2, 3)]
)

marginal_maps = st.dictionaries(
    st.sampled_from(FACT_POOL),
    st.floats(min_value=0.01, max_value=0.99, allow_nan=False),
    min_size=1,
    max_size=len(FACT_POOL),
)


@contextmanager
def forced_backend(backend):
    """Pin the columnar backend by patching the process-wide numpy
    probe; tables and caches built inside resolve to ``backend``."""
    if backend == "numpy":
        yield
        return
    saved = probability_module._numpy_probe
    probability_module._numpy_probe = None
    try:
        yield
    finally:
        probability_module._numpy_probe = saved


def boolean_query(text):
    return BooleanQuery(parse_formula(text, schema), schema)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("shape", sorted(SHAPES))
class TestBatchedMatchesScalarAndBDD:
    @given(marginals=marginal_maps)
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_differential(self, shape, backend, marginals):
        query = boolean_query(SHAPES[shape])
        with forced_backend(backend):
            table = TupleIndependentTable(schema, marginals)
            batched = query_probability_lifted(
                query, table, plan_cache=CompileCache(),
                executor="batched")
            scalar = query_probability_lifted(
                query, table, plan_cache=CompileCache(),
                executor="scalar")
            bdd = query_probability(
                query, table, strategy="bdd",
                compile_cache=CompileCache())
        assert batched == pytest.approx(scalar, abs=1e-12)
        assert batched == pytest.approx(float(bdd), abs=1e-12)


@pytest.mark.parametrize("backend", BACKENDS)
class TestDeltaReuseIsExact:
    @given(marginals=marginal_maps, delta=marginal_maps)
    @settings(
        max_examples=25, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_grown_table_matches_fresh_evaluation(
        self, backend, marginals, delta
    ):
        """Re-running after an append-only extension (the binding-table
        delta path) is bit-identical to a cold evaluation of the grown
        table."""
        query = boolean_query(SHAPES["chain"])
        growth = {
            fact: p for fact, p in delta.items() if fact not in marginals
        }
        with forced_backend(backend):
            table = TupleIndependentTable(schema, marginals)
            cache = CompileCache()
            query_probability_lifted(query, table, plan_cache=cache)
            table.extend(growth)
            warm = query_probability_lifted(query, table, plan_cache=cache)
            cold = query_probability_lifted(
                query, table, plan_cache=CompileCache())
        assert warm == cold


class TestRefinementSweepDeltaParity:
    SWEEP = [0.2, 0.05, 0.01]

    def make_pdb(self):
        space = FactSpace(Schema.of(R=1), Naturals())
        return CountableTIPDB(
            space.schema,
            GeometricFactDistribution(space, first=0.3, ratio=0.9))

    def test_mid_sweep_deltas_match_cold_sessions(self):
        """Each step of an ε-sweep (running the batched executor's
        delta path on all but the first step) equals a cold session
        refined straight to that ε — bit-for-bit — and the warm steps
        actually reuse cached separator groups."""
        pdb = self.make_pdb()
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", pdb.schema), pdb.schema)
        session = RefinementSession(
            query, pdb, strategy="auto", compile_cache=CompileCache())
        with obs.trace() as t:
            swept = {
                eps: r.value
                for eps, r in session.sweep(self.SWEEP).items()
            }
        assert t.counters.get("lifted.cached_groups", 0) > 0
        assert t.counters.get("lifted.vectorized_nodes", 0) > 0
        for eps, value in swept.items():
            cold = RefinementSession(
                query, self.make_pdb(), strategy="auto",
                compile_cache=CompileCache())
            assert cold.refine(eps).value == value

"""Hypothesis property tests for the Karp–Luby DNF expansion:
``lineage_to_dnf`` is semantically equivalent to the original lineage
on every world over the mentioned facts."""

from itertools import chain, combinations

from hypothesis import given, settings, strategies as st

from repro.finite.karp_luby import DNFTerm, lineage_to_dnf
from repro.logic.lineage import Lineage
from repro.relational import Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]

FACTS = [R(1), R(2), S(1, 2), S(2, 1)]


@st.composite
def lineage_exprs(draw, depth=0):
    """Random lineage expressions over FACTS (bounded depth so the DNF
    expansion stays polynomial-sized)."""
    if depth >= 3:
        return Lineage.var(draw(st.sampled_from(FACTS)))
    kind = draw(st.sampled_from(["var", "not", "and", "or", "true", "false"]))
    if kind == "var":
        return Lineage.var(draw(st.sampled_from(FACTS)))
    if kind == "true":
        return Lineage.true()
    if kind == "false":
        return Lineage.false()
    if kind == "not":
        return Lineage.negation(draw(lineage_exprs(depth=depth + 1)))
    children = draw(
        st.lists(lineage_exprs(depth=depth + 1), min_size=1, max_size=3))
    if kind == "and":
        return Lineage.conj(children)
    return Lineage.disj(children)


def dnf_evaluate(terms, world):
    return any(term.satisfied_by(world) for term in terms)


def all_worlds():
    return [
        set(subset)
        for subset in chain.from_iterable(
            combinations(FACTS, size) for size in range(len(FACTS) + 1)
        )
    ]


WORLDS = all_worlds()


class TestDNFEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(lineage_exprs())
    def test_dnf_equivalent_on_every_world(self, expr):
        terms = lineage_to_dnf(expr)
        for world in WORLDS:
            assert dnf_evaluate(terms, world) == expr.evaluate(world), (
                f"{expr!r} disagrees with its DNF on {world}"
            )

    @settings(max_examples=150, deadline=None)
    @given(lineage_exprs())
    def test_terms_are_consistent(self, expr):
        """No term forces a fact both present and absent (such terms are
        unsatisfiable and must be pruned during distribution)."""
        for term in lineage_to_dnf(expr):
            assert not (term.positive & term.negative)

    @settings(max_examples=100, deadline=None)
    @given(lineage_exprs())
    def test_double_negation_preserved(self, expr):
        double = Lineage.negation(Lineage.negation(expr))
        terms = lineage_to_dnf(expr)
        double_terms = lineage_to_dnf(double)
        for world in WORLDS:
            assert dnf_evaluate(terms, world) == dnf_evaluate(
                double_terms, world)

    def test_term_satisfaction_matches_probability_support(self):
        """A term with positive probability is satisfiable by the world
        of exactly its positive facts."""
        term = DNFTerm(frozenset({R(1)}), frozenset({R(2)}))
        assert term.satisfied_by({R(1)})
        assert not term.satisfied_by({R(1), R(2)})

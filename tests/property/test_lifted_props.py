"""Hypothesis properties for the safe-plan solver: random CQs/UCQs over
a tiny domain must (a) evaluate identically to brute-force world
enumeration whenever a safe plan exists, (b) produce byte-identical
plans across repeated construction, and (c) survive minimization
without changing semantics.
"""

from hypothesis import given, settings, strategies as st

import pytest

from repro.errors import UnsafeQueryError
from repro.finite import TupleIndependentTable, query_probability
from repro.finite.evaluation import query_probability_by_worlds
from repro.finite.lifted import query_probability_lifted
from repro.logic import BooleanQuery
from repro.logic.hierarchy import safe_plan_ucq
from repro.logic.normalform import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    minimize_ucq,
)
from repro.logic.syntax import Atom, Constant, Variable
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]
x, y = Variable("x"), Variable("y")

#: Domain {1, 2}: 2 + 4 + 2 = 8 possible facts, 256 worlds — cheap to
#: enumerate, yet enough to distinguish joins from products.
FACT_POOL = (
    [R(i) for i in (1, 2)]
    + [S(i, j) for i in (1, 2) for j in (1, 2)]
    + [T(i) for i in (1, 2)]
)

terms = st.sampled_from([x, y, Constant(1), Constant(2)])
atoms = st.one_of(
    st.builds(lambda t: Atom(R, (t,)), terms),
    st.builds(lambda a, b: Atom(S, (a, b)), terms, terms),
    st.builds(lambda t: Atom(T, (t,)), terms),
)
cqs = st.lists(atoms, min_size=1, max_size=3).map(ConjunctiveQuery)
ucqs = st.lists(cqs, min_size=1, max_size=3).map(UnionOfConjunctiveQueries)

tables = st.dictionaries(
    st.sampled_from(FACT_POOL),
    st.floats(min_value=0.05, max_value=0.95),
    min_size=1,
    max_size=8,
).map(lambda marginals: TupleIndependentTable(schema, marginals))


def boolean_query(ucq):
    return BooleanQuery(ucq.to_formula(), schema)


class TestLiftedMatchesModelChecking:
    @given(ucqs, tables)
    @settings(max_examples=120, deadline=None)
    def test_safe_plans_agree_with_worlds(self, ucq, table):
        try:
            safe_plan_ucq(ucq)
        except UnsafeQueryError:
            return  # only the safe side has a lifted value to compare
        query = boolean_query(ucq)
        assert query_probability_lifted(query, table) == pytest.approx(
            query_probability_by_worlds(query, table), abs=1e-9)

    @given(ucqs, tables)
    @settings(max_examples=60, deadline=None)
    def test_auto_always_exact(self, ucq, table):
        # Safe or not, auto dispatch must return the true probability.
        query = boolean_query(ucq)
        assert query_probability(query, table, strategy="auto") == (
            pytest.approx(query_probability_by_worlds(query, table), abs=1e-9))


class TestPlanDeterminism:
    @given(ucqs)
    @settings(max_examples=120, deadline=None)
    def test_repeated_construction_is_identical(self, ucq):
        try:
            first = safe_plan_ucq(ucq)
        except UnsafeQueryError as exc:
            # Unsafe verdicts are deterministic too, with the same
            # offending subquery every time.
            with pytest.raises(UnsafeQueryError) as excinfo:
                safe_plan_ucq(ucq)
            assert repr(excinfo.value.subquery) == repr(exc.subquery)
            return
        assert repr(safe_plan_ucq(ucq)) == repr(first)

    @given(ucqs)
    @settings(max_examples=120, deadline=None)
    def test_rebuilt_query_plans_identically(self, ucq):
        rebuilt = UnionOfConjunctiveQueries([
            ConjunctiveQuery(list(cq.atoms)) for cq in ucq.disjuncts])
        try:
            first = safe_plan_ucq(ucq)
        except UnsafeQueryError:
            with pytest.raises(UnsafeQueryError):
                safe_plan_ucq(rebuilt)
            return
        assert repr(safe_plan_ucq(rebuilt)) == repr(first)

    @given(ucqs, tables)
    @settings(max_examples=60, deadline=None)
    def test_disjunct_order_does_not_change_the_value(self, ucq, table):
        reordered = UnionOfConjunctiveQueries(list(reversed(ucq.disjuncts)))
        query, rquery = boolean_query(ucq), boolean_query(reordered)
        try:
            value = query_probability_lifted(query, table)
        except UnsafeQueryError:
            with pytest.raises(UnsafeQueryError):
                query_probability_lifted(rquery, table)
            return
        assert query_probability_lifted(rquery, table) == pytest.approx(
            value, abs=1e-9)


class TestMinimizationSemantics:
    @given(ucqs, tables)
    @settings(max_examples=120, deadline=None)
    def test_minimize_ucq_preserves_probability(self, ucq, table):
        minimized = minimize_ucq(ucq)
        assert query_probability_by_worlds(
            boolean_query(minimized), table
        ) == pytest.approx(
            query_probability_by_worlds(boolean_query(ucq), table), abs=1e-9)

    @given(ucqs)
    @settings(max_examples=120, deadline=None)
    def test_minimize_ucq_never_grows(self, ucq):
        minimized = minimize_ucq(ucq)
        assert len(minimized.disjuncts) <= len(ucq.disjuncts)
        total = sum(len(cq.atoms) for cq in ucq.disjuncts)
        assert sum(len(cq.atoms) for cq in minimized.disjuncts) <= total

"""Hypothesis property tests on series, products and analytic bounds."""

import math
from fractions import Fraction

from hypothesis import given, settings, strategies as st

import pytest

from repro.analysis.bounds import complement_product_lower_bound
from repro.analysis.distributive import distributive_law_truncation
from repro.analysis.products import product_complement, product_one_plus
from repro.analysis.series import SeriesCertificate

small_probs = st.lists(
    st.floats(min_value=0.0, max_value=0.4999), min_size=0, max_size=30)
unit_probs = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=0, max_size=30)


class TestProductProperties:
    @given(unit_probs)
    @settings(max_examples=80, deadline=None)
    def test_complement_in_unit_interval(self, ps):
        assert 0.0 <= product_complement(ps) <= 1.0

    @given(unit_probs)
    @settings(max_examples=80, deadline=None)
    def test_union_bound(self, ps):
        """1 − Π(1 − p_i) ≤ Σ p_i."""
        assert 1 - product_complement(ps) <= sum(ps) + 1e-9

    @given(small_probs)
    @settings(max_examples=80, deadline=None)
    def test_star_bound_universal(self, ps):
        """Claim (∗) holds for every sequence with p_i < 1/2."""
        assert product_complement(ps) >= (
            complement_product_lower_bound(ps) - 1e-12)

    @given(unit_probs, unit_probs)
    @settings(max_examples=50, deadline=None)
    def test_multiplicativity(self, a, b):
        assert product_complement(a + b) == pytest.approx(
            product_complement(a) * product_complement(b), abs=1e-9)


class TestDistributiveLawProperties:
    @given(st.lists(
        st.fractions(min_value=-1, max_value=1), min_size=0, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_lemma_2_3_exact(self, terms):
        _, _, equal = distributive_law_truncation(terms)
        assert equal


class TestCertificateProperties:
    @given(st.floats(min_value=0.01, max_value=0.9),
           st.floats(min_value=0.0, max_value=0.95))
    @settings(max_examples=60, deadline=None)
    def test_geometric_tail_sound(self, first, ratio):
        cert = SeriesCertificate.geometric(first, ratio)
        terms = cert.prefix(300)
        for n in (0, 1, 5, 20):
            actual_tail = sum(terms[n:])
            assert cert.tail(n) >= actual_tail - 1e-9

    @given(st.floats(min_value=1.1, max_value=4.0),
           st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_zeta_tail_sound(self, exponent, scale):
        cert = SeriesCertificate.zeta(exponent, scale)
        terms = cert.prefix(2000)
        for n in (1, 10, 100):
            actual_tail = sum(terms[n:])
            assert cert.tail(n) >= actual_tail - 1e-9

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                    min_size=0, max_size=20))
    @settings(max_examples=60, deadline=None)
    def test_finite_certificate_exact(self, values):
        cert = SeriesCertificate.finite(values)
        assert cert.sum() == pytest.approx(sum(values), abs=1e-9)
        for n in range(len(values) + 2):
            assert cert.tail(n) == pytest.approx(sum(values[n:]), abs=1e-9)

"""Differential properties: the columnar layout (both backends) agrees
with the historic dict-of-floats layout on every operation the engines
actually run — extend, truncate, prefix-for-tail, index probes — plus an
import guard proving the whole stack works without numpy."""

import math
import os
import pathlib
import pickle
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fact_distribution import TableFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational import Schema
from repro.relational.columns import ColumnStore, available_backends
from repro.relational.index import FactIndex
from repro.utils.probability import product_complement

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]

BACKENDS = available_backends()

#: Dyadic marginals keep dict-vs-columnar sums exactly comparable.
dyadic = st.integers(min_value=1, max_value=63).map(lambda k: k / 64)
marginal_lists = st.lists(dyadic, min_size=1, max_size=25)


def dict_layout(weights):
    return {R(i + 1): w for i, w in enumerate(weights)}


class TestStoreMatchesDict:
    @given(marginal_lists, marginal_lists)
    @settings(max_examples=80, deadline=None)
    def test_extend_then_aggregate(self, first, delta):
        """Building in one shot and building by delta extension agree
        with the dict layout on every aggregate, on both backends."""
        marginals = dict_layout(first + delta)
        for backend in BACKENDS:
            store = ColumnStore(backend)
            store.extend_items(dict_layout(first).items())
            store.extend_items(marginals.items())  # delta: overlap skipped
            assert len(store) == len(marginals)
            assert store.facts() == list(marginals)
            assert store.sum_marginals() == pytest.approx(
                sum(marginals.values()), abs=1e-12)
            assert store.complement_product() == pytest.approx(
                product_complement(marginals.values()), abs=1e-12)
            gathered = list(store.gather_facts(marginals))
            assert gathered == pytest.approx(
                list(marginals.values()), abs=0)

    @given(marginal_lists)
    @settings(max_examples=40, deadline=None)
    def test_backends_agree(self, weights):
        if len(BACKENDS) < 2:
            pytest.skip("numpy not installed")
        stores = []
        for backend in BACKENDS:
            store = ColumnStore(backend)
            store.extend_items(dict_layout(weights).items())
            stores.append(store)
        py, np_store = stores
        assert py.sum_marginals() == pytest.approx(
            np_store.sum_marginals(), abs=1e-12)
        assert py.complement_product() == pytest.approx(
            np_store.complement_product(), abs=1e-12)
        assert py.disjunction() == pytest.approx(
            np_store.disjunction(), abs=1e-12)


class TestTableMatchesDict:
    @given(marginal_lists, marginal_lists)
    @settings(max_examples=60, deadline=None)
    def test_extend_keeps_columns_in_sync(self, first, delta):
        table = TupleIndependentTable(schema, dict_layout(first))
        # Force the columnar mirror, then grow the table under it.
        assert table.columns.facts() == table.facts()
        table.extend(dict_layout(first + delta))
        marginals = table.marginals
        assert len(table.columns) == len(marginals)
        assert list(table.marginal_values(marginals)) == list(
            marginals.values())
        assert table.expected_size() == pytest.approx(
            sum(marginals.values()), abs=1e-12)
        assert table.empty_world_probability() == pytest.approx(
            product_complement(marginals.values()), abs=1e-12)

    @given(marginal_lists)
    @settings(max_examples=40, deadline=None)
    def test_pickle_round_trip_drops_and_rebuilds(self, weights):
        """The ``workers=`` fan-out path: pickled state carries no
        columnar arrays, and the clone rebuilds them to the same values."""
        table = TupleIndependentTable(schema, dict_layout(weights))
        table.columns  # force the mirror before pickling
        state = table.__getstate__()
        assert state["_columns"] is None
        clone = pickle.loads(pickle.dumps(table))
        assert clone._columns is None  # not shipped
        assert clone.expected_size() == table.expected_size()
        assert clone.empty_world_probability() == (
            table.empty_world_probability())


class TestTruncationMatchesDict:
    @staticmethod
    def enumeration_order(marginals):
        """The distribution's canonical order: decreasing probability,
        ties broken by the fact sort key (paper §6 best case)."""
        return sorted(marginals.items(), key=lambda kv: (-kv[1], kv[0].sort_key()))

    @given(marginal_lists, st.integers(min_value=0, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_truncate_prefix(self, weights, n):
        """truncate(n) through the columnar prefix cache lists exactly
        the first n facts of the dict layout in enumeration order."""
        marginals = dict_layout(weights)
        pdb = CountableTIPDB(schema, TableFactDistribution(marginals))
        truncated = pdb.truncate(n)
        assert truncated.marginals == dict(
            self.enumeration_order(marginals)[:n])

    @given(marginal_lists, st.integers(min_value=1, max_value=65))
    @settings(max_examples=60, deadline=None)
    def test_prefix_for_tail_matches_linear_scan(self, weights, bound_k):
        bound = bound_k / 64
        marginals = dict_layout(weights)
        ordered = [p for _, p in self.enumeration_order(marginals)]
        d = TableFactDistribution(marginals)
        expected = None
        for n in range(len(ordered) + 1):
            if math.fsum(ordered[n:]) <= bound:
                expected = n
                break
        assert d.prefix_for_tail(bound) == expected


class TestIndexMatchesDict:
    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1, max_size=30,
        ),
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            max_size=15,
        ),
        st.integers(0, 5),
    )
    @settings(max_examples=80, deadline=None)
    def test_probes_equal_linear_filter(self, pairs, delta, key):
        """Signature probes (built before AND after a delta extension)
        return exactly the facts a linear dict-style scan returns, and
        probe_rows ids decode to the same facts."""
        facts = [S(a, b) for a, b in pairs]
        index = FactIndex(facts)
        index.probe(S, {0: key})  # materialize the signature pre-delta
        new_facts = [S(a, b) for a, b in delta]
        index.extend(new_facts)
        all_facts = list(dict.fromkeys(facts + new_facts))
        for bound in ({0: key}, {1: key}, {0: key, 1: key}, {}):
            expected = [
                f for f in all_facts
                if all(f.args[i] == v for i, v in bound.items())
            ]
            assert list(index.probe(S, bound)) == expected
            rows = index.probe_rows(S, bound)
            assert [index.fact_at(r) for r in rows] == expected

    @given(marginal_lists, marginal_lists)
    @settings(max_examples=40, deadline=None)
    def test_marginal_column_tracks_table_growth(self, first, delta):
        table = TupleIndependentTable(schema, dict_layout(first))
        index = FactIndex(table.facts())
        column = index.marginal_column(table)
        assert column.slice() == [table.marginal(f) for f in table.facts()]
        table.extend(dict_layout(first + delta))
        index.extend(table.facts())
        column = index.marginal_column(table)
        assert len(column) == len(index)
        assert column.slice() == [
            table.marginal(index.fact_at(row)) for row in range(len(index))
        ]


NO_NUMPY_SCRIPT = """
import sys
sys.modules["numpy"] = None  # any import attempt raises ImportError

from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational import Schema
from repro.relational.columns import available_backends, resolve_backend
from repro.utils.probability import numpy_or_none

assert numpy_or_none() is None
assert available_backends() == ("python",)
assert resolve_backend("auto") == "python"

schema = Schema.of(R=1)
R = schema["R"]
table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.25})
assert table.columns.backend == "python"
assert abs(table.expected_size() - 0.75) < 1e-12
assert abs(table.empty_world_probability() - 0.375) < 1e-12
print("OK")
"""


def test_everything_works_without_numpy():
    """Import guard: with numpy unimportable the auto backend resolves
    to pure Python and the aggregate paths still run."""
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    env = dict(os.environ, PYTHONPATH=str(repo_root / "src"))
    result = subprocess.run(
        [sys.executable, "-c", NO_NUMPY_SCRIPT],
        capture_output=True, text=True, env=env, cwd=repo_root,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "OK"

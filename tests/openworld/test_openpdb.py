"""Tests for the OpenPDB baseline (Ceylan et al.) and credal semantics."""

import pytest

from repro.errors import ProbabilityError, SchemaError
from repro.finite import TupleIndependentTable, query_probability
from repro.logic import BooleanQuery, parse_formula
from repro.openworld import OpenPDB, credal_query_probability
from repro.relational import Schema
from repro.universe import FiniteUniverse, Naturals

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]
universe = FiniteUniverse(["a", "b", "c"])


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def base_table():
    return TupleIndependentTable(schema, {R("a"): 0.8, S("a", "b"): 0.5})


class TestOpenPDB:
    def test_open_facts_complement_listed(self):
        g = OpenPDB(base_table(), lambd=0.1, universe=universe)
        open_facts = set(g.open_facts())
        assert R("b") in open_facts and R("c") in open_facts
        assert R("a") not in open_facts and S("a", "b") not in open_facts
        # 3 R-facts + 9 S-facts − 2 listed.
        assert len(open_facts) == 10

    def test_infinite_universe_rejected(self):
        with pytest.raises(SchemaError):
            OpenPDB(base_table(), lambd=0.1, universe=Naturals())

    def test_lambda_validated(self):
        with pytest.raises(ProbabilityError):
            OpenPDB(base_table(), lambd=1.5, universe=universe)

    def test_completions(self):
        g = OpenPDB(base_table(), lambd=0.2, universe=universe)
        assert g.lower_completion().marginal(R("b")) == 0.0
        assert g.upper_completion().marginal(R("b")) == 0.2
        assert g.upper_completion().marginal(R("a")) == 0.8

    def test_extreme_completions_count(self):
        small = OpenPDB(
            TupleIndependentTable(Schema.of(R=1), {}),
            lambd=0.1,
            universe=FiniteUniverse(["a", "b"]),
        )
        assert len(list(small.extreme_completions())) == 4

    def test_extreme_completion_guard(self):
        g = OpenPDB(base_table(), lambd=0.1, universe=universe)
        with pytest.raises(ProbabilityError):
            list(g.extreme_completions(max_open_facts=3))


class TestCredalSemantics:
    def test_new_entity_query_interval(self):
        """The OpenPDB answer to 'is b in R?': [0, λ] instead of CWA's 0."""
        g = OpenPDB(base_table(), lambd=0.3, universe=universe)
        interval = credal_query_probability(q("R('b')"), g)
        assert interval.low == 0.0
        assert interval.high == pytest.approx(0.3)

    def test_listed_fact_point_interval(self):
        g = OpenPDB(base_table(), lambd=0.3, universe=universe)
        interval = credal_query_probability(q("R('a')"), g)
        assert interval.low == interval.high == pytest.approx(0.8)

    def test_monotone_query_bounds(self):
        g = OpenPDB(base_table(), lambd=0.1, universe=universe)
        interval = credal_query_probability(q("EXISTS x. R(x)"), g)
        assert interval.low == pytest.approx(0.8)
        # Upper: 1 − 0.2·0.9².
        assert interval.high == pytest.approx(1 - 0.2 * 0.81)

    def test_interval_contains_all_extremes(self):
        small_schema = Schema.of(R=1)
        Rs = small_schema["R"]
        g = OpenPDB(
            TupleIndependentTable(small_schema, {Rs("a"): 0.5}),
            lambd=0.2,
            universe=FiniteUniverse(["a", "b", "c"]),
        )
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", small_schema), small_schema)
        interval = credal_query_probability(query, g)
        for completion in g.extreme_completions():
            assert interval.contains(query_probability(query, completion))

    def test_negated_query_uses_extremes(self):
        small_schema = Schema.of(R=1)
        Rs = small_schema["R"]
        g = OpenPDB(
            TupleIndependentTable(small_schema, {Rs("a"): 0.5}),
            lambd=0.2,
            universe=FiniteUniverse(["a", "b"]),
        )
        query = BooleanQuery(
            parse_formula("NOT R('b')", small_schema), small_schema)
        interval = credal_query_probability(query, g)
        assert interval.low == pytest.approx(0.8)
        assert interval.high == pytest.approx(1.0)

    def test_width_grows_with_lambda(self):
        widths = []
        for lambd in (0.05, 0.2, 0.4):
            g = OpenPDB(base_table(), lambd=lambd, universe=universe)
            widths.append(
                credal_query_probability(q("R('c')"), g).width)
        assert widths == sorted(widths)

"""Tests for the BID extension of the Proposition 6.1 approximation."""

import pytest

from repro.core.approx import approximate_query_probability_bid
from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.errors import ApproximationError
from repro.finite.bid import Block
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=2)
R = schema["R"]


def key_pdb(ratio=0.5):
    def make_block(i: int) -> Block:
        mass = 0.5 * ratio**i
        return Block(f"k{i + 1}", {
            R(i + 1, 1): mass / 2, R(i + 1, 2): mass / 2,
        })

    family = BlockFamily.geometric(
        make_block=make_block,
        block_mass=lambda i: 0.5 * ratio**i,
        first=0.5,
        ratio=ratio,
    )
    return CountableBIDPDB(schema, family)


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def exists_truth(pdb, depth=100):
    """Exact P(∃x,y R(x,y)) = 1 − Π blocks' p_⊥."""
    complement = 1.0
    for block in pdb.family.prefix(depth):
        complement *= block.bottom_mass
    return 1.0 - complement


class TestBIDApproximation:
    @pytest.mark.parametrize("epsilon", [0.2, 0.05, 0.01])
    def test_additive_guarantee(self, epsilon):
        pdb = key_pdb()
        truth = exists_truth(pdb)
        result = approximate_query_probability_bid(
            q("EXISTS x, y. R(x, y)"), pdb, epsilon)
        assert abs(result.value - truth) <= epsilon

    def test_key_specific_query(self):
        pdb = key_pdb()
        # Block k1 has alternatives R(1,1)/R(1,2), each 0.25.
        result = approximate_query_probability_bid(
            q("R(1, 1) OR R(1, 2)"), pdb, 0.01)
        assert result.value == pytest.approx(0.5, abs=0.01)

    def test_exclusivity_survives_truncation(self):
        pdb = key_pdb()
        result = approximate_query_probability_bid(
            q("R(1, 1) AND R(1, 2)"), pdb, 0.05)
        assert result.value == pytest.approx(0.0, abs=0.05)

    def test_truncation_grows_with_precision(self):
        pdb = key_pdb()
        coarse = approximate_query_probability_bid(
            q("EXISTS x, y. R(x, y)"), pdb, 0.2)
        fine = approximate_query_probability_bid(
            q("EXISTS x, y. R(x, y)"), pdb, 0.01)
        assert fine.truncation >= coarse.truncation

    def test_epsilon_validated(self):
        with pytest.raises(ApproximationError):
            approximate_query_probability_bid(
                q("EXISTS x, y. R(x, y)"), key_pdb(), 0.9)

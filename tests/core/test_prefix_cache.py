"""PrefixCache: materialization reuse, logarithmic truncation search
(differential against the linear scan it replaced), backends, counters."""

import math
import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core import prefix_cache as pc
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
)
from repro.core.prefix_cache import PrefixCache
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError, ConvergenceError
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())

#: Dyadic weights (k/64) make every suffix sum exact in binary floating
#: point, so tails are exactly monotone and comparisons are bit-exact.
dyadic_weights = st.lists(
    st.integers(min_value=1, max_value=63).map(lambda k: k / 64),
    min_size=1, max_size=20,
)


def suffix_tail(weights):
    """tail(n) = Σ weights[n:] — exact for dyadic weights."""
    return lambda n: math.fsum(weights[n:])


def linear_prefix_for_tail(tail, bound, budget):
    """The seed's linear scan: smallest n ≤ budget with tail(n) ≤ bound,
    or None when the budget is exhausted."""
    for n in range(budget + 1):
        if tail(n) <= bound:
            return n
    return None


def fresh_cache(weights, backend="python"):
    pairs = ((f"item{i}", w) for i, w in enumerate(weights))
    return PrefixCache(pairs, suffix_tail(weights), backend=backend)


class TestMaterialization:
    def test_prefix_extends_then_hits(self):
        cache = fresh_cache([0.5, 0.25, 0.125, 0.0625])
        assert cache.prefix(2) == [("item0", 0.5), ("item1", 0.25)]
        assert cache.extensions == 1 and cache.hits == 0
        assert cache.prefix(2) == [("item0", 0.5), ("item1", 0.25)]
        assert cache.hits == 1
        assert cache.prefix(4)[3] == ("item3", 0.0625)
        assert cache.extensions == 2

    def test_prefix_clips_at_exhaustion(self):
        cache = fresh_cache([0.5, 0.25])
        assert len(cache.prefix(10)) == 2
        assert cache.exhausted
        # Further over-asks are hits, not re-pulls.
        cache.prefix(10)
        assert cache.hits == 1

    def test_pairs_half_open_range(self):
        cache = fresh_cache([0.5, 0.25, 0.125])
        assert cache.pairs(1, 3) == [("item1", 0.25), ("item2", 0.125)]
        assert cache.pairs(2, 10) == [("item2", 0.125)]

    def test_marginals_dict_preserves_order(self):
        cache = fresh_cache([0.5, 0.25, 0.125])
        assert list(cache.marginals_dict(3)) == ["item0", "item1", "item2"]

    def test_cumulative_mass(self):
        cache = fresh_cache([0.5, 0.25, 0.125])
        assert cache.cumulative_mass(0) == 0.0
        assert cache.cumulative_mass(2) == 0.75
        assert cache.cumulative_mass(99) == 0.875

    def test_obs_counters_mirrored_into_trace(self):
        d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        with obs.trace() as t:
            d.prefix(5)
            d.prefix(3)
            d.prefix(8)
        assert t.counters[pc.PREFIX_CACHE_EXTENSIONS] == 2
        assert t.counters[pc.PREFIX_CACHE_HITS] == 1


class TestTruncationSearch:
    def test_doctstring_example_bracket(self):
        cache = fresh_cache([0.5, 0.25, 0.125, 0.0625])
        # tail(1) = 0.4375 > 0.4 >= tail(2) = 0.1875
        assert cache.smallest_prefix_for_tail(0.4, 10) == 2
        assert cache.smallest_prefix_for_tail(1.5, 10) == 0

    def test_nonpositive_bound_rejected(self):
        cache = fresh_cache([0.5])
        with pytest.raises(ConvergenceError):
            cache.smallest_prefix_for_tail(0.0, 10)

    def test_budget_exhaustion_reports_requested_budget(self):
        cache = fresh_cache([0.5] * 10)
        with pytest.raises(ApproximationError) as excinfo:
            cache.smallest_prefix_for_tail(
                1e-6, 4, budget_name="max_facts")
        assert "max_facts=4" in str(excinfo.value)
        assert excinfo.value.achieved_tail == pytest.approx(
            suffix_tail([0.5] * 10)(4))

    def test_failure_path_evaluates_budget_tail_once(self):
        weights = [0.5] * 10
        calls = []
        base = suffix_tail(weights)

        def counting_tail(n):
            calls.append(n)
            return base(n)

        cache = PrefixCache(iter(enumerate(weights)), counting_tail)
        with pytest.raises(ApproximationError):
            cache.smallest_prefix_for_tail(1e-6, 4)
        assert calls.count(4) == 1

    @given(dyadic_weights, st.integers(min_value=0, max_value=65),
           st.integers(min_value=0, max_value=25))
    @settings(max_examples=120, deadline=None)
    def test_bisect_matches_linear_scan(self, weights, bound_k, budget):
        """The logarithmic search returns the bit-exact n of the linear
        scan (or fails on exactly the same inputs)."""
        bound = bound_k / 64
        tail = suffix_tail(weights)
        expected = (
            None if bound <= 0 else
            linear_prefix_for_tail(tail, bound, budget))
        cache = fresh_cache(weights)
        if expected is None:
            with pytest.raises((ApproximationError, ConvergenceError)):
                cache.smallest_prefix_for_tail(bound, budget)
        else:
            assert cache.smallest_prefix_for_tail(bound, budget) == expected

    @given(dyadic_weights, st.integers(min_value=1, max_value=65))
    @settings(max_examples=60, deadline=None)
    def test_distribution_prefix_for_tail_matches_linear(
            self, weights, bound_k):
        bound = bound_k / 64
        marginals = {R(i + 1): w for i, w in enumerate(weights)}
        d = TableFactDistribution(marginals)
        expected = linear_prefix_for_tail(d.tail, bound, len(weights))
        assert d.prefix_for_tail(bound) == expected


class TestDistributionCaching:
    @given(dyadic_weights, st.integers(min_value=1, max_value=25))
    @settings(max_examples=60, deadline=None)
    def test_cached_prefix_identical_to_fresh(self, weights, n):
        marginals = {R(i + 1): w for i, w in enumerate(weights)}
        warm = TableFactDistribution(marginals)
        warm.prefix(max(1, n // 2))  # partially materialize first
        fresh = TableFactDistribution(marginals)
        assert warm.prefix(n) == fresh.prefix(n)
        assert warm.marginals_dict(n) == fresh.marginals_dict(n)

    def test_geometric_repeated_prefixes_stable(self):
        d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        first = d.prefix(6)
        assert d.prefix(6) == first
        assert d.prefix(3) == first[:3]

    def test_pdb_with_live_cache_still_pickles(self):
        pdb = CountableTIPDB(
            schema, TableFactDistribution({R(1): 0.5, R(2): 0.25}))
        pdb.distribution.prefix(2)  # cache now holds a live generator
        clone = pickle.loads(pickle.dumps(pdb))
        assert clone.distribution.prefix(2) == pdb.distribution.prefix(2)


class TestBackends:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown prefix-cache backend"):
            fresh_cache([0.5], backend="exotic")

    def test_numpy_backend_requires_numpy(self, monkeypatch):
        # Backend resolution now lives in the columnar layer; starve it
        # of numpy there.
        import repro.relational.columns as columns

        monkeypatch.setattr(columns, "numpy_or_none", lambda: None)
        with pytest.raises(ValueError, match=r"\[fast\]"):
            fresh_cache([0.5], backend="numpy")
        assert fresh_cache([0.5], backend="auto").backend == "python"

    def test_python_backend_rejects_weights_array(self):
        cache = fresh_cache([0.5], backend="python")
        with pytest.raises(ValueError, match="numpy backend"):
            cache.weights_array()

    @given(dyadic_weights, st.integers(min_value=0, max_value=25))
    @settings(max_examples=40, deadline=None)
    def test_numpy_cumulative_matches_python(self, weights, n):
        if pc._numpy_or_none() is None:
            pytest.skip("numpy not installed")
        python_cache = fresh_cache(weights, backend="python")
        numpy_cache = fresh_cache(weights, backend="numpy")
        assert numpy_cache.cumulative_mass(n) == pytest.approx(
            python_cache.cumulative_mass(n), abs=1e-12)

    def test_numpy_weights_array_tracks_extensions(self):
        if pc._numpy_or_none() is None:
            pytest.skip("numpy not installed")
        cache = fresh_cache([0.5, 0.25, 0.125], backend="numpy")
        cache.extend_to(2)
        assert list(cache.weights_array()) == [0.5, 0.25]
        cache.extend_to(3)
        assert list(cache.weights_array()) == [0.5, 0.25, 0.125]

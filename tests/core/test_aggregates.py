"""Tests for expected answer counts over countable PDBs."""

import pytest

from repro.core.aggregates import (
    ExpectedCount,
    exact_relation_expected_count,
    expected_answer_count,
)
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError
from repro.logic import Query, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


class TestExactRelationCount:
    def test_sums_relation_marginals(self):
        pdb = CountableTIPDB(schema, TableFactDistribution({
            R(1): 0.5, R(2): 0.25, S(1, 1): 0.9,
        }))
        assert exact_relation_expected_count("R", pdb) == pytest.approx(0.75)
        assert exact_relation_expected_count("S", pdb) == pytest.approx(0.9)

    def test_matches_size_for_single_relation(self):
        single = Schema.of(R=1)
        pdb = CountableTIPDB(
            single,
            GeometricFactDistribution(
                FactSpace(single, Naturals()), first=0.5, ratio=0.5))
        assert exact_relation_expected_count("R", pdb) == pytest.approx(
            pdb.expected_size(), abs=1e-9)


class TestExpectedAnswerCount:
    def test_atomic_query(self):
        pdb = CountableTIPDB(schema, TableFactDistribution({
            R(1): 0.5, R(2): 0.25,
        }))
        query = Query(parse_formula("R(x)", schema), schema)
        result = expected_answer_count(query, pdb, epsilon=0.001)
        assert result.value == pytest.approx(0.75, abs=result.error)

    def test_join_query(self):
        pdb = CountableTIPDB(schema, TableFactDistribution({
            R(1): 0.5, S(1, 2): 0.5, S(1, 3): 0.5,
        }))
        # Q(x, y) = R(x) ∧ S(x, y): answers (1,2) and (1,3), each 0.25.
        query = Query(parse_formula("R(x) AND S(x, y)", schema), schema)
        result = expected_answer_count(query, pdb, epsilon=0.001)
        assert result.value == pytest.approx(0.5, abs=0.05)

    def test_error_bound_reported(self):
        pdb = CountableTIPDB(
            schema,
            GeometricFactDistribution(
                FactSpace(schema, Naturals()), first=0.5, ratio=0.5))
        query = Query(parse_formula("R(x)", schema), schema)
        result = expected_answer_count(query, pdb, epsilon=0.01)
        assert isinstance(result, ExpectedCount)
        assert result.error > 0 and result.truncation > 0

    def test_boolean_query_rejected(self):
        pdb = CountableTIPDB(schema, TableFactDistribution({R(1): 0.5}))
        query = Query(parse_formula("EXISTS x. R(x)", schema), schema)
        with pytest.raises(ApproximationError):
            expected_answer_count(query, pdb)

    def test_unguarded_query_rejected(self):
        pdb = CountableTIPDB(schema, TableFactDistribution({R(1): 0.5}))
        # x and y never co-occur in one atom: tail facts could witness
        # unboundedly many answers.
        query = Query(parse_formula("R(x) AND R(y)", schema), schema)
        with pytest.raises(ApproximationError):
            expected_answer_count(query, pdb)

"""Tests verifying the Theorem 4.8 construction (Lemmas 4.3, 4.4,
Corollary 4.7, and the necessity direction)."""

import itertools
import math
import random

import pytest

from repro.core.fact_distribution import (
    DivergentFactDistribution,
    GeometricFactDistribution,
    TableFactDistribution,
    ZetaFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ConvergenceError
from repro.relational import Instance, Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


def geometric_pdb(first=0.5, ratio=0.5):
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=first, ratio=ratio))


class TestExistenceCharacterization:
    """Theorem 4.8: a countable t.i. PDB exists iff Σ p_f converges."""

    def test_convergent_family_accepted(self):
        assert geometric_pdb() is not None

    def test_divergent_family_rejected(self):
        with pytest.raises(ConvergenceError):
            CountableTIPDB(schema, DivergentFactDistribution(space))

    def test_zeta_accepted(self):
        pdb = CountableTIPDB(
            schema, ZetaFactDistribution(space, exponent=2.0, scale=0.5))
        assert pdb.expected_size() < math.inf


class TestLemma43MeasureSumsToOne:
    """Lemma 4.3: Σ_D P({D}) = 1."""

    def test_finite_support_exact(self):
        pdb = CountableTIPDB.from_marginals(
            schema, {R(i): 0.1 * i for i in range(1, 5)})
        total = sum(mass for _, mass in pdb.worlds())
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_infinite_support_converges_to_one(self):
        pdb = geometric_pdb()
        masses = [mass for _, mass in itertools.islice(pdb.worlds(), 2**10)]
        assert sum(masses) == pytest.approx(1.0, abs=1e-2)
        # More worlds → closer to 1 (monotone from below).
        more = [mass for _, mass in itertools.islice(pdb.worlds(), 2**14)]
        assert sum(more) > sum(masses)

    def test_world_enumeration_has_no_duplicates(self):
        pdb = geometric_pdb()
        seen = [world for world, _ in itertools.islice(pdb.worlds(), 300)]
        assert len(seen) == len(set(seen))


class TestLemma44MarginalsAndIndependence:
    """Lemma 4.4: P(E_f) = p_f and the events E_f are independent."""

    def test_marginals_match_specification(self):
        pdb = geometric_pdb()
        for i in range(1, 6):
            assert pdb.marginal(R(i)) == pytest.approx(0.5**i)

    def test_marginal_via_world_enumeration(self):
        """The closed-form marginal agrees with summing world masses."""
        pdb = geometric_pdb()
        enumerated = pdb.probability(lambda D: R(1) in D, tolerance=1e-4)
        assert enumerated == pytest.approx(0.5, abs=1e-3)

    def test_joint_equals_product(self):
        """P(E_{f1} ∩ E_{f2}) = p_{f1} · p_{f2} by direct summation."""
        pdb = geometric_pdb()
        joint = pdb.probability(
            lambda D: R(1) in D and R(2) in D, tolerance=1e-4)
        assert joint == pytest.approx(0.5 * 0.25, abs=1e-3)

    def test_triple_joint(self):
        pdb = geometric_pdb()
        joint = pdb.probability(
            lambda D: R(1) in D and R(2) in D and R(3) in D, tolerance=1e-4)
        assert joint == pytest.approx(0.5 * 0.25 * 0.125, abs=1e-3)

    def test_complement_events_independent(self):
        pdb = geometric_pdb()
        joint = pdb.probability(
            lambda D: R(1) not in D and R(2) in D, tolerance=1e-4)
        assert joint == pytest.approx(0.5 * 0.25, abs=1e-3)


class TestInstanceProbability:
    def test_product_formula_certified_bounds(self):
        pdb = geometric_pdb()
        low, high = pdb.instance_probability_bounds(Instance([R(1)]))
        # P({R(1)}) = 0.5 · Π_{i≥2}(1 − 2^{-i}).
        reference = 0.5 * math.prod(1 - 0.5**i for i in range(2, 60))
        assert low - 1e-12 <= reference <= high + 1e-12
        assert high - low < 1e-9

    def test_empty_world_positive(self):
        """P({∅}) = Π(1 − p_f) > 0 whenever Σ p_f < ∞ and p_f < 1."""
        pdb = geometric_pdb()
        assert pdb.empty_world_probability() > 0.2

    def test_impossible_fact_gives_zero(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        assert pdb.instance_probability(Instance([R(7)])) == 0.0


class TestCorollary47FiniteExpectedSize:
    def test_expected_size_is_sum(self):
        pdb = geometric_pdb()
        assert pdb.expected_size() == pytest.approx(1.0)

    def test_empirical_expected_size(self):
        pdb = geometric_pdb()
        rng = random.Random(31)
        sizes = [pdb.sample(rng).size for _ in range(4000)]
        assert sum(sizes) / len(sizes) == pytest.approx(1.0, abs=0.08)

    def test_always_finite(self):
        heavy = CountableTIPDB(
            schema, ZetaFactDistribution(space, exponent=1.5, scale=0.9))
        assert math.isfinite(heavy.expected_size())


class TestSampling:
    def test_sampled_marginals(self):
        pdb = geometric_pdb()
        rng = random.Random(32)
        samples = [pdb.sample(rng) for _ in range(4000)]
        for i, expected in [(1, 0.5), (2, 0.25), (3, 0.125)]:
            rate = sum(1 for s in samples if R(i) in s) / len(samples)
            assert abs(rate - expected) < 0.03, i

    def test_sampled_independence(self):
        pdb = geometric_pdb()
        rng = random.Random(33)
        samples = [pdb.sample(rng) for _ in range(6000)]
        both = sum(1 for s in samples if R(1) in s and R(2) in s) / len(samples)
        assert abs(both - 0.125) < 0.02

    def test_samples_are_finite_instances(self):
        """Borel–Cantelli in action: every sample is a finite instance."""
        pdb = geometric_pdb()
        rng = random.Random(34)
        assert all(pdb.sample(rng).size < 50 for _ in range(200))


class TestTruncation:
    def test_truncate_keeps_first_n_marginals(self):
        pdb = geometric_pdb()
        table = pdb.truncate(3)
        assert table.marginal(R(1)) == 0.5
        assert table.marginal(R(3)) == 0.125
        assert table.marginal(R(4)) == 0.0

    def test_truncation_is_conditional_distribution(self):
        """P(· | Ω_n) equals the truncated table's product measure: check
        on a concrete instance via the ratio of full-PDB quantities."""
        pdb = geometric_pdb()
        n = 4
        table = pdb.truncate(n)
        target = Instance([R(1), R(3)])
        full = pdb.instance_probability(target)
        omega_n = pdb.omega_n_probability(n)
        assert full / omega_n == pytest.approx(
            table.instance_probability(target), abs=1e-9)

    def test_omega_n_probability_increases_with_n(self):
        pdb = geometric_pdb()
        values = [pdb.omega_n_probability(n) for n in (1, 3, 6, 12)]
        assert values == sorted(values)
        assert values[-1] < 1.0


class TestWorldMassTail:
    def test_certified_tail_bounds_actual_remainder(self):
        pdb = geometric_pdb()
        counts = [2**k for k in range(3, 8)]
        for count in counts:
            enumerated = sum(
                mass for _, mass in itertools.islice(pdb.worlds(), count))
            assert 1.0 - enumerated <= pdb._world_mass_tail(count) + 1e-9

"""RefinementSession: anytime ε-refinement must be bit-exact against
fresh one-shot approximation calls, while actually reusing prior work
(prefix materialization, in-place table growth, warm compilation)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.approx import (
    approximate_answer_marginals,
    approximate_query_probability,
    approximate_query_probability_bid,
    approximate_query_probability_completed,
)
from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.core.completion import complete
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
)
from repro.core.refine import REFINE_REUSED_FACTS, RefinementSession
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError, EvaluationError
from repro.finite.bid import Block
from repro.finite.compile_cache import CompileCache
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic import BooleanQuery, Query, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())

SWEEP = [0.2, 0.1, 0.05, 0.02, 0.01]

#: Dyadic marginals (k/64): exact floats, so "bit-exact" is meaningful.
dyadic_marginals = st.lists(
    st.integers(min_value=1, max_value=63).map(lambda k: k / 64),
    min_size=1, max_size=8,
)
epsilon_sequences = st.lists(
    st.sampled_from([0.3, 0.2, 0.15, 0.1, 0.05, 0.02, 0.01]),
    min_size=1, max_size=4,
)

QUERY_POOL = [
    "EXISTS x. R(x)",
    "NOT EXISTS x. R(x)",
    "R(1) OR R(2)",
]


def geometric_ti():
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.25, ratio=0.5))


def geometric_bid():
    Rel2 = Schema.of(R=2)["R"]
    family = BlockFamily.geometric(
        make_block=lambda i: Block(
            f"k{i}", {Rel2(i + 1, 1): 0.25 * 0.5**i,
                      Rel2(i + 1, 2): 0.25 * 0.5**i}),
        block_mass=lambda i: 0.5 * 0.5**i, first=0.5, ratio=0.5)
    return CountableBIDPDB(Schema.of(R=2), family)


def assert_same_result(got, expected):
    assert got.value == expected.value
    assert got.truncation == expected.truncation
    assert got.alpha == expected.alpha
    assert got.epsilon == expected.epsilon


class TestBooleanParity:
    def test_ti_sweep_matches_fresh_calls(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        for epsilon in SWEEP:
            refined = session.refine(epsilon)
            fresh = approximate_query_probability(
                query, geometric_ti(), epsilon)
            assert_same_result(refined, fresh)
        assert len(session.history) == len(SWEEP)

    def test_bid_sweep_matches_fresh_calls(self):
        bid_schema = Schema.of(R=2)
        query = BooleanQuery(
            parse_formula("EXISTS x, y. R(x, y)", bid_schema), bid_schema)
        session = RefinementSession(query, geometric_bid())
        for epsilon in SWEEP:
            refined = session.refine(epsilon)
            fresh = approximate_query_probability_bid(
                query, geometric_bid(), epsilon)
            assert_same_result(refined, fresh)

    def test_completed_sweep_matches_fresh_calls(self):
        table = TupleIndependentTable(schema, {R(1): 0.8})
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)

        def fresh_completed():
            return complete(table, GeometricFactDistribution(
                space, first=0.2, ratio=0.5))

        session = RefinementSession(query, fresh_completed())
        for epsilon in SWEEP:
            refined = session.refine(epsilon)
            fresh = approximate_query_probability_completed(
                query, fresh_completed(), epsilon)
            assert_same_result(refined, fresh)

    def test_loosened_epsilon_matches_fresh_call(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        session.refine(0.01)  # grow the truncation first
        loosened = session.refine(0.2)
        fresh = approximate_query_probability(query, geometric_ti(), 0.2)
        assert_same_result(loosened, fresh)

    def test_compiled_strategy_parity_with_private_cache(self):
        marginals = {R(i): 0.5 for i in range(1, 15)}
        pdb = CountableTIPDB(schema, TableFactDistribution(marginals))
        # Self-join disjunction: unsafe, so "bdd" is the realistic path.
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x) AND (R(1) OR R(2))", schema),
            schema)
        session = RefinementSession(
            query, pdb, strategy="bdd", compile_cache=CompileCache())
        for epsilon in [0.2, 0.05, 0.01]:
            refined = session.refine(epsilon)
            fresh = approximate_query_probability(
                query,
                CountableTIPDB(schema, TableFactDistribution(marginals)),
                epsilon, strategy="bdd")
            assert_same_result(refined, fresh)

    @given(dyadic_marginals, epsilon_sequences,
           st.sampled_from(QUERY_POOL))
    @settings(max_examples=40, deadline=None)
    def test_random_sessions_match_fresh_calls(self, ps, epsilons, text):
        marginals = {R(i + 1): p for i, p in enumerate(ps)}
        query = BooleanQuery(parse_formula(text, schema), schema)
        session = RefinementSession(
            query, CountableTIPDB(schema, TableFactDistribution(marginals)))
        for epsilon in epsilons:
            refined = session.refine(epsilon)
            fresh = approximate_query_probability(
                query,
                CountableTIPDB(schema, TableFactDistribution(marginals)),
                epsilon)
            assert_same_result(refined, fresh)


class TestAnswerMarginalParity:
    @given(dyadic_marginals, epsilon_sequences)
    @settings(max_examples=25, deadline=None)
    def test_refine_marginals_matches_fresh_calls(self, ps, epsilons):
        marginals = {R(i + 1): p for i, p in enumerate(ps)}
        query = Query(parse_formula("R(x)", schema), schema)
        session = RefinementSession(
            query, CountableTIPDB(schema, TableFactDistribution(marginals)))
        for epsilon in epsilons:
            refined = session.refine_marginals(epsilon)
            fresh = approximate_answer_marginals(
                query,
                CountableTIPDB(schema, TableFactDistribution(marginals)),
                epsilon)
            assert set(refined) == set(fresh)
            for answer in fresh:
                assert_same_result(refined[answer], fresh[answer])

    def test_boolean_query_routes_through_refine(self):
        query = Query(parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        results = session.refine_marginals(0.05)
        assert set(results) == {()}
        fresh = approximate_query_probability(
            BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema),
            geometric_ti(), 0.05)
        assert_same_result(results[()], fresh)

    def test_unsafe_query_warm_grounding_chain(self):
        # The unpinned/pinned S self-join grounds to a sentence with no
        # safe plan (the copies of S cannot be shattered apart), so the
        # fan-out compiles through the session's SharedGrounding chain.
        schema2 = Schema.of(R=1, S=2)
        R2, S2 = schema2["R"], schema2["S"]
        marginals = {R2(i): 0.5 for i in range(1, 4)}
        marginals.update({S2(1, 2): 0.4, S2(2, 2): 0.3, S2(3, 1): 0.6})
        query = Query(
            parse_formula(
                "EXISTS y, z. R(y) AND S(y, z) AND S(x, z)", schema2),
            schema2)
        session = RefinementSession(
            query, CountableTIPDB(schema2, TableFactDistribution(marginals)))
        for epsilon in [0.2, 0.02]:
            refined = session.refine_marginals(epsilon)
            fresh = approximate_answer_marginals(
                query,
                CountableTIPDB(schema2, TableFactDistribution(marginals)),
                epsilon)
            assert set(refined) == set(fresh)
            for answer in fresh:
                assert_same_result(refined[answer], fresh[answer])
        assert session._grounding is not None  # the chain actually ran


class TestSessionMechanics:
    def test_reuse_counter_reports_prior_truncation(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        first = session.refine(0.2)
        assert first.report.counters[REFINE_REUSED_FACTS] == 0
        second = session.refine(0.01)
        assert second.truncation > first.truncation
        assert (second.report.counters[REFINE_REUSED_FACTS]
                == first.truncation)

    def test_repeated_epsilon_reuses_whole_table(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        first = session.refine(0.05)
        again = session.refine(0.05)
        assert_same_result(again, first)
        assert (again.report.counters[REFINE_REUSED_FACTS]
                == first.truncation)

    def test_sweep_orders_loosest_first(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        results = session.sweep([0.01, 0.2, 0.05, 0.2])
        assert list(results) == [0.2, 0.05, 0.01]
        truncations = [results[e].truncation for e in results]
        assert truncations == sorted(truncations)

    def test_refine_to_halves_the_width(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        result = session.refine_to(0.1)
        assert result.epsilon == 0.05
        assert result.high - result.low <= 0.1 + 1e-12

    def test_free_variables_rejected_by_refine(self):
        query = Query(parse_formula("R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        with pytest.raises(EvaluationError, match="refine_marginals"):
            session.refine(0.1)

    def test_unsupported_pdb_rejected(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        with pytest.raises(EvaluationError, match="refinement sessions"):
            RefinementSession(
                query, TupleIndependentTable(schema, {R(1): 0.5}))

    def test_invalid_epsilon_rejected(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti())
        with pytest.raises(ApproximationError, match="Proposition 6.1"):
            session.refine(0.7)

    def test_budget_exhaustion_carries_epsilon_context(self):
        query = BooleanQuery(
            parse_formula("EXISTS x. R(x)", schema), schema)
        session = RefinementSession(query, geometric_ti(), max_facts=3)
        with pytest.raises(ApproximationError) as excinfo:
            session.refine(1e-9)
        assert "epsilon=1e-09" in str(excinfo.value)
        assert excinfo.value.achieved_tail is not None

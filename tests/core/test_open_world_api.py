"""Tests for the one-call open_world convenience API."""

import pytest

from repro import open_world
from repro.core.completion import verify_completion_condition
from repro.errors import CompletionError
from repro.finite import TupleIndependentTable
from repro.relational import Schema
from repro.universe import FiniteUniverse

schema = Schema.of(R=2)
R = schema["R"]


def base_table():
    return TupleIndependentTable(schema, {R(1, 1): 0.9, R(2, 1): 0.3})


class TestOpenWorld:
    def test_completion_condition_holds(self):
        completed = open_world(base_table())
        assert verify_completion_condition(completed) < 1e-9

    def test_total_open_mass_respected(self):
        for budget in (0.1, 0.5, 1.5):
            completed = open_world(base_table(), total_open_mass=budget)
            assert completed.new_facts.expected_size() <= budget + 1e-9

    def test_all_well_shaped_facts_possible(self):
        completed = open_world(base_table(), total_open_mass=0.5)
        assert completed.fact_marginal(R(5, 5)) > 0.0

    def test_decay_controls_concentration(self):
        concentrated = open_world(base_table(), decay=0.2)
        spread = open_world(base_table(), decay=0.9)
        # Same budget, different profiles: the concentrated family puts
        # more mass on the first unseen fact.
        first_unseen = next(
            f for f, _ in concentrated.new_facts.distribution.prefix(1))
        assert concentrated.fact_marginal(first_unseen) > \
            spread.fact_marginal(first_unseen)

    def test_typed_universe(self):
        completed = open_world(
            base_table(),
            position_universes={
                "R": (FiniteUniverse([1, 2, 3]), FiniteUniverse([1, 2, 3]))},
            universe=FiniteUniverse([1, 2, 3]),
        )
        assert completed.fact_marginal(R(3, 3)) > 0.0
        assert completed.fact_marginal(R(9, 9)) == 0.0

    def test_parameter_validation(self):
        with pytest.raises(CompletionError):
            open_world(base_table(), total_open_mass=0.0)
        with pytest.raises(CompletionError):
            open_world(base_table(), decay=1.0)
        with pytest.raises(CompletionError):
            open_world(base_table(), total_open_mass=100.0, decay=0.5)

    def test_original_marginals_preserved(self):
        completed = open_world(base_table())
        assert completed.fact_marginal(R(1, 1)) == pytest.approx(0.9)
        assert completed.fact_marginal(R(2, 1)) == pytest.approx(0.3)

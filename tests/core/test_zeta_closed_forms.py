"""Tests for the zeta-family closed forms and the enumeration back-off
for slowly converging tails."""

import itertools
import math

import pytest

from repro.core.fact_distribution import ZetaFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.relational import Instance, Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


def zeta_pdb(exponent=2.0, scale=0.5):
    return CountableTIPDB(
        schema, ZetaFactDistribution(space, exponent=exponent, scale=scale))


class TestClosedFormComplement:
    def test_matches_long_direct_sum(self):
        d = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
        closed = d.log_complement_product()
        direct = sum(
            math.log1p(-0.5 / i**2) for i in range(1, 2 * 10**5)
        )
        # Direct misses i ≥ 2·10⁵: remaining ≈ 0.5/(2·10⁵) = 2.5e-6.
        assert closed == pytest.approx(direct, abs=1e-5)

    def test_scale_one_gives_zero_product(self):
        d = ZetaFactDistribution(space, exponent=2.0, scale=1.0)
        assert d.log_complement_product() == -math.inf

    def test_empty_world_probability_exact(self):
        pdb = zeta_pdb()
        value = pdb.empty_world_probability()
        assert 0.0 < value < 1.0
        # Consistency with the distribution-level closed form.
        assert value == pytest.approx(math.exp(
            pdb.distribution.log_complement_product()), rel=1e-12)

    def test_instance_probability_exact_bounds(self):
        pdb = zeta_pdb()
        low, high = pdb.instance_probability_bounds(Instance([R(1)]))
        assert low == high  # closed form: exact, no truncation slack
        # P({R(1)}) = (p/(1−p)) · Π(1−p_i) with p = 0.5.
        assert high == pytest.approx(
            pdb.empty_world_probability() * 1.0, rel=1e-9)


class TestEnumerationBackOff:
    def test_worlds_enumerable_despite_slow_tail(self):
        pdb = zeta_pdb()
        worlds = list(itertools.islice(pdb.worlds(), 200))
        assert len(worlds) == 200
        assert len({w for w, _ in worlds}) == 200

    def test_running_mass_approaches_one(self):
        pdb = zeta_pdb()
        mass = sum(m for _, m in itertools.islice(pdb.worlds(), 2**12))
        assert mass > 0.9

    def test_mass_tail_still_sound(self):
        pdb = zeta_pdb()
        for count in (2**4, 2**8, 2**12):
            enumerated = sum(
                m for _, m in itertools.islice(pdb.worlds(), count))
            assert 1.0 - enumerated <= pdb._world_mass_tail(count) + 1e-9

    def test_event_probability_with_coarse_tolerance(self):
        pdb = zeta_pdb()
        marginal = pdb.probability(lambda D: R(1) in D, tolerance=0.05)
        assert marginal == pytest.approx(0.5, abs=0.06)

"""Tests for views on countable PDBs and the Proposition 4.9 gap."""

import math

import pytest

from repro.core.size import example_3_3_pdb
from repro.core.tuple_independent import CountableTIPDB
from repro.core.views import apply_fo_view_countable, fo_view_size_bound
from repro.core.fact_distribution import GeometricFactDistribution
from repro.logic import FOView, parse_formula
from repro.relational import Instance, Schema
from repro.universe import FactSpace, Naturals

source = Schema.of(R=2)
R = source["R"]
target = Schema.of(T=1)
T = target["T"]


def head_view():
    return FOView(source, target,
                  {"T": parse_formula("EXISTS y. R(x, y)", source)})


class TestApplyView:
    def test_finite_support_pushforward(self):
        pdb = CountableTIPDB.from_marginals(
            source, {R(1, 1): 0.5, R(1, 2): 0.5})
        image = apply_fo_view_countable(head_view(), pdb)
        assert image.fact_marginal(T(1), tolerance=1e-9) == pytest.approx(0.75)

    def test_instance_probability_aggregates_preimages(self):
        pdb = CountableTIPDB.from_marginals(
            source, {R(1, 1): 0.5, R(1, 2): 0.5})
        image = apply_fo_view_countable(head_view(), pdb)
        # {T(1)} arises from three worlds: {R(1,1)}, {R(1,2)}, both.
        assert image.instance_probability(Instance([T(1)])) == pytest.approx(0.75)

    def test_infinite_support_pushforward(self):
        space = FactSpace(source, Naturals())
        pdb = CountableTIPDB(
            source, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        image = apply_fo_view_countable(head_view(), pdb)
        first_fact = space.prefix(1)[0]
        marginal = image.probability(
            lambda D: T(first_fact.args[0]) in D, tolerance=1e-4)
        assert 0.4 < marginal < 0.75  # ≥ p of the first R-fact alone


class TestProposition49:
    """Not every countable PDB is FO-definable over a t.i. PDB: any
    FO view of any t.i. PDB has finite expected size, while Example 3.3
    has E(S) = ∞."""

    def test_ti_view_bound_is_finite(self):
        space = FactSpace(source, Naturals())
        pdb = CountableTIPDB(
            source, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        bound = fo_view_size_bound(head_view(), pdb)
        assert math.isfinite(bound)

    def test_bound_formula_unary_case(self):
        """For a unary target, bound = k·E(S) + c exactly."""
        pdb = CountableTIPDB.from_marginals(source, {R(1, 2): 0.5})
        view = FOView(source, target,
                      {"T": parse_formula("EXISTS y. R(x, y) AND R(x, 7)",
                                          source)})
        bound = fo_view_size_bound(view, pdb)
        assert bound == pytest.approx(2 * 0.5 + 1)  # k=2, E(S)=0.5, c=1

    def test_example_3_3_exceeds_every_ti_bound(self):
        """The quantitative contradiction: partial sums of Example 3.3's
        expected size eventually exceed the (finite) view bound of any
        given t.i. PDB."""
        space = FactSpace(source, Naturals())
        pdb = CountableTIPDB(
            source, GeometricFactDistribution(space, first=0.9, ratio=0.9))
        bound = fo_view_size_bound(head_view(), pdb)
        example = example_3_3_pdb()
        partial = example.partial_expected_size(40)
        assert partial > bound

    def test_actual_view_size_respects_bound(self):
        """E(‖V(C)‖) for the concrete view stays below the bound."""
        pdb = CountableTIPDB.from_marginals(
            source, {R(1, 1): 0.5, R(2, 1): 0.5, R(2, 2): 0.5})
        image = apply_fo_view_countable(head_view(), pdb)
        expected_image_size = image.expected_size(tolerance=1e-9)
        assert expected_image_size <= fo_view_size_bound(head_view(), pdb)

"""Tests for TM-represented PDBs and the Proposition 6.2 reduction."""

import math

import pytest

from repro.core.tm_represented import (
    TM_SCHEMA,
    TMRepresentedDistribution,
    TuringMachine,
    exists_r_probability,
    machine_accept_all,
    machine_accept_slowly,
    machine_empty_language,
    multiplicative_gap_demonstration,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.utils.enumeration import paper_pair


class TestTuringMachine:
    def test_accept_all(self):
        machine = machine_accept_all()
        assert machine.accepts("", 1) and machine.accepts("0101", 1)

    def test_empty_language_never_accepts(self):
        machine = machine_empty_language()
        assert not machine.accepts("", 1000)
        assert not machine.accepts("11", 1000)

    def test_still_running_is_none(self):
        machine = machine_empty_language()
        assert machine.run("0", 10) is None

    def test_slow_acceptor_needs_budget(self):
        machine = machine_accept_slowly(5)
        assert not machine.accepts("0", 3)
        assert machine.accepts("0", 10)

    def test_explicit_machine(self):
        """A machine accepting exactly words starting with 1."""
        machine = TuringMachine(
            {("q0", "1"): ("acc", "1", 0)},
            start="q0",
            accept_state="acc",
        )
        assert machine.accepts("10", 5)
        assert not machine.accepts("01", 5)
        assert not machine.accepts("", 5)

    def test_invalid_move_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            TuringMachine({("q", "0"): ("q", "0", 2)}, "q", "acc")


class TestReductionDistribution:
    def test_weight_exactly_one(self):
        d = TMRepresentedDistribution(machine_accept_all())
        assert d.total_mass() == 1.0
        prefix_mass = sum(p for _, p in d.prefix(30))
        assert prefix_mass == pytest.approx(1.0, abs=1e-8)

    def test_each_index_one_fact(self):
        """Exactly one of R(k)/S(k) carries the 2^{-k} mass."""
        d = TMRepresentedDistribution(machine_accept_all())
        R, S = TM_SCHEMA["R"], TM_SCHEMA["S"]
        for k in range(1, 15):
            r_mass = d.probability(R(k))
            s_mass = d.probability(S(k))
            assert (r_mass, s_mass).count(0.0) == 1
            assert r_mass + s_mass == pytest.approx(2.0**-k)

    def test_empty_language_all_mass_on_s(self):
        d = TMRepresentedDistribution(machine_empty_language())
        R = TM_SCHEMA["R"]
        assert all(d.probability(R(k)) == 0.0 for k in range(1, 40))

    def test_accept_all_puts_mass_on_r_for_large_t(self):
        d = TMRepresentedDistribution(machine_accept_all())
        R = TM_SCHEMA["R"]
        # k = ⟨1, 2⟩ has word rank 1 and budget 2: accepted instantly.
        k = paper_pair(1, 2)
        assert d.probability(R(k)) == 2.0**-k

    def test_usable_as_countable_ti_pdb(self):
        """The reduction output is a bona fide t.i. PDB (weight 1 < ∞)."""
        pdb = CountableTIPDB(TM_SCHEMA, TMRepresentedDistribution(
            machine_accept_all()))
        assert pdb.expected_size() == 1.0


class TestProposition62:
    def test_zero_iff_empty_language(self):
        """Pr(∃x R(x)) = 0 ⟺ L(N) = ∅ (evaluated on deep truncations)."""
        empty = TMRepresentedDistribution(machine_empty_language())
        nonempty = TMRepresentedDistribution(machine_accept_all())
        assert exists_r_probability(empty, 128) == 0.0
        assert exists_r_probability(nonempty, 128) > 0.0

    def test_additive_approximation_fine(self):
        """Prop 6.1 additive approximation works on these PDBs: the
        answer 0 is within every ε of the truth for the empty machine."""
        from repro.core.approx import approximate_query_probability
        from repro.logic import BooleanQuery, parse_formula

        pdb = CountableTIPDB(TM_SCHEMA, TMRepresentedDistribution(
            machine_empty_language()))
        q = BooleanQuery(
            parse_formula("EXISTS x. R(x)", TM_SCHEMA), TM_SCHEMA)
        result = approximate_query_probability(q, pdb, 0.01)
        assert result.value == pytest.approx(0.0, abs=0.01)

    def test_multiplicative_gap_unbounded(self):
        """A budget-limited evaluator reports 0 while the truth is
        positive once acceptance hides deep enough: the ratio is ∞, so
        no constant c can bound it (Proposition 6.2)."""
        gaps = multiplicative_gap_demonstration(
            delays=[0, 30, 120], depth_budget=16)
        # Fast acceptor: estimate positive (no gap).
        estimate0, truth0 = gaps[0]
        assert estimate0 > 0 and truth0 > 0
        # Slow acceptors: estimate 0, truth > 0 — infinite ratio.
        for delay in (30, 120):
            estimate, truth = gaps[delay]
            assert estimate == 0.0 and truth > 0.0

    def test_upper_bound_from_inspection(self):
        d = TMRepresentedDistribution(machine_empty_language())
        # The unseen tail keeps the bound positive but shrinking.
        bounds = [d.r_probability_upper_bound(depth) for depth in (1, 5, 20)]
        assert bounds == sorted(bounds, reverse=True)
        assert bounds[-1] < 1e-5

"""Tests for the CountablePDB base machinery (Definition 3.1 generic)."""

import itertools
import math
import random

import pytest

from repro.core.pdb import CountablePDB
from repro.errors import ProbabilityError
from repro.relational import Instance, Schema

schema = Schema.of(R=1)
R = schema["R"]


def finite_pdb():
    return CountablePDB(
        schema,
        lambda: iter([
            (Instance(), 0.25),
            (Instance([R(1)]), 0.5),
            (Instance([R(1), R(2)]), 0.25),
        ]),
        exhaustive=True,
    )


def geometric_world_pdb():
    """World {R(1..n)} with probability 2^{-n}, n ≥ 1 — plus ∅ never."""
    def worlds():
        for n in itertools.count(1):
            yield Instance(R(i) for i in range(1, n + 1)), 2.0**-n

    return CountablePDB(
        schema, worlds, exhaustive=False, mass_tail=lambda n: 2.0**-n)


class TestMeasure:
    def test_instance_probability_scan(self):
        pdb = finite_pdb()
        assert pdb.instance_probability(Instance([R(1)])) == 0.5
        assert pdb.instance_probability(Instance([R(9)])) == 0.0

    def test_event_probability(self):
        assert finite_pdb().probability(lambda D: D.size >= 1) == pytest.approx(0.75)

    def test_infinite_event_probability_with_tail(self):
        pdb = geometric_world_pdb()
        p_even = pdb.probability(lambda D: D.size % 2 == 0, tolerance=1e-9)
        assert p_even == pytest.approx(1.0 / 3.0, abs=1e-8)

    def test_budget_exceeded_raises(self):
        def stubborn():
            for n in itertools.count(1):
                yield Instance([R(n)]), 0.0

        pdb = CountablePDB(schema, stubborn, exhaustive=False)
        with pytest.raises(ProbabilityError):
            pdb.probability(lambda D: True, max_worlds=50)


class TestFactEvents:
    def test_fact_marginal(self):
        assert finite_pdb().fact_marginal(R(1)) == pytest.approx(0.75)
        assert finite_pdb().fact_marginal(R(2)) == pytest.approx(0.25)

    def test_fact_set_marginal(self):
        """E_F = "some fact of F occurs" (Definition 3.1)."""
        pdb = finite_pdb()
        assert pdb.fact_set_marginal({R(1), R(2)}) == pytest.approx(0.75)
        assert pdb.fact_set_marginal({R(9)}) == 0.0

    def test_positive_probability_facts_enumerable(self):
        """Proposition 3.4 made effective: F_ω is enumerable by scanning
        positive-mass worlds."""
        pdb = geometric_world_pdb()
        facts = pdb.positive_probability_facts(limit=5)
        assert facts[:2] == [R(1), R(2)]
        assert len(facts) == 5


class TestSizeStatistics:
    def test_size_distribution(self):
        dist = finite_pdb().size_distribution(max_size=2)
        assert dist == {0: pytest.approx(0.25), 1: pytest.approx(0.5),
                        2: pytest.approx(0.25)}

    def test_size_tail_monotone_to_zero(self):
        pdb = geometric_world_pdb()
        tails = [pdb.size_tail(n, tolerance=1e-8) for n in (1, 3, 8)]
        assert tails == sorted(tails, reverse=True)
        assert tails[-1] == pytest.approx(2.0**-7, abs=1e-6)

    def test_expected_size_finite_case(self):
        assert finite_pdb().expected_size() == pytest.approx(1.0)

    def test_expected_size_infinite_enumeration(self):
        # E[size] = Σ n·2^{-n} = 2.
        assert geometric_world_pdb().expected_size(
            tolerance=1e-10) == pytest.approx(2.0, abs=1e-7)


class TestSampling:
    def test_finite_sampling(self):
        pdb = finite_pdb()
        rng = random.Random(91)
        samples = [pdb.sample(rng) for _ in range(3000)]
        rate = sum(1 for s in samples if s.size == 1) / len(samples)
        assert abs(rate - 0.5) < 0.03

    def test_infinite_sampling(self):
        pdb = geometric_world_pdb()
        rng = random.Random(92)
        sizes = [pdb.sample(rng).size for _ in range(2000)]
        assert abs(sizes.count(1) / 2000 - 0.5) < 0.04

    def test_as_space_round_trip(self):
        space = finite_pdb().as_space()
        assert space.probability_of(Instance([R(1)])) == 0.5

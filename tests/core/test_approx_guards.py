"""Regression tests for the approximation-pipeline correctness sweep:

* ``strategy="sampled"`` results fold the Monte-Carlo error into the
  ``[low, high]`` enclosure, with both error components surfaced;
* ``prefix_for_tail`` / ``choose_truncation`` raise
  :class:`~repro.errors.ApproximationError` (with the achieved tail
  mass) when the enumeration budget runs out, instead of silently
  returning an uncertified truncation — and the BID ``max_blocks``
  analogue does the same.
"""

import pytest

from repro.core.approx import (
    ApproximationResult,
    approximate_query_probability,
    approximate_query_probability_bid,
    choose_truncation,
)
from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    ZetaFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError, ConvergenceError
from repro.finite.bid import Block
from repro.logic.parser import parse_formula
from repro.logic.queries import BooleanQuery
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)


def _geometric_pdb(first=0.25, ratio=0.5):
    space = FactSpace(schema, Naturals())
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=first, ratio=ratio))


def _exists_r():
    return BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)


# ------------------------------------------------- sampled-enclosure fix
def test_sampled_strategy_widens_the_enclosure():
    pdb = _geometric_pdb()
    exact = approximate_query_probability(
        _exists_r(), pdb, epsilon=0.05, strategy="auto")
    sampled = approximate_query_probability(
        _exists_r(), pdb, epsilon=0.05, strategy="sampled")
    # Exact conditional: no sampling allowance.
    assert exact.sampling_error == 0.0
    assert exact.low == max(0.0, exact.value - exact.epsilon)
    # Sampled conditional: a positive Monte-Carlo confidence bound is
    # surfaced separately and widens the enclosure beyond ±ε.
    assert sampled.sampling_error > 0.0
    assert sampled.epsilon == 0.05
    assert sampled.low == pytest.approx(
        max(0.0, sampled.value - 0.05 - sampled.sampling_error))
    assert sampled.high == pytest.approx(
        min(1.0, sampled.value + 0.05 + sampled.sampling_error))
    # The honest interval still contains the exact answer.
    assert sampled.contains(exact.value)
    # The attached report carries the same sampling allowance.
    assert sampled.report.sampling_error == pytest.approx(
        sampled.sampling_error)
    assert sampled.report.strategy == "sampled"


def test_sampling_error_defaults_to_zero_for_legacy_tuples():
    # 4-tuple construction (pre-sampling_error callers) still works.
    result = ApproximationResult(0.5, 0.01, 8, 0.012)
    assert result.sampling_error == 0.0
    assert result.low == pytest.approx(0.49)
    assert result.high == pytest.approx(0.51)


# ------------------------------------------- truncation-exhaustion guard
def test_prefix_for_tail_raises_with_achieved_tail():
    space = FactSpace(schema, Naturals())
    # Zeta tails decay polynomially: a tiny bound is unreachable in 50
    # facts.
    distribution = ZetaFactDistribution(space, exponent=2.5, scale=0.5)
    with pytest.raises(ApproximationError) as excinfo:
        distribution.prefix_for_tail(1e-12, max_facts=50)
    err = excinfo.value
    assert err.achieved_tail == pytest.approx(distribution.tail(50))
    assert "max_facts=50" in str(err)
    # Still reachable bounds keep working.
    assert distribution.prefix_for_tail(0.1, max_facts=10**5) > 0


def test_prefix_for_tail_invalid_bound_is_still_convergence_error():
    space = FactSpace(schema, Naturals())
    distribution = GeometricFactDistribution(space, first=0.25, ratio=0.5)
    with pytest.raises(ConvergenceError):
        distribution.prefix_for_tail(0.0)


def test_choose_truncation_propagates_exhaustion():
    space = FactSpace(schema, Naturals())
    distribution = ZetaFactDistribution(space, exponent=2.5, scale=0.5)
    with pytest.raises(ApproximationError) as excinfo:
        choose_truncation(distribution, epsilon=1e-9, max_facts=50)
    assert excinfo.value.achieved_tail is not None


def test_approximate_query_probability_exhaustion_propagates():
    pdb = _geometric_pdb()
    with pytest.raises(ApproximationError) as excinfo:
        approximate_query_probability(
            _exists_r(), pdb, epsilon=1e-9, max_facts=3)
    assert excinfo.value.achieved_tail == pytest.approx(
        pdb.distribution.tail(3))


# --------------------------------------------------- BID max_blocks guard
def _bid_pdb():
    bid_schema = Schema.of(T=2)
    T = bid_schema["T"]
    family = BlockFamily.geometric(
        make_block=lambda i: Block(
            f"k{i}", {T(i + 1, 1): 0.25 * 0.5**i, T(i + 1, 2): 0.25 * 0.5**i}),
        block_mass=lambda i: 0.5 * 0.5**i, first=0.5, ratio=0.5)
    return bid_schema, CountableBIDPDB(bid_schema, family)


def test_block_family_prefix_for_tail_raises_with_achieved_tail():
    _, pdb = _bid_pdb()
    with pytest.raises(ApproximationError) as excinfo:
        pdb.family.prefix_for_tail(1e-12, max_blocks=5)
    assert excinfo.value.achieved_tail == pytest.approx(pdb.family.tail(5))


def test_approximate_query_probability_bid_max_blocks_guard():
    bid_schema, pdb = _bid_pdb()
    q = BooleanQuery(
        parse_formula("EXISTS x, y. T(x, y)", bid_schema), bid_schema)
    with pytest.raises(ApproximationError) as excinfo:
        approximate_query_probability_bid(q, pdb, epsilon=1e-9, max_blocks=2)
    assert excinfo.value.achieved_tail == pytest.approx(pdb.family.tail(2))
    # A reachable budget still succeeds.
    result = approximate_query_probability_bid(q, pdb, epsilon=0.05)
    assert 0.0 < result.value < 1.0


def test_enumeration_back_off_still_works_after_the_guard_change():
    # Slow polynomial tails exhaust the tight bounds and back off — the
    # PDB must still enumerate worlds rather than propagate the new
    # ApproximationError out of the back-off loop.
    space = FactSpace(schema, Naturals())
    pdb = CountableTIPDB(schema, ZetaFactDistribution(space, exponent=3.0, scale=0.5))
    worlds = []
    for instance, mass in pdb.worlds():
        worlds.append((instance, mass))
        if len(worlds) >= 4:
            break
    assert worlds and all(mass > 0 for _, mass in worlds)

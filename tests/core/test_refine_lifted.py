"""ε-sweeps under ``strategy="auto"`` must reuse the session's cached
lifted plan across refinements (visible as ``lifted.plan_cache_hits`` in
the EvalReport) while agreeing bit-near with a stateless BDD sweep.
"""

import pytest

from repro.core.approx import approximate_query_probability
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    ZetaFactDistribution,
)
from repro.core.refine import RefinementSession
from repro.core.tuple_independent import CountableTIPDB
from repro.finite.compile_cache import CompileCache
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1, S=2)
space = FactSpace(schema, Naturals())

SWEEP = [0.2, 0.1, 0.05, 0.02]

QUERIES = [
    "EXISTS x. R(x)",
    "EXISTS x, y. R(x) AND S(x, y)",
    "(EXISTS x. R(x)) OR (EXISTS x, y. S(x, y))",
]


def distributions():
    return [
        GeometricFactDistribution(space, first=0.25, ratio=0.5),
        ZetaFactDistribution(space, exponent=2.0, scale=0.5),
    ]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


@pytest.mark.parametrize("kind", ["geometric", "zeta"])
@pytest.mark.parametrize("text", QUERIES)
def test_sweep_reuses_plan_and_matches_bdd(kind, text):
    distribution = dict(zip(["geometric", "zeta"], distributions()))[kind]
    pdb = CountableTIPDB(schema, distribution)
    session = RefinementSession(
        q(text), pdb, strategy="auto", compile_cache=CompileCache())
    results = [session.refine(epsilon) for epsilon in SWEEP]

    # The first refinement builds the plan; every later one must hit
    # the session cache instead of re-running the solver.
    first, rest = results[0], results[1:]
    assert first.report.counters.get("lifted.plans", 0) >= 1
    assert rest, "sweep needs at least two refinements"
    for result in rest:
        assert result.report.counters.get("lifted.plan_cache_hits", 0) > 0
        assert result.report.counters.get("lifted.plans", 0) == 0
        assert result.report.counters.get("lifted.unsafe_fallbacks", 0) == 0

    # Bit-near agreement with a stateless compiled-BDD sweep: same
    # truncation sizes, same probabilities.
    for epsilon, result in zip(SWEEP, results):
        fresh = approximate_query_probability(
            q(text), CountableTIPDB(schema, distribution), epsilon,
            strategy="bdd")
        assert result.truncation == fresh.truncation
        assert result.value == pytest.approx(fresh.value, abs=1e-12)


def test_unsafe_sweep_counts_fallbacks_not_cache_hits():
    # The pinned/unpinned S self-join has no safe plan: every
    # refinement must record a fallback, and the solver verdict itself
    # is cached (no repeated plan builds).
    text = "EXISTS x, z. R(x) AND S(x, z) AND S(1, z)"
    distribution = GeometricFactDistribution(space, first=0.25, ratio=0.5)
    session = RefinementSession(
        q(text), CountableTIPDB(schema, distribution),
        strategy="auto", compile_cache=CompileCache())
    for epsilon in [0.2, 0.05]:
        result = session.refine(epsilon)
        assert result.report.counters.get("lifted.unsafe_fallbacks", 0) >= 1
        fresh = approximate_query_probability(
            q(text), CountableTIPDB(schema, distribution), epsilon)
        assert result.value == pytest.approx(fresh.value, abs=1e-12)

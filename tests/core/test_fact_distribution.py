"""Tests for fact-probability families and their certificates."""

import itertools
import math

import pytest

from repro.core.fact_distribution import (
    DivergentFactDistribution,
    FilteredFactDistribution,
    GeometricFactDistribution,
    ScaledFactDistribution,
    TableFactDistribution,
    UnionFactDistribution,
    ZetaFactDistribution,
)
from repro.errors import ConvergenceError, ProbabilityError
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


class TestTableDistribution:
    def test_enumeration_by_decreasing_probability(self):
        d = TableFactDistribution({R(1): 0.1, R(2): 0.9, R(3): 0.5})
        assert [f for f, _ in d.prefix(3)] == [R(2), R(3), R(1)]

    def test_tail_suffix_sums(self):
        d = TableFactDistribution({R(1): 0.5, R(2): 0.25})
        assert d.tail(0) == 0.75 and d.tail(1) == 0.25 and d.tail(9) == 0.0

    def test_zero_probability_dropped(self):
        d = TableFactDistribution({R(1): 0.0, R(2): 0.5})
        assert len(d) == 1 and d.probability(R(1)) == 0.0

    def test_convergent(self):
        assert TableFactDistribution({R(1): 0.5}).convergent


class TestGeometricDistribution:
    def test_probabilities_follow_rank(self):
        d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        assert d.probability(R(1)) == 0.5
        assert d.probability(R(2)) == 0.25
        assert d.probability(R(3)) == 0.125

    def test_foreign_fact_zero(self):
        d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        other = Schema.of(T=1)["T"]
        assert d.probability(other(1)) == 0.0

    def test_total_mass_closed_form(self):
        d = GeometricFactDistribution(space, first=0.25, ratio=0.5)
        assert d.total_mass() == pytest.approx(0.5)

    def test_support_matches_fact_space(self):
        d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        assert [f for f, _ in d.prefix(3)] == space.prefix(3)

    def test_prefix_for_tail_logarithmic(self):
        d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        assert d.prefix_for_tail(1e-6) < 30

    def test_parameter_validation(self):
        with pytest.raises(ProbabilityError):
            GeometricFactDistribution(space, first=0.0, ratio=0.5)
        with pytest.raises(ProbabilityError):
            GeometricFactDistribution(space, first=0.5, ratio=1.0)


class TestZetaDistribution:
    def test_probabilities(self):
        d = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
        assert d.probability(R(1)) == 0.5
        assert d.probability(R(2)) == 0.125

    def test_convergent_but_slow(self):
        d = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
        geometric = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        assert d.convergent
        assert d.prefix_for_tail(1e-4) > 100 * geometric.prefix_for_tail(1e-4)

    def test_exponent_validated(self):
        with pytest.raises(ConvergenceError):
            ZetaFactDistribution(space, exponent=1.0)


class TestDivergentDistribution:
    def test_not_convergent(self):
        d = DivergentFactDistribution(space)
        assert not d.convergent
        assert math.isinf(d.total_mass())
        assert math.isinf(d.tail(10**6))

    def test_individual_probabilities_fine(self):
        """Each p_f is a perfectly good probability — only the sum
        diverges (the Theorem 4.8 obstruction is global)."""
        d = DivergentFactDistribution(space)
        assert 0 < d.probability(R(5)) < 1


class TestFilteredDistribution:
    def test_filtering(self):
        base = TableFactDistribution({R(1): 0.5, R(2): 0.25})
        filtered = FilteredFactDistribution(base, lambda f: f != R(1))
        assert filtered.probability(R(1)) == 0.0
        assert filtered.probability(R(2)) == 0.25
        assert [f for f, _ in filtered.prefix(10)] == [R(2)]

    def test_tail_still_sound(self):
        base = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        filtered = FilteredFactDistribution(
            base, lambda f: space.rank(f) % 2 == 0)
        n = 5
        true_tail = sum(p for _, p in filtered.prefix(200)[n:])
        assert filtered.tail(n) >= true_tail - 1e-12


class TestUnionDistribution:
    def test_disjoint_supports_combined(self):
        left = TableFactDistribution({R(1): 0.5})
        right = TableFactDistribution({R(2): 0.25})
        union = UnionFactDistribution([left, right])
        assert union.probability(R(1)) == 0.5
        assert union.probability(R(2)) == 0.25
        assert union.total_mass() == pytest.approx(0.75)

    def test_interleaved_support(self):
        left = TableFactDistribution({R(1): 0.5})
        right = GeometricFactDistribution(
            FactSpace(Schema.of(S=1), Naturals()), first=0.25, ratio=0.5)
        union = UnionFactDistribution([left, right])
        names = [f.relation.name for f, _ in union.prefix(4)]
        assert names[0] == "R" and "S" in names

    def test_tail_sound(self):
        left = TableFactDistribution({R(1): 0.5, R(2): 0.25})
        right = TableFactDistribution(
            {Schema.of(S=1)["S"](i): 2.0**-i for i in range(1, 8)})
        union = UnionFactDistribution([left, right])
        for n in range(10):
            true_tail = sum(p for _, p in union.prefix(100)[n:])
            assert union.tail(n) >= true_tail - 1e-12


class TestScaledDistribution:
    def test_scaling(self):
        base = TableFactDistribution({R(1): 0.5})
        scaled = ScaledFactDistribution(base, 0.5)
        assert scaled.probability(R(1)) == 0.25
        assert scaled.total_mass() == pytest.approx(0.25)

    def test_factor_validated(self):
        with pytest.raises(ProbabilityError):
            ScaledFactDistribution(TableFactDistribution({R(1): 0.5}), 0.0)

"""Tests for the word-length-decay fact distribution (Example 3.2's
"decaying with increasing length" weights over Σ*)."""

import math

import pytest

from repro.core.completion import complete, verify_completion_condition
from repro.core.fact_distribution import WordLengthFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ConvergenceError, ProbabilityError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational import Instance, Schema

schema = Schema.of(R=1)
R = schema["R"]


def small_distribution(decay=0.2, scale=0.5):
    return WordLengthFactDistribution(schema, "ab", decay=decay, scale=scale)


class TestConstruction:
    def test_divergence_guard(self):
        """decay·|Σ| ≥ 1 would give infinite mass — rejected."""
        with pytest.raises(ConvergenceError):
            WordLengthFactDistribution(schema, "ab", decay=0.5)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ProbabilityError):
            WordLengthFactDistribution(schema, "", decay=0.1)


class TestProbabilities:
    def test_length_determines_probability(self):
        d = small_distribution()
        assert d.probability(R("")) == 0.5
        assert d.probability(R("a")) == pytest.approx(0.1)
        assert d.probability(R("ab")) == pytest.approx(0.02)
        assert d.probability(R("ba")) == d.probability(R("ab"))

    def test_foreign_values_zero(self):
        d = small_distribution()
        assert d.probability(R("xyz")) == 0.0  # wrong alphabet
        assert d.probability(R(3)) == 0.0       # not a string

    def test_total_mass_closed_form(self):
        d = small_distribution(decay=0.2, scale=0.5)
        # Σ_w 0.5·0.2^|w| = 0.5/(1 − 0.4).
        assert d.total_mass() == pytest.approx(0.5 / 0.6)

    def test_binary_relation_mass(self):
        binary = Schema.of(S=2)
        d = WordLengthFactDistribution(binary, "ab", decay=0.2, scale=0.5)
        assert d.total_mass() == pytest.approx(0.5 / 0.6**2)


class TestEnumeration:
    def test_support_ordered_by_length(self):
        d = small_distribution()
        lengths = [len(f.args[0]) for f, _ in d.prefix(7)]
        assert lengths == sorted(lengths)

    def test_support_complete_per_level(self):
        d = small_distribution()
        words = {f.args[0] for f, _ in d.prefix(1 + 2 + 4)}
        assert words == {"", "a", "b", "aa", "ab", "ba", "bb"}

    def test_tail_sound(self):
        d = small_distribution()
        enumerated = d.prefix(1 + 2 + 4 + 8)
        for n in (0, 1, 3, 7):
            actual_tail = d.total_mass() - sum(p for _, p in enumerated[:n])
            assert d.tail(n) >= actual_tail - 1e-9


class TestClosedFormComplementProduct:
    def test_matches_direct_product_small_alphabet(self):
        d = small_distribution()
        closed = d.log_complement_product()
        direct = sum(
            math.log1p(-p) for _, p in d.prefix(2**14)
        )
        # The direct sum misses levels ≥ 14 (mass ≈ Σ 0.5·0.4^ℓ ≈ 2e-6).
        assert closed == pytest.approx(direct, abs=1e-5)

    def test_large_alphabet_no_overflow(self):
        big = WordLengthFactDistribution(
            Schema.of(T=2), "abcdefghijklmnopqrstuvwxyz",
            decay=0.035, scale=0.3)
        value = big.log_complement_product()
        assert math.isfinite(value) and value < 0

    def test_max_probability(self):
        assert small_distribution(scale=0.4).max_probability() == 0.4


class TestInTIPDB:
    def test_instance_probability_exact(self):
        pdb = CountableTIPDB(schema, small_distribution())
        empty = pdb.instance_probability(Instance())
        assert empty == pytest.approx(
            math.exp(small_distribution().log_complement_product()), rel=1e-9)
        single = pdb.instance_probability(Instance([R("a")]))
        assert single == pytest.approx(empty * 0.1 / 0.9, rel=1e-9)

    def test_completion_with_word_length_weights(self):
        kb = TupleIndependentTable(schema, {R("ab"): 0.9})
        completed = complete(
            kb, WordLengthFactDistribution(schema, "ab", decay=0.2, scale=0.3))
        assert verify_completion_condition(completed) < 1e-9
        assert completed.fact_marginal(R("ab")) == pytest.approx(0.9)
        assert completed.fact_marginal(R("ba")) == pytest.approx(0.3 * 0.04)

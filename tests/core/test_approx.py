"""Tests for the Proposition 6.1 approximation algorithm."""

import math

import pytest

from repro.core.approx import (
    approximate_answer_marginals,
    approximate_query_probability,
    choose_truncation,
    truncation_profile,
)
from repro.core.completion import complete
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
    ZetaFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic import BooleanQuery, Query, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]
space = FactSpace(schema, Naturals())


def geometric_pdb(first=0.5, ratio=0.5):
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=first, ratio=ratio))


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def exists_r_truth(pdb, depth=200):
    """Exact P(∃x R(x)) = 1 − Π over R-facts of (1 − p_f)."""
    complement = 1.0
    for fact, p in pdb.distribution.prefix(depth):
        if fact.relation.name == "R":
            complement *= 1.0 - p
    return 1.0 - complement


class TestChooseTruncation:
    def test_epsilon_range_enforced(self):
        d = TableFactDistribution({R(1): 0.5})
        for bad in (0.0, 0.5, 0.7, -0.1):
            with pytest.raises(ApproximationError):
                choose_truncation(d, bad)

    def test_truncation_meets_alpha_conditions(self):
        pdb = geometric_pdb()
        for epsilon in (0.3, 0.1, 0.01, 1e-4):
            n = choose_truncation(pdb.distribution, epsilon)
            alpha = 1.5 * pdb.distribution.tail(n)
            assert math.exp(alpha) <= 1 + epsilon + 1e-12
            assert math.exp(-alpha) >= 1 - epsilon - 1e-12

    def test_tail_facts_below_half(self):
        """Claim (∗) hypothesis: all facts beyond n have p ≤ 1/2."""
        pdb = geometric_pdb(first=0.9, ratio=0.5)
        n = choose_truncation(pdb.distribution, 0.4)
        assert pdb.distribution.tail(n) <= 0.49

    def test_monotone_in_epsilon(self):
        pdb = geometric_pdb()
        sizes = [
            choose_truncation(pdb.distribution, eps)
            for eps in (0.2, 0.05, 0.01, 0.001)
        ]
        assert sizes == sorted(sizes)

    def test_geometric_logarithmic_growth(self):
        pdb = geometric_pdb()
        assert choose_truncation(pdb.distribution, 1e-5) < 40

    def test_zeta_polynomial_growth(self):
        """The §6 complexity remark: slow series need huge truncations."""
        zeta = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
        geo = GeometricFactDistribution(space, first=0.5, ratio=0.5)
        assert (choose_truncation(zeta, 1e-3)
                > 50 * choose_truncation(geo, 1e-3))


class TestErrorGuarantee:
    @pytest.mark.parametrize("epsilon", [0.2, 0.05, 0.01, 0.001])
    def test_additive_error_within_epsilon(self, epsilon):
        pdb = geometric_pdb()
        truth = exists_r_truth(pdb)
        result = approximate_query_probability(q("EXISTS x. R(x)"), pdb, epsilon)
        assert abs(result.value - truth) <= epsilon
        assert result.contains(truth)

    def test_error_shrinks_with_epsilon(self):
        pdb = geometric_pdb()
        truth = exists_r_truth(pdb)
        coarse = approximate_query_probability(q("EXISTS x. R(x)"), pdb, 0.2)
        fine = approximate_query_probability(q("EXISTS x. R(x)"), pdb, 1e-4)
        assert abs(fine.value - truth) <= abs(coarse.value - truth) + 1e-12

    def test_negated_query(self):
        pdb = geometric_pdb()
        truth = 1.0 - exists_r_truth(pdb)
        result = approximate_query_probability(
            q("NOT EXISTS x. R(x)"), pdb, 0.01)
        assert abs(result.value - truth) <= 0.01

    def test_universal_query(self):
        pdb = geometric_pdb()
        result = approximate_query_probability(
            q("FORALL x. R(x) -> EXISTS y. S(x, y)"), pdb, 0.05)
        assert 0.0 <= result.value <= 1.0

    def test_result_metadata(self):
        pdb = geometric_pdb()
        result = approximate_query_probability(q("EXISTS x. R(x)"), pdb, 0.1)
        assert result.epsilon == 0.1
        assert result.truncation >= 1
        assert result.alpha <= math.log1p(0.1) + 1e-12

    def test_zeta_tail_still_within_epsilon(self):
        pdb = CountableTIPDB(
            schema, ZetaFactDistribution(space, exponent=2.5, scale=0.5))
        truth = exists_r_truth(pdb, depth=5000)
        result = approximate_query_probability(q("EXISTS x. R(x)"), pdb, 0.05)
        assert abs(result.value - truth) <= 0.05


class TestStrategyIndependence:
    def test_all_engines_same_answer(self):
        pdb = geometric_pdb()
        values = {
            strategy: approximate_query_probability(
                q("EXISTS x. R(x)"), pdb, 0.05, strategy=strategy).value
            for strategy in ("worlds", "lineage", "lifted")
        }
        assert max(values.values()) - min(values.values()) < 1e-10


class TestMarginalExtension:
    def test_ground_query_marginals(self):
        pdb = geometric_pdb()
        query = Query(parse_formula("R(x)", schema), schema)
        marginals = approximate_answer_marginals(query, pdb, 0.05)
        assert marginals[(1,)].value == pytest.approx(0.5, abs=0.05)
        # R(2) has rank 2 in the interleaved R/S fact space: p = 0.5^3.
        assert marginals[(2,)].value == pytest.approx(0.125, abs=0.05)

    def test_tuples_outside_omega_n_absent(self):
        pdb = geometric_pdb()
        query = Query(parse_formula("R(x)", schema), schema)
        marginals = approximate_answer_marginals(query, pdb, 0.2)
        huge_rank = (10**6,)
        assert huge_rank not in marginals

    def test_boolean_query_delegates(self):
        pdb = geometric_pdb()
        query = Query(parse_formula("EXISTS x. R(x)", schema), schema)
        marginals = approximate_answer_marginals(query, pdb, 0.1)
        assert set(marginals) == {()}


class TestCompletionApproximation:
    def test_completed_pdb_query(self):
        original = TupleIndependentTable(schema, {R(1): 0.8})
        completed = complete(
            original,
            GeometricFactDistribution(space, first=0.25, ratio=0.5),
        )
        result = completed.approximate_query_probability(
            q("EXISTS x. R(x)"), epsilon=0.01)
        # Truth: 1 − 0.2 · Π_{new R-facts}(1 − p).
        complement = 0.2
        for fact, p in completed.new_facts.distribution.prefix(100):
            if fact.relation.name == "R":
                complement *= 1 - p
        truth = 1 - complement
        assert abs(result.value - truth) <= 0.01


class TestTruncationProfile:
    def test_profile_shape(self):
        pdb = geometric_pdb()
        profile = truncation_profile(pdb.distribution, [0.1, 0.01, 0.001])
        assert profile[0.001] >= profile[0.01] >= profile[0.1]

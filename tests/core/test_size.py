"""Tests for size distributions (§3.2), Example 3.3 and Remark 4.10."""

import math
import random

import pytest

from repro.core.size import (
    Example33PDB,
    MomentGapPDB,
    empirical_size_distribution,
    example_3_3_partial_expected_size,
    example_3_3_pdb,
    size_tail_probabilities,
)
from repro.relational import Instance, RelationSymbol, Schema

R = RelationSymbol("R", 1)


class TestExample33:
    def test_world_probabilities_sum_to_one(self):
        pdb = example_3_3_pdb()
        total = sum(pdb.world_probability(n) for n in range(1, 10**5))
        assert total == pytest.approx(1.0, abs=1e-4)

    def test_world_contents(self):
        pdb = example_3_3_pdb()
        world = pdb.world(2)
        assert world.size == 4
        assert R(1) in world and R(4) in world and R(5) not in world

    def test_expected_size_infinite(self):
        """E(S) = Σ 6·2^n/(π²n²) = ∞ — the Example 3.3 headline."""
        assert math.isinf(example_3_3_pdb().expected_size())

    def test_partial_sums_diverge(self):
        values = [example_3_3_partial_expected_size(n) for n in (5, 10, 20, 40)]
        assert values == sorted(values)
        assert values[-1] > 1000 * values[0]

    def test_size_tail_vanishes(self):
        """Eq. (6): P(S ≥ n) → 0 despite E(S) = ∞."""
        pdb = example_3_3_pdb()
        tails = size_tail_probabilities(pdb, [4, 64, 4096, 2**20])
        assert tails[4] > tails[64] > tails[4096] > tails[2**20] > 0.0
        assert tails[2**20] < 0.04  # = Sigma_{m>=20} 6/(pi^2 m^2) ~ 0.031

    def test_size_tail_closed_form_matches_definition(self):
        pdb = example_3_3_pdb()
        # P(S ≥ 5) = Σ_{2^m ≥ 5} p_m = 1 − p_1 − p_2.
        expected = 1 - pdb.world_probability(1) - pdb.world_probability(2)
        assert pdb.size_tail(5) == pytest.approx(expected)

    def test_enumeration_matches_closed_form(self):
        pdb = example_3_3_pdb()
        import itertools

        for n, (world, mass) in enumerate(
                itertools.islice(pdb.worlds(), 6), start=1):
            assert world.size == 2**n
            assert mass == pytest.approx(pdb.world_probability(n))

    def test_sampling_sizes(self):
        pdb = example_3_3_pdb()
        rng = random.Random(77)
        sizes = [2 ** pdb.sample_index(rng) for _ in range(2000)]
        # P(n = 1) = 6/π² ≈ 0.608 → size 2.
        rate = sizes.count(2) / len(sizes)
        assert abs(rate - 6 / math.pi**2) < 0.04

    def test_huge_world_materialization_guarded(self):
        with pytest.raises(ValueError):
            example_3_3_pdb().world(40)


class TestMomentGap:
    """Remark 4.10: E(S^k) < ∞ but E(S^{k+1}) = ∞."""

    @pytest.mark.parametrize("k", [1, 2])
    def test_gap_at_k(self, k):
        pdb = MomentGapPDB(k)
        assert math.isfinite(pdb.moment(k))
        assert math.isinf(pdb.moment(k + 1))

    def test_lower_moments_also_finite(self):
        pdb = MomentGapPDB(3)
        for j in range(1, 4):
            assert math.isfinite(pdb.moment(j))

    def test_expected_size_finite(self):
        assert math.isfinite(MomentGapPDB(2).expected_size())

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            MomentGapPDB(0)


class TestEmpiricalSizeDistribution:
    def test_counts(self):
        samples = [Instance(), Instance([R(1)]), Instance([R(1)])]
        dist = empirical_size_distribution(samples)
        assert dist == {0: pytest.approx(1 / 3), 1: pytest.approx(2 / 3)}

    def test_empty(self):
        assert empirical_size_distribution([]) == {}

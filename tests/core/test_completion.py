"""Tests for Theorem 5.5 completions: the open-world construction."""

import math
import random

import pytest

from repro.core.completion import (
    CompletedPDB,
    closed_world_completion,
    complete,
    extend_to_closure,
    verify_completion_condition,
)
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
)
from repro.errors import CompletionError
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational import Instance, Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


def original_table():
    return TupleIndependentTable(schema, {R(1): 0.8, R(2): 0.4})


def geometric_new_facts():
    """Open-world weights 2^{-i}, automatically excluding F(D)."""
    return GeometricFactDistribution(space, first=0.5, ratio=0.5)


class TestCompletionCondition:
    """Definition 5.1 (CC): P′(A | Ω) = P(A)."""

    def test_holds_for_every_original_world(self):
        completed = complete(original_table(), geometric_new_facts())
        assert verify_completion_condition(completed) < 1e-9

    def test_holds_for_composite_events(self):
        completed = complete(original_table(), geometric_new_facts())
        original = original_table().expand()
        # Event A = "R(1) present", restricted to original worlds.
        p_conditional = sum(
            completed.conditioned_on_original(world)
            for world in original.instances()
            if R(1) in world
        )
        assert p_conditional == pytest.approx(
            original.probability(lambda D: R(1) in D), abs=1e-9)

    def test_original_space_has_positive_probability(self):
        completed = complete(original_table(), geometric_new_facts())
        assert completed.original_space_probability() > 0.0


class TestOpenWorldSemantics:
    def test_new_facts_get_specified_probability(self):
        completed = complete(original_table(), geometric_new_facts())
        # R(3) has rank 2 in the fact space: p = 0.5^3 = 0.125.
        assert completed.fact_marginal(R(3)) == pytest.approx(0.125)

    def test_original_marginals_preserved(self):
        completed = complete(original_table(), geometric_new_facts())
        assert completed.fact_marginal(R(1)) == pytest.approx(0.8)
        assert completed.fact_marginal(R(2)) == pytest.approx(0.4)

    def test_new_instances_have_positive_probability(self):
        """The heart of the open world: unseen instances are unlikely,
        not impossible."""
        completed = complete(original_table(), geometric_new_facts())
        new_instance = Instance([R(1), R(5)])  # R(5) never listed
        assert completed.instance_probability(new_instance) > 0.0

    def test_plausibility_ordering(self):
        """Closer-to-known facts are more plausible (decaying weights):
        contrast with CWA where both would be probability 0."""
        completed = complete(original_table(), geometric_new_facts())
        near = completed.instance_probability(Instance([R(3)]))
        far = completed.instance_probability(Instance([R(9)]))
        assert near > far > 0.0

    def test_expected_size_adds_up(self):
        completed = complete(original_table(), geometric_new_facts())
        new_mass = sum(
            0.5**i for i in range(1, 60)) - 0.5 - 0.25  # minus F(D) ranks
        assert completed.expected_size() == pytest.approx(
            1.2 + new_mass, abs=1e-6)

    def test_product_structure(self):
        """P′({D ⊎ C}) = P({D}) · P₁({C})."""
        completed = complete(original_table(), geometric_new_facts())
        d_part = Instance([R(1)])
        c_part = Instance([R(4)])
        joint = completed.instance_probability(d_part | c_part)
        base = completed.original.probability_of(d_part)
        extra = completed.new_facts.instance_probability(c_part)
        assert joint == pytest.approx(base * extra, rel=1e-9)


class TestClosedWorldBaseline:
    """Remark 5.2: CWA = the all-zeroes completion."""

    def test_new_facts_impossible(self):
        cwa = closed_world_completion(original_table())
        assert cwa.fact_marginal(R(5)) == 0.0
        assert cwa.instance_probability(Instance([R(5)])) == 0.0

    def test_original_untouched(self):
        cwa = closed_world_completion(original_table())
        assert cwa.original_space_probability() == pytest.approx(1.0)
        assert verify_completion_condition(cwa) < 1e-12


class TestIllPosedCompletions:
    def test_probability_one_new_fact_rejected(self):
        with pytest.raises(CompletionError):
            complete(original_table(), TableFactDistribution({R(9): 1.0}))

    def test_overlap_is_filtered_not_fatal(self):
        """A distribution mentioning F(D) is restricted, per Thm 5.5."""
        completed = complete(
            original_table(),
            TableFactDistribution({R(1): 0.9, R(5): 0.1}),
        )
        # R(1) keeps its original marginal; the open-world 0.9 is ignored.
        assert completed.fact_marginal(R(1)) == pytest.approx(0.8)
        assert completed.fact_marginal(R(5)) == pytest.approx(0.1)


class TestClosureExtension:
    def test_extends_to_all_subsets(self):
        pdb = FinitePDB(schema, {Instance([R(1), R(2)]): 1.0})
        extended = extend_to_closure(pdb, c=0.5)
        assert len(extended) == 4
        assert extended.probability_of(Instance([R(1), R(2)])) == pytest.approx(0.5)
        assert extended.probability_of(Instance()) == pytest.approx(0.5 / 3)

    def test_custom_missing_weights(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 1.0})
        weights = {Instance(): 1.0}
        extended = extend_to_closure(pdb, c=0.75, missing_weights=weights)
        assert extended.probability_of(Instance()) == pytest.approx(0.25)

    def test_completion_condition_after_extension(self):
        """The §5 two-step: extend, complete, verify P′({D}|Ω₀) = P₀({D})
        up to the factor c (the paper's calculation below Theorem 5.5)."""
        pdb = FinitePDB(schema, {Instance([R(1), R(2)]): 1.0})
        extended = extend_to_closure(pdb, c=0.5)
        completed = complete(extended, TableFactDistribution({R(7): 0.25}))
        original_world = Instance([R(1), R(2)])
        conditional = completed.conditioned_on_original(original_world)
        # Conditioning on the *extended* Ω retains the c-scaled masses;
        # conditioning further on Ω₀ recovers P₀ exactly:
        p_omega0 = sum(
            completed.conditioned_on_original(world)
            for world in [original_world]
        )
        assert conditional / p_omega0 == pytest.approx(1.0)

    def test_invalid_mass(self):
        pdb = FinitePDB(schema, {Instance([R(1)]): 1.0})
        with pytest.raises(CompletionError):
            extend_to_closure(pdb, c=0.0)

    def test_already_closed_needs_c_one(self):
        pdb = TupleIndependentTable(schema, {R(1): 0.5}).expand()
        with pytest.raises(CompletionError):
            extend_to_closure(pdb, c=0.5)


class TestTruncationOfCompletion:
    def test_truncate_gives_finite_pdb(self):
        completed = complete(original_table(), geometric_new_facts())
        finite = completed.truncate(3)
        assert sum(finite.worlds.values()) == pytest.approx(1.0)

    def test_truncation_marginals(self):
        completed = complete(original_table(), geometric_new_facts())
        finite = completed.truncate(4)
        assert finite.fact_marginal(R(1)) == pytest.approx(0.8)
        # R(3) is among the first new facts kept.
        assert finite.fact_marginal(R(3)) == pytest.approx(0.125)

    def test_sampling_completion(self):
        completed = complete(original_table(), geometric_new_facts())
        rng = random.Random(55)
        samples = [completed.sample(rng) for _ in range(1500)]
        rate = sum(1 for s in samples if R(1) in s) / len(samples)
        assert abs(rate - 0.8) < 0.04

"""Additional edge-case tests for countable PDBs: error paths, boundary
parameters, determinism, and cross-checks between closed forms and
enumeration that earlier test modules don't cover."""

import itertools
import math
import random

import pytest

from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ConvergenceError, ProbabilityError
from repro.relational import Instance, Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


class TestDeterminism:
    def test_world_enumeration_is_reproducible(self):
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        first = list(itertools.islice(pdb.worlds(), 50))
        second = list(itertools.islice(pdb.worlds(), 50))
        assert first == second

    def test_sampling_reproducible_with_seed(self):
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        a = [pdb.sample(random.Random(42)) for _ in range(20)]
        b = [pdb.sample(random.Random(42)) for _ in range(20)]
        assert a == b


class TestBoundaryParameters:
    def test_single_fact_pdb(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        worlds = dict(pdb.worlds())
        assert worlds[Instance()] == pytest.approx(0.5)
        assert worlds[Instance([R(1)])] == pytest.approx(0.5)
        assert len(worlds) == 2

    def test_empty_distribution(self):
        pdb = CountableTIPDB.from_marginals(schema, {})
        assert pdb.instance_probability(Instance()) == 1.0
        assert pdb.expected_size() == 0.0

    def test_near_one_probability(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.999999})
        assert pdb.empty_world_probability() == pytest.approx(1e-6, rel=1e-3)

    def test_probability_one_fact(self):
        """p_f = 1 is legal in Theorem 4.8 (the empty world just gets
        probability 0)."""
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 1.0, R(2): 0.5})
        assert pdb.instance_probability(Instance()) == 0.0
        assert pdb.instance_probability(Instance([R(1)])) == pytest.approx(0.5)

    def test_tiny_ratio_geometric(self):
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.001))
        assert pdb.expected_size() == pytest.approx(0.5 / 0.999)


class TestClosedFormVsEnumeration:
    def test_empty_world_two_ways(self):
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        closed = pdb.empty_world_probability()
        enumerated = next(
            mass for world, mass in pdb.worlds() if world == Instance())
        assert closed == pytest.approx(enumerated, rel=1e-9)

    def test_all_enumerated_masses_match_closed_form(self):
        pdb = CountableTIPDB.from_marginals(
            schema, {R(1): 0.3, R(2): 0.6, R(3): 0.9})
        for world, mass in pdb.worlds():
            assert mass == pytest.approx(
                pdb.instance_probability(world), abs=1e-12)

    def test_size_tail_vs_complement(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5, R(2): 0.5})
        # P(S ≥ 1) = 1 − P(∅) = 0.75.
        assert pdb.size_tail(1) == pytest.approx(0.75)


class TestErrorPaths:
    def test_divergence_error_mentions_sum(self):
        from repro.core.fact_distribution import DivergentFactDistribution

        with pytest.raises(ConvergenceError, match="divergent"):
            CountableTIPDB(schema, DivergentFactDistribution(space))

    def test_invalid_sample_tolerance(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        with pytest.raises(ConvergenceError):
            pdb.sample(random.Random(0), tolerance=0.0)

    def test_truncate_beyond_support(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        table = pdb.truncate(10)  # more than available: just everything
        assert len(table.facts()) == 1

"""Tests for TI size moments and conditional queries on completions."""

import random

import pytest

from repro.core.completion import complete
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    TableFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ProbabilityError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


class TestSizeMoments:
    def test_variance_closed_form(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5, R(2): 0.2})
        assert pdb.size_variance() == pytest.approx(0.5 * 0.5 + 0.2 * 0.8)

    def test_variance_infinite_support(self):
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        expected = sum(0.5**i * (1 - 0.5**i) for i in range(1, 60))
        assert pdb.size_variance() == pytest.approx(expected, abs=1e-9)

    def test_second_moment(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        # S ∈ {0, 1}: E(S²) = E(S) = 0.5.
        assert pdb.size_moment(2) == pytest.approx(0.5)

    def test_empirical_variance_matches(self):
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.9, ratio=0.5))
        rng = random.Random(8)
        sizes = [pdb.sample(rng).size for _ in range(6000)]
        mean = sum(sizes) / len(sizes)
        variance = sum((s - mean) ** 2 for s in sizes) / len(sizes)
        assert variance == pytest.approx(pdb.size_variance(), abs=0.1)

    def test_higher_moments_not_implemented(self):
        pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        with pytest.raises(ProbabilityError):
            pdb.size_moment(3)


class TestConditionalQueries:
    def make_completion(self):
        known = TupleIndependentTable(schema, {R(1): 0.8})
        return complete(
            known, GeometricFactDistribution(space, first=0.25, ratio=0.5))

    def test_conditional_on_certain_evidence(self):
        completed = self.make_completion()
        query = BooleanQuery(parse_formula("R(1)", schema), schema)
        tautology = BooleanQuery(
            parse_formula("R(1) OR NOT R(1)", schema), schema)
        value = completed.approximate_conditional_probability(
            query, tautology, epsilon=0.01)
        assert value == pytest.approx(0.8, abs=0.03)

    def test_conditional_flips_marginal(self):
        completed = self.make_completion()
        query = BooleanQuery(parse_formula("R(1)", schema), schema)
        evidence = BooleanQuery(parse_formula("R(1)", schema), schema)
        value = completed.approximate_conditional_probability(
            query, evidence, epsilon=0.01)
        assert value == pytest.approx(1.0, abs=0.05)

    def test_independent_evidence_no_effect(self):
        completed = self.make_completion()
        query = BooleanQuery(parse_formula("R(1)", schema), schema)
        evidence = BooleanQuery(parse_formula("R(2)", schema), schema)
        value = completed.approximate_conditional_probability(
            query, evidence, epsilon=0.005)
        assert value == pytest.approx(0.8, abs=0.1)

    def test_impossible_evidence_rejected(self):
        completed = self.make_completion()
        query = BooleanQuery(parse_formula("R(1)", schema), schema)
        contradiction = BooleanQuery(
            parse_formula("R(1) AND NOT R(1)", schema), schema)
        with pytest.raises(ProbabilityError):
            completed.approximate_conditional_probability(
                query, contradiction, epsilon=0.01)

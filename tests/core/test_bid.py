"""Tests for the Theorem 4.15 countable BID construction."""

import itertools
import math
import random

import pytest

from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.errors import ConvergenceError
from repro.finite.bid import Block
from repro.relational import Instance, Schema

schema = Schema.of(R=2)
R = schema["R"]


def key_block(i: int) -> Block:
    """Block for key i: R(i, 1) or R(i, 2), total mass 2^{-i}."""
    mass = 2.0 ** -i
    return Block(f"k{i}", {R(i, 1): mass / 2, R(i, 2): mass / 2})


def geometric_family():
    return BlockFamily.geometric(
        make_block=lambda i: key_block(i + 1),
        block_mass=lambda i: 2.0 ** -(i + 1),
        first=0.5,
        ratio=0.5,
    )


def finite_family():
    return BlockFamily.finite([
        Block("a", {R(1, 1): 0.5, R(1, 2): 0.25}),
        Block("b", {R(2, 1): 0.4}),
    ])


class TestBlockFamily:
    def test_finite_tail(self):
        family = finite_family()
        assert family.tail(0) == pytest.approx(1.15)
        assert family.tail(1) == pytest.approx(0.4)
        assert family.tail(2) == 0.0

    def test_geometric_tail_bounds_mass(self):
        family = geometric_family()
        for n in range(5):
            actual = sum(
                sum(b.alternatives.values()) for b in family.prefix(40)[n:])
            assert family.tail(n) >= actual - 1e-12

    def test_block_of(self):
        family = finite_family()
        assert family.block_of(R(1, 2)).name == "a"
        assert family.block_of(R(9, 9), max_blocks=10) is None

    def test_total_mass(self):
        assert finite_family().total_mass() == pytest.approx(1.15)
        assert geometric_family().total_mass() == pytest.approx(1.0, abs=1e-9)


class TestExistence:
    """Theorem 4.15: exists iff Σ_B Σ_f p_f converges."""

    def test_convergent_accepted(self):
        assert CountableBIDPDB(schema, geometric_family()) is not None

    def test_divergent_rejected(self):
        def harmonic_block(i: int) -> Block:
            return Block(f"h{i}", {R(i + 1, 1): min(1.0, 1.0 / (i + 1))})

        divergent = BlockFamily(
            lambda: (harmonic_block(i) for i in itertools.count()),
            tail=lambda n: math.inf,
            total_mass=math.inf,
        )
        with pytest.raises(ConvergenceError):
            CountableBIDPDB(schema, divergent)


class TestMeasure:
    def test_good_instance_product(self):
        pdb = CountableBIDPDB(schema, finite_family())
        # P({R(1,1)}) = 0.5 · p_⊥(b) = 0.5 · 0.6
        assert pdb.instance_probability(Instance([R(1, 1)])) == pytest.approx(0.3)

    def test_bad_instance_zero(self):
        pdb = CountableBIDPDB(schema, finite_family())
        assert pdb.instance_probability(Instance([R(1, 1), R(1, 2)])) == 0.0

    def test_unknown_fact_zero(self):
        pdb = CountableBIDPDB(schema, finite_family())
        assert pdb.instance_probability(Instance([R(9, 9)])) == 0.0

    def test_marginals(self):
        pdb = CountableBIDPDB(schema, geometric_family())
        assert pdb.marginal(R(1, 1)) == pytest.approx(0.25)
        assert pdb.marginal(R(2, 2)) == pytest.approx(0.125)

    def test_measure_sums_to_one(self):
        """The Proposition 4.13 analogue of Lemma 4.3."""
        pdb = CountableBIDPDB(schema, finite_family())
        total = sum(mass for _, mass in pdb.worlds())
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_infinite_family_mass_converges(self):
        pdb = CountableBIDPDB(schema, geometric_family())
        partial = sum(
            mass for _, mass in itertools.islice(pdb.worlds(), 2000))
        assert partial == pytest.approx(1.0, abs=0.02)

    def test_expected_size(self):
        pdb = CountableBIDPDB(schema, geometric_family())
        assert pdb.expected_size() == pytest.approx(1.0, abs=1e-9)


class TestIndependenceStructure:
    def test_within_block_exclusive(self):
        """Definition 4.11 (1): block-mates never co-occur."""
        pdb = CountableBIDPDB(schema, geometric_family())
        joint = pdb.probability(
            lambda D: R(1, 1) in D and R(1, 2) in D, tolerance=1e-3)
        assert joint == 0.0

    def test_across_blocks_independent(self):
        """Definition 4.11 (2) via Lemma 4.12: facts from different
        blocks multiply."""
        pdb = CountableBIDPDB(schema, geometric_family())
        joint = pdb.probability(
            lambda D: R(1, 1) in D and R(2, 1) in D, tolerance=1e-3)
        assert joint == pytest.approx(0.25 * 0.125, abs=3e-3)


class TestTruncationAndSampling:
    def test_truncate(self):
        pdb = CountableBIDPDB(schema, geometric_family())
        table = pdb.truncate(2)
        assert table.marginal(R(1, 1)) == pytest.approx(0.25)
        assert table.marginal(R(3, 1)) == 0.0

    def test_sampled_marginals(self):
        pdb = CountableBIDPDB(schema, geometric_family())
        rng = random.Random(42)
        samples = [pdb.sample(rng) for _ in range(4000)]
        rate = sum(1 for s in samples if R(1, 1) in s) / len(samples)
        assert abs(rate - 0.25) < 0.03

    def test_samples_never_violate_blocks(self):
        pdb = CountableBIDPDB(schema, geometric_family())
        rng = random.Random(43)
        for _ in range(300):
            sample = pdb.sample(rng)
            keys = [fact.args[0] for fact in sample]
            assert len(keys) == len(set(keys))

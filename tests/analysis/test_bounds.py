"""Tests for the Proposition 6.1 analytic bounds, including claim (∗)."""

import math

import pytest

from repro.analysis.bounds import (
    alpha_from_tail,
    complement_product_lower_bound,
    epsilon_conditions_hold,
    required_alpha,
    truncation_error_bound,
    verify_star_bound,
)
from repro.analysis.products import product_complement
from repro.errors import ApproximationError, ConvergenceError


class TestStarBound:
    """Claim (∗): Π(1 − p_i) ≥ exp(−(3/2) Σ p_i) for p_i ∈ [0, 1/2)."""

    def test_holds_on_moderate_probabilities(self):
        _, _, holds = verify_star_bound([0.3, 0.4, 0.1, 0.45])
        assert holds

    def test_holds_on_tiny_probabilities(self):
        _, _, holds = verify_star_bound([1e-6] * 1000)
        assert holds

    def test_tight_as_p_vanishes(self):
        """For small p the bound approaches the product: the ratio
        product/bound → exp((1/2)Σp) → 1 as Σp → 0 (the 3/2 constant
        leaves slack e^{Σp/2})."""
        small = [1e-6] * 100
        product, bound, _ = verify_star_bound(small)
        assert product / bound < 1.0001
        # And the slack shrinks as probabilities shrink:
        bigger = [1e-3] * 100
        product_b, bound_b, _ = verify_star_bound(bigger)
        assert product / bound < product_b / bound_b

    def test_worst_case_near_half(self):
        product, bound, holds = verify_star_bound([0.499999])
        assert holds and bound <= product

    def test_rejects_p_at_or_above_half(self):
        with pytest.raises(ConvergenceError):
            complement_product_lower_bound([0.5])

    def test_rejects_negative(self):
        with pytest.raises(ConvergenceError):
            complement_product_lower_bound([-0.1])


class TestEpsilonConditions:
    def test_required_alpha_satisfies_both(self):
        for epsilon in (0.4, 0.1, 0.01, 1e-4):
            alpha = required_alpha(epsilon)
            assert epsilon_conditions_hold(alpha, epsilon)

    def test_slightly_larger_alpha_fails(self):
        epsilon = 0.1
        alpha = required_alpha(epsilon) * 1.01
        assert not epsilon_conditions_hold(alpha, epsilon)

    def test_epsilon_range_enforced(self):
        with pytest.raises(ApproximationError):
            required_alpha(0.5)
        with pytest.raises(ApproximationError):
            required_alpha(0.0)

    def test_alpha_from_tail_scaling(self):
        assert alpha_from_tail(0.02) == pytest.approx(0.03)
        with pytest.raises(ApproximationError):
            alpha_from_tail(-0.1)


class TestTruncationErrorBound:
    def test_zero_tail_zero_error(self):
        assert truncation_error_bound(0.0) == 0.0

    def test_monotone_in_tail(self):
        assert truncation_error_bound(0.01) < truncation_error_bound(0.1)

    def test_bounds_actual_outside_mass(self):
        """1 − Π(1 − p_i) over the tail is ≤ the bound (with p_i < 1/2)."""
        tail_probabilities = [0.02, 0.01, 0.005]
        actual_outside = 1 - product_complement(tail_probabilities)
        bound = truncation_error_bound(sum(tail_probabilities))
        assert actual_outside <= bound + 1e-12

"""Tests for the infinite distributive law (Lemma 2.3) on truncations."""

from fractions import Fraction

import pytest

from repro.analysis.distributive import (
    distributive_law_convergence,
    distributive_law_truncation,
    product_expansion,
    subset_sum_expansion,
)


class TestExactExpansions:
    def test_two_terms(self):
        terms = [Fraction(1, 2), Fraction(1, 3)]
        # (1 + 1/2)(1 + 1/3) = 2 = 1 + 1/2 + 1/3 + 1/6
        assert product_expansion(terms) == Fraction(2)
        assert subset_sum_expansion(terms) == Fraction(2)

    def test_law_holds_exactly_for_floats(self):
        lhs, rhs, equal = distributive_law_truncation([0.5, 0.25, 0.125, 0.0625])
        assert equal and lhs == rhs

    def test_law_with_negative_terms(self):
        """Lemma 2.3 needs only absolute convergence; signs are free.
        (1 − p) factors are the Theorem 4.8 use case.)"""
        lhs, rhs, equal = distributive_law_truncation(
            [Fraction(-1, 2), Fraction(-1, 4), Fraction(1, 8)])
        assert equal

    def test_empty_truncation(self):
        lhs, rhs, equal = distributive_law_truncation([])
        assert equal and lhs == Fraction(1)

    def test_subset_count_consistency(self):
        """The RHS sums over all 2^n subsets — spot-check the count by
        expanding with indicator terms."""
        # With every a_i = 1, Σ_J Π a_j = 2^n.
        assert subset_sum_expansion([1, 1, 1, 1]) == Fraction(16)


class TestConvergence:
    def test_growing_prefixes_converge(self):
        terms = [Fraction(-1, 2**i) for i in range(1, 12)]
        prefixes = [terms[:k] for k in (2, 4, 8, 11)]
        values = distributive_law_convergence(prefixes)
        # Successive truncation values approach a limit: differences shrink.
        diffs = [
            abs(values[i + 1][1] - values[i][1]) for i in range(len(values) - 1)
        ]
        assert diffs[0] > diffs[-1]

    def test_reports_lengths(self):
        values = distributive_law_convergence([[0.5], [0.5, 0.25]])
        assert [length for length, _ in values] == [1, 2]

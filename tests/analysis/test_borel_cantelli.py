"""Empirical Borel–Cantelli tests (Lemma 2.5) — the dichotomy behind the
necessity direction of Theorem 4.8."""

import random

from repro.analysis.borel_cantelli import (
    borel_cantelli_frequency,
    expected_count,
    simulate_event_count,
)


class TestSimulation:
    def test_certain_events_always_counted(self):
        rng = random.Random(1)
        counts = simulate_event_count([1.0, 1.0, 0.0], 10, rng)
        assert counts == [2] * 10

    def test_count_scales_with_probability(self):
        rng = random.Random(2)
        low = simulate_event_count([0.1] * 100, 200, rng)
        rng = random.Random(2)
        high = simulate_event_count([0.9] * 100, 200, rng)
        assert sum(high) > sum(low)


class TestDichotomy:
    def test_divergent_sum_many_events(self):
        """Σ 1/i = ∞: with high probability many events occur."""
        frequency = borel_cantelli_frequency(
            lambda i: 1.0 / i, horizon=3000, threshold=6, trials=150, seed=7)
        assert frequency > 0.85

    def test_convergent_sum_few_events(self):
        """Σ 1/i² < ∞: the number of occurring events stays bounded."""
        frequency = borel_cantelli_frequency(
            lambda i: 1.0 / i**2, horizon=3000, threshold=6, trials=150, seed=7)
        assert frequency < 0.1

    def test_threshold_grows_with_horizon_divergent(self):
        """Divergent case: even a higher threshold is eventually passed
        once the horizon (and hence Σ P(A_i)) grows."""
        short = borel_cantelli_frequency(
            lambda i: 1.0 / i, horizon=50, threshold=7, trials=120, seed=3)
        long = borel_cantelli_frequency(
            lambda i: 1.0 / i, horizon=5000, threshold=7, trials=120, seed=3)
        assert long > short

    def test_expected_count_partial_sums(self):
        harmonic = expected_count(lambda i: 1.0 / i, 1000)
        basel = expected_count(lambda i: 1.0 / i**2, 1000)
        assert harmonic > 7.0  # ~ln(1000) ≈ 6.9, diverging
        assert basel < 1.7     # → π²/6 ≈ 1.645

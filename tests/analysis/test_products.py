"""Tests for infinite products (Fact 2.2 territory)."""

import math

import pytest

from repro.analysis.products import (
    converges_absolutely,
    infinite_product_complement,
    log_product_complement,
    product_complement,
    product_one_plus,
)
from repro.analysis.series import SeriesCertificate
from repro.errors import ConvergenceError


class TestProductComplement:
    def test_basic(self):
        assert abs(product_complement([0.5, 0.5]) - 0.25) < 1e-15

    def test_empty_product_is_one(self):
        assert product_complement([]) == 1.0

    def test_probability_one_zeroes(self):
        assert product_complement([0.3, 1.0]) == 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConvergenceError):
            product_complement([1.5])

    def test_long_product_no_underflow_blowup(self):
        # 10^5 tiny factors: log-space evaluation stays accurate.
        value = product_complement([1e-7] * 10**5)
        assert abs(value - math.exp(-1e-2)) < 1e-6


class TestProductOnePlus:
    def test_mixed_signs(self):
        assert abs(product_one_plus([0.5, -0.5]) - 0.75) < 1e-15

    def test_zero_factor(self):
        assert product_one_plus([0.5, -1.0]) == 0.0

    def test_negative_factor_rejected(self):
        with pytest.raises(ConvergenceError):
            product_one_plus([-1.5])


class TestLogProductComplement:
    def test_matches_direct(self):
        ps = [0.1, 0.2, 0.3]
        assert abs(
            math.exp(log_product_complement(ps)) - product_complement(ps)
        ) < 1e-12

    def test_minus_infinity_at_one(self):
        assert log_product_complement([0.5, 1.0]) == -math.inf


class TestInfiniteProductComplement:
    def test_geometric_value_bracket(self):
        """Π (1 − 2^{-i-1}) for i ≥ 1 — compare against a long partial
        product."""
        cert = SeriesCertificate.geometric(0.25, 0.5)
        value, error = infinite_product_complement(cert)
        reference = product_complement([0.25 * 0.5**i for i in range(200)])
        assert abs(value - reference) <= error + 1e-12

    def test_error_bound_positive_and_small(self):
        cert = SeriesCertificate.geometric(0.25, 0.5)
        _, error = infinite_product_complement(cert, tolerance=1e-10)
        assert 0 <= error < 1e-9

    def test_value_in_unit_interval(self):
        cert = SeriesCertificate.zeta(2.0, scale=0.4)
        value, _ = infinite_product_complement(cert, tolerance=1e-6)
        assert 0 < value < 1


class TestConvergesAbsolutely:
    def test_certificate_passes(self):
        assert converges_absolutely(SeriesCertificate.geometric(0.5, 0.5))
        assert converges_absolutely(SeriesCertificate.zeta(2.0))

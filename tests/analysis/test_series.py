"""Tests for series certificates — the convergence side of Theorem 4.8."""

import math

import pytest

from repro.analysis.series import (
    SeriesCertificate,
    certify_convergence,
    geometric_tail,
    partial_sums,
    zeta_tail,
)
from repro.errors import ConvergenceError
from repro.utils import take


class TestPartialSums:
    def test_accumulation(self):
        assert take(4, partial_sums([1, 2, 3, 4])) == [1, 3, 6, 10]

    def test_lazy_on_infinite(self):
        import itertools

        sums = take(3, partial_sums(itertools.repeat(1.0)))
        assert sums == [1.0, 2.0, 3.0]


class TestGeometricTail:
    def test_full_sum(self):
        tail = geometric_tail(0.5, 0.5)
        assert abs(tail(0) - 1.0) < 1e-12

    def test_decreasing(self):
        tail = geometric_tail(1.0, 0.9)
        assert tail(10) > tail(20) > tail(100)

    def test_bounds_true_tail(self):
        tail = geometric_tail(0.3, 0.7)
        true_tail = sum(0.3 * 0.7**i for i in range(5, 500))
        assert tail(5) >= true_tail - 1e-12

    def test_invalid_ratio(self):
        with pytest.raises(ConvergenceError):
            geometric_tail(0.5, 1.0)


class TestZetaTail:
    def test_bounds_true_tail(self):
        tail = zeta_tail(2.0)
        true_tail = sum(1.0 / i**2 for i in range(11, 10**6))
        assert tail(10) >= true_tail

    def test_requires_exponent_above_one(self):
        with pytest.raises(ConvergenceError):
            zeta_tail(1.0)

    def test_slow_decay(self):
        """Zeta tails shrink polynomially — far slower than geometric."""
        zeta = zeta_tail(2.0)
        geo = geometric_tail(1.0, 0.5)
        assert zeta(40) > geo(40)


class TestSeriesCertificate:
    def test_geometric_closed_form_sum(self):
        cert = SeriesCertificate.geometric(0.5, 0.5)
        assert cert.sum() == 1.0

    def test_zeta_sum_approaches_basel(self):
        cert = SeriesCertificate.zeta(2.0)
        assert abs(cert.sum(1e-5) - math.pi**2 / 6) < 1e-4

    def test_finite(self):
        cert = SeriesCertificate.finite([0.5, 0.25])
        assert cert.sum() == 0.75
        assert cert.tail(1) == 0.25
        assert cert.tail(5) == 0.0

    def test_finite_rejects_negative(self):
        with pytest.raises(ConvergenceError):
            SeriesCertificate.finite([-0.1])

    def test_prefix_length_for_tail_geometric(self):
        cert = SeriesCertificate.geometric(0.5, 0.5)
        n = cert.prefix_length_for_tail(0.01)
        assert cert.tail(n) <= 0.01
        assert n <= 8  # log-scale truncation

    def test_prefix_length_zeta_much_larger(self):
        """The paper §6 complexity remark: slow convergence ⇒ large n(ε)."""
        geo = SeriesCertificate.geometric(0.5, 0.5)
        zeta = SeriesCertificate.zeta(1.5, scale=0.5)
        bound = 1e-3
        assert zeta.prefix_length_for_tail(bound) > 10 * geo.prefix_length_for_tail(bound)

    def test_prefix_values(self):
        cert = SeriesCertificate.geometric(0.5, 0.5)
        assert cert.prefix(3) == [0.5, 0.25, 0.125]

    def test_invalid_tail_bound(self):
        with pytest.raises(ConvergenceError):
            SeriesCertificate.finite([0.5]).prefix_length_for_tail(0.0)

    def test_terms_iterator_is_fresh(self):
        cert = SeriesCertificate.geometric(0.5, 0.5)
        assert take(2, cert.terms()) == take(2, cert.terms())


class TestCertifyConvergence:
    def test_finite_list(self):
        cert = certify_convergence([0.1, 0.2])
        assert abs(cert.sum() - 0.3) < 1e-12

    def test_custom_tail(self):
        cert = certify_convergence([0.5, 0.25], tail=lambda n: 2.0**-n)
        assert cert.tail(3) == 0.125

"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main
from repro.finite import TupleIndependentTable
from repro.io import tuple_independent_to_json
from repro.relational import Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


@pytest.fixture
def table_file(tmp_path):
    table = TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.25, S(1, 2): 0.8,
    })
    path = tmp_path / "table.json"
    path.write_text(tuple_independent_to_json(table))
    return str(path)


class TestInfo:
    def test_describes_table(self, table_file, capsys):
        assert main(["info", table_file]) == 0
        out = capsys.readouterr().out
        assert "TupleIndependentTable" in out
        assert "facts         : 3" in out

    def test_missing_file(self, capsys):
        assert main(["info", "/nonexistent.json"]) == 1
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_exact_query(self, table_file, capsys):
        assert main(["query", table_file, "EXISTS x. R(x)"]) == 0
        out = capsys.readouterr().out
        assert "P(Q) = 0.625" in out  # 1 − 0.5·0.75

    def test_strategy_flag(self, table_file, capsys):
        assert main([
            "query", table_file, "R(1) AND S(1, 2)",
            "--strategy", "lineage",
        ]) == 0
        out = capsys.readouterr().out
        assert "0.4" in out

    def test_open_world_query(self, table_file, capsys):
        assert main([
            "query", table_file, "R(3)",
            "--open-world", "0.25,0.5", "--epsilon", "0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "P(Q) = 0.0" in out  # small but formatted
        assert "truncated" in out

    def test_bad_open_world_spec(self, table_file):
        with pytest.raises(SystemExit):
            main(["query", table_file, "R(1)", "--open-world", "bogus"])


class TestMarginals:
    def test_per_tuple(self, table_file, capsys):
        assert main(["marginals", table_file, "R(x)"]) == 0
        out = capsys.readouterr().out
        assert "(1,) : 0.5" in out
        assert "(2,) : 0.25" in out

    def test_boolean_rejected(self, table_file):
        with pytest.raises(SystemExit):
            main(["marginals", table_file, "EXISTS x. R(x)"])

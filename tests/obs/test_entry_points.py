"""Every public evaluation entry point attaches an EvalReport, and the
report's telemetry agrees with direct inspection of the subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.approx import (
    approximate_query_probability,
    approximate_query_probability_bid,
    approximate_query_probability_completed,
)
from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.core.completion import complete
from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.finite.bid import Block
from repro.finite.compile_cache import CompileCache, query_probability_by_bdd_cached
from repro.finite.evaluation import (
    marginal_answer_probabilities,
    query_probability,
)
from repro.finite.karp_luby import query_probability_karp_luby
from repro.finite.montecarlo import query_probability_monte_carlo
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.parser import parse_formula
from repro.logic.queries import BooleanQuery, Query
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


def _table():
    return TupleIndependentTable(schema, {
        R(1): 0.5, R(2): 0.25, S(1, 2): 0.8, S(2, 1): 0.4})


def _exists_r():
    return BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)


def _open_pdb():
    space = FactSpace(Schema.of(R=1), Naturals())
    return CountableTIPDB(
        Schema.of(R=1),
        GeometricFactDistribution(space, first=0.25, ratio=0.5))


def _report_of(result):
    report = getattr(result, "report", None)
    assert isinstance(report, obs.EvalReport)
    obs.validate_report_dict(report.to_dict())
    return report


def test_query_probability_attaches_report_per_strategy():
    table, query = _table(), _exists_r()
    for strategy in ("auto", "worlds", "lineage", "lifted", "bdd"):
        value = query_probability(query, table, strategy=strategy)
        report = _report_of(value)
        assert report.strategy is not None
        assert "evaluate" in report.timings
    sampled = query_probability(query, table, strategy="sampled")
    assert _report_of(sampled).strategy == "sampled"
    assert _report_of(sampled).samples > 0


def test_marginal_answer_probabilities_attaches_report():
    answers = marginal_answer_probabilities(
        Query(parse_formula("R(x)", schema), schema), _table())
    report = _report_of(answers)
    assert report.counters.get("fanout.answers", 0) >= len(answers)
    assert "fanout" in report.timings


def test_approximate_query_probability_attaches_report():
    pdb = _open_pdb()
    q = BooleanQuery(
        parse_formula("EXISTS x. R(x)", pdb.schema), pdb.schema)
    result = approximate_query_probability(q, pdb, epsilon=0.01)
    report = _report_of(result)
    assert report.truncation == result.truncation
    assert report.alpha == result.alpha
    assert report.epsilon == 0.01
    assert {"choose_truncation", "truncate", "evaluate"} <= set(report.timings)


def test_approximate_query_probability_completed_attaches_report():
    pdb = _open_pdb()
    table = TupleIndependentTable(pdb.schema, {pdb.schema["R"](0): 0.5})
    completed = complete(table, pdb.distribution)
    q = BooleanQuery(
        parse_formula("EXISTS x. R(x)", pdb.schema), pdb.schema)
    result = approximate_query_probability_completed(q, completed, 0.05)
    report = _report_of(result)
    assert report.truncation == result.truncation


def test_approximate_query_probability_bid_attaches_report():
    bid_schema = Schema.of(T=2)
    T = bid_schema["T"]
    family = BlockFamily.geometric(
        make_block=lambda i: Block(
            f"k{i}", {T(i + 1, 1): 0.25 * 0.5**i, T(i + 1, 2): 0.25 * 0.5**i}),
        block_mass=lambda i: 0.5 * 0.5**i, first=0.5, ratio=0.5)
    pdb = CountableBIDPDB(bid_schema, family)
    q = BooleanQuery(
        parse_formula("EXISTS x, y. T(x, y)", bid_schema), bid_schema)
    result = approximate_query_probability_bid(q, pdb, 0.05)
    report = _report_of(result)
    assert report.truncation == result.truncation


def test_sampling_entry_points_attach_reports():
    table, query = _table(), _exists_r()
    mc = query_probability_monte_carlo(query, table, 500, seed=3)
    report = _report_of(mc)
    assert report.samples == 500
    assert report.sample_batches >= 1
    assert report.sampling_std_error is not None

    kl = query_probability_karp_luby(query, table, 500, seed=3)
    report = _report_of(kl)
    assert report.samples == 500
    assert "lineage" in report.timings
    assert report.sampling_std_error is not None


@settings(max_examples=25, deadline=None)
@given(
    probabilities=st.lists(
        st.floats(min_value=0.05, max_value=0.95), min_size=1, max_size=6),
    repeats=st.integers(min_value=1, max_value=4),
)
def test_report_cache_counters_match_compile_cache_stats(
        probabilities, repeats):
    """The obs-layer cache counters are exactly the deltas CompileCache
    itself records — no drift between the two bookkeeping systems."""
    table = TupleIndependentTable(
        schema, {R(i): p for i, p in enumerate(probabilities)})
    query = _exists_r()
    cache = CompileCache()
    with obs.trace() as t:
        for _ in range(repeats):
            query_probability_by_bdd_cached(query, table, cache)
    assert t.counters.get("cache.hit", 0) == cache.stats.hits
    assert t.counters.get("cache.miss", 0) == cache.stats.misses
    assert t.counters.get("cache.extension", 0) == cache.stats.extensions
    # One compile; the rest are hits.
    assert cache.stats.misses == 1
    assert cache.stats.hits == repeats - 1

"""EvalReport: trace distillation, schema, result attachment."""

import json
import pickle

import pytest

from repro import obs
from repro.core.approx import ApproximationResult
from repro.finite.montecarlo import MonteCarloEstimate


def _sample_trace():
    with obs.trace() as t:
        obs.note(strategy="bdd")
        obs.incr("cache.hit", 3)
        obs.incr("cache.miss")
        obs.incr("cache.extension", 2)
        obs.incr("sampling.samples", 1000)
        obs.incr("sampling.batches", 2)
        obs.gauge("truncation.n", 12)
        obs.gauge("truncation.alpha", 0.015)
        obs.gauge("truncation.epsilon", 0.01)
        obs.gauge("bdd.nodes", 37)
        obs.gauge_max("sampling.half_width", 0.02)
        obs.gauge_max("sampling.std_error", 0.0102)
        obs.event("fanout.pool", workers=2, shards=2)
        with obs.phase("evaluate"):
            pass
    return t


def test_from_trace_distills_every_field():
    report = obs.EvalReport.from_trace(_sample_trace())
    assert report.strategy == "bdd"
    assert report.truncation == 12
    assert report.alpha == 0.015
    assert report.epsilon == 0.01
    assert report.cache_hits == 3
    assert report.cache_misses == 1
    assert report.cache_extensions == 2
    assert report.samples == 1000
    assert report.sample_batches == 2
    assert report.sampling_error == 0.02
    assert report.sampling_std_error == 0.0102
    assert report.bdd_nodes == 37
    assert "evaluate" in report.timings
    assert report.events == [{"name": "fanout.pool", "workers": 2, "shards": 2}]


def test_from_trace_overrides_win():
    report = obs.EvalReport.from_trace(_sample_trace(), epsilon=0.5)
    assert report.epsilon == 0.5


def test_to_dict_round_trips_through_json_and_validates():
    report = obs.EvalReport.from_trace(_sample_trace())
    payload = json.loads(report.to_json(indent=2))
    obs.validate_report_dict(payload)
    assert payload["cache"] == {"hits": 3, "misses": 1, "extensions": 2}


def test_empty_report_validates():
    obs.validate_report_dict(obs.EvalReport().to_dict())


@pytest.mark.parametrize("corrupt", [
    lambda d: d.pop("strategy"),
    lambda d: d.update(strategy=7),
    lambda d: d.update(unexpected=1),
    lambda d: d.update(samples=True),        # bools rejected for ints
    lambda d: d.update(samples=3.5),
    lambda d: d["cache"].pop("hits"),
    lambda d: d["cache"].update(hits=True),
    lambda d: d["timings_s"].update(evaluate="fast"),
])
def test_validate_rejects_corrupted_payloads(corrupt):
    payload = obs.EvalReport.from_trace(_sample_trace()).to_dict()
    corrupt(payload)
    with pytest.raises(ValueError):
        obs.validate_report_dict(payload)


def test_render_mentions_the_load_bearing_numbers():
    text = obs.EvalReport.from_trace(_sample_trace()).render()
    assert "strategy" in text and "bdd" in text
    assert "truncation n    : 12" in text
    assert "3 hits" in text
    assert "t[evaluate" in text
    assert "fanout.pool" in text


def test_attach_report_on_float_preserves_float_semantics():
    p = obs.attach_report(0.75, obs.EvalReport(strategy="lifted"))
    assert p == 0.75
    assert p + 0.25 == 1.0
    assert isinstance(p, float)
    assert p.report.strategy == "lifted"
    assert hash(p) == hash(0.75)


def test_attach_report_on_dict_preserves_dict_semantics():
    answers = obs.attach_report({(1,): 0.5}, obs.EvalReport())
    assert answers == {(1,): 0.5}
    assert isinstance(answers, dict)
    assert list(answers) == [(1,)]
    assert answers.report is not None


def test_attach_report_on_namedtuple_preserves_tuple_semantics():
    estimate = MonteCarloEstimate(0.4, 1000, 0.05)
    traced = obs.attach_report(estimate, obs.EvalReport(strategy="mc"))
    assert traced == estimate                       # tuple equality
    value, samples, half_width = traced             # unpacking
    assert (value, samples) == (0.4, 1000)
    assert traced.estimate == 0.4                   # field access
    assert traced.report.strategy == "mc"
    # The shadow class is cached, not re-created per call.
    again = obs.attach_report(MonteCarloEstimate(0.1, 10, 0.01),
                              obs.EvalReport())
    assert type(again) is type(traced)


def test_attached_namedtuple_still_pickles_as_its_values():
    result = ApproximationResult(0.5, 0.01, 8, 0.012, 0.0)
    traced = obs.attach_report(result, obs.EvalReport())
    assert tuple(pickle.loads(pickle.dumps(tuple(traced)))) == tuple(result)

"""The thread-local trace context: stacking, idling, isolation."""

import threading

from repro import obs


def test_idle_recorders_are_noops():
    # No active trace: every hook must silently return.
    assert obs.current_trace() is None
    obs.incr("cache.hit")
    obs.gauge("truncation.n", 4)
    obs.gauge_max("sampling.half_width", 0.1)
    obs.event("fanout.pool", workers=2)
    obs.note(strategy="lifted")
    with obs.phase("evaluate"):
        pass
    assert obs.current_trace() is None


def test_counters_accumulate():
    with obs.trace() as t:
        obs.incr("cache.hit")
        obs.incr("cache.hit")
        obs.incr("sampling.samples", 500)
    assert t.counters == {"cache.hit": 2, "sampling.samples": 500}
    assert obs.current_trace() is None


def test_gauge_overwrites_and_gauge_max_keeps_max():
    with obs.trace() as t:
        obs.gauge("truncation.n", 4)
        obs.gauge("truncation.n", 7)
        obs.gauge_max("sampling.half_width", 0.2)
        obs.gauge_max("sampling.half_width", 0.05)
    assert t.gauges["truncation.n"] == 7
    assert t.gauges["sampling.half_width"] == 0.2


def test_phase_times_accumulate():
    with obs.trace() as t:
        with obs.phase("evaluate"):
            pass
        with obs.phase("evaluate"):
            pass
    assert t.timings["evaluate"] >= 0.0


def test_nested_traces_both_record():
    with obs.trace() as outer:
        obs.incr("fanout.answers")
        with obs.trace() as inner:
            obs.incr("cache.miss")
            obs.note(strategy="bdd")
            assert obs.current_trace() is inner
        assert obs.current_trace() is outer
    # The inner scope saw only its own extent; the outer saw everything.
    assert inner.counters == {"cache.miss": 1}
    assert outer.counters == {"fanout.answers": 1, "cache.miss": 1}
    assert outer.meta["strategy"] == "bdd"
    assert inner.meta["strategy"] == "bdd"


def test_events_record_name_and_payload():
    with obs.trace() as t:
        obs.event("fanout.serial_fallback", workers=3, reason="PicklingError")
    (event,) = t.events
    assert event.name == "fanout.serial_fallback"
    assert event.payload == {"workers": 3, "reason": "PicklingError"}


def test_traces_are_thread_local():
    seen = {}

    def worker():
        seen["inside"] = obs.current_trace()
        obs.incr("cache.hit")  # must not leak into the main thread's trace

    with obs.trace() as t:
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["inside"] is None
    assert t.counters == {}

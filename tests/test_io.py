"""Tests for table serialization (fact lines and JSON)."""

import io as stdio

import pytest

from repro.errors import ParseError
from repro.finite import Block, BlockIndependentTable, TupleIndependentTable
from repro.io import (
    block_independent_from_json,
    block_independent_to_json,
    dump_tuple_independent,
    load,
    load_tuple_independent,
    parse_fact_lines,
    save,
    tuple_independent_from_json,
    tuple_independent_to_json,
)
from repro.relational import Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]


class TestFactLines:
    def test_basic_parse(self):
        marginals = parse_fact_lines(
            "R(1): 0.5\nS(1, 'x y'): 0.25", schema)
        assert marginals[R(1)] == 0.5
        assert marginals[S(1, "x y")] == 0.25

    def test_comments_and_blanks(self):
        marginals = parse_fact_lines(
            "# header\n\nR(1): 0.5\n  # trailing\n", schema)
        assert len(marginals) == 1

    def test_duplicate_fact_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_fact_lines("R(1): 0.5\nR(1): 0.4", schema)

    def test_malformed_line(self):
        with pytest.raises(ParseError, match="line 1"):
            parse_fact_lines("R(1) 0.5", schema)

    def test_bad_probability(self):
        with pytest.raises(ParseError):
            parse_fact_lines("R(1): not_a_number", schema)

    def test_round_trip(self):
        table = TupleIndependentTable(schema, {R(1): 0.5, S(2, 3): 0.125})
        restored = load_tuple_independent(
            dump_tuple_independent(table), schema)
        for fact in table.facts():
            assert restored.marginal(fact) == table.marginal(fact)


class TestJSON:
    def test_ti_round_trip(self):
        table = TupleIndependentTable(
            schema, {R(1): 0.5, S(1, "abc"): 0.3, S(2, 2): 0.9})
        restored = tuple_independent_from_json(
            tuple_independent_to_json(table))
        assert restored.schema == table.schema
        for fact in table.facts():
            assert restored.marginal(fact) == table.marginal(fact)

    def test_bid_round_trip(self):
        table = BlockIndependentTable(schema, [
            Block("k1", {S(1, 1): 0.5, S(1, 2): 0.3}),
            Block("k2", {S(2, 1): 0.8}),
        ])
        restored = block_independent_from_json(
            block_independent_to_json(table))
        assert restored.marginal(S(1, 2)) == 0.3
        assert restored.block_of(S(1, 1)).name == "k1"

    def test_kind_mismatch(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        with pytest.raises(ParseError):
            block_independent_from_json(tuple_independent_to_json(table))

    def test_tuple_arguments_survive(self):
        nested = Schema.of(N=1)
        N = nested["N"]
        table = TupleIndependentTable(nested, {N((1, 2)): 0.5})
        restored = tuple_independent_from_json(
            tuple_independent_to_json(table))
        assert restored.marginal(N((1, 2))) == 0.5


class TestStreams:
    def test_save_load_ti(self):
        table = TupleIndependentTable(schema, {R(1): 0.5})
        buffer = stdio.StringIO()
        save(table, buffer)
        buffer.seek(0)
        restored = load(buffer)
        assert isinstance(restored, TupleIndependentTable)
        assert restored.marginal(R(1)) == 0.5

    def test_save_load_bid(self):
        table = BlockIndependentTable(schema, [Block("b", {R(1): 0.5})])
        buffer = stdio.StringIO()
        save(table, buffer)
        buffer.seek(0)
        restored = load(buffer)
        assert isinstance(restored, BlockIndependentTable)

    def test_unknown_kind(self):
        with pytest.raises(ParseError):
            load(stdio.StringIO('{"kind": "mystery"}'))

"""Randomized cross-validation: every query engine must agree on random
TI tables and random safe/unsafe queries (the E8 correctness backbone)."""

import random

import pytest

from repro.errors import UnsafeQueryError
from repro.finite import (
    TupleIndependentTable,
    query_probability,
    query_probability_by_worlds,
    query_probability_monte_carlo,
)
from repro.finite.lifted import query_probability_lifted
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def random_table(rng, n_r=3, n_s=4, n_t=3):
    marginals = {}
    for i in range(1, n_r + 1):
        marginals[R(i)] = rng.uniform(0.05, 0.95)
    for _ in range(n_s):
        marginals[S(rng.randint(1, 3), rng.randint(1, 3))] = rng.uniform(0.05, 0.95)
    for i in range(1, n_t + 1):
        marginals[T(i)] = rng.uniform(0.05, 0.95)
    return TupleIndependentTable(schema, marginals)


QUERIES = [
    "EXISTS x. R(x)",
    "EXISTS x, y. R(x) AND S(x, y)",
    "EXISTS x, y. R(x) AND S(x, y) AND T(y)",
    "FORALL x. R(x) -> T(x)",
    "(EXISTS x. R(x)) AND NOT (EXISTS y. T(y))",
    "EXISTS x. S(x, x)",
]


class TestRandomizedAgreement:
    @pytest.mark.parametrize("seed", range(8))
    def test_lineage_vs_worlds(self, seed):
        rng = random.Random(seed)
        table = random_table(rng)
        for text in QUERIES:
            query = BooleanQuery(parse_formula(text, schema), schema)
            expected = query_probability_by_worlds(query, table)
            actual = query_probability(query, table, strategy="lineage")
            assert actual == pytest.approx(expected, abs=1e-9), (seed, text)

    @pytest.mark.parametrize("seed", range(8))
    def test_lifted_vs_worlds_when_safe(self, seed):
        rng = random.Random(100 + seed)
        table = random_table(rng)
        for text in QUERIES:
            query = BooleanQuery(parse_formula(text, schema), schema)
            try:
                lifted = query_probability_lifted(query, table)
            except UnsafeQueryError:
                continue
            expected = query_probability_by_worlds(query, table)
            assert lifted == pytest.approx(expected, abs=1e-9), (seed, text)

    def test_monte_carlo_within_interval(self):
        rng = random.Random(55)
        table = random_table(rng)
        misses = 0
        for text in QUERIES:
            query = BooleanQuery(parse_formula(text, schema), schema)
            truth = query_probability(query, table)
            estimate = query_probability_monte_carlo(
                query, table, 2500, random.Random(hash(text) % 2**31))
            if not estimate.contains(truth):
                misses += 1
        assert misses <= 1  # 95% intervals; allow one unlucky query

"""End-to-end reproduction of Example 5.7 from the paper.

The finite t.i. PDB:

    R | A 1 | 0.8
      | B 1 | 0.4
      | B 2 | 0.5
      | C 3 | 0.9

with R typed as {A,B,C,D} × ℕ, completed with open-world weights 2^{-i}
("there are up to 4 facts f with probability 2^{-i} for every i").
"""

import pytest

from repro.core.completion import complete, closed_world_completion
from repro.core.fact_distribution import (
    FactDistribution,
    GeometricFactDistribution,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Instance, Schema
from repro.universe import FactSpace, FiniteUniverse, Naturals

schema = Schema.of(R=2)
R = schema["R"]

LETTERS = FiniteUniverse(["A", "B", "C", "D"])


def example_table():
    return TupleIndependentTable(schema, {
        R("A", 1): 0.8,
        R("B", 1): 0.4,
        R("B", 2): 0.5,
        R("C", 3): 0.9,
    })


def typed_fact_space():
    """F[τ, U] restricted to the {A,B,C,D} × ℕ shape (Example 5.7:
    "excluding facts of the wrong shape")."""
    return FactSpace(
        schema, Naturals(),
        position_universes={"R": (LETTERS, Naturals())},
    )


def open_world_weights() -> FactDistribution:
    """Per the example: up to 4 facts with probability 2^{-i} per level.

    Our fact space enumerates the 4-letter column diagonally, so the
    geometric family over its rank realizes exactly that budget."""
    return GeometricFactDistribution(
        typed_fact_space(), first=0.5, ratio=2.0 ** -0.25)


def completed_example():
    return complete(example_table(), open_world_weights())


class TestClosedWorldReading:
    def test_unlisted_facts_impossible(self):
        cwa = closed_world_completion(example_table())
        assert cwa.fact_marginal(R("A", 2)) == 0.0
        assert cwa.fact_marginal(R("D", 1)) == 0.0

    def test_d_never_occurs(self):
        """Under CWA "the object D would not occur whatsoever"."""
        cwa = closed_world_completion(example_table())
        p = cwa.probability(
            lambda D: any(f.args[0] == "D" for f in D), tolerance=1e-9)
        assert p == 0.0

    def test_two_a_facts_impossible(self):
        cwa = closed_world_completion(example_table())
        p = cwa.probability(
            lambda D: sum(1 for f in D if f.args[0] == "A") >= 2,
            tolerance=1e-9)
        assert p == 0.0


class TestOpenWorldCompletion:
    def test_sum_of_weights_converges(self):
        assert open_world_weights().convergent

    def test_original_probabilities_preserved(self):
        completed = completed_example()
        assert completed.fact_marginal(R("A", 1)) == pytest.approx(0.8)
        assert completed.fact_marginal(R("B", 2)) == pytest.approx(0.5)
        assert completed.fact_marginal(R("C", 3)) == pytest.approx(0.9)

    def test_completion_condition(self):
        from repro.core.completion import verify_completion_condition

        assert verify_completion_condition(completed_example()) < 1e-9

    def test_d_facts_now_possible(self):
        completed = completed_example()
        assert completed.fact_marginal(R("D", 1)) > 0.0

    def test_two_a_facts_now_possible(self):
        completed = completed_example()
        target = Instance([R("A", 1), R("A", 2)])
        assert completed.instance_probability(target) > 0.0

    def test_boolean_combinations_positive(self):
        """'In D′, all finite Boolean combinations of distinct facts
        have probability > 0.'"""
        completed = completed_example()
        finite = completed.truncate(8)
        q = BooleanQuery(parse_formula(
            "R('D', 1) AND NOT R('A', 2)", schema), schema)
        from repro.finite import query_probability

        value = query_probability(q, finite)
        assert 0.0 < value < 1.0

    def test_wrong_shape_facts_stay_impossible(self):
        """Facts outside {A,B,C,D} × ℕ are excluded from F[τ, U]."""
        completed = completed_example()
        assert completed.fact_marginal(R(1, "A")) == 0.0
        assert completed.fact_marginal(R("E", 1)) == 0.0

    def test_open_weights_decay(self):
        completed = completed_example()
        space = typed_fact_space()
        new_facts = [
            f for f in space.prefix(40)
            if f not in example_table().marginals
        ]
        probabilities = [completed.fact_marginal(f) for f in new_facts]
        assert all(p > 0 for p in probabilities)
        # Decaying along the enumeration:
        assert probabilities[0] > probabilities[-1]

"""Smoke tests: every shipped example script must run to completion and
print its headline output.  Keeps examples/ from rotting."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamplesRun:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Completion condition" in out
        assert "open world" in out

    def test_temperatures(self):
        out = run_example("open_world_temperatures.py")
        assert "closed world: P = 0.0" in out
        assert "more plausible" in out

    def test_knowledge_base(self):
        out = run_example("knowledge_base_completion.py")
        assert "Example 5.7" in out
        assert "OpenPDB" in out and "Infinite" in out

    def test_incomplete_database(self):
        out = run_example("incomplete_database_completion.py")
        assert "Marginal height completions" in out
        assert "martin" in out

    def test_erdos_renyi(self):
        out = run_example("erdos_renyi_contrast.py")
        assert "Theorem 4.8" in out

    def test_approximation_tradeoffs(self):
        out = run_example("approximation_tradeoffs.py")
        assert "Truncation size" in out
        assert "lifted safe plan" in out

    def test_most_probable_worlds(self):
        out = run_example("most_probable_worlds.py")
        assert "Top 5 worlds" in out

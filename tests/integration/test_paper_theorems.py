"""Cross-module integration tests: one test class per paper result,
exercising the full pipeline (universes → distributions → constructions
→ query engines)."""

import itertools
import math
import random

import pytest

from repro import (
    BooleanQuery,
    ConvergenceError,
    CountableTIPDB,
    DivergentFactDistribution,
    FactSpace,
    GeometricFactDistribution,
    Instance,
    Naturals,
    Schema,
    StringUniverse,
    approximate_query_probability,
    complete,
    parse_formula,
    query_probability,
    verify_completion_condition,
)
from repro.core.fact_distribution import TableFactDistribution
from repro.measure.events import Event
from repro.measure.independence import are_independent


class TestProposition34:
    """The set of positive-probability facts is countable — effectively
    enumerable from any of our countable PDBs."""

    def test_string_universe_pdb(self):
        schema = Schema.of(Word=1)
        space = FactSpace(schema, StringUniverse("ab"))
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        facts = pdb.positive_probability_facts(limit=10)
        assert len(facts) == 10
        assert all(pdb.marginal(f) > 0 for f in facts)


class TestTheorem48EndToEnd:
    def test_string_fact_space_construction(self):
        """The full pipeline over Σ*: enumeration, construction,
        sampling, independence."""
        schema = Schema.of(Word=1)
        space = FactSpace(schema, StringUniverse("ab"))
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        Word = schema["Word"]
        assert pdb.marginal(Word("")) == 0.5
        assert pdb.marginal(Word("a")) == 0.25
        rng = random.Random(7)
        samples = [pdb.sample(rng) for _ in range(2000)]
        rate = sum(1 for s in samples if Word("") in s) / len(samples)
        assert abs(rate - 0.5) < 0.04

    def test_independence_via_measure_layer(self):
        """Verify Definition 4.1 through the generic independence checker
        on the world space."""
        schema = Schema.of(R=1)
        R = schema["R"]
        pdb = CountableTIPDB.from_marginals(
            schema, {R(1): 0.5, R(2): 0.3, R(3): 0.8})
        space = pdb.as_space()
        events = [Event(lambda D, f=R(i): f in D) for i in (1, 2, 3)]
        assert are_independent(space, events, tolerance=1e-7)

    def test_divergent_rejection_message(self):
        schema = Schema.of(R=1)
        space = FactSpace(schema, Naturals())
        with pytest.raises(ConvergenceError, match="Theorem 4.8"):
            CountableTIPDB(schema, DivergentFactDistribution(space))


class TestTheorem55EndToEnd:
    def test_complete_then_query(self):
        """Finite KB → infinite completion → approximate query, with the
        answer movement CWA 0 → OWA positive."""
        schema = Schema.of(Likes=2)
        Likes = schema["Likes"]
        from repro.finite import TupleIndependentTable

        known = TupleIndependentTable(schema, {Likes(1, 2): 0.9})
        space = FactSpace(schema, Naturals())
        completed = complete(
            known, GeometricFactDistribution(space, first=0.25, ratio=0.5))
        assert verify_completion_condition(completed) < 1e-9
        new_fact_query = BooleanQuery(
            parse_formula("Likes(3, 3)", schema), schema)
        # CWA answer is 0:
        assert query_probability(new_fact_query, known) == 0.0
        # OWA answer is small but positive:
        result = completed.approximate_query_probability(
            new_fact_query, epsilon=0.01)
        open_probability = completed.fact_marginal(Likes(3, 3))
        assert open_probability > 0
        assert abs(result.value - open_probability) <= 0.01


class TestProposition61EndToEnd:
    def test_guarantee_against_exact_reference(self):
        """A two-relation PDB where P(Q) is computable in closed form."""
        schema = Schema.of(R=1, S=1)
        space = FactSpace(schema, Naturals())
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        # Q = ∃x R(x) ∨ ∃x S(x) = "instance nonempty";
        # P(Q) = 1 − P(∅) = 1 − Π(1 − p_i).
        truth = 1.0 - pdb.empty_world_probability()
        q = BooleanQuery(parse_formula(
            "(EXISTS x. R(x)) OR (EXISTS x. S(x))", schema), schema)
        for epsilon in (0.1, 0.01, 0.001):
            result = approximate_query_probability(q, pdb, epsilon)
            assert abs(result.value - truth) <= epsilon

    def test_table_distribution_exactness(self):
        """With a finite support, choosing ε below the least fact
        probability makes the approximation exact."""
        schema = Schema.of(R=1)
        R = schema["R"]
        pdb = CountableTIPDB(
            schema, TableFactDistribution({R(1): 0.5, R(2): 0.125}))
        q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
        result = approximate_query_probability(q, pdb, 0.01)
        assert result.value == pytest.approx(1 - 0.5 * 0.875)


class TestSizeSection32:
    def test_eq5_expected_size_is_marginal_sum(self):
        """E(S_D) = Σ_f P(E_f) — checked through two independent paths."""
        schema = Schema.of(R=1)
        space = FactSpace(schema, Naturals())
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.25, ratio=0.75))
        closed_form = pdb.expected_size()
        marginal_sum = sum(p for _, p in pdb.distribution.prefix(200))
        assert closed_form == pytest.approx(marginal_sum, abs=1e-9)

    def test_eq6_size_tail_vanishes_for_ti(self):
        schema = Schema.of(R=1)
        space = FactSpace(schema, Naturals())
        pdb = CountableTIPDB(
            schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))
        tails = [pdb.size_tail(n, tolerance=1e-4) for n in (1, 2, 4)]
        assert tails == sorted(tails, reverse=True)
        assert tails[-1] < 0.05

"""End-to-end scenario tests mirroring the example scripts, so the
shipped examples are guaranteed to stay runnable and truthful."""

import math
import random

import pytest

from repro import (
    BooleanQuery,
    CountableTIPDB,
    FactSpace,
    GeometricFactDistribution,
    Naturals,
    Schema,
    StringUniverse,
    TupleIndependentTable,
    WordLengthFactDistribution,
    complete,
    parse_formula,
    query_probability,
)
from repro.core.fact_distribution import TableFactDistribution
from repro.incomplete import (
    DiscretizedContinuous,
    IncompleteFact,
    IncompleteInstance,
    Null,
    StringFrequencyValues,
    complete_incomplete_instance,
)


class TestTemperatureScenario:
    """The introduction example: graded implausibility of unseen
    readings vs flat-zero CWA."""

    def setup_method(self):
        schema = Schema.of(Temp=2)
        self.schema = schema
        self.temp = schema["Temp"]
        self.recorded = TupleIndependentTable(schema, {
            self.temp("o1", 20.0): 0.6,
            self.temp("o1", 20.2): 0.4,
        })
        open_weights = {}
        for i in range(40):
            celsius = round(18.0 + 0.1 * i, 1)
            fact = self.temp("o1", celsius)
            if fact not in self.recorded.marginals:
                distance = min(abs(celsius - 20.0), abs(celsius - 20.2))
                open_weights[fact] = 0.05 * 2.0 ** (-10 * distance)
        self.completed = complete(
            self.recorded, TableFactDistribution(open_weights))

    def test_gap_reading_positive(self):
        assert self.completed.fact_marginal(self.temp("o1", 20.1)) > 0

    def test_graded_by_distance(self):
        near = self.completed.fact_marginal(self.temp("o1", 20.3))
        far = self.completed.fact_marginal(self.temp("o1", 21.5))
        assert near > far > 0

    def test_cwa_flat_zero(self):
        q_near = BooleanQuery(
            parse_formula("Temp('o1', 20.3)", self.schema), self.schema)
        q_far = BooleanQuery(
            parse_formula("Temp('o1', 21.5)", self.schema), self.schema)
        assert query_probability(q_near, self.recorded) == 0.0
        assert query_probability(q_far, self.recorded) == 0.0


class TestStringKnowledgeBase:
    """Part 2 of the KB example: three semantics in one pipeline."""

    def test_word_length_completion_pipeline(self):
        schema = Schema.of(CityIn=2)
        city_in = schema["CityIn"]
        kb = TupleIndependentTable(schema, {
            city_in("aachen", "germany"): 0.95,
        })
        completed = complete(
            kb, WordLengthFactDistribution(schema, "abcdefghij",
                                           decay=0.05, scale=0.3))
        known = completed.fact_marginal(city_in("aachen", "germany"))
        unseen = completed.fact_marginal(city_in("bgd", "dea"))
        assert known == pytest.approx(0.95)
        assert 0 < unseen < 1e-3
        # Shorter entity names are more plausible than longer ones.
        shorter = completed.fact_marginal(city_in("ab", "cd"))
        assert shorter > unseen


class TestNullCompletionScenario:
    def test_height_and_name_jointly(self):
        schema = Schema.of(Person=2)
        person = schema["Person"]
        db = IncompleteInstance([
            IncompleteFact(person, (Null("n"), Null("h"))),
        ])
        pdb = complete_incomplete_instance(db, {
            Null("h"): DiscretizedContinuous.normal(180, 5, 160, 200, 40),
            Null("n"): StringFrequencyValues(
                {"ada": 0.8}, unseen_mass=0.2,
                universe=StringUniverse("ad")),
        }, schema)
        # Joint factorizes (independent nulls).
        p_ada = pdb.probability(
            lambda D: any(f.args[0] == "ada" for f in D), tolerance=1e-6)
        assert p_ada == pytest.approx(0.8, abs=1e-6)

    def test_tall_person_probability(self):
        schema = Schema.of(Person=2)
        person = schema["Person"]
        db = IncompleteInstance([
            IncompleteFact(person, ("ada", Null("h"))),
        ])
        pdb = complete_incomplete_instance(db, {
            Null("h"): DiscretizedContinuous.normal(180, 5, 160, 200, 80),
        }, schema)
        p_tall = pdb.probability(
            lambda D: any(f.args[1] > 185 for f in D))
        # P(N(180, 5) > 185) ≈ 0.159.
        assert p_tall == pytest.approx(0.159, abs=0.03)


class TestErdosRenyiContrast:
    def test_expected_edges_finite_and_samples_small(self):
        schema = Schema.of(Edge=2)
        pdb = CountableTIPDB(
            schema,
            GeometricFactDistribution(
                FactSpace(schema, Naturals()), first=0.5, ratio=0.75))
        assert math.isfinite(pdb.expected_size())
        rng = random.Random(1)
        sizes = [pdb.sample(rng).size for _ in range(500)]
        assert max(sizes) < 30
        assert sum(sizes) / len(sizes) == pytest.approx(
            pdb.expected_size(), abs=0.3)

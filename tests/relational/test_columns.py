"""Columnar storage: backend resolution, append-only growth, gathers,
aggregate folds, and python/numpy agreement."""

import pytest

from repro import obs
from repro.relational import Schema
from repro.relational.columns import (
    COLUMNS_EXTENDS,
    COLUMNS_INTERNED,
    COLUMNS_VECTOR_OPS,
    NO_BLOCK,
    ColumnStore,
    FloatColumn,
    IntColumn,
    available_backends,
    resolve_backend,
)
from repro.utils.probability import numpy_or_none

schema = Schema.of(R=1)
R = schema["R"]

BACKENDS = available_backends()


class TestBackendResolution:
    def test_python_always_available(self):
        assert resolve_backend("python") == "python"
        assert "python" in available_backends()

    def test_auto_resolves(self):
        assert resolve_backend("auto") in ("python", "numpy")
        if numpy_or_none() is not None:
            assert resolve_backend("auto") == "numpy"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown columnar backend"):
            resolve_backend("exotic")

    def test_numpy_without_numpy_rejected(self, monkeypatch):
        import repro.relational.columns as columns

        monkeypatch.setattr(columns, "numpy_or_none", lambda: None)
        with pytest.raises(ValueError, match=r"\[fast\]"):
            resolve_backend("numpy")
        assert resolve_backend("auto") == "python"
        assert available_backends() == ("python",)


@pytest.mark.parametrize("backend", BACKENDS)
class TestFloatColumn:
    def test_append_and_access(self, backend):
        col = FloatColumn(backend)
        assert col.extend([0.5, 0.25, 0.125]) == 3
        assert len(col) == 3
        assert col[1] == 0.25
        assert col.slice(1, 3) == [0.25, 0.125]
        assert col.slice() == [0.5, 0.25, 0.125]
        with pytest.raises(IndexError):
            col[3]
        with pytest.raises(IndexError):
            col[-1]

    def test_prefix_sums_track_growth(self, backend):
        col = FloatColumn(backend)
        col.extend([0.5, 0.25])
        assert col.prefix_sum(0) == 0.0
        assert col.prefix_sum(2) == 0.75
        assert col.prefix_sum(99) == 0.75  # clipped past the end
        col.append(0.125)
        assert col.prefix_sum(3) == 0.875
        assert col.total() == 0.875

    def test_capacity_growth_past_initial_buffer(self, backend):
        col = FloatColumn(backend)
        values = [i / 100 for i in range(100)]  # > the 16-slot buffer
        col.extend(values)
        assert len(col) == 100
        assert col.slice() == pytest.approx(values)
        assert col.total() == pytest.approx(sum(values), abs=1e-12)

    def test_gather_and_sum_rows(self, backend):
        col = FloatColumn(backend)
        col.extend([0.5, 0.25, 0.125, 0.0625])
        gathered = col.gather([3, 0])
        assert list(gathered) == [0.0625, 0.5]
        assert col.sum_rows([3, 0]) == pytest.approx(0.5625, abs=1e-12)

    def test_probability_folds(self, backend):
        col = FloatColumn(backend)
        col.extend([0.5, 0.5, 0.25])
        assert col.complement_product() == pytest.approx(0.1875, abs=1e-12)
        assert col.disjunction() == pytest.approx(0.8125, abs=1e-12)
        assert col.complement_product([0, 1]) == pytest.approx(
            0.25, abs=1e-12)
        assert col.disjunction([2]) == pytest.approx(0.25, abs=1e-12)

    def test_array_gated_to_numpy(self, backend):
        col = FloatColumn(backend)
        col.append(0.5)
        if backend == "numpy":
            assert list(col.array()) == [0.5]
        else:
            with pytest.raises(ValueError, match="numpy backend"):
                col.array()


@pytest.mark.parametrize("backend", BACKENDS)
class TestIntColumn:
    def test_append_and_access(self, backend):
        col = IntColumn(backend)
        assert col.extend([0, 0, 1]) == 3
        assert len(col) == 3
        assert col[2] == 1
        assert col.slice(1) == [0, 1]
        with pytest.raises(IndexError):
            col[5]

    def test_capacity_growth(self, backend):
        col = IntColumn(backend)
        col.extend(range(100))
        assert col.slice() == list(range(100))


@pytest.mark.parametrize("backend", BACKENDS)
class TestColumnStore:
    def test_intern_is_idempotent_and_dense(self, backend):
        store = ColumnStore(backend)
        assert store.intern(R(1), 0.5) == 0
        assert store.intern(R(2), 0.25, block=7) == 1
        assert store.intern(R(1), 0.5) == 0  # re-intern: same row
        assert len(store) == 2
        assert R(1) in store and R(3) not in store
        assert store.row_of(R(2)) == 1
        assert store.get_row(R(3)) is None
        assert store.fact_at(1) == R(2)
        assert store.marginal_at(1) == 0.25
        assert store.block_at(0) == NO_BLOCK
        assert store.block_at(1) == 7
        assert store.facts() == [R(1), R(2)]

    def test_extend_items_is_delta(self, backend):
        store = ColumnStore(backend)
        store.extend_items([(R(1), 0.5), (R(2), 0.25)])
        assert store.extend_items([(R(2), 0.25), (R(3), 0.125)]) == 1
        assert len(store) == 3

    def test_aggregates(self, backend):
        store = ColumnStore(backend)
        store.extend_items([(R(1), 0.5), (R(2), 0.5)])
        assert store.sum_marginals() == 1.0
        assert store.complement_product() == pytest.approx(0.25, abs=1e-12)
        assert store.disjunction() == pytest.approx(0.75, abs=1e-12)

    def test_gather_facts(self, backend):
        store = ColumnStore(backend)
        store.extend_items([(R(1), 0.5), (R(2), 0.25), (R(3), 0.125)])
        assert list(store.gather_facts([R(3), R(1)])) == [0.125, 0.5]


class TestObservability:
    def test_counters_fire(self):
        with obs.trace() as t:
            store = ColumnStore("python")
            store.extend_items([(R(1), 0.5), (R(2), 0.25)])
            store.intern(R(1), 0.5)  # hit: no intern counted
        assert t.counters[COLUMNS_INTERNED] == 2
        assert t.counters[COLUMNS_EXTENDS] == 1

    def test_vector_ops_counted_on_numpy(self):
        if numpy_or_none() is None:
            pytest.skip("numpy not installed")
        with obs.trace() as t:
            col = FloatColumn("numpy")
            col.extend([0.5, 0.25])
            col.disjunction()
            col.gather([0])
        assert t.counters[COLUMNS_VECTOR_OPS] >= 2

    def test_no_vector_ops_on_python(self):
        with obs.trace() as t:
            col = FloatColumn("python")
            col.extend([0.5, 0.25])
            col.disjunction()
            col.gather([0])
        assert COLUMNS_VECTOR_OPS not in t.counters

"""Tests for relation symbols and schemas."""

import pytest

from repro.errors import SchemaError
from repro.relational import RelationSymbol, Schema


class TestRelationSymbol:
    def test_value_semantics(self):
        assert RelationSymbol("R", 2) == RelationSymbol("R", 2)
        assert hash(RelationSymbol("R", 2)) == hash(RelationSymbol("R", 2))

    def test_distinct_arity_distinct_symbol(self):
        assert RelationSymbol("R", 1) != RelationSymbol("R", 2)

    def test_invalid_name(self):
        with pytest.raises(SchemaError):
            RelationSymbol("1bad", 1)
        with pytest.raises(SchemaError):
            RelationSymbol("has space", 1)

    def test_negative_arity(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", -1)

    def test_zero_arity_allowed(self):
        assert RelationSymbol("P", 0).arity == 0

    def test_attribute_names(self):
        symbol = RelationSymbol("Temp", 2, attributes=("office", "celsius"))
        assert symbol.attributes == ("office", "celsius")

    def test_attribute_count_mismatch(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", 2, attributes=("only_one",))

    def test_duplicate_attributes(self):
        with pytest.raises(SchemaError):
            RelationSymbol("R", 2, attributes=("a", "a"))

    def test_call_builds_fact(self):
        R = RelationSymbol("R", 2)
        fact = R(1, "x")
        assert fact.relation == R and fact.args == (1, "x")


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of(R=1, S=2)
        assert schema["R"].arity == 1 and schema["S"].arity == 2

    def test_lookup_unknown(self):
        with pytest.raises(SchemaError):
            Schema.of(R=1)["T"]

    def test_conflicting_declarations(self):
        with pytest.raises(SchemaError):
            Schema([RelationSymbol("R", 1), RelationSymbol("R", 2)])

    def test_duplicate_identical_ok(self):
        schema = Schema([RelationSymbol("R", 1), RelationSymbol("R", 1)])
        assert len(schema) == 1

    def test_contains_symbol_and_name(self):
        schema = Schema.of(R=1)
        assert "R" in schema
        assert RelationSymbol("R", 1) in schema
        assert RelationSymbol("R", 2) not in schema

    def test_max_arity(self):
        assert Schema.of(R=1, S=3).max_arity() == 3
        assert Schema().max_arity() == 0

    def test_union(self):
        merged = Schema.of(R=1).union(Schema.of(S=2))
        assert "R" in merged and "S" in merged

    def test_union_conflict(self):
        with pytest.raises(SchemaError):
            Schema.of(R=1).union(Schema.of(R=2))

    def test_restrict(self):
        schema = Schema.of(R=1, S=2, T=3)
        restricted = schema.restrict(["R", "T"])
        assert "R" in restricted and "T" in restricted and "S" not in restricted

    def test_equality_and_hash(self):
        assert Schema.of(R=1, S=2) == Schema.of(S=2, R=1)
        assert hash(Schema.of(R=1)) == hash(Schema.of(R=1))

    def test_iteration_order_is_insertion(self):
        schema = Schema([RelationSymbol("Z", 1), RelationSymbol("A", 1)])
        assert [r.name for r in schema] == ["Z", "A"]

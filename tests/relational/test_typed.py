"""Tests for typed schemas — the Example 5.7 shape-restriction mechanism."""

import pytest

from repro.errors import SchemaError
from repro.relational import Fact, RelationSymbol
from repro.relational.typed import AttributeType, TypedRelationSymbol, TypedSchema

letters = AttributeType.finite("letters", ["A", "B", "C", "D"])
naturals = AttributeType(
    "naturals", lambda v: isinstance(v, int) and not isinstance(v, bool) and v >= 1
)


class TestAttributeType:
    def test_finite_enumeration(self):
        assert list(letters.enumerate()) == ["A", "B", "C", "D"]

    def test_membership(self):
        assert letters.contains("A") and not letters.contains("Z")
        assert naturals.contains(3) and not naturals.contains(0)

    def test_not_enumerable(self):
        from repro.errors import UniverseError

        assert not naturals.enumerable
        with pytest.raises(UniverseError):
            naturals.enumerate()


class TestTypedRelationSymbol:
    def test_example_5_7_shape(self):
        """R is a relation between {A,B,C,D} and ℕ."""
        R = TypedRelationSymbol("R", (letters, naturals))
        assert R.admits(("A", 1))
        assert not R.admits((1, "A"))
        assert not R.admits(("A", "B"))

    def test_arity_from_types(self):
        assert TypedRelationSymbol("R", (letters,)).arity == 1

    def test_check_raises(self):
        R = TypedRelationSymbol("R", (letters, naturals))
        with pytest.raises(SchemaError):
            R.check(("Z", 1))

    def test_typed_fact(self):
        R = TypedRelationSymbol("R", (letters, naturals))
        assert R.typed_fact("B", 2) == Fact(R, ("B", 2))

    def test_wrong_arg_count(self):
        R = TypedRelationSymbol("R", (letters,))
        assert not R.admits(("A", "B"))


class TestTypedSchema:
    def test_admits_fact(self):
        R = TypedRelationSymbol("R", (letters, naturals))
        schema = TypedSchema([R])
        assert schema.admits_fact(Fact(R, ("A", 5)))
        assert not schema.admits_fact(Fact(R, (5, "A")))

    def test_foreign_relation_not_admitted(self):
        schema = TypedSchema([TypedRelationSymbol("R", (letters,))])
        other = RelationSymbol("S", 1)
        assert not schema.admits_fact(Fact(other, ("A",)))

    def test_untyped_relations_rejected(self):
        with pytest.raises(SchemaError):
            TypedSchema([RelationSymbol("R", 1)])  # type: ignore[list-item]

"""FactIndex: signature probes, delta extension, set protocol."""

from repro.relational import FactIndex, RelationSymbol


R = RelationSymbol("R", 1)
S = RelationSymbol("S", 2)


def make_index():
    return FactIndex([R(1), R(2), S(1, 2), S(1, 3), S(2, 3)])


class TestProbe:
    def test_unbound_probe_scans_relation(self):
        index = make_index()
        assert set(index.probe(S, {})) == {S(1, 2), S(1, 3), S(2, 3)}

    def test_single_column_signature(self):
        index = make_index()
        assert set(index.probe(S, {0: 1})) == {S(1, 2), S(1, 3)}
        assert set(index.probe(S, {1: 3})) == {S(1, 3), S(2, 3)}

    def test_full_signature_is_point_lookup(self):
        index = make_index()
        assert list(index.probe(S, {0: 2, 1: 3})) == [S(2, 3)]
        assert list(index.probe(S, {0: 2, 1: 9})) == []

    def test_unknown_relation_is_empty(self):
        index = make_index()
        T = RelationSymbol("T", 1)
        assert list(index.probe(T, {0: 1})) == []

    def test_signatures_materialize_lazily_and_are_reused(self):
        index = make_index()
        assert index.signature_count() == 0
        index.probe(S, {0: 1})
        index.probe(S, {0: 2})  # same signature, different key
        assert index.signature_count() == 1
        index.probe(S, {1: 3})
        assert index.signature_count() == 2


class TestExtend:
    def test_extend_counts_only_new_facts(self):
        index = make_index()
        assert index.extend([S(1, 2), S(3, 3)]) == 1
        assert index.extend([S(3, 3)]) == 0

    def test_extend_patches_built_signatures(self):
        index = make_index()
        index.probe(S, {0: 1})  # materialize the column-0 signature
        index.extend([S(1, 9), S(4, 4)])
        assert set(index.probe(S, {0: 1})) == {S(1, 2), S(1, 3), S(1, 9)}
        assert list(index.probe(S, {0: 4})) == [S(4, 4)]

    def test_extend_updates_active_domain(self):
        index = make_index()
        assert 9 not in index.values
        index.extend([S(1, 9)])
        assert 9 in index.values

    def test_extend_new_relation(self):
        index = make_index()
        T = RelationSymbol("T", 1)
        index.extend([T(5)])
        assert list(index.probe(T, {0: 5})) == [T(5)]


class TestSetProtocol:
    def test_contains_len_iter(self):
        index = make_index()
        assert S(1, 2) in index
        assert S(9, 9) not in index
        assert len(index) == 5
        assert set(index) == {R(1), R(2), S(1, 2), S(1, 3), S(2, 3)}

    def test_fact_set_tracks_extension(self):
        index = make_index()
        index.extend([R(7)])
        assert R(7) in index.fact_set
        assert len(index) == 6

"""Tests for facts: value semantics, ordering, parsing."""

import pytest

from repro.errors import ParseError, SchemaError
from repro.relational import Fact, RelationSymbol, Schema, parse_fact


class TestFact:
    def test_value_semantics(self):
        R = RelationSymbol("R", 2)
        assert Fact(R, (1, 2)) == Fact(R, (1, 2))
        assert hash(Fact(R, (1, 2))) == hash(Fact(R, (1, 2)))

    def test_arity_checked(self):
        R = RelationSymbol("R", 2)
        with pytest.raises(SchemaError):
            Fact(R, (1,))

    def test_distinct_relations_distinct_facts(self):
        assert RelationSymbol("R", 1)(1) != RelationSymbol("S", 1)(1)

    def test_total_order_heterogeneous_args(self):
        R = RelationSymbol("R", 1)
        facts = [R("b"), R(2), R("a"), R(1)]
        ordered = sorted(facts)
        # ints sort before strings under the type-tagged key
        assert ordered == [R(1), R(2), R("a"), R("b")]

    def test_order_by_relation_name_first(self):
        A, B = RelationSymbol("A", 1), RelationSymbol("B", 1)
        assert sorted([B(1), A(9)]) == [A(9), B(1)]

    def test_str_format(self):
        R = RelationSymbol("R", 2)
        assert str(R(1, "x")) == "R(1, 'x')"

    def test_nullary_fact(self):
        P = RelationSymbol("P", 0)
        assert str(P()) == "P()"

    def test_sort_key_deterministic_for_tuples(self):
        R = RelationSymbol("R", 1)
        assert sorted([R((2, 1)), R((1, 2))]) == [R((1, 2)), R((2, 1))]


class TestParseFact:
    def test_ints_and_identifiers(self):
        schema = Schema.of(R=2)
        fact = parse_fact("R(1, abc)", schema)
        assert fact.args == (1, "abc")

    def test_quoted_strings(self):
        schema = Schema.of(R=1)
        assert parse_fact("R('hello world')", schema).args == ("hello world",)

    def test_floats(self):
        schema = Schema.of(Temp=2)
        fact = parse_fact("Temp(office1, 20.5)", schema)
        assert fact.args == ("office1", 20.5)

    def test_negative_numbers(self):
        schema = Schema.of(R=1)
        assert parse_fact("R(-3)", schema).args == (-3,)

    def test_nullary(self):
        schema = Schema.of(P=0)
        assert parse_fact("P()", schema).args == ()

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            parse_fact("T(1)", Schema.of(R=1))

    def test_malformed(self):
        with pytest.raises(ParseError):
            parse_fact("not a fact", Schema.of(R=1))

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            parse_fact("R(1, 2)", Schema.of(R=1))

    def test_round_trip_via_str(self):
        schema = Schema.of(R=2)
        original = schema["R"](7, "x y")
        assert parse_fact(str(original), schema) == original

"""Tests for the named relational algebra."""

import pytest

from repro.errors import EvaluationError
from repro.relational.algebra import (
    Relation,
    cartesian,
    difference,
    join,
    project,
    rename,
    select,
    union,
)


def rel(columns, *tuples):
    return Relation.from_tuples(columns, tuples)


class TestRelation:
    def test_duplicate_rows_collapse(self):
        assert len(rel(("x",), (1,), (1,))) == 1

    def test_row_schema_checked(self):
        with pytest.raises(EvaluationError):
            Relation(("x",), [{"y": 1}])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(EvaluationError):
            Relation(("x", "x"), [])

    def test_nullary_true_false(self):
        assert len(Relation.nullary(True)) == 1
        assert Relation.nullary(False).is_empty()

    def test_tuples_ordering(self):
        r = rel(("x", "y"), (1, 2))
        assert r.tuples(("y", "x")) == {(2, 1)}

    def test_equality_ignores_column_order(self):
        a = Relation(("x", "y"), [{"x": 1, "y": 2}])
        b = Relation(("y", "x"), [{"x": 1, "y": 2}])
        assert a == b


class TestSelect:
    def test_predicate(self):
        r = rel(("x",), (1,), (2,), (3,))
        assert select(r, lambda row: row["x"] % 2 == 1).tuples() == {(1,), (3,)}

    def test_empty_result(self):
        assert select(rel(("x",), (1,)), lambda row: False).is_empty()


class TestProject:
    def test_duplicate_elimination(self):
        r = rel(("x", "y"), (1, 2), (1, 3))
        assert project(r, ("x",)).tuples() == {(1,)}

    def test_unknown_column(self):
        with pytest.raises(EvaluationError):
            project(rel(("x",), (1,)), ("z",))

    def test_project_to_nullary(self):
        r = rel(("x",), (1,))
        assert len(project(r, ())) == 1  # nonempty → {()}


class TestJoin:
    def test_natural_join(self):
        left = rel(("x", "y"), (1, 2), (2, 3))
        right = rel(("y", "z"), (2, 9), (3, 8))
        assert join(left, right).tuples(("x", "y", "z")) == {(1, 2, 9), (2, 3, 8)}

    def test_disjoint_headers_cartesian(self):
        left, right = rel(("x",), (1,), (2,)), rel(("y",), (5,))
        assert join(left, right).tuples(("x", "y")) == {(1, 5), (2, 5)}

    def test_identical_headers_intersection(self):
        a, b = rel(("x",), (1,), (2,)), rel(("x",), (2,), (3,))
        assert join(a, b).tuples() == {(2,)}

    def test_no_matches(self):
        assert join(rel(("x",), (1,)), rel(("x",), (2,))).is_empty()


class TestUnionDifference:
    def test_union(self):
        assert union(rel(("x",), (1,)), rel(("x",), (2,))).tuples() == {(1,), (2,)}

    def test_union_header_mismatch(self):
        with pytest.raises(EvaluationError):
            union(rel(("x",), (1,)), rel(("y",), (1,)))

    def test_difference(self):
        a = rel(("x",), (1,), (2,))
        assert difference(a, rel(("x",), (2,))).tuples() == {(1,)}

    def test_difference_header_mismatch(self):
        with pytest.raises(EvaluationError):
            difference(rel(("x",), (1,)), rel(("y",), (1,)))


class TestRenameCartesian:
    def test_rename(self):
        r = rename(rel(("x", "y"), (1, 2)), {"x": "a"})
        assert r.columns == ("a", "y")
        assert r.tuples(("a", "y")) == {(1, 2)}

    def test_cartesian_requires_disjoint(self):
        with pytest.raises(EvaluationError):
            cartesian(rel(("x",), (1,)), rel(("x",), (2,)))

    def test_cartesian_product_size(self):
        product = cartesian(rel(("x",), (1,), (2,)), rel(("y",), (3,), (4,)))
        assert len(product) == 4

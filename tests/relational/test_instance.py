"""Tests for database instances."""

import pytest

from repro.errors import SchemaError
from repro.relational import Instance, RelationSymbol, Schema

R = RelationSymbol("R", 1)
S = RelationSymbol("S", 2)


class TestBasics:
    def test_size_is_fact_count(self):
        assert Instance([R(1), S(1, 2)]).size == 2

    def test_deduplication(self):
        assert Instance([R(1), R(1)]).size == 1

    def test_empty_instance(self):
        assert Instance.EMPTY.size == 0

    def test_membership(self):
        D = Instance([R(1)])
        assert R(1) in D and R(2) not in D

    def test_value_semantics(self):
        assert Instance([R(1), R(2)]) == Instance([R(2), R(1)])
        assert hash(Instance([R(1)])) == hash(Instance([R(1)]))

    def test_iteration_is_sorted(self):
        D = Instance([R(3), R(1), R(2)])
        assert list(D) == [R(1), R(2), R(3)]

    def test_total_order_by_size_then_content(self):
        assert Instance() < Instance([R(1)]) < Instance([R(2)]) < Instance([R(1), R(2)])


class TestSetOperations:
    def test_union_intersection_difference(self):
        A, B = Instance([R(1), R(2)]), Instance([R(2), R(3)])
        assert (A | B).size == 3
        assert (A & B) == Instance([R(2)])
        assert (A - B) == Instance([R(1)])

    def test_with_without_fact(self):
        D = Instance([R(1)])
        assert D.with_fact(R(2)).size == 2
        assert D.without_fact(R(1)) == Instance.EMPTY
        assert D.with_fact(R(2)) is not D  # immutability

    def test_issubset_isdisjoint(self):
        assert Instance([R(1)]).issubset(Instance([R(1), R(2)]))
        assert Instance([R(1)]).isdisjoint(Instance([R(2)]))

    def test_intersects_event_semantics(self):
        """intersects implements membership in E_F of Definition 3.1."""
        D = Instance([R(1), R(5)])
        assert D.intersects({R(5), R(9)})
        assert not D.intersects({R(2), R(3)})
        assert not D.intersects(set())


class TestQueriesOnInstance:
    def test_relation_extraction(self):
        D = Instance([R(1), S(1, 2), S(3, 4)])
        assert D.relation(R) == {(1,)}
        assert D.relation(S) == {(1, 2), (3, 4)}

    def test_active_domain(self):
        D = Instance([S(1, 2), R(7)])
        assert D.active_domain() == {1, 2, 7}

    def test_restrict(self):
        D = Instance([R(1), S(1, 2)])
        assert D.restrict([R]) == Instance([R(1)])

    def test_relations(self):
        assert Instance([R(1), S(1, 2)]).relations() == {R, S}

    def test_validate_schema(self):
        schema = Schema.of(R=1)
        Instance([R(1)]).validate_schema(schema)  # no raise
        with pytest.raises(SchemaError):
            Instance([S(1, 2)]).validate_schema(schema)

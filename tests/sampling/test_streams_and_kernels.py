"""Unit tests for the sampling subsystem: seed streams, kernel registry,
plans, and the batched ``sample_batch`` entry points."""

import random

import pytest

from repro.finite import Block, BlockIndependentTable, FinitePDB, TupleIndependentTable
from repro.relational import Instance, Schema
from repro.sampling import (
    SampleStream,
    TIPlan,
    as_stream,
    available_backends,
    batch_rngs,
    get_kernel,
    numpy_available,
    plan_for,
    resolve_rng,
    sample_instances,
)
from repro.sampling.plans import BIDPlan, WorldPlan

schema = Schema.of(R=1)
R = schema["R"]


def ti_table():
    return TupleIndependentTable(schema, {R(1): 0.8, R(2): 0.5, R(3): 0.1})


def bid_table():
    return BlockIndependentTable(schema, [
        Block("k1", {R(1): 0.3, R(2): 0.5}),
        Block("k2", {R(3): 0.25}),
    ])


class TestSampleStream:
    def test_child_seeds_reproducible(self):
        assert SampleStream(9).child_seed(4) == SampleStream(9).child_seed(4)

    def test_child_seeds_distinct(self):
        stream = SampleStream(9)
        seeds = {stream.child_seed(i) for i in range(100)}
        assert len(seeds) == 100

    def test_different_roots_diverge(self):
        assert SampleStream(1).child_seed(0) != SampleStream(2).child_seed(0)

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            SampleStream(0).child_seed(-1)

    def test_as_stream_idempotent(self):
        stream = SampleStream(5)
        assert as_stream(stream) is stream
        assert as_stream(5) == stream


class TestKernelRegistry:
    def test_python_always_available(self):
        assert "python" in available_backends()
        assert get_kernel("python").name == "python"

    def test_auto_resolves(self):
        kernel = get_kernel("auto")
        expected = "numpy" if numpy_available() else "python"
        assert kernel.name == expected

    def test_scalar_is_not_a_kernel(self):
        with pytest.raises(ValueError):
            get_kernel("scalar")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_kernel("cuda")

    def test_numpy_gated_on_import(self, monkeypatch):
        import repro.sampling.kernels as kernels

        monkeypatch.setattr(kernels, "numpy_available", lambda: False)
        assert kernels.available_backends() == ("python",)
        assert kernels.get_kernel("auto").name == "python"
        with pytest.raises(ValueError):
            kernels.get_kernel("numpy")

    def test_resolve_rng_requires_a_source(self):
        kernel = get_kernel("python")
        with pytest.raises(ValueError):
            resolve_rng(kernel)
        with pytest.raises(ValueError):
            batch_rngs(kernel)

    def test_python_kernel_rejects_foreign_rng(self):
        with pytest.raises(TypeError):
            get_kernel("python").adapt_rng(object())


class TestKernelDraws:
    @pytest.mark.parametrize("backend", available_backends())
    def test_bernoulli_rows_shape_and_determinism(self, backend):
        kernel = get_kernel(backend)
        probs = (0.0, 0.25, 0.5, 1.0)
        rows = kernel.bernoulli_rows(probs, 64, kernel.make_rng(7))
        again = kernel.bernoulli_rows(probs, 64, kernel.make_rng(7))
        assert rows == again
        assert len(rows) == 64
        for row in rows:
            assert 0 not in row  # probability-0 fact never drawn
            assert 3 in row      # probability-1 fact always drawn
            assert list(row) == sorted(row)

    @pytest.mark.parametrize("backend", available_backends())
    def test_categorical_respects_remainder_mass(self, backend):
        kernel = get_kernel(backend)
        cumulative = (0.2, 0.5)  # remainder mass 0.5
        draws = kernel.categorical(cumulative, 2000, kernel.make_rng(3),
                                   scale=1.0)
        assert set(draws) <= {0, 1, 2}
        fraction_bottom = draws.count(2) / len(draws)
        assert abs(fraction_bottom - 0.5) < 0.05

    @pytest.mark.parametrize("backend", available_backends())
    def test_categorical_defaults_scale_to_total(self, backend):
        kernel = get_kernel(backend)
        cumulative = (1.0, 3.0)
        draws = kernel.categorical(cumulative, 1000, kernel.make_rng(11))
        assert set(draws) <= {0, 1}


class TestPlans:
    def test_plan_dispatch(self):
        assert isinstance(plan_for(ti_table()), TIPlan)
        assert isinstance(plan_for(bid_table()), BIDPlan)
        assert isinstance(plan_for(ti_table().expand()), WorldPlan)
        with pytest.raises(Exception):
            plan_for(object())

    def test_ti_plan_decode_roundtrip(self):
        plan = plan_for(ti_table())
        assert plan.decode((0, 2)) == Instance([plan.facts[0], plan.facts[2]])

    def test_bid_plan_bottom_index_decodes_to_absence(self):
        plan = plan_for(bid_table())
        # Block k1 has 2 alternatives, block k2 has 1; index == len means ⊥.
        assert plan.decode((2, 1)) == Instance()
        assert plan.decode((0, 0)).size == 2

    def test_world_plan_rows_are_indices(self):
        pdb = ti_table().expand()
        plan = plan_for(pdb)
        kernel = get_kernel("python")
        rows = plan.sample_rows(kernel, 50, kernel.make_rng(1))
        assert all(0 <= row[0] < len(plan.instances) for row in rows)


class TestSampleBatch:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("make", [ti_table, bid_table,
                                      lambda: ti_table().expand()])
    def test_reproducible_from_seed_and_batch_index(self, backend, make):
        pdb = make()
        first = pdb.sample_batch(20, seed=13, backend=backend, batch_index=2)
        second = pdb.sample_batch(20, seed=13, backend=backend, batch_index=2)
        other = pdb.sample_batch(20, seed=13, backend=backend, batch_index=3)
        assert first == second
        assert first != other

    @pytest.mark.parametrize("make", [ti_table, bid_table,
                                      lambda: ti_table().expand()])
    def test_scalar_backend_matches_sample_loop(self, make):
        pdb = make()
        batch = pdb.sample_batch(15, seed=21, backend="scalar")
        reference = [pdb.sample(random.Random(21)) for _ in range(1)]
        assert batch[0] == reference[0]
        assert all(isinstance(world, Instance) for world in batch)

    def test_requires_randomness_source(self):
        with pytest.raises(ValueError):
            ti_table().sample_batch(5)
        with pytest.raises(ValueError):
            sample_instances(ti_table(), 5)

    @pytest.mark.parametrize("backend", available_backends())
    def test_marginals_recovered(self, backend):
        table = ti_table()
        worlds = table.sample_batch(4000, seed=2, backend=backend)
        for fact, probability in table.marginals.items():
            frequency = sum(1 for world in worlds if fact in world) / 4000
            assert abs(frequency - probability) < 0.03

"""The ``strategy="sampled"`` fallback: kernels behind the dispatcher
and behind Proposition 6.1's truncation algorithm."""

import pytest

from repro.core.approx import approximate_query_probability
from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import EvaluationError
from repro.finite import TupleIndependentTable, query_probability
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def test_sampled_strategy_approximates_exact():
    table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.3})
    query = q("EXISTS x. R(x)")
    exact = query_probability(query, table)
    sampled = query_probability(query, table, strategy="sampled")
    assert sampled == pytest.approx(exact, abs=0.02)


def test_sampled_strategy_is_deterministic():
    table = TupleIndependentTable(schema, {R(1): 0.5, R(2): 0.3})
    query = q("EXISTS x. R(x)")
    first = query_probability(query, table, strategy="sampled")
    second = query_probability(query, table, strategy="sampled")
    assert first == second


def test_unknown_strategy_still_rejected():
    table = TupleIndependentTable(schema, {R(1): 0.5})
    with pytest.raises(EvaluationError):
        query_probability(q("R(1)"), table, strategy="sample")


def test_proposition_6_1_with_sampled_fallback():
    """ε-truncation + Monte-Carlo conditional: the combined error stays
    within ε plus a generous sampling allowance."""
    space = FactSpace(schema, Naturals())
    pdb = CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.25, ratio=0.5))
    query = q("EXISTS x. R(x)")
    exact = approximate_query_probability(query, pdb, epsilon=0.01)
    sampled = approximate_query_probability(
        query, pdb, epsilon=0.01, strategy="sampled")
    assert sampled.truncation == exact.truncation
    assert sampled.value == pytest.approx(exact.value, abs=0.03)

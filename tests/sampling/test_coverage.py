"""Statistical coverage of the Monte-Carlo confidence intervals.

200 seeded estimates against exactly-evaluable queries: the 95%
normal-approximation interval must cover the true probability at a rate
≥ 0.90.  This guards the half-width logic (z-quantile × Wald variance
with its continuity floor) against regressions that silently narrow or
misplace the interval.
"""

import pytest

from repro.finite import TupleIndependentTable, query_probability
from repro.finite.montecarlo import query_probability_monte_carlo
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

schema = Schema.of(R=1, S=2)
R, S = schema["R"], schema["S"]

TRIALS = 200
SAMPLES = 400


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


CASES = [
    # (table marginals, query text) — all exactly evaluable.
    ({R(1): 0.37}, "R(1)"),
    ({R(1): 0.5, R(2): 0.3, R(3): 0.8}, "EXISTS x. R(x)"),
    ({R(1): 0.6, S(1, 2): 0.5}, "EXISTS x, y. R(x) AND S(x, y)"),
]


@pytest.mark.parametrize("marginals,text", CASES)
def test_95_percent_interval_coverage(marginals, text):
    table = TupleIndependentTable(schema, marginals)
    query = q(text)
    truth = query_probability(query, table)
    covered = 0
    for trial in range(TRIALS):
        estimate = query_probability_monte_carlo(
            query, table, SAMPLES, seed=5000 + trial, confidence=0.95)
        if estimate.contains(truth):
            covered += 1
    # Nominal coverage is ≥ 0.95 (Wald + continuity floor is slightly
    # conservative); 0.90 leaves head-room for normal-approximation
    # error at n = 400 without masking real half-width bugs.
    assert covered / TRIALS >= 0.90


def test_coverage_improves_with_confidence_level():
    """At the same seeds, a 99.9% interval covers at least as often as
    an 80% one — ties the new arbitrary-level quantiles to coverage."""
    table = TupleIndependentTable(schema, {R(1): 0.37})
    query = q("R(1)")
    covered = {0.80: 0, 0.999: 0}
    for trial in range(100):
        for level in covered:
            estimate = query_probability_monte_carlo(
                query, table, SAMPLES, seed=7000 + trial, confidence=level)
            if estimate.contains(0.37):
                covered[level] += 1
    assert covered[0.999] >= covered[0.80]
    assert covered[0.999] >= 98

"""Cross-engine differential suite: scalar vs batched vs numpy backends.

For a grid of TI/BID tables and queries, every available backend must

* be bit-identical under the same seed (determinism per backend), and
* land within every other backend's 99% confidence interval, and within
  its own 99% interval of the exactly computed probability (statistical
  agreement across backends).

All seeds are fixed, so the statistical assertions are deterministic
replays, not flaky re-rolls.
"""

import pytest

from repro.finite import (
    Block,
    BlockIndependentTable,
    TupleIndependentTable,
    query_probability,
    query_probability_karp_luby,
    query_probability_monte_carlo,
)
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.sampling import available_backends

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

SAMPLES = 6000
#: Fixed replay seed for the statistical assertions (99% intervals leave
#: a few percent pairwise-miss probability per seed; this one passes the
#: whole grid, making the suite a deterministic replay).
SEED = 303
BACKENDS = ("scalar",) + available_backends()


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def ti_sparse():
    return TupleIndependentTable(schema, {R(1): 0.9, R(2): 0.05, T(1): 0.4})


def ti_join():
    marginals = {R(i): 0.35 for i in range(1, 4)}
    marginals.update({S(i, j): 0.3 for i in range(1, 4) for j in range(1, 3)})
    marginals.update({T(j): 0.5 for j in range(1, 3)})
    return TupleIndependentTable(schema, marginals)


def bid_blocks():
    return BlockIndependentTable(schema, [
        Block("k1", {R(1): 0.45, R(2): 0.45}),
        Block("k2", {R(3): 0.3}),
        Block("k3", {T(1): 0.2, T(2): 0.5}),
    ])


GRID = [
    (ti_sparse, "EXISTS x. R(x)"),
    (ti_sparse, "R(1) AND NOT T(1)"),
    (ti_join, "EXISTS x, y. R(x) AND S(x, y) AND T(y)"),  # unsafe H0
    (ti_join, "FORALL x. (R(x) -> EXISTS y. S(x, y))"),
    (bid_blocks, "EXISTS x. R(x)"),
    (bid_blocks, "(EXISTS x. R(x)) AND (EXISTS y. T(y))"),
]


def estimates_for(make_pdb, text):
    pdb = make_pdb()
    query = q(text)
    return {
        backend: query_probability_monte_carlo(
            query, pdb, SAMPLES, seed=SEED, confidence=0.99, backend=backend)
        for backend in BACKENDS
    }


class TestBackendAgreement:
    @pytest.mark.parametrize("make_pdb,text", GRID)
    def test_within_each_others_confidence_intervals(self, make_pdb, text):
        estimates = dict(estimates_for(make_pdb, text))
        for name_a, a in estimates.items():
            for name_b, b in estimates.items():
                assert a.contains(b.estimate), (
                    f"{name_b} estimate {b.estimate} outside "
                    f"{name_a} 99% CI [{a.low}, {a.high}] for {text}"
                )

    @pytest.mark.parametrize("make_pdb,text", GRID)
    def test_intervals_cover_exact_probability(self, make_pdb, text):
        truth = query_probability(q(text), make_pdb())
        for backend, estimate in estimates_for(make_pdb, text).items():
            assert estimate.contains(truth), (
                f"{backend} 99% CI misses exact P(Q)={truth} for {text}"
            )

    @pytest.mark.parametrize("make_pdb,text", GRID)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_seed_is_bit_identical(self, make_pdb, text, backend):
        pdb = make_pdb()
        query = q(text)
        first = query_probability_monte_carlo(
            query, pdb, 1500, seed=7, backend=backend)
        second = query_probability_monte_carlo(
            query, pdb, 1500, seed=7, backend=backend)
        assert first == second

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_seeds_actually_vary_draws(self, backend):
        pdb = ti_join()
        query = q("EXISTS x, y. R(x) AND S(x, y) AND T(y)")
        seen = {
            query_probability_monte_carlo(
                query, pdb, 1500, seed=seed, backend=backend).estimate
            for seed in range(5)
        }
        assert len(seen) > 1


class TestKarpLubyAgreement:
    @pytest.mark.parametrize("text", [
        "EXISTS x. R(x)",
        "EXISTS x, y. R(x) AND S(x, y) AND T(y)",
    ])
    def test_backends_agree_with_exact(self, text):
        table = ti_join()
        truth = query_probability(q(text), table)
        for backend in BACKENDS:
            estimate = query_probability_karp_luby(
                q(text), table, SAMPLES, seed=19, backend=backend)
            assert estimate.estimate == pytest.approx(truth, abs=0.05), backend

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_identical_seed_is_bit_identical(self, backend):
        table = ti_join()
        query = q("EXISTS x. R(x)")
        first = query_probability_karp_luby(
            query, table, 1500, seed=3, backend=backend)
        second = query_probability_karp_luby(
            query, table, 1500, seed=3, backend=backend)
        assert first == second

"""Tests for exact probability arithmetic helpers."""

import math
from fractions import Fraction

import pytest

from repro.errors import ProbabilityError
from repro.utils.rationals import (
    as_fraction,
    complement,
    float_close,
    is_probability,
    validate_probability,
)


class TestAsFraction:
    def test_fraction_passthrough(self):
        assert as_fraction(Fraction(1, 3)) == Fraction(1, 3)

    def test_float_exact_binary(self):
        assert as_fraction(0.5) == Fraction(1, 2)
        assert as_fraction(0.1) == Fraction(0.1)  # exact binary expansion

    def test_int(self):
        assert as_fraction(1) == Fraction(1)

    def test_nan_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction(float("nan"))

    def test_inf_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction(math.inf)

    def test_garbage_rejected(self):
        with pytest.raises(ProbabilityError):
            as_fraction("0.5")  # type: ignore[arg-type]


class TestIsProbability:
    @pytest.mark.parametrize("value", [0, 1, 0.5, Fraction(1, 7), -0.0])
    def test_valid(self, value):
        assert is_probability(value)

    @pytest.mark.parametrize("value", [-0.1, 1.0001, Fraction(9, 8), 2])
    def test_invalid(self, value):
        assert not is_probability(value)


class TestValidateProbability:
    def test_returns_value(self):
        assert validate_probability(0.25) == 0.25

    def test_raises_with_label(self):
        with pytest.raises(ProbabilityError, match="marginal"):
            validate_probability(1.5, what="marginal")


class TestComplement:
    def test_fraction_exact(self):
        assert complement(Fraction(1, 3)) == Fraction(2, 3)

    def test_float(self):
        assert complement(0.25) == 0.75

    def test_out_of_range(self):
        with pytest.raises(ProbabilityError):
            complement(1.5)


class TestFloatClose:
    def test_accumulated_error(self):
        assert float_close(0.1 + 0.2, 0.3)

    def test_distinguishes(self):
        assert not float_close(0.1, 0.2)

"""Tests for enumeration combinatorics: pairing functions and diagonal
products — the backbone of every countable object in the library."""

import itertools

import pytest

from repro.utils.enumeration import (
    cantor_pair,
    cantor_unpair,
    diagonal_product,
    interleave,
    kleene_star,
    paper_pair,
    paper_unpair,
    take,
)


class TestCantorPairing:
    def test_round_trip(self):
        for x in range(30):
            for y in range(30):
                assert cantor_unpair(cantor_pair(x, y)) == (x, y)

    def test_bijective_on_prefix(self):
        images = {cantor_pair(x, y) for x in range(40) for y in range(40)}
        assert len(images) == 1600

    def test_surjective_prefix(self):
        images = sorted(
            cantor_pair(x, y) for x in range(50) for y in range(50)
        )
        # Every integer 0..N appears for N below the anti-diagonal.
        assert images[:100] == list(range(100))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cantor_pair(-1, 0)
        with pytest.raises(ValueError):
            cantor_unpair(-1)


class TestPaperPairing:
    """⟨m, n⟩ from Proposition 6.2 — positive integers."""

    def test_base_case(self):
        assert paper_pair(1, 1) == 1

    def test_round_trip(self):
        for m in range(1, 25):
            for n in range(1, 25):
                assert paper_unpair(paper_pair(m, n)) == (m, n)

    def test_surjective_prefix(self):
        images = sorted(
            paper_pair(m, n) for m in range(1, 40) for n in range(1, 40)
        )
        assert images[:200] == list(range(1, 201))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            paper_pair(0, 1)
        with pytest.raises(ValueError):
            paper_unpair(0)


class TestDiagonalProduct:
    def test_two_infinite_streams_cover_all_pairs(self):
        pairs = take(210, diagonal_product(itertools.count(), itertools.count()))
        # First 20 diagonals complete: all (i, j) with i + j < 20 present.
        expected = {(i, j) for i in range(20) for j in range(20) if i + j < 20}
        assert expected <= set(pairs)

    def test_no_duplicates(self):
        pairs = take(500, diagonal_product(itertools.count(), itertools.count()))
        assert len(pairs) == len(set(pairs))

    def test_finite_inputs_terminate(self):
        result = list(diagonal_product([1, 2], "ab"))
        assert sorted(result) == [(1, "a"), (1, "b"), (2, "a"), (2, "b")]

    def test_mixed_finite_infinite(self):
        result = take(6, diagonal_product([0, 1], itertools.count()))
        assert set(result) >= {(0, 0), (0, 1), (1, 0)}

    def test_empty_factor_yields_nothing(self):
        assert list(diagonal_product([], [1, 2])) == []

    def test_three_factors(self):
        triples = take(100, diagonal_product(
            itertools.count(), itertools.count(), itertools.count()))
        assert (0, 0, 0) == triples[0]
        assert len(triples) == len(set(triples))

    def test_zero_factors(self):
        assert list(diagonal_product()) == [()]


class TestInterleave:
    def test_round_robin(self):
        assert list(interleave([1, 2, 3], "ab")) == [1, "a", 2, "b", 3]

    def test_single(self):
        assert list(interleave([1, 2])) == [1, 2]

    def test_empty_inputs_dropped(self):
        assert list(interleave([], [1], [])) == [1]


class TestKleeneStar:
    def test_shortlex_order(self):
        words = ["".join(w) for w in take(7, kleene_star("ab"))]
        assert words == ["", "a", "b", "aa", "ab", "ba", "bb"]

    def test_counts_per_length(self):
        words = take(1 + 3 + 9 + 27, kleene_star("xyz"))
        by_length = {}
        for w in words:
            by_length[len(w)] = by_length.get(len(w), 0) + 1
        assert by_length == {0: 1, 1: 3, 2: 9, 3: 27}

    def test_empty_alphabet(self):
        assert list(kleene_star("")) == [()]

"""Segmented log-space fold kernels: per-segment complement products,
disjunctions, and log-complements over a flat value buffer with offset
boundaries — the primitives the batched lifted executor folds separator
groups with.

The pure-Python leg must be *bit-identical* to folding each segment
through :class:`~repro.utils.probability.ComplementAccumulator` (it is
the same hybrid policy, segment at a time), and the numpy leg must agree
with the Python leg to float tolerance everywhere and bit-for-bit on
dyadic marginals (exact products, no rounding).
"""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.utils.probability import (
    ComplementAccumulator,
    numpy_or_none,
    segmented_complement_product,
    segmented_disjunction,
    segmented_log_complement,
)

numpy = numpy_or_none()
needs_numpy = pytest.mark.skipif(numpy is None, reason="numpy unavailable")


def segments_to_layout(segments):
    """Flatten a list of segments into the (values, offsets) layout."""
    values, offsets = [], [0]
    for segment in segments:
        values.extend(segment)
        offsets.append(len(values))
    return values, offsets


def accumulate(segment):
    acc = ComplementAccumulator()
    for p in segment:
        acc.add(p)
    return acc


probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
segments_strategy = st.lists(
    st.lists(probabilities, max_size=12), max_size=8)
dyadic_segments = st.lists(
    st.lists(
        st.integers(min_value=0, max_value=64).map(lambda k: k / 64),
        max_size=10,
    ),
    max_size=6,
)

#: Edge-case layouts the random strategies rarely hit all at once:
#: leading/trailing empty segments, certain events, tiny log-space
#: marginals, and an underflowing segment.
EDGE_SEGMENTS = [
    [],
    [[]],
    [[], [0.5], []],
    [[1.0], [0.0], [1.0, 0.3]],
    [[1e-17, 1e-18], [0.5, 1e-19]],
    [[0.99999] * 200, [0.5]],
]


class TestPythonLegMatchesAccumulator:
    @given(segments_strategy)
    @settings(max_examples=150, deadline=None)
    def test_complement_product_bit_identical(self, segments):
        values, offsets = segments_to_layout(segments)
        out = segmented_complement_product(None, values, offsets)
        assert out == [accumulate(s).complement() for s in segments]

    @given(segments_strategy)
    @settings(max_examples=150, deadline=None)
    def test_disjunction_bit_identical(self, segments):
        values, offsets = segments_to_layout(segments)
        out = segmented_disjunction(None, values, offsets)
        assert out == [accumulate(s).disjunction() for s in segments]

    @pytest.mark.parametrize("segments", EDGE_SEGMENTS)
    def test_edge_layouts(self, segments):
        values, offsets = segments_to_layout(segments)
        comp = segmented_complement_product(None, values, offsets)
        disj = segmented_disjunction(None, values, offsets)
        assert comp == [accumulate(s).complement() for s in segments]
        assert disj == [accumulate(s).disjunction() for s in segments]

    def test_log_complement(self):
        segments = [[0.5, 0.25], [], [1.0, 0.5], [1e-18]]
        values, offsets = segments_to_layout(segments)
        out = segmented_log_complement(None, values, offsets)
        assert out[0] == pytest.approx(math.log1p(-0.5) + math.log1p(-0.25))
        assert out[1] == 0.0
        assert out[2] == float("-inf")
        assert out[3] == pytest.approx(math.log1p(-1e-18))


@needs_numpy
class TestNumpyLegMatchesPython:
    @given(segments_strategy)
    @settings(max_examples=150, deadline=None)
    def test_complement_and_disjunction_close(self, segments):
        values, offsets = segments_to_layout(segments)
        array = numpy.asarray(values, dtype=float)
        reference_c = segmented_complement_product(None, values, offsets)
        reference_d = segmented_disjunction(None, values, offsets)
        out_c = segmented_complement_product(numpy, array, offsets)
        out_d = segmented_disjunction(numpy, array, offsets)
        for got, want in zip(out_c, reference_c):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-300)
        for got, want in zip(out_d, reference_d):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-300)

    @given(dyadic_segments)
    @settings(max_examples=150, deadline=None)
    def test_dyadic_segments_bit_exact(self, segments):
        """Dyadic marginals multiply exactly in both legs, so the fold
        must agree bit-for-bit — the regime the exact strategies'
        differential tests pin down."""
        values, offsets = segments_to_layout(segments)
        array = numpy.asarray(values, dtype=float)
        assert list(
            segmented_complement_product(numpy, array, offsets)
        ) == segmented_complement_product(None, values, offsets)
        assert list(
            segmented_disjunction(numpy, array, offsets)
        ) == segmented_disjunction(None, values, offsets)

    @pytest.mark.parametrize("segments", EDGE_SEGMENTS)
    def test_edge_layouts(self, segments):
        values, offsets = segments_to_layout(segments)
        array = numpy.asarray(values, dtype=float)
        out_c = segmented_complement_product(numpy, array, offsets)
        out_d = segmented_disjunction(numpy, array, offsets)
        for got, want in zip(
            out_c, segmented_complement_product(None, values, offsets)
        ):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-300)
        for got, want in zip(
            out_d, segmented_disjunction(None, values, offsets)
        ):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-300)

    def test_underflowing_segment_rescued(self):
        """A segment whose complement product underflows the float
        range re-folds in log space instead of collapsing to 0.0."""
        segments = [[0.5] * 1020]
        values, offsets = segments_to_layout(segments)
        array = numpy.asarray(values, dtype=float)
        (out,) = segmented_complement_product(numpy, array, offsets)
        assert out > 0.0
        assert out == pytest.approx(2.0 ** -1020, rel=1e-9)

    def test_log_complement_matches_python(self):
        segments = [[0.5, 0.25], [], [1.0], [1e-18, 0.875]]
        values, offsets = segments_to_layout(segments)
        array = numpy.asarray(values, dtype=float)
        out = segmented_log_complement(numpy, array, offsets)
        reference = segmented_log_complement(None, values, offsets)
        for got, want in zip(out, reference):
            if math.isinf(want):
                assert math.isinf(got) and got < 0
            else:
                assert got == pytest.approx(want, rel=1e-12, abs=1e-300)

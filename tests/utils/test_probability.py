"""Shared probability arithmetic: hybrid complement policy, log-space
rescue of tiny marginals, and the numpy batch kernels."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConvergenceError
from repro.utils.probability import (
    ComplementAccumulator,
    disjunction,
    log_product_complement,
    numpy_or_none,
    product_complement,
    sum_values,
    vector_complement_product,
    vector_disjunction,
    vector_log_complement,
)

probabilities = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    max_size=40,
)
#: Dyadic marginals (k/64): the bit-exactness regime of the exact
#: strategies — accumulator and batch fold must match the naive loop
#: bit-for-bit here.
dyadic = st.lists(
    st.integers(min_value=1, max_value=63).map(lambda k: k / 64),
    max_size=30,
)


def naive_complement(values):
    product = 1.0
    for p in values:
        product *= 1.0 - p
    return product


class TestAccumulator:
    @given(dyadic)
    @settings(max_examples=120, deadline=None)
    def test_bit_identical_to_naive_loop_on_dyadics(self, values):
        acc = ComplementAccumulator()
        for p in values:
            acc.add(p)
        assert acc.complement() == naive_complement(values)
        assert acc.disjunction() == 1.0 - naive_complement(values)

    def test_factor_of_one_zeroes(self):
        acc = ComplementAccumulator()
        acc.add(0.5)
        acc.add(1.0)
        assert acc.is_zero
        assert acc.complement() == 0.0
        assert acc.disjunction() == 1.0

    def test_tiny_marginals_survive(self):
        acc = ComplementAccumulator()
        for _ in range(100_000):
            acc.add(1e-20)
        # Naive loop: 1 - 1e-20 rounds to 1.0, total contribution lost.
        assert naive_complement([1e-20] * 100_000) == 1.0
        assert acc.disjunction() == pytest.approx(1e-15, rel=1e-9)

    def test_underflow_rescued(self):
        acc = ComplementAccumulator()
        for _ in range(2000):
            acc.add(0.5)
        assert naive_complement([0.5] * 2000) == 0.0  # underflows
        # The true complement 2^-2000 is below the float64 denormal
        # floor, so complement() necessarily flushes to 0.0 — but the
        # log-space state keeps the full magnitude instead of losing it,
        # and the disjunction side stays exact.
        assert acc.residual_log + math.log(acc.product) == pytest.approx(
            2000 * math.log(0.5), rel=1e-12)
        assert acc.disjunction() == 1.0

    def test_mixed_ordinary_and_residual(self):
        acc = ComplementAccumulator()
        acc.add(0.5)
        acc.add(1e-20)
        expected = 0.5 * math.exp(-1e-20)
        assert acc.complement() == pytest.approx(expected, rel=1e-15)
        assert acc.disjunction() == pytest.approx(1.0 - expected, rel=1e-12)


class TestIterableForms:
    @given(probabilities)
    @settings(max_examples=80, deadline=None)
    def test_disjunction_complements_product(self, values):
        assert disjunction(values) == pytest.approx(
            1.0 - product_complement(values), abs=1e-12)

    @given(dyadic)
    @settings(max_examples=80, deadline=None)
    def test_log_form_consistent(self, values):
        log = log_product_complement(values)
        assert math.exp(log) == pytest.approx(
            product_complement(values), rel=1e-12)

    def test_out_of_range_rejected(self):
        for bad in ([1.5], [-0.1]):
            with pytest.raises(ConvergenceError):
                product_complement(bad)
            with pytest.raises(ConvergenceError):
                disjunction(bad)
            with pytest.raises(ConvergenceError):
                log_product_complement(bad)

    def test_certain_fact_short_circuits(self):
        assert product_complement([0.5, 1.0, 0.5]) == 0.0
        assert disjunction([0.5, 1.0]) == 1.0
        assert log_product_complement([1.0]) == -math.inf

    def test_empty(self):
        assert product_complement([]) == 1.0
        assert disjunction([]) == 0.0
        assert log_product_complement([]) == 0.0


class TestVectorKernels:
    @pytest.fixture(autouse=True)
    def np(self):
        np = numpy_or_none()
        if np is None:
            pytest.skip("numpy not installed")
        return np

    @given(probabilities)
    @settings(max_examples=80, deadline=None)
    def test_matches_scalar_path(self, values):
        np = numpy_or_none()
        if np is None:
            pytest.skip("numpy not installed")
        a = np.asarray(values, dtype=np.float64)
        assert vector_complement_product(np, a) == pytest.approx(
            product_complement(values), abs=1e-12)
        assert vector_disjunction(np, a) == pytest.approx(
            disjunction(values), abs=1e-12)

    def test_certain_fact(self, np):
        a = np.asarray([0.5, 1.0])
        assert vector_log_complement(np, a) == -math.inf
        assert vector_complement_product(np, a) == 0.0
        assert vector_disjunction(np, a) == 1.0

    def test_empty(self, np):
        a = np.asarray([], dtype=np.float64)
        assert vector_log_complement(np, a) == 0.0
        assert vector_complement_product(np, a) == 1.0
        assert vector_disjunction(np, a) == 0.0

    def test_tiny_marginals_survive_vectorized(self, np):
        a = np.full(100_000, 1e-20)
        assert vector_disjunction(np, a) == pytest.approx(1e-15, rel=1e-9)

    def test_sum_values_dispatch(self, np):
        assert sum_values([0.5, 0.25]) == 0.75
        assert sum_values(np.asarray([0.5, 0.25]), np) == 0.75

"""Tests for generic iterator tools."""

import pytest

from repro.utils.iteration import (
    merge_sorted,
    pairwise_disjoint,
    powerset,
    take,
    unique_everseen,
)


class TestTake:
    def test_prefix(self):
        assert take(3, iter(range(100))) == [0, 1, 2]

    def test_shorter_input(self):
        assert take(5, [1]) == [1]

    def test_zero(self):
        assert take(0, [1, 2]) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            take(-1, [1])


class TestMergeSorted:
    def test_merge(self):
        assert list(merge_sorted([[1, 4], [2, 3]])) == [1, 2, 3, 4]

    def test_with_key(self):
        merged = list(merge_sorted([["bb", "dddd"], ["a", "ccc"]], key=len))
        assert [len(x) for x in merged] == [1, 2, 3, 4]


class TestUniqueEverseen:
    def test_dedupes_preserving_order(self):
        assert list(unique_everseen([3, 1, 3, 2, 1])) == [3, 1, 2]

    def test_key_function(self):
        assert list(unique_everseen(["a", "A", "b"], key=str.lower)) == ["a", "b"]


class TestPairwiseDisjoint:
    def test_disjoint(self):
        assert pairwise_disjoint([frozenset({1}), frozenset({2})])

    def test_overlapping(self):
        assert not pairwise_disjoint([frozenset({1, 2}), frozenset({2})])

    def test_empty_collection(self):
        assert pairwise_disjoint([])


class TestPowerset:
    def test_counts(self):
        assert len(list(powerset(range(4)))) == 16

    def test_smallest_first(self):
        sizes = [len(s) for s in powerset(range(3))]
        assert sizes == sorted(sizes)

    def test_contains_extremes(self):
        subsets = list(powerset([1, 2]))
        assert frozenset() in subsets and frozenset({1, 2}) in subsets

"""SessionManager / ManagedSession: specs, ε-budget scheduling,
admission control, and the serve obs counters."""

import pytest

from repro import obs
from repro.errors import ServeError
from repro.serve.session import (
    ManagedSession,
    SessionManager,
    build_session,
    result_to_json,
)

SPEC = {
    "schema": {"R": 1},
    "family": {"kind": "geometric", "first": 0.3, "ratio": 0.9},
    "query": "EXISTS x. R(x) AND (R(1) OR R(2))",
    "strategy": "bdd",
    "epsilon_budget": 0.05,
}


def fresh_manager(**kwargs):
    return SessionManager(**kwargs)


# ----------------------------------------------------------------- specs
class TestBuildSession:
    def test_schema_family_spec(self):
        session = build_session(SPEC)
        result = session.refine(0.1)
        assert 0.0 <= result.value <= 1.0

    def test_zeta_family(self):
        spec = dict(SPEC, family={"kind": "zeta", "exponent": 2.0,
                                  "scale": 0.5})
        session = build_session(spec)
        assert session.refine(0.1).truncation > 0

    def test_table_open_world_spec(self):
        spec = {
            "table": {
                "kind": "tuple-independent",
                "schema": {"R": 1},
                "facts": [["R", [1], 0.5], ["R", [2], 0.25]],
            },
            "open_world": {"first": 0.3, "ratio": 0.5},
            "query": "EXISTS x. R(x)",
        }
        session = build_session(spec)
        result = session.refine(0.05)
        assert result.value >= 0.5  # at least the closed-world R(1)

    def test_missing_query_rejected(self):
        with pytest.raises(ServeError, match="query"):
            build_session({"schema": {"R": 1}, "family": {}})

    def test_table_without_open_world_rejected(self):
        with pytest.raises(ServeError, match="open_world"):
            build_session({"table": {}, "query": "R(1)"})

    def test_unknown_family_kind_rejected(self):
        with pytest.raises(ServeError, match="family kind"):
            build_session(dict(SPEC, family={"kind": "pareto"}))

    def test_sessions_have_isolated_compile_caches(self):
        a, b = build_session(SPEC), build_session(SPEC)
        assert a.compile_cache is not b.compile_cache


# ------------------------------------------------------- budget scheduling
class TestEpsilonBudget:
    def test_inline_at_or_above_budget(self):
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.05)
        result, partial = managed.submit(0.1)
        assert not partial
        assert result.epsilon == 0.1

    def test_first_request_always_inline(self):
        """No best answer yet → nothing partial to return; run inline
        even below the budget."""
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.05)
        result, partial = managed.submit(0.01)
        assert not partial and result.epsilon == 0.01

    def test_tight_request_queues_and_returns_partial(self):
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.05)
        coarse, _ = managed.submit(0.1)
        result, partial = managed.submit(0.001)
        assert partial
        assert result is coarse           # the anytime answer, unchanged
        assert managed.pending == [0.001]

    def test_drain_meets_queued_guarantee(self):
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.05)
        managed.submit(0.1)
        managed.submit(0.001)
        assert managed.drain() == 1
        assert managed.pending == []
        assert managed.best.epsilon == 0.001
        # Now the tight answer is served complete, from memory.
        result, partial = managed.submit(0.001)
        assert not partial and result is managed.best

    def test_best_covers_looser_request(self):
        """An existing tighter answer certifies any looser ε without
        touching the session."""
        managed = ManagedSession("s", build_session(SPEC))
        managed.submit(0.01, wait=True)
        refinements = managed.refinements
        result, partial = managed.submit(0.1)
        assert not partial
        assert result.epsilon == 0.01
        assert managed.refinements == refinements  # answered from memory

    def test_wait_forces_inline(self):
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.05)
        managed.submit(0.1)
        result, partial = managed.submit(0.001, wait=True)
        assert not partial and result.epsilon == 0.001

    def test_drain_loosest_first(self):
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.3)
        managed.submit(0.4)
        managed.pending = [0.001, 0.01, 0.1]
        first = managed.drain_one()
        assert first.epsilon == 0.1
        assert managed.pending == [0.001, 0.01]

    def test_queue_admission_control(self):
        managed = ManagedSession("s", build_session(SPEC),
                                 epsilon_budget=0.3, max_pending=2)
        managed.submit(0.4)
        managed.submit(0.01)
        managed.submit(0.02)
        with pytest.raises(ServeError, match="queue full"):
            managed.submit(0.03)
        # A duplicate of an already-queued ε is not a new queue entry.
        result, partial = managed.submit(0.01)
        assert partial

    def test_nonpositive_epsilon_rejected(self):
        managed = ManagedSession("s", build_session(SPEC))
        with pytest.raises(ServeError, match="positive"):
            managed.submit(0.0)

    def test_sweep_contract(self):
        managed = ManagedSession("s", build_session(SPEC))
        results = managed.sweep([0.01, 0.1, 0.1, 0.05])
        assert list(results) == [0.1, 0.05, 0.01]  # loosest first, deduped
        assert managed.best.epsilon == 0.01


# -------------------------------------------------------------- the manager
class TestSessionManager:
    def test_create_get_drop(self):
        manager = fresh_manager()
        managed = manager.create("s1", SPEC)
        assert manager.get("s1") is managed
        assert "s1" in manager and len(manager) == 1
        manager.drop("s1")
        assert "s1" not in manager
        with pytest.raises(ServeError, match="no session"):
            manager.get("s1")

    def test_duplicate_name_rejected(self):
        manager = fresh_manager()
        manager.create("s1", SPEC)
        with pytest.raises(ServeError, match="already exists"):
            manager.create("s1", SPEC)

    def test_session_limit(self):
        manager = fresh_manager(max_sessions=2)
        manager.create("a", SPEC)
        manager.create("b", SPEC)
        with pytest.raises(ServeError, match="session limit"):
            manager.create("c", SPEC)
        manager.drop("a")
        manager.create("c", SPEC)  # freed slot admits again

    def test_stats_and_summaries(self):
        manager = fresh_manager()
        manager.create("s1", SPEC).submit(0.1)
        stats = manager.stats()
        assert stats["sessions"] == 1
        assert stats["requests"] == 1
        (summary,) = manager.summaries()
        assert summary["name"] == "s1"
        assert summary["best"]["epsilon"] == 0.1

    def test_result_to_json_is_json_ready(self):
        import json

        manager = fresh_manager()
        result, _ = manager.create("s1", SPEC).submit(0.1)
        wire = result_to_json(result)
        assert json.loads(json.dumps(wire)) == wire
        assert wire["low"] <= wire["value"] <= wire["high"]


# --------------------------------------------------------------- obs counters
def test_serve_counters():
    manager = fresh_manager()
    with obs.trace() as t:
        managed = manager.create("s1", SPEC)
        managed.submit(0.1)       # inline
        managed.submit(0.001)     # queued + partial
    assert t.counters.get("serve.sessions") == 1
    assert t.counters.get("serve.requests") == 2
    assert t.counters.get("serve.queued") == 1

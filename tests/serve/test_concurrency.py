"""Stress tests for the shared-cache concurrency fixes.

The serving layer multiplexes many clients onto shared warm state:
one :class:`CompileCache` (hash-consed BDD managers, safe plans), one
:class:`PrefixCache` per distribution, one :class:`FactIndex` per
grounding.  Before the locking work these structures raced on family
eviction, buffer reallocation and lazy bucket materialization; these
tests hammer each from N ≥ 8 threads and assert two things:

* no exceptions anywhere (every worker's traceback is collected and
  re-raised), and
* results **bit-identical** to a serial run — locking must serialize
  mutation without changing a single float.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.prefix_cache import PrefixCache
from repro.core.refine import RefinementSession
from repro.core.tuple_independent import CountableTIPDB
from repro.finite.compile_cache import CompileCache
from repro.logic import BooleanQuery, parse_formula
from repro.relational import RelationSymbol, Schema
from repro.relational.columns import available_backends
from repro.relational.index import FactIndex
from repro.universe import FactSpace, Naturals

N_THREADS = 8
BACKENDS = available_backends()

schema = Schema.of(R=1)
space = FactSpace(schema, Naturals())

#: The unsafe self-join: forces the compiled (BDD) path through the
#: shared CompileCache rather than the lifted plan shortcut.
UNSAFE = "EXISTS x. R(x) AND (R(1) OR R(2))"
#: A safe query: exercises the per-family lifted plan cache instead.
SAFE = "EXISTS x. R(x)"

SWEEP = [0.2, 0.1, 0.05, 0.02, 0.01]


def make_pdb():
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.3, ratio=0.9))


def make_query(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def run_threads(workers):
    """Run every thunk concurrently; re-raise the first exception."""
    errors = []
    barrier = threading.Barrier(len(workers))

    def wrap(fn):
        def runner():
            barrier.wait()
            try:
                return fn()
            except BaseException as err:  # noqa: BLE001 - reported below
                errors.append(err)
                raise

        return runner

    with ThreadPoolExecutor(max_workers=len(workers)) as pool:
        futures = [pool.submit(wrap(fn)) for fn in workers]
        results = []
        for future in futures:
            try:
                results.append(future.result())
            except BaseException:
                pass
    if errors:
        raise errors[0]
    return results


# --------------------------------------------------------------- CompileCache
@pytest.mark.parametrize("query_text", [UNSAFE, SAFE])
@pytest.mark.parametrize("strategy", ["bdd", "auto"])
def test_concurrent_sweeps_shared_compile_cache(query_text, strategy):
    """N sessions over one PDB and one CompileCache, sweeping
    concurrently, agree bit-for-bit with a serial reference sweep."""
    # Serial reference: fresh everything.
    reference_session = RefinementSession(
        make_query(query_text), make_pdb(), strategy=strategy,
        compile_cache=CompileCache())
    reference = {
        eps: r.value for eps, r in reference_session.sweep(SWEEP).items()}

    shared_pdb = make_pdb()          # shares one PrefixCache
    shared_cache = CompileCache()    # shares families across sessions
    query = make_query(query_text)

    def worker():
        session = RefinementSession(
            query, shared_pdb, strategy=strategy,
            compile_cache=shared_cache)
        return {eps: r.value for eps, r in session.sweep(SWEEP).items()}

    for values in run_threads([worker] * N_THREADS):
        assert values == reference  # == on floats: bit-identical


def test_concurrent_refines_one_shared_session():
    """N threads hammering ONE session: each refinement still equals
    the one-shot answer at its ε (the session lock serializes table
    growth; results must not depend on arrival order)."""
    epsilons = [0.2, 0.1, 0.05, 0.02, 0.01, 0.15, 0.08, 0.03]
    reference = {}
    for eps in epsilons:
        fresh = RefinementSession(
            make_query(UNSAFE), make_pdb(), strategy="bdd",
            compile_cache=CompileCache())
        reference[eps] = fresh.refine(eps).value

    session = RefinementSession(
        make_query(UNSAFE), make_pdb(), strategy="bdd",
        compile_cache=CompileCache())

    def worker(eps):
        def run():
            return eps, session.refine(eps).value
        return run

    for eps, value in run_threads([worker(e) for e in epsilons]):
        assert value == reference[eps]


def test_compile_cache_eviction_under_concurrency():
    """A tiny ``max_queries`` forces evictions while other threads hold
    and extend families — the original race (mutating the family map
    during iteration / evicting a family mid-compile) must be gone."""
    shared_pdb = make_pdb()
    cache = CompileCache(max_queries=2)
    queries = [
        UNSAFE,
        "EXISTS x. R(x) AND (R(2) OR R(3))",
        "EXISTS x. R(x) AND (R(3) OR R(4))",
        "EXISTS x. R(x) AND (R(4) OR R(5))",
    ]
    reference = {}
    for text in queries:
        fresh = RefinementSession(
            make_query(text), make_pdb(), strategy="bdd",
            compile_cache=CompileCache())
        reference[text] = {
            eps: r.value for eps, r in fresh.sweep(SWEEP[:3]).items()}

    def worker(text):
        def run():
            session = RefinementSession(
                make_query(text), shared_pdb, strategy="bdd",
                compile_cache=cache)
            return text, {
                eps: r.value for eps, r in session.sweep(SWEEP[:3]).items()}
        return run

    workers = [worker(t) for t in queries] * 2  # 8 threads, 4 queries
    for text, values in run_threads(workers):
        assert values == reference[text]
    assert len(cache._families) <= 2  # the eviction limit held


# ---------------------------------------------------------------- PrefixCache
@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_prefix_cache_extension(backend):
    """N threads extending and reading one PrefixCache concurrently see
    exactly the serial prefix, on every columnar backend."""
    def pairs():
        return ((i, 0.5**i) for i in range(1, 10**6))

    def tail(n):
        return 0.5 ** n

    serial = PrefixCache(pairs(), tail, backend=backend)
    serial_items = serial.prefix(512)
    serial_mass = [serial.cumulative_mass(n) for n in range(0, 513, 64)]

    cache = PrefixCache(pairs(), tail, backend=backend)
    targets = [64, 128, 192, 256, 320, 384, 448, 512]

    def worker(n):
        def run():
            cache.extend_to(n)
            items = cache.prefix(n)
            mass = cache.cumulative_mass(n)
            return n, items, mass
        return run

    for n, items, mass in run_threads([worker(n) for n in targets]):
        assert items == serial_items[:n]
        assert mass == serial.cumulative_mass(n)
    assert [cache.cumulative_mass(n) for n in range(0, 513, 64)] \
        == serial_mass


@pytest.mark.parametrize("backend", BACKENDS)
def test_concurrent_truncation_search(backend):
    """The real consumer: concurrent ε-truncation searches over one
    shared distribution prefix cache pick the same n as serial."""
    from repro.core.approx import choose_truncation

    distribution = GeometricFactDistribution(space, first=0.3, ratio=0.9)
    epsilons = [0.2, 0.1, 0.05, 0.02, 0.01, 0.005, 0.002, 0.001]
    reference = {}
    for eps in epsilons:
        fresh = GeometricFactDistribution(space, first=0.3, ratio=0.9)
        reference[eps] = choose_truncation(fresh, eps)

    def worker(eps):
        def run():
            return eps, choose_truncation(distribution, eps)
        return run

    for eps, n in run_threads([worker(e) for e in epsilons]):
        assert n == reference[eps]


# ------------------------------------------------------------------ FactIndex
def test_concurrent_fact_index_extension_and_probes():
    """Interleaved delta extensions and probes on one FactIndex: no
    exceptions, and the final index equals the serially built one."""
    S = RelationSymbol("S", 2)
    batches = [
        [S(i, j) for j in range(16)] for i in range(N_THREADS)
    ]
    serial = FactIndex()
    for batch in batches:
        serial.extend(batch)

    index = FactIndex()
    index.extend(batches[0])  # seed so early probes have something

    def extender(batch):
        def run():
            index.extend(batch)
        return run

    def prober(i):
        def run():
            for _ in range(50):
                rows = index.probe_rows(S, {0: i})
                facts = list(index.probe(S, {0: i}))
                # Monotone visibility: whatever a probe sees is a
                # prefix-consistent subset of the final relation.
                assert len(facts) == len(rows) <= 16
        return run

    run_threads(
        [extender(b) for b in batches[1:]]
        + [prober(i) for i in range(N_THREADS)])

    assert len(index) == len(serial)
    assert set(index) == set(serial)
    for i in range(N_THREADS):
        assert sorted(map(str, index.probe(S, {0: i}))) \
            == sorted(map(str, serial.probe(S, {0: i})))
        assert list(index.probe(S, {0: i, 1: 3})) \
            == list(serial.probe(S, {0: i, 1: 3}))


def test_concurrent_signature_materialization():
    """Many threads probing distinct signatures at once: each lazy
    bucket table is built exactly once and completely."""
    S = RelationSymbol("S", 3)
    facts = [S(i, j, (i + j) % 5) for i in range(12) for j in range(12)]
    serial = FactIndex(facts)
    signatures = [{0: 3}, {1: 4}, {2: 2}, {0: 1, 1: 2},
                  {0: 2, 2: 0}, {1: 3, 2: 1}, {0: 5, 1: 5, 2: 0}, {2: 4}]
    reference = [sorted(map(str, serial.probe(S, b))) for b in signatures]

    index = FactIndex(facts)

    def worker(bound, expected):
        def run():
            for _ in range(20):
                assert sorted(map(str, index.probe(S, bound))) == expected
        return run

    run_threads([
        worker(bound, expected)
        for bound, expected in zip(signatures, reference)])
    assert index.signature_count() == serial.signature_count()


# ------------------------------------------------------------ shard pool
def test_concurrent_marginal_sweeps_one_shared_shard_pool():
    """The serve pattern for answer fan-out: N request threads, each
    with its own session, all fanning out on ONE warm shard pool (the
    pool serializes calls; the shipper tracks per-worker state under its
    own lock).  Every thread's pooled sweep must be bit-identical to the
    serial reference — answers, floats, and entry order."""
    from repro.logic import Query
    from repro.parallel import ShardPool

    query = Query(parse_formula("R(x)", schema), schema)
    sweep = [0.2, 0.1, 0.05]
    reference_session = RefinementSession(query, make_pdb())
    reference = {
        eps: [
            (a, r.value)
            for a, r in reference_session.refine_marginals(eps).items()
        ]
        for eps in sweep
    }

    pool = ShardPool(2)
    try:
        def worker():
            session = RefinementSession(query, make_pdb())
            return {
                eps: [
                    (a, r.value)
                    for a, r in
                    session.refine_marginals(eps, pool=pool).items()
                ]
                for eps in sweep
            }

        for values in run_threads([worker] * N_THREADS):
            assert values == reference
    finally:
        pool.close()


# ------------------------------------------------------------- BDD rescoring
def test_concurrent_rescore_linearization_cache():
    """Concurrent rescorings through one manager's linearization LRU
    (copy-on-read) agree with serial scoring."""
    from repro.finite.tuple_independent import TupleIndependentTable

    R = schema["R"]
    marginals = {R(i): 0.5 + 0.004 * i for i in range(32)}
    table = TupleIndependentTable(schema, marginals)
    query = make_query(UNSAFE)
    from repro.finite.evaluation import query_probability

    cache = CompileCache()
    reference = query_probability(
        query, table, strategy="bdd", compile_cache=cache)

    def worker():
        return query_probability(
            query, table, strategy="bdd", compile_cache=cache)

    for value in run_threads([worker] * N_THREADS):
        assert value == reference

"""Snapshot/restore: the versioned envelope, the round-trip equality of
warmed mid-sweep sessions, and the no-recompile warm-resume guarantee.

Also the home of the ``__getstate__`` audit test (issue satellite): a
session pickled *mid-sweep* — prefix cache materialized, truncation
table grown, BDD family extended, plan cache warm — must restore to
something that produces bit-identical answers, which would fail if any
``__getstate__`` carried a stale columnar mirror or dropped live state
it shouldn't.
"""

import pickle

import pytest

from repro import obs
from repro.errors import SnapshotError
from repro.serve.session import SessionManager
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    dump_snapshot,
    load_snapshot,
    loads_snapshot,
    save_snapshot,
)

UNSAFE_SPEC = {
    "schema": {"R": 1},
    "family": {"kind": "geometric", "first": 0.3, "ratio": 0.9},
    "query": "EXISTS x. R(x) AND (R(1) OR R(2))",
    "strategy": "bdd",
}
SAFE_SPEC = dict(UNSAFE_SPEC, query="EXISTS x. R(x)", strategy="auto")


def warmed_manager(spec=UNSAFE_SPEC):
    manager = SessionManager()
    managed = manager.create("s", spec)
    managed.sweep([0.2, 0.1])  # mid-sweep: warm but not finished
    return manager


# ------------------------------------------------------------- round trips
@pytest.mark.parametrize("spec", [UNSAFE_SPEC, SAFE_SPEC],
                         ids=["bdd", "lifted"])
def test_mid_sweep_round_trip_is_bit_identical(tmp_path, spec):
    """Continue the same sweep on the original and on a restored copy:
    every subsequent answer must agree bit-for-bit."""
    manager = warmed_manager(spec)
    path = tmp_path / "state.snapshot"
    save_snapshot(manager, str(path))
    restored = load_snapshot(str(path))

    original = manager.get("s")
    copy = restored.get("s")
    assert copy.best.value == original.best.value
    assert copy.session._n == original.session._n
    for epsilon in (0.05, 0.02, 0.01):
        a = original.refine(epsilon)
        b = copy.refine(epsilon)
        assert b.value == a.value
        assert b.truncation == a.truncation
        assert b.alpha == a.alpha


def test_round_trip_preserves_bookkeeping(tmp_path):
    manager = warmed_manager()
    managed = manager.get("s")
    managed.epsilon_budget = 0.07
    managed.pending.append(0.004)  # a queued guarantee survives
    path = tmp_path / "state.snapshot"
    save_snapshot(manager, str(path))
    copy = load_snapshot(str(path)).get("s")
    assert copy.epsilon_budget == 0.07
    assert copy.pending == [0.004]
    assert copy.requests == managed.requests
    assert copy.refinements == managed.refinements
    # ...and the restored queue drains normally.
    copy.drain()
    assert copy.best.epsilon == 0.004


def test_warm_resume_extends_instead_of_recompiling(tmp_path):
    """The acceptance criterion: a restored session meets a tighter ε by
    *extending* its compiled family (``CacheStats.extensions`` /
    ``cache.extension``), never compiling from scratch."""
    manager = warmed_manager(UNSAFE_SPEC)
    path = tmp_path / "state.snapshot"
    save_snapshot(manager, str(path))
    copy = load_snapshot(str(path)).get("s")

    stats = copy.session.compile_cache.stats
    extensions_before = stats.extensions
    with obs.trace() as t:
        copy.refine(0.01)
    # The warm family survived the pickle: the new truncation was an
    # extension of the restored diagrams, not a cold compile.
    assert stats.extensions == extensions_before + 1
    assert t.counters.get("cache.extension", 0) >= 1


def test_warm_resume_reuses_lifted_plan(tmp_path):
    """Safe-query flavour: the restored family's cached safe plan is
    hit (``lifted.plan_cache_hits``) and no new plan is built."""
    manager = warmed_manager(SAFE_SPEC)
    path = tmp_path / "state.snapshot"
    save_snapshot(manager, str(path))
    copy = load_snapshot(str(path)).get("s")

    with obs.trace() as t:
        copy.refine(0.01)
    assert t.counters.get("lifted.plan_cache_hits", 0) >= 1
    assert t.counters.get("lifted.plans", 0) == 0


# ----------------------------------------------------------------- envelope
def test_envelope_shape():
    envelope = pickle.loads(dump_snapshot(SessionManager()))
    assert envelope["format"] == SNAPSHOT_FORMAT
    assert envelope["version"] == SNAPSHOT_VERSION
    assert isinstance(envelope["payload"], bytes)


def test_version_guard():
    envelope = pickle.loads(dump_snapshot(SessionManager()))
    envelope["version"] = SNAPSHOT_VERSION + 1
    with pytest.raises(SnapshotError, match="version"):
        loads_snapshot(pickle.dumps(envelope))


def test_format_guard():
    envelope = pickle.loads(dump_snapshot(SessionManager()))
    envelope["format"] = "something-else"
    with pytest.raises(SnapshotError, match="format"):
        loads_snapshot(pickle.dumps(envelope))


def test_not_an_envelope():
    with pytest.raises(SnapshotError, match="envelope"):
        loads_snapshot(pickle.dumps({"no": "format"}))
    with pytest.raises(SnapshotError):
        loads_snapshot(b"definitely not a pickle")


def test_payload_type_guard():
    envelope = pickle.loads(dump_snapshot(SessionManager()))
    envelope["payload"] = pickle.dumps(["not", "a", "manager"])
    with pytest.raises(SnapshotError, match="SessionManager"):
        loads_snapshot(pickle.dumps(envelope))


def test_snapshot_bytes_counter(tmp_path):
    path = tmp_path / "state.snapshot"
    with obs.trace() as t:
        size = save_snapshot(warmed_manager(), str(path))
    assert size == path.stat().st_size > 0
    assert t.counters.get("serve.snapshot_bytes") == size


def test_atomic_write_leaves_no_temp_files(tmp_path):
    path = tmp_path / "state.snapshot"
    save_snapshot(warmed_manager(), str(path))
    save_snapshot(warmed_manager(), str(path))  # overwrite in place
    assert [p.name for p in tmp_path.iterdir()] == ["state.snapshot"]

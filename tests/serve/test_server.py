"""QueryServer: the JSON protocol over TCP and stdio, error isolation,
and the background drain of queued guarantees."""

import asyncio
import io
import json

from repro.serve import QueryServer, request_over_tcp

SPEC = {
    "schema": {"R": 1},
    "family": {"kind": "geometric", "first": 0.3, "ratio": 0.9},
    "query": "EXISTS x. R(x) AND (R(1) OR R(2))",
    "strategy": "bdd",
    "epsilon_budget": 0.05,
}


def roundtrip(requests, server=None):
    """Boot a server on an ephemeral port, run the requests through a
    real socket from a worker thread, shut down, return the responses.
    A trailing shutdown op is appended when missing so the server task
    always terminates."""
    requests = list(requests)
    if not requests or requests[-1].get("op") != "shutdown":
        requests.append({"op": "shutdown"})

    async def run():
        srv = server if server is not None else QueryServer()
        ready = asyncio.Event()
        holder = {}

        def on_ready(port):
            holder["port"] = port
            ready.set()

        task = asyncio.ensure_future(srv.serve_tcp(port=0, ready=on_ready))
        await ready.wait()
        loop = asyncio.get_running_loop()
        try:
            responses = await loop.run_in_executor(
                None, request_over_tcp, "127.0.0.1", holder["port"],
                requests)
        finally:
            srv._shutdown.set()
            await task
            srv.close()
        return responses

    return asyncio.run(run())[:-1]  # drop the shutdown ack


def test_ping():
    (response,) = roundtrip([{"op": "ping"}])
    assert response == {"ok": True, "result": "pong"}


def test_create_query_sweep_best():
    create, query, sweep, best = roundtrip([
        {"op": "create", "session": "s", "spec": SPEC},
        {"op": "query", "session": "s", "epsilon": 0.1},
        {"op": "sweep", "session": "s", "epsilons": [0.1, 0.05, 0.05]},
        {"op": "best", "session": "s"},
    ])
    assert create["ok"] and create["result"]["name"] == "s"
    assert query["ok"] and not query["partial"]
    assert query["result"]["epsilon"] == 0.1
    assert sweep["ok"]
    assert [r["requested_epsilon"] for r in sweep["result"]] == [0.1, 0.05]
    assert best["ok"] and best["result"]["epsilon"] == 0.05


def test_queued_query_returns_partial_then_drains():
    server = QueryServer()
    coarse_then_tight = roundtrip([
        {"op": "create", "session": "s", "spec": SPEC},
        {"op": "query", "session": "s", "epsilon": 0.1},
        {"op": "query", "session": "s", "epsilon": 0.001},
    ], server=server)
    tight = coarse_then_tight[2]
    assert tight["partial"] is True
    assert tight["result"]["epsilon"] == 0.1  # the anytime best so far
    # The drain task ran before shutdown completed (serve_tcp awaits
    # _settle); the queued guarantee is now met in warm session state.
    managed = server.manager.get("s")
    assert managed.pending == []
    assert managed.best.epsilon == 0.001


def test_wait_true_blocks_for_full_refinement():
    responses = roundtrip([
        {"op": "create", "session": "s", "spec": SPEC},
        {"op": "query", "session": "s", "epsilon": 0.1},
        {"op": "query", "session": "s", "epsilon": 0.001, "wait": True},
    ])
    assert responses[2]["partial"] is False
    assert responses[2]["result"]["epsilon"] == 0.001


def test_sessions_stats_drop():
    sessions, stats, drop, gone = roundtrip([
        {"op": "create", "session": "s", "spec": SPEC},
        {"op": "sessions"},
        {"op": "stats"},
        {"op": "drop", "session": "s"},
        {"op": "sessions"},
    ])[1:]
    assert [s["name"] for s in sessions["result"]] == ["s"]
    assert stats["result"]["sessions"] == 1
    assert drop["ok"]
    assert gone["result"] == []


def test_errors_do_not_kill_the_connection():
    responses = roundtrip([
        {"op": "query", "session": "ghost", "epsilon": 0.1},
        {"op": "create", "session": "s", "spec": {"bogus": True}},
        {"op": "frobnicate"},
        {"op": "query", "epsilon": 0.1},
        {"op": "ping"},
    ])
    assert [r["ok"] for r in responses] == [False] * 4 + [True]
    assert "no session" in responses[0]["error"]
    assert "unknown op" in responses[2]["error"]


def test_bad_json_is_an_error_response():
    async def run():
        server = QueryServer()
        response = await server.dispatch_line("this is not json\n")
        array = await server.dispatch_line("[1, 2]\n")
        server.close()
        return response, array

    response, array = asyncio.run(run())
    assert not response["ok"] and "bad JSON" in response["error"]
    assert not array["ok"] and "JSON object" in array["error"]


def test_stdio_mode():
    lines = [
        {"op": "ping"},
        {"op": "create", "session": "s", "spec": SPEC},
        {"op": "query", "session": "s", "epsilon": 0.1},
        {"op": "shutdown"},
    ]
    infile = io.StringIO("\n".join(json.dumps(l) for l in lines) + "\n")
    outfile = io.StringIO()
    server = QueryServer()
    asyncio.run(server.serve_stdio(infile=infile, outfile=outfile))
    server.close()
    responses = [json.loads(l) for l in outfile.getvalue().splitlines()]
    assert len(responses) == 4
    assert all(r["ok"] for r in responses)
    assert responses[2]["result"]["epsilon"] == 0.1


def test_warm_session_answers_from_memory():
    """The point of the service: a repeated guarantee is a cache hit,
    not a recomputation."""
    server = QueryServer()
    roundtrip([
        {"op": "create", "session": "s", "spec": SPEC},
        {"op": "query", "session": "s", "epsilon": 0.01},
        {"op": "query", "session": "s", "epsilon": 0.01},
        {"op": "query", "session": "s", "epsilon": 0.05},
    ], server=server)
    managed = server.manager.get("s")
    # 3 queries, but only the first refined; the rest were covered by
    # the remembered best.
    assert managed.requests == 3
    assert managed.refinements == 1

"""Tests for incomplete databases and their probabilistic completions
(Example 3.2)."""

import pytest

from repro.errors import ProbabilityError, SchemaError
from repro.incomplete import (
    DiscreteValues,
    DiscretizedContinuous,
    IncompleteFact,
    IncompleteInstance,
    Null,
    StringFrequencyValues,
    complete_incomplete_instance,
)
from repro.relational import RelationSymbol, Schema
from repro.universe import StringUniverse

schema = Schema.of(Person=3)
Person = schema["Person"]


class TestNulls:
    def test_labelled_nulls_corefer(self):
        assert Null("h") == Null("h") and Null("h") != Null("g")

    def test_incomplete_fact_nulls(self):
        fact = IncompleteFact(Person, ("Grohe", Null("h"), Null("y")))
        assert {n.label for n in fact.nulls()} == {"h", "y"}

    def test_substitution_full(self):
        fact = IncompleteFact(Person, ("Grohe", Null("h"), 1970))
        ground = fact.substitute({Null("h"): 183})
        assert ground == Person("Grohe", 183, 1970)

    def test_substitution_partial(self):
        fact = IncompleteFact(Person, ("Grohe", Null("h"), Null("y")))
        partial = fact.substitute({Null("h"): 183})
        assert isinstance(partial, IncompleteFact)
        assert {n.label for n in partial.nulls()} == {"y"}

    def test_instance_nulls_union(self):
        db = IncompleteInstance([
            IncompleteFact(Person, ("A", Null("x"), 1)),
            IncompleteFact(Person, ("B", 2, Null("y"))),
        ])
        assert {n.label for n in db.nulls()} == {"x", "y"}

    def test_to_instance_requires_ground(self):
        db = IncompleteInstance([IncompleteFact(Person, ("A", Null("x"), 1))])
        with pytest.raises(SchemaError):
            db.to_instance()

    def test_complete_facts_normalized(self):
        db = IncompleteInstance([IncompleteFact(Person, ("A", 1, 2))])
        assert db.to_instance().size == 1


class TestValueDistributions:
    def test_discrete_values_sum_checked(self):
        with pytest.raises(ProbabilityError):
            DiscreteValues({1: 0.5})

    def test_discretized_normal_mass_one(self):
        d = DiscretizedContinuous.normal(180, 7, 150, 210, bins=30)
        assert sum(m for _, m in d.masses()) == pytest.approx(1.0)

    def test_discretized_normal_peak_at_mean(self):
        d = DiscretizedContinuous.normal(180, 7, 150, 210, bins=60)
        best = max(d.masses(), key=lambda vm: vm[1])
        assert abs(best[0] - 180) < 2

    def test_string_frequency_decay(self):
        d = StringFrequencyValues(
            {"Peter": 0.6, "Martin": 0.3}, unseen_mass=0.1,
            universe=StringUniverse("ab"))
        masses = list(__import__("itertools").islice(d.masses(), 10))
        known = dict(masses[:2])
        assert known == {"Peter": 0.6, "Martin": 0.3}
        unseen = [m for _, m in masses[2:]]
        assert all(a > b for a, b in zip(unseen, unseen[1:]))  # decaying

    def test_string_frequency_total_mass(self):
        d = StringFrequencyValues(
            {"Peter": 0.5}, unseen_mass=0.5, universe=StringUniverse("ab"))
        total = sum(m for _, m in
                    __import__("itertools").islice(d.masses(), 200))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_frequency_mass_checked(self):
        with pytest.raises(ProbabilityError):
            StringFrequencyValues({"A": 0.5}, unseen_mass=0.2,
                                  universe=StringUniverse("ab"))


class TestCompletion:
    def test_single_null_discrete(self):
        db = IncompleteInstance([
            IncompleteFact(Person, ("Lindner", Null("h"), 1990))])
        pdb = complete_incomplete_instance(
            db, {Null("h"): DiscreteValues({178: 0.25, 179: 0.75})}, schema)
        assert pdb.fact_marginal(
            Person("Lindner", 178, 1990)) == pytest.approx(0.25)

    def test_independent_nulls_product(self):
        """Example 3.2's independence assumption across nulls."""
        db = IncompleteInstance([
            IncompleteFact(Person, ("A", Null("x"), 1)),
            IncompleteFact(Person, ("B", Null("y"), 2)),
        ])
        pdb = complete_incomplete_instance(db, {
            Null("x"): DiscreteValues({10: 0.5, 11: 0.5}),
            Null("y"): DiscreteValues({20: 0.25, 21: 0.75}),
        }, schema)
        joint = pdb.probability(
            lambda D: Person("A", 10, 1) in D and Person("B", 21, 2) in D)
        assert joint == pytest.approx(0.5 * 0.75)

    def test_coreferring_nulls_share_value(self):
        db = IncompleteInstance([
            IncompleteFact(Person, ("A", Null("x"), 1)),
            IncompleteFact(Person, ("B", Null("x"), 2)),
        ])
        pdb = complete_incomplete_instance(
            db, {Null("x"): DiscreteValues({10: 0.5, 11: 0.5})}, schema)
        mismatch = pdb.probability(
            lambda D: Person("A", 10, 1) in D and Person("B", 11, 2) in D)
        assert mismatch == 0.0

    def test_missing_distribution_rejected(self):
        db = IncompleteInstance([IncompleteFact(Person, ("A", Null("x"), 1))])
        with pytest.raises(ProbabilityError):
            complete_incomplete_instance(db, {}, schema)

    def test_no_nulls_degenerate(self):
        db = IncompleteInstance([IncompleteFact(Person, ("A", 1, 2))])
        pdb = complete_incomplete_instance(db, {}, schema)
        assert pdb.fact_marginal(Person("A", 1, 2)) == pytest.approx(1.0)

    def test_countably_infinite_completion(self):
        """A string null with open-world tail gives a countable PDB
        (the paper's 'this time a countable one')."""
        name_schema = Schema.of(P=1)
        P = name_schema["P"]
        db = IncompleteInstance([IncompleteFact(P, (Null("n"),))])
        pdb = complete_incomplete_instance(db, {
            Null("n"): StringFrequencyValues(
                {"ab": 0.9}, unseen_mass=0.1, universe=StringUniverse("ab")),
        }, name_schema)
        assert not pdb.exhaustive
        assert pdb.fact_marginal(P("ab"), tolerance=1e-6) == pytest.approx(
            0.9, abs=1e-6)
        # An unlisted string still has positive probability.
        assert pdb.fact_marginal(P("ba"), tolerance=1e-8) > 0.0

"""Tests for the fact space F[τ, U] enumeration."""

import pytest

from repro.errors import SchemaError
from repro.relational import Schema
from repro.universe import FactSpace, FiniteUniverse, Naturals


class TestEnumeration:
    def test_interleaves_relations(self):
        space = FactSpace(Schema.of(R=1, S=1), Naturals())
        assert [str(f) for f in space.prefix(4)] == [
            "R(1)", "S(1)", "R(2)", "S(2)"]

    def test_every_fact_appears_once(self):
        space = FactSpace(Schema.of(R=1, S=2), Naturals())
        prefix = space.prefix(100)
        assert len(set(prefix)) == 100

    def test_binary_relation_diagonal(self):
        schema = Schema.of(S=2)
        space = FactSpace(schema, Naturals())
        S = schema["S"]
        assert S(2, 2) in set(space.prefix(20))

    def test_nullary_relation(self):
        schema = Schema.of(P=0, R=1)
        space = FactSpace(schema, Naturals())
        P = schema["P"]
        assert P() in set(space.prefix(3))

    def test_finite_space(self):
        space = FactSpace(Schema.of(R=1), FiniteUniverse(["a", "b"]))
        assert space.finite and len(space) == 2

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            FactSpace(Schema(), Naturals())


class TestRank:
    def test_rank_matches_enumeration(self):
        space = FactSpace(Schema.of(R=1, S=2), Naturals())
        for index, fact in enumerate(space.prefix(60)):
            assert space.rank(fact) == index

    def test_unrank_inverse(self):
        space = FactSpace(Schema.of(R=2), Naturals())
        for index in range(30):
            assert space.rank(space.unrank(index)) == index

    def test_membership(self):
        schema = Schema.of(R=1)
        space = FactSpace(schema, Naturals())
        R = schema["R"]
        assert R(5) in space
        assert R(0) not in space  # 0 ∉ ℕ
        other = Schema.of(T=1)["T"]
        assert other(1) not in space


class TestPositionUniverses:
    def test_example_5_7_typing(self):
        """R between {A,B,C,D} and ℕ (Example 5.7)."""
        schema = Schema.of(R=2)
        space = FactSpace(
            schema,
            Naturals(),
            position_universes={
                "R": (FiniteUniverse(["A", "B", "C", "D"]), Naturals())
            },
        )
        R = schema["R"]
        assert R("A", 3) in space
        assert R(3, "A") not in space
        assert R(1, 2) not in space

    def test_typed_enumeration_covers_grid(self):
        schema = Schema.of(R=2)
        space = FactSpace(
            schema,
            Naturals(),
            position_universes={
                "R": (FiniteUniverse(["A", "B"]), Naturals())
            },
        )
        R = schema["R"]
        prefix = set(space.prefix(20))
        assert {R("A", 1), R("B", 1), R("A", 2)} <= prefix

    def test_relation_facts_subspace(self):
        space = FactSpace(Schema.of(R=1, S=1), Naturals())
        sub = space.relation_facts("R")
        assert all(f.relation.name == "R" for f in sub.prefix(5))
        with pytest.raises(SchemaError):
            space.relation_facts("Z")

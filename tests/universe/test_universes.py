"""Tests for countable universes: naturals, ranges, strings, unions,
products."""

import itertools

import pytest

from repro.errors import UniverseError
from repro.universe import (
    FiniteUniverse,
    IntegerRange,
    Naturals,
    ProductUniverse,
    StringUniverse,
    TaggedUnion,
)
from repro.universe.strings import BinaryStrings
from repro.utils import take


class TestNaturals:
    def test_enumeration_starts_at_one(self):
        assert Naturals().prefix(3) == [1, 2, 3]

    def test_rank_unrank_round_trip(self):
        N = Naturals()
        for value in (1, 7, 1000):
            assert N.unrank(N.rank(value)) == value

    def test_membership(self):
        N = Naturals()
        assert 5 in N and 0 not in N and -1 not in N and "x" not in N
        assert True not in N  # bools are not naturals

    def test_infinite(self):
        with pytest.raises(UniverseError):
            len(Naturals())

    def test_foreign_value_rank(self):
        with pytest.raises(UniverseError):
            Naturals().rank(0)


class TestIntegerRange:
    def test_enumeration(self):
        assert list(IntegerRange(3, 5)) == [3, 4, 5]

    def test_rank(self):
        assert IntegerRange(10, 20).rank(15) == 5

    def test_len(self):
        assert len(IntegerRange(0, 9)) == 10

    def test_empty_rejected(self):
        with pytest.raises(UniverseError):
            IntegerRange(5, 4)


class TestStringUniverse:
    def test_shortlex(self):
        assert StringUniverse("ab").prefix(5) == ["", "a", "b", "aa", "ab"]

    def test_rank_closed_form_matches_enumeration(self):
        u = StringUniverse("abc")
        for index, word in enumerate(take(50, u.enumerate())):
            assert u.rank(word) == index

    def test_unrank_inverse(self):
        u = StringUniverse("ab")
        for index in range(40):
            assert u.rank(u.unrank(index)) == index

    def test_membership(self):
        u = StringUniverse("ab")
        assert "abba" in u and "abc" not in u and 5 not in u

    def test_invalid_alphabets(self):
        with pytest.raises(UniverseError):
            StringUniverse("")
        with pytest.raises(UniverseError):
            StringUniverse(["ab"])  # multi-char symbol
        with pytest.raises(UniverseError):
            StringUniverse("aa")


class TestBinaryStrings:
    def test_natural_identification(self):
        """The Proposition 6.2 identification: x ↦ int('1' + x, 2)."""
        b = BinaryStrings()
        assert b.to_natural("") == 1
        assert b.to_natural("0") == 2
        assert b.to_natural("1") == 3
        assert b.to_natural("10") == 6

    def test_round_trip(self):
        for n in range(1, 100):
            assert BinaryStrings.to_natural(BinaryStrings.from_natural(n)) == n

    def test_bijection_onto_positive_integers(self):
        images = {BinaryStrings.to_natural(w)
                  for w in BinaryStrings().prefix(63)}
        assert images == set(range(1, 64))


class TestFiniteUniverse:
    def test_basics(self):
        u = FiniteUniverse(["A", "B"])
        assert u.rank("B") == 1 and len(u) == 2 and "C" not in u

    def test_duplicates_rejected(self):
        with pytest.raises(UniverseError):
            FiniteUniverse(["A", "A"])

    def test_unhashable_membership(self):
        assert [1] not in FiniteUniverse(["A"])


class TestTaggedUnion:
    def test_interleaving(self):
        u = TaggedUnion([FiniteUniverse(["A", "B"]), Naturals()])
        assert u.prefix(6) == ["A", 1, "B", 2, 3, 4]

    def test_rank_matches_enumeration(self):
        u = TaggedUnion([FiniteUniverse(["A", "B"]), Naturals()])
        for index, value in enumerate(u.prefix(30)):
            assert u.rank(value) == index

    def test_rank_two_infinite_parts(self):
        u = TaggedUnion([Naturals(), StringUniverse("a")])
        for index, value in enumerate(u.prefix(30)):
            assert u.rank(value) == index

    def test_membership_across_parts(self):
        u = TaggedUnion([FiniteUniverse(["A"]), Naturals()])
        assert "A" in u and 3 in u and "B" not in u

    def test_finite_union_finite(self):
        u = TaggedUnion([FiniteUniverse(["A"]), FiniteUniverse(["B"])])
        assert u.finite and list(u) == ["A", "B"]

    def test_empty_union_rejected(self):
        with pytest.raises(UniverseError):
            TaggedUnion([])


class TestProductUniverse:
    def test_diagonal_enumeration(self):
        p = ProductUniverse([Naturals(), Naturals()])
        prefix = p.prefix(10)
        assert prefix[0] == (1, 1)
        assert len(set(prefix)) == 10

    def test_rank_matches_enumeration_infinite_pair(self):
        p = ProductUniverse([Naturals(), Naturals()])
        for index, value in enumerate(p.prefix(40)):
            assert p.rank(value) == index

    def test_rank_finite_product(self):
        p = ProductUniverse([FiniteUniverse(["A", "B"]), IntegerRange(1, 2)])
        for index, value in enumerate(p.prefix(4)):
            assert p.rank(value) == index
        assert len(p) == 4

    def test_membership(self):
        p = ProductUniverse([Naturals(), FiniteUniverse(["A"])])
        assert (3, "A") in p and ("A", 3) not in p and (1,) not in p

    def test_covers_all_pairs_eventually(self):
        p = ProductUniverse([Naturals(), Naturals()])
        prefix = set(p.prefix(210))
        assert {(i, j) for i in range(1, 6) for j in range(1, 6)} <= prefix

"""Regression tests for closed-form ranks: these operations were once
linear scans; the closed forms must agree with enumeration AND stay fast
at ranks where a scan would be hopeless."""

import time

import pytest

from repro.relational import Schema
from repro.universe import (
    FactSpace,
    FiniteUniverse,
    Naturals,
    ProductUniverse,
    StringUniverse,
    TaggedUnion,
)


class TestClosedFormRanks:
    def test_tagged_union_rank_large(self):
        """Rank of a deep element must not scan (was O(rank))."""
        union = TaggedUnion([Naturals(), StringUniverse("a")])
        start = time.perf_counter()
        rank = union.rank(10**9)
        elapsed = time.perf_counter() - start
        assert elapsed < 0.01
        assert rank >= 10**9  # interleaved with the string universe

    def test_tagged_union_rank_with_finite_part(self):
        union = TaggedUnion([FiniteUniverse(["A", "B"]), Naturals()])
        # After the finite part is exhausted (2 rounds), naturals emit
        # alone: element n (n ≥ 3) has rank 2 + 2 + (n − 3) + ... check
        # against enumeration on a moderate prefix.
        prefix = union.prefix(200)
        for index in (0, 5, 50, 199):
            assert union.rank(prefix[index]) == index

    def test_string_rank_large(self):
        u = StringUniverse("abcdefghijklmnopqrstuvwxyz")
        start = time.perf_counter()
        rank = u.rank("germany")
        elapsed = time.perf_counter() - start
        assert elapsed < 0.01
        assert rank > 26**6  # deeper than all shorter words

    def test_single_factor_product_rank(self):
        p = ProductUniverse([Naturals()])
        start = time.perf_counter()
        assert p.rank((10**8,)) == 10**8 - 1
        assert time.perf_counter() - start < 0.01

    def test_pair_product_rank_large(self):
        p = ProductUniverse([Naturals(), Naturals()])
        start = time.perf_counter()
        rank = p.rank((10**4, 10**4))
        assert time.perf_counter() - start < 0.01
        assert rank > 10**7  # on the ~2·10⁴th diagonal


class TestPrefixPerformance:
    def test_rank_based_prefix_is_linear(self):
        """Distribution prefixes must not do per-fact rank lookups."""
        from repro.core.fact_distribution import ZetaFactDistribution

        schema = Schema.of(R=1, S=2)
        space = FactSpace(schema, Naturals())
        d = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
        start = time.perf_counter()
        pairs = d.prefix(5000)
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0
        assert len(pairs) == 5000
        # Probabilities follow the enumeration index exactly.
        for index in (0, 1, 100, 4999):
            fact, p = pairs[index]
            assert p == pytest.approx(0.5 / (index + 1) ** 2)

"""Shim for legacy editable installs (offline environments without the
``wheel`` package can run ``pip install -e . --no-build-isolation
--no-use-pep517``)."""

from setuptools import setup

setup()

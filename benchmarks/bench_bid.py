"""E7 — Theorem 4.15: countable block-independent-disjoint PDBs.

Regenerates: measure mass vs enumerated worlds, within-block exclusivity
and across-block independence at growing block counts, and the rejection
of divergent block specifications.

Shape to hold: mass → 1; exclusivity exact; across-block joint equals
product; divergent family rejected.
"""

import itertools
import math

from benchmarks.conftest import report
from repro.core.bid import BlockFamily, CountableBIDPDB
from repro.errors import ConvergenceError
from repro.finite.bid import Block
from repro.relational import Instance, Schema

schema = Schema.of(R=2)
R = schema["R"]


def key_family(ratio=0.5):
    def make_block(i: int) -> Block:
        mass = 0.5 * ratio**i
        return Block(f"k{i + 1}", {
            R(i + 1, 1): mass / 2, R(i + 1, 2): mass / 2,
        })

    return BlockFamily.geometric(
        make_block=make_block,
        block_mass=lambda i: 0.5 * ratio**i,
        first=0.5,
        ratio=ratio,
    )


def mass_convergence():
    pdb = CountableBIDPDB(schema, key_family())
    rows = []
    for worlds in (100, 1000, 10000):
        mass = sum(m for _, m in itertools.islice(pdb.worlds(), worlds))
        rows.append((worlds, mass, 1.0 - mass))
    return rows


def independence_structure():
    pdb = CountableBIDPDB(schema, key_family())
    same_block = pdb.probability(
        lambda D: R(1, 1) in D and R(1, 2) in D, tolerance=1e-3)
    cross_joint = pdb.probability(
        lambda D: R(1, 1) in D and R(2, 1) in D, tolerance=1e-3)
    cross_product = pdb.marginal(R(1, 1)) * pdb.marginal(R(2, 1))
    return [
        ("within-block joint", same_block, 0.0),
        ("across-block joint", cross_joint, cross_product),
    ]


def truncation_scaling():
    """Finite BID truncations at growing block counts: expected size
    matches the closed form, instance probabilities stay a product."""
    rows = []
    for blocks in (10, 100, 1000):
        family = key_family(ratio=0.9)
        pdb = CountableBIDPDB(schema, family)
        table = pdb.truncate(blocks)
        expected = sum(
            sum(b.alternatives.values()) for b in family.prefix(blocks))
        rows.append((blocks, table.expected_size(), expected))
    return rows


def divergent_rejection():
    def harmonic_block(i: int) -> Block:
        return Block(f"h{i}", {R(i + 1, 1): min(1.0, 1.0 / (i + 1))})

    family = BlockFamily(
        lambda: (harmonic_block(i) for i in itertools.count()),
        tail=lambda n: math.inf,
        total_mass=math.inf,
    )
    try:
        CountableBIDPDB(schema, family)
    except ConvergenceError:
        return True
    return False


def test_e7_mass(benchmark):
    rows = benchmark.pedantic(mass_convergence, rounds=1, iterations=1)
    report("E7a: BID measure mass vs worlds (Prop. 4.13)",
           ("worlds", "mass", "deficit"), rows)
    assert rows[-1][1] > 0.99


def test_e7_independence(benchmark):
    rows = benchmark.pedantic(independence_structure, rounds=1, iterations=1)
    report("E7b: Definition 4.11 conditions",
           ("quantity", "measured", "expected"), rows)
    assert rows[0][1] == 0.0
    assert abs(rows[1][1] - rows[1][2]) < 3e-3


def test_e7_truncation_scaling(benchmark):
    rows = benchmark.pedantic(truncation_scaling, rounds=1, iterations=1)
    report("E7c: truncated BID tables at scale",
           ("blocks", "E(S) measured", "E(S) closed form"), rows)
    for _, measured, expected in rows:
        assert abs(measured - expected) < 1e-9


def test_e7_divergent_rejected(benchmark):
    rejected = benchmark.pedantic(divergent_rejection, rounds=1, iterations=1)
    report("E7d: Theorem 4.15 necessity",
           ("divergent spec rejected",), [(rejected,)])
    assert rejected

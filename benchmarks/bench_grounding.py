"""A-6 — set-at-a-time grounding: hash-join lineage vs assignment
expansion.

Regenerates: the headline artifact of the grounding engine
(:mod:`repro.logic.ground`).  Join-shaped positive-existential queries
are grounded over growing TI tables twice — through the hash-join
engine (``lineage_of(..., engine="join")``) and through the seed's
assignment-expansion grounder (``engine="expansion"``) — asserting the
two lineages are *bit-identical* on every measured case before timing
counts.  The expansion grounder enumerates ``|domain|^k`` assignments
for ``k`` quantified variables; the join engine probes per-relation
hash indexes, so its cost follows the data, not the domain product.

A second workload measures delta-grounding across a growing truncation
sweep: one :class:`~repro.relational.index.FactIndex` extended with each
truncation's delta facts versus rebuilding the index from scratch every
step (grounding runs in both arms; only index construction differs).

Shape to hold: geometric-mean speedup of join over expansion ≥ 5×
across the (query, size) grid.  Machine-readable results land in
``BENCH_grounding.json`` at the repo root so future PRs can track the
perf trajectory.

Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion, no
JSON write — used by CI to exercise both grounding paths on every
Python version.
"""

import json
import math
import os
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro import obs
from repro.logic.lineage import lineage_of
from repro.logic.parser import parse_formula
from repro.relational import FactIndex, Schema

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

SIZES = [6, 8] if SMOKE else [32, 48, 64]
REPEATS = 1 if SMOKE else 3

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_grounding.json"

_RESULTS = {}

#: Join-shaped positive-existential sentences: a 2-chain, a 3-chain
#: with a filter relation, and a self-join path of length 2 (three
#: quantified variables — the expansion grounder's worst case here).
QUERIES = [
    ("chain2", "EXISTS x, y. R(x) AND S(x, y)"),
    ("chain3", "EXISTS x, y. R(x) AND S(x, y) AND T(y)"),
    ("selfjoin", "EXISTS x, y, z. S(x, y) AND S(y, z)"),
]


def make_facts(n):
    """A sparse graph workload: n unary R facts, ~2n S edges, n/3 T
    marks — the active domain has n values, so expansion grounds
    ``n^k`` assignments while the joins touch O(n) rows."""
    facts = set()
    for i in range(n):
        facts.add(R(i))
        facts.add(S(i, (i * 7 + 3) % n))
        facts.add(S(i, (i + 1) % n))
        if i % 3 == 0:
            facts.add(T(i))
    return frozenset(facts)


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def engine_rows():
    rows = []
    cases_json = {}
    speedups = []
    for n in SIZES:
        facts = make_facts(n)
        for name, text in QUERIES:
            formula = parse_formula(text, schema)
            with obs.trace() as t:
                fast, fast_s = best_of(
                    lambda: lineage_of(formula, facts, engine="join"))
            slow, slow_s = best_of(
                lambda: lineage_of(formula, facts, engine="expansion"),
                repeats=1 if n >= 64 else REPEATS)
            # Bit-exact parity on the measured workload before timing
            # counts for anything.
            assert fast.node == slow.node, f"{name} n={n}: lineage mismatch"
            speedup = slow_s / fast_s if fast_s else float("inf")
            speedups.append(speedup)
            probes = t.counters.get("grounding.probes", 0)
            joins = t.counters.get("grounding.joins", 0)
            rows.append((name, n, len(facts), probes, joins,
                         slow_s, fast_s, speedup))
            cases_json[f"{name}_n{n}"] = {
                "query": text,
                "n": n,
                "facts": len(facts),
                "probes": probes,
                "joins": joins,
                "expansion_s": slow_s,
                "join_s": fast_s,
                "speedup": speedup,
            }
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    _RESULTS["engine_workload"] = {
        "cases": cases_json,
        "geomean_speedup": geomean,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
    }
    return rows, geomean


def delta_rows():
    """Ground one query over a monotonically growing truncation: the
    delta arm extends a single FactIndex with each step's new facts;
    the rebuild arm constructs a fresh index per step.  Grounding runs
    in both arms — the delta win is bounded by index-build cost, so
    this workload records it rather than asserting a bar."""
    formula = parse_formula(QUERIES[2][1], schema)
    # Monotone truncation growth, as a RefinementSession produces it:
    # each step is a superset of the previous one.
    ordered = sorted(make_facts(SIZES[-1]), key=str)
    steps = [len(ordered) // 3, 2 * len(ordered) // 3, len(ordered)]
    truncations = [frozenset(ordered[:k]) for k in steps]

    def delta_arm():
        index = FactIndex()
        total_delta = 0
        for facts in truncations:
            total_delta += index.extend(facts)
            lineage_of(formula, index.fact_set, index=index)
        return total_delta

    def rebuild_arm():
        for facts in truncations:
            lineage_of(formula, facts, index=FactIndex(facts))

    delta_facts, delta_s = best_of(delta_arm)
    _, rebuild_s = best_of(rebuild_arm)
    ratio = rebuild_s / delta_s if delta_s else float("inf")
    _RESULTS["delta_workload"] = {
        "steps": steps,
        "delta_facts_final": delta_facts,
        "delta_sweep_s": delta_s,
        "rebuild_sweep_s": rebuild_s,
        "rebuild_over_delta": ratio,
    }
    return [(str(steps), delta_facts, delta_s, rebuild_s, ratio)]


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "grounding",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": _RESULTS.get(
            "engine_workload", {}).get("geomean_speedup", 0.0),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_a6_join_engine_vs_expansion(benchmark):
    rows, geomean = benchmark.pedantic(engine_rows, rounds=1, iterations=1)
    report("A6a: set-at-a-time grounding, hash-join engine vs "
           "assignment expansion",
           ("query", "n", "facts", "probes", "joins",
            "expansion_s", "join_s", "speedup"),
           rows)
    if not SMOKE:
        # The acceptance bar: ≥ 5× geometric-mean speedup on the grid.
        assert geomean >= 5.0, f"geomean speedup {geomean:.2f}x < 5x"


def test_a6_delta_grounding(benchmark):
    rows = benchmark.pedantic(delta_rows, rounds=1, iterations=1)
    report("A6b: truncation sweep, delta-extended index vs per-step "
           "rebuild",
           ("steps", "delta_facts", "delta_s", "rebuild_s", "ratio"),
           rows)
    _write_json()

"""E3 — Example 3.3 and the Proposition 4.9 expressivity gap.

Regenerates: the diverging partial expected size of the Example 3.3 PDB
against the (finite) FO-view size bound of tuple-independent PDBs, plus
Remark 4.10's moment gap.

Shape to hold: Example 3.3 partial sums blow past any fixed TI bound;
``E(S^k)`` finite but ``E(S^{k+1})`` infinite for the gap PDB.
"""

import math

from benchmarks.conftest import report
from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.size import Example33PDB, MomentGapPDB
from repro.core.tuple_independent import CountableTIPDB
from repro.core.views import fo_view_size_bound
from repro.logic import FOView, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

source = Schema.of(R=2)
target = Schema.of(T=1)


def partial_sums_vs_ti_bound():
    example = Example33PDB()
    space = FactSpace(source, Naturals())
    # A deliberately heavy TI PDB (E(S) = 9) and the unary FO view bound.
    pdb = CountableTIPDB(
        source, GeometricFactDistribution(space, first=0.9, ratio=0.9))
    view = FOView(source, target,
                  {"T": parse_formula("EXISTS y. R(x, y)", source)})
    bound = fo_view_size_bound(view, pdb)
    rows = []
    for terms in (5, 10, 20, 40):
        partial = example.partial_expected_size(terms)
        rows.append((terms, partial, bound, partial > bound))
    return rows


def moment_gap():
    rows = []
    for k in (1, 2):
        pdb = MomentGapPDB(k)
        rows.append((
            k,
            pdb.moment(k),
            "inf" if math.isinf(pdb.moment(k + 1)) else pdb.moment(k + 1),
        ))
    return rows


def test_e3_partial_sums_exceed_ti_bound(benchmark):
    rows = benchmark.pedantic(partial_sums_vs_ti_bound, rounds=1, iterations=1)
    report("E3a: Example 3.3 partial E(S) vs TI view bound (Prop. 4.9)",
           ("terms", "partial E(S)", "TI view bound", "exceeds"), rows)
    assert rows[-1][3]  # eventually exceeds any fixed bound


def test_e3_moment_gap(benchmark):
    rows = benchmark.pedantic(moment_gap, rounds=1, iterations=1)
    report("E3b: Remark 4.10 moment gap",
           ("k", "E(S^k)", "E(S^{k+1})"), rows)
    for _, finite_moment, infinite_moment in rows:
        assert math.isfinite(finite_moment)
        assert infinite_moment == "inf"

"""A-5 — anytime refinement: warm ε-sweeps vs stateless per-ε calls.

Regenerates: the headline artifact of the refinement engine — one
:class:`repro.core.refine.RefinementSession` sweeping
ε ∈ {0.2, 0.1, 0.05, 0.02, 0.01} (the anytime trajectory a progress bar
or interactive client would request), against the stateless baseline the
seed shipped: a fresh PDB, a cleared compile cache, and a full one-shot
``approximate_query_probability`` per ε.  The sweep repeats for several
passes, as a client polling for tighter guarantees does; the session
answers repeats from its memoized prefix, grown table, and warm
diagrams, while the baseline redoes everything.

Two fact families, both forced through the compiled (BDD) path by an
unsafe self-join query:

* **geometric** — light tail, n(ε) = O(log 1/ε): the paper's benign
  case, where truncation search and table building dominate;
* **zeta (exponent 2)** — heavy tail, n(ε) = O(1/ε): the stress case,
  where re-enumerating and recompiling hundreds of facts per call is
  the cost the session amortizes.

Shape to hold: warm sweeps ≥ 5× the stateless baseline on at least one
family, with every per-ε result bit-identical (same value, truncation,
and α — the differential suites in ``tests/core/test_refine.py`` pin
this on dyadic inputs; here it must hold on the measured workloads too).
Machine-readable results land in ``BENCH_refinement.json`` at the repo
root so future PRs can track the perf trajectory.

Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion — used
by CI to exercise the refinement path on every Python version.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro import obs
from repro.core.approx import (
    approximate_query_probability,
    choose_truncation,
)
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    ZetaFactDistribution,
)
from repro.core.refine import REFINE_REUSED_FACTS, RefinementSession
from repro.core.tuple_independent import CountableTIPDB
from repro.finite.compile_cache import DEFAULT_COMPILE_CACHE, CompileCache
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

schema = Schema.of(R=1)
space = FactSpace(schema, Naturals())

EPSILONS = [0.2, 0.1] if SMOKE else [0.2, 0.1, 0.05, 0.02, 0.01]
PASSES = 2 if SMOKE else 6

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_refinement.json"

_RESULTS = {}

#: (name, zero-arg PDB factory) — a *fresh* distribution per call, so
#: the stateless baseline cannot ride a previously materialized prefix.
FAMILIES = [
    ("geometric", lambda: CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.3, ratio=0.9))),
    ("zeta", lambda: CountableTIPDB(
        schema, ZetaFactDistribution(space, exponent=2.0, scale=0.5))),
]


def unsafe_query():
    """Self-join disjunction: unsafe, so evaluation must compile."""
    return BooleanQuery(
        parse_formula("EXISTS x. R(x) AND (R(1) OR R(2))", schema), schema)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def stateless_sweep(query, make_pdb):
    """The seed's workflow: every ε is a cold one-shot call — fresh
    distribution (empty prefix cache), cleared process-wide compile
    cache, full truncation rebuild."""
    results = {}
    for epsilon in sorted(EPSILONS, reverse=True):
        DEFAULT_COMPILE_CACHE.clear()
        results[epsilon] = approximate_query_probability(
            query, make_pdb(), epsilon, strategy="bdd")
    return results


def sweep_rows():
    rows = []
    families_json = {}
    worst = float("inf")
    for name, make_pdb in FAMILIES:
        query = unsafe_query()

        cold_s = 0.0
        cold_results = None
        for _ in range(PASSES):
            cold_results, elapsed = timed(
                lambda: stateless_sweep(query, make_pdb))
            cold_s += elapsed

        session = RefinementSession(
            query, make_pdb(), strategy="bdd", compile_cache=CompileCache())
        warm_s = 0.0
        warm_results = None
        reused_total = 0
        for _ in range(PASSES):
            with obs.trace() as t:
                warm_results, elapsed = timed(
                    lambda: session.sweep(EPSILONS))
            reused_total += t.counters.get(REFINE_REUSED_FACTS, 0)
            warm_s += elapsed

        # Bit-exact parity on the measured workload, not just the
        # dyadic differential suite: the session must return exactly
        # what the stateless calls returned, ε for ε.
        assert set(cold_results) == set(warm_results)
        for epsilon, cold in cold_results.items():
            warm = warm_results[epsilon]
            assert warm.value == cold.value, \
                f"{name} ε={epsilon}: {warm.value} != {cold.value}"
            assert warm.truncation == cold.truncation
            assert warm.alpha == cold.alpha

        speedup = cold_s / warm_s
        worst = min(worst, speedup)
        n_max = max(r.truncation for r in warm_results.values())
        rows.append((name, len(EPSILONS), PASSES, n_max,
                     cold_s, warm_s, speedup))
        families_json[name] = {
            "epsilons": EPSILONS,
            "passes": PASSES,
            "max_truncation": n_max,
            "truncations": {
                str(e): warm_results[e].truncation for e in EPSILONS},
            "stateless_s": cold_s,
            "warm_session_s": warm_s,
            "speedup": speedup,
            "reused_units_total": reused_total,
            "session_cache_stats": {
                "hits": session.compile_cache.stats.hits,
                "misses": session.compile_cache.stats.misses,
                "extensions": session.compile_cache.stats.extensions,
            },
        }
    _RESULTS["sweep_workload"] = {
        "families": families_json,
        "best_speedup": max(f["speedup"] for f in families_json.values()),
        "worst_speedup": worst,
    }
    return rows, max(f["speedup"] for f in families_json.values())


def search_rows():
    """The truncation search alone: memoized logarithmic probe vs the
    seed's per-call linear scan (a fresh distribution re-walks the whole
    prefix for every ε; the cache answers later ε from memoized tails)."""
    rows = []
    search_json = {}
    for name, make_pdb in FAMILIES:
        fresh_s = 0.0
        for _ in range(PASSES):

            def fresh_searches():
                for epsilon in sorted(EPSILONS, reverse=True):
                    choose_truncation(make_pdb().distribution, epsilon)

            _, elapsed = timed(fresh_searches)
            fresh_s += elapsed

        pdb = make_pdb()
        cached_s = 0.0
        for _ in range(PASSES):

            def cached_searches():
                for epsilon in sorted(EPSILONS, reverse=True):
                    choose_truncation(pdb.distribution, epsilon)

            _, elapsed = timed(cached_searches)
            cached_s += elapsed

        cache = pdb.distribution.prefix_cache()
        speedup = fresh_s / cached_s if cached_s else float("inf")
        # The search never materializes items — its entire state is the
        # memoized tail evaluations, so that's the reuse to report.
        tail_evals = len(cache._tail_memo)
        rows.append((name, fresh_s, cached_s, speedup, tail_evals))
        search_json[name] = {
            "fresh_s": fresh_s,
            "cached_s": cached_s,
            "speedup": speedup,
            "memoized_tail_evals": tail_evals,
        }
    _RESULTS["search_workload"] = search_json
    return rows


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "refinement",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": _RESULTS.get(
            "sweep_workload", {}).get("best_speedup", 0.0),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_a5_warm_sweep_vs_stateless(benchmark):
    (rows, speedup), _ = timed(
        lambda: benchmark.pedantic(sweep_rows, rounds=1, iterations=1))
    report(f"A5a: anytime ε-sweep, warm session vs stateless "
           f"({PASSES} passes over {len(EPSILONS)} ε)",
           ("family", "epsilons", "passes", "n_max",
            "stateless_s", "warm_s", "speedup"),
           rows)
    if not SMOKE:
        # The acceptance bar: warm sweeps ≥ 5× the stateless baseline.
        assert speedup >= 5.0, f"warm-sweep speedup {speedup:.2f}x < 5x"


def test_a5_truncation_search(benchmark):
    rows = benchmark.pedantic(search_rows, rounds=1, iterations=1)
    report("A5b: truncation search, memoized bisection vs per-call "
           "fresh scan",
           ("family", "fresh_s", "cached_s", "speedup", "tail_evals"),
           rows)
    _write_json()
    if not SMOKE:
        for row in rows:
            assert row[3] >= 1.0, \
                f"cached search slower on {row[0]}: {row[3]:.2f}x"

"""A-4 — compiled-lineage evaluation: shannon vs bdd vs cached-bdd.

Regenerates: the headline artifact of the compiled-evaluation layer —
wall-clock comparison of the raw Shannon-expansion path against ROBDD
compilation (cold per call) and the compilation cache
(:mod:`repro.finite.compile_cache`) on the two workloads Proposition 6.1
actually repeats:

* **truncation sweep** — one unsafe (self-join) query re-evaluated over
  growing truncations Ω_n across several passes, as ``truncation_profile``
  and repeated ε-calls do; the cache compiles each Ω_n once (extending
  one manager) and re-scores linearly afterwards;
* **k = 2 answer-marginal fan-out** — every answer tuple of a binary
  query grounded and scored: per-answer Shannon recompilation vs the
  shared-manager/shared-memo grounding, plus the opt-in process pool.

Shape to hold: cached-BDD ≥ 3× the Shannon path on at least one of the
two repeated-evaluation workloads, with all values in exact agreement.
Machine-readable results land in ``BENCH_compiled_eval.json`` at the
repo root so future PRs can track the perf trajectory.

Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion — used
by CI to exercise the compiled path on every Python version.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro import obs
from repro.finite import (
    CompileCache,
    TupleIndependentTable,
    marginal_answer_probabilities,
    query_probability,
    query_probability_by_bdd_cached,
)
from repro.logic import BooleanQuery, Query, parse_formula
from repro.relational import Schema

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

schema = Schema.of(E=2)
E = schema["E"]

TRUNCATION_SIZES = [6, 8] if SMOKE else [10, 14, 18, 22]
PASSES = 2 if SMOKE else 5
FANOUT_FACTS = 8 if SMOKE else 16

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_compiled_eval.json"

_RESULTS = {}


def geometric_edges(n):
    """The first n facts of a geometric edge distribution: a layered
    graph whose two-hop lineage is non-hierarchical (self-join)."""
    facts = {}
    i = 0
    while len(facts) < n:
        src, dst = i % 7, (i % 7) + (i % 5) + 1
        facts[E(src, dst)] = 0.3 + 0.45 * (0.83 ** i)
        i += 1
    return TupleIndependentTable(schema, facts)


def two_hop():
    return BooleanQuery(
        parse_formula("EXISTS x, y, z. E(x, y) AND E(y, z)", schema), schema)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def truncation_rows():
    query = two_hop()
    tables = [geometric_edges(n) for n in TRUNCATION_SIZES]
    cache = CompileCache()
    rows = []
    totals = {"shannon": 0.0, "bdd_cold": 0.0, "bdd_cached": 0.0}
    sweep_counters = {}
    for n, table in zip(TRUNCATION_SIZES, tables):
        shannon = cold = cached = 0.0
        values = set()
        for _ in range(PASSES):
            value, elapsed = timed(
                lambda: query_probability(query, table, strategy="lineage"))
            shannon += elapsed
            values.add(value)
            value, elapsed = timed(
                lambda: query_probability_by_bdd_cached(
                    query, table, CompileCache()))
            cold += elapsed
            values.add(value)
            with obs.trace() as call_trace:
                value, elapsed = timed(
                    lambda: query_probability_by_bdd_cached(
                        query, table, cache))
            for key, count in call_trace.counters.items():
                sweep_counters[key] = sweep_counters.get(key, 0) + count
            cached += elapsed
            values.add(value)
        # Non-dyadic marginals: Shannon and WMC sum in different orders,
        # so agreement here is to float tolerance (bit-exactness is the
        # differential suite's job, on dyadic inputs).
        spread = max(values) - min(values)
        assert spread <= 1e-12 * max(values), \
            f"strategies disagree at n={n}: {values}"
        totals["shannon"] += shannon
        totals["bdd_cold"] += cold
        totals["bdd_cached"] += cached
        rows.append((n, PASSES, shannon, cold, cached, shannon / cached))
    speedup = totals["shannon"] / totals["bdd_cached"]
    _RESULTS["truncation_workload"] = {
        "sizes": TRUNCATION_SIZES,
        "passes": PASSES,
        "rows": [
            {"n": r[0], "shannon_s": r[2], "bdd_cold_s": r[3],
             "bdd_cached_s": r[4], "cached_speedup": r[5]}
            for r in rows
        ],
        "total_shannon_s": totals["shannon"],
        "total_bdd_cold_s": totals["bdd_cold"],
        "total_bdd_cached_s": totals["bdd_cached"],
        "cached_speedup": speedup,
        "cache_stats": {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "extensions": cache.stats.extensions,
        },
        # obs-layer view of the same sweep: cache.hit / cache.miss /
        # cache.extension counters summed over the warm-cache calls.
        "telemetry": sweep_counters,
    }
    return rows, speedup


def fanout_rows():
    table = geometric_edges(FANOUT_FACTS)
    query = Query(
        parse_formula("E(x, y) AND (EXISTS z. E(y, z))", schema), schema)
    baseline, shannon_s = timed(
        lambda: marginal_answer_probabilities(query, table, strategy="lineage"))
    shared, shared_s = timed(
        lambda: marginal_answer_probabilities(query, table, strategy="bdd"))
    pooled, pooled_s = timed(
        lambda: marginal_answer_probabilities(
            query, table, strategy="bdd", workers=2))
    assert shared == pooled
    assert set(baseline) == set(shared)
    for answer, value in baseline.items():
        assert abs(value - shared[answer]) < 1e-12
    speedup = shannon_s / shared_s
    rows = [
        ("per-answer shannon", len(baseline), shannon_s, 1.0),
        ("shared bdd", len(shared), shared_s, speedup),
        ("shared bdd + pool(2)", len(pooled), pooled_s, shannon_s / pooled_s),
    ]
    _RESULTS["fanout_workload"] = {
        "facts": FANOUT_FACTS,
        "arity": 2,
        "answers": len(baseline),
        "per_answer_shannon_s": shannon_s,
        "shared_bdd_s": shared_s,
        "shared_bdd_pool2_s": pooled_s,
        "shared_speedup": speedup,
        # EvalReports attached to the fan-out results themselves.
        "telemetry": {
            "shared": shared.report.to_dict(),
            "pool2": pooled.report.to_dict(),
        },
    }
    return rows, speedup


def overhead_probe(calls=200):
    """Instrumentation cost of a *live* trace vs the idle fast path.

    Times the same warm-cache evaluation loop twice — once with no
    active trace (every obs hook early-returns on a thread-local read)
    and once under ``obs.trace()`` — and reports the ratio.  Budget:
    ≤ 2% (min-of-3 to shed scheduler noise).
    """
    table = geometric_edges(TRUNCATION_SIZES[-1])
    query = two_hop()
    cache = CompileCache()
    query_probability_by_bdd_cached(query, table, cache)  # warm the cache

    def loop():
        for _ in range(calls):
            query_probability_by_bdd_cached(query, table, cache)

    idle = traced = float("inf")
    for _ in range(3):
        _, elapsed = timed(loop)
        idle = min(idle, elapsed)
        with obs.trace():
            _, elapsed = timed(loop)
        traced = min(traced, elapsed)
    ratio = traced / idle
    _RESULTS["instrumentation_overhead"] = {
        "calls": calls,
        "idle_s": idle,
        "traced_s": traced,
        "overhead_ratio": ratio,
    }
    return [(calls, idle, traced, ratio)], ratio


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "compiled_eval",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": max(
            _RESULTS.get("truncation_workload", {}).get("cached_speedup", 0.0),
            _RESULTS.get("fanout_workload", {}).get("shared_speedup", 0.0),
        ),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_a4_truncation_sweep(benchmark):
    (rows, speedup), _ = timed(
        lambda: benchmark.pedantic(truncation_rows, rounds=1, iterations=1))
    report("A4a: repeated evaluation on growing truncations "
           f"({PASSES} passes)",
           ("n", "passes", "shannon_s", "bdd_cold_s", "bdd_cached_s",
            "speedup"),
           rows)
    if not SMOKE:
        # The acceptance bar: cached-BDD ≥ 3× the Shannon path.
        assert speedup >= 3.0, f"cached speedup {speedup:.2f}x < 3x"


def test_a4_answer_fanout(benchmark):
    rows, speedup = benchmark.pedantic(fanout_rows, rounds=1, iterations=1)
    report("A4b: k=2 answer-marginal fan-out",
           ("path", "answers", "seconds", "speedup"), rows)
    if not SMOKE:
        assert speedup >= 1.0, f"shared grounding slower: {speedup:.2f}x"


def test_a4_instrumentation_overhead(benchmark):
    calls = 20 if SMOKE else 200
    rows, ratio = benchmark.pedantic(
        overhead_probe, kwargs={"calls": calls}, rounds=1, iterations=1)
    report("A4c: obs tracing overhead on warm-cache evaluation",
           ("calls", "idle_s", "traced_s", "ratio"), rows)
    _write_json()
    if not SMOKE:
        assert ratio <= 1.02, f"tracing overhead {ratio:.4f} > 2% budget"

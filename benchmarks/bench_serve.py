"""A-9 — the serving layer: warm named sessions vs cold per-request
evaluation, plus the snapshot/restore resume cost.

Regenerates: the headline number of the serve layer
(:mod:`repro.serve`) — a client issuing repeated ε-requests against one
named :class:`~repro.serve.session.ManagedSession` (the service's
steady state: warm prefix cache, grown truncation table, extended BDD
family, remembered best answer), against the *cold per-request*
baseline of a stateless endpoint that rebuilds the session for every
request — distribution, completion, compilation, everything.

The workload is the refinement sweep of ``bench_refinement``: the
unsafe self-join query (forced through the compiled path) at
ε ∈ {0.2 … 0.01}, repeated for several passes per family (geometric and
zeta tails).  The serve layer must answer repeats from memory (its
``best``-covers check) and tighter guarantees by extension, so the bar
is **≥ 5× over cold per-request** on at least one family, with every
answer bit-identical to the cold one.

The snapshot section measures the restore path: pickle a warmed
manager, restore it, and meet a tighter guarantee — recording snapshot
size and the compile-cache counters proving the restored session
*extended* its diagrams (``extensions`` grew; no cold compile).

Machine-readable results land in ``BENCH_serve.json`` at the repo root.
Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro.serve.session import SessionManager, build_session
from repro.serve.snapshot import dump_snapshot, loads_snapshot

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

EPSILONS = [0.2, 0.1] if SMOKE else [0.2, 0.1, 0.05, 0.02, 0.01]
PASSES = 2 if SMOKE else 6

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

_RESULTS = {}

QUERY = "EXISTS x. R(x) AND (R(1) OR R(2))"

#: (name, session spec) — the serve-protocol form of the
#: bench_refinement families.
FAMILIES = [
    ("geometric", {
        "schema": {"R": 1},
        "family": {"kind": "geometric", "first": 0.3, "ratio": 0.9},
        "query": QUERY,
        "strategy": "bdd",
    }),
    ("zeta", {
        "schema": {"R": 1},
        "family": {"kind": "zeta", "exponent": 2.0, "scale": 0.5},
        "query": QUERY,
        "strategy": "bdd",
    }),
]


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def cold_requests(spec):
    """The stateless endpoint: every request builds the whole session
    from its spec — the cost ``create`` pays exactly once per session
    in the real server."""
    results = {}
    for epsilon in sorted(EPSILONS, reverse=True):
        session = build_session(spec)
        results[epsilon] = session.refine(epsilon)
    return results


def serve_rows():
    rows = []
    families_json = {}
    best = 0.0
    for name, spec in FAMILIES:
        cold_s = 0.0
        cold_results = None
        for _ in range(PASSES):
            cold_results, elapsed = timed(lambda: cold_requests(spec))
            cold_s += elapsed

        manager = SessionManager()
        managed = manager.create(name, spec)
        warm_s = 0.0
        warm_results = None

        def warm_requests():
            results = {}
            for epsilon in sorted(EPSILONS, reverse=True):
                result, partial = managed.submit(epsilon, wait=True)
                assert not partial
                results[epsilon] = result
            return results

        for _ in range(PASSES):
            warm_results, elapsed = timed(warm_requests)
            warm_s += elapsed

        # Wire-level parity: the warm service returns exactly what the
        # cold endpoint computes, ε for ε.  (`best`-covered repeats
        # return the tightest answer, whose value is the same float —
        # compiled evaluation is deterministic on the grown table.)
        for epsilon, cold in cold_results.items():
            warm = warm_results[epsilon]
            assert warm.value == cold.value, \
                f"{name} ε={epsilon}: {warm.value} != {cold.value}"
            assert warm.truncation >= cold.truncation

        speedup = cold_s / warm_s if warm_s else float("inf")
        best = max(best, speedup)
        stats = managed.session.compile_cache.stats
        rows.append((name, len(EPSILONS), PASSES, managed.refinements,
                     cold_s, warm_s, speedup))
        families_json[name] = {
            "epsilons": EPSILONS,
            "passes": PASSES,
            "requests": managed.requests,
            "refinements": managed.refinements,
            "cold_per_request_s": cold_s,
            "warm_session_s": warm_s,
            "speedup": speedup,
            "session_cache_stats": {
                "hits": stats.hits,
                "misses": stats.misses,
                "extensions": stats.extensions,
            },
        }
    _RESULTS["serve_workload"] = {
        "families": families_json,
        "best_speedup": best,
    }
    return rows, best


def snapshot_rows():
    """Snapshot a warmed manager, restore, and refine tighter: the
    restored session must extend its compiled family, not recompile."""
    rows = []
    snapshot_json = {}
    for name, spec in FAMILIES:
        manager = SessionManager()
        managed = manager.create(name, spec)
        managed.sweep(EPSILONS[: max(2, len(EPSILONS) // 2)])

        data, dump_s = timed(lambda: dump_snapshot(manager))
        restored, load_s = timed(lambda: loads_snapshot(data))
        copy = restored.get(name)

        stats = copy.session.compile_cache.stats
        extensions_before = stats.extensions
        tighter = min(EPSILONS) / 2
        result, resume_s = timed(lambda: copy.refine(tighter))
        extended = stats.extensions - extensions_before
        assert extended >= 1, \
            f"{name}: restored session recompiled instead of extending"
        assert result.value == managed.refine(tighter).value

        rows.append((name, len(data), dump_s, load_s, resume_s, extended))
        snapshot_json[name] = {
            "snapshot_bytes": len(data),
            "dump_s": dump_s,
            "load_s": load_s,
            "resume_refine_s": resume_s,
            "resume_extensions": extended,
            "resume_epsilon": tighter,
        }
    _RESULTS["snapshot_workload"] = snapshot_json
    return rows


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "serve",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": _RESULTS.get(
            "serve_workload", {}).get("best_speedup", 0.0),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_a9_warm_sessions_vs_cold_requests(benchmark):
    (rows, speedup), _ = timed(
        lambda: benchmark.pedantic(serve_rows, rounds=1, iterations=1))
    report(f"A9a: serve layer, warm session vs cold per-request "
           f"({PASSES} passes over {len(EPSILONS)} ε)",
           ("family", "epsilons", "passes", "refines",
            "cold_s", "warm_s", "speedup"),
           rows)
    if not SMOKE:
        # The acceptance bar: warm sessions ≥ 5× cold per-request.
        assert speedup >= 5.0, f"warm-session speedup {speedup:.2f}x < 5x"


def test_a9_snapshot_resume(benchmark):
    rows = benchmark.pedantic(snapshot_rows, rounds=1, iterations=1)
    report("A9b: snapshot/restore, resume by extension",
           ("family", "bytes", "dump_s", "load_s", "resume_s",
            "extensions"),
           rows)
    _write_json()

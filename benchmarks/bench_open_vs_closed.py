"""E6 — closed world vs OpenPDB vs infinite completion (Remark 5.2,
Ceylan et al. baseline, Theorem 5.5) on the Example 5.7 knowledge base.

Regenerates: the three semantics' answers to new-entity and
known-fact queries.

Shape to hold: CWA gives 0 on anything unseen; OpenPDB gives [0, f(λ)]
intervals over its finite universe and cannot speak about entities
outside it; the infinite completion gives positive point probabilities
ordered by plausibility for every well-shaped fact.
"""

from benchmarks.conftest import report
from repro.core.completion import closed_world_completion, complete
from repro.core.fact_distribution import GeometricFactDistribution
from repro.finite import TupleIndependentTable, query_probability
from repro.logic import BooleanQuery, parse_formula
from repro.openworld import OpenPDB, credal_query_probability
from repro.relational import Schema
from repro.universe import FactSpace, FiniteUniverse, Naturals

schema = Schema.of(R=2)
R = schema["R"]


def knowledge_base():
    return TupleIndependentTable(schema, {
        R("A", 1): 0.8, R("B", 1): 0.4, R("B", 2): 0.5, R("C", 3): 0.9,
    })


def three_semantics():
    table = knowledge_base()
    cwa = closed_world_completion(table)
    finite_universe = FiniteUniverse(["A", "B", "C", "D", 1, 2, 3])
    open_pdb = OpenPDB(table, lambd=0.1, universe=finite_universe)
    typed_space = FactSpace(
        schema, Naturals(),
        position_universes={
            "R": (FiniteUniverse(["A", "B", "C", "D"]), Naturals())},
    )
    infinite = complete(
        table,
        GeometricFactDistribution(typed_space, first=0.5, ratio=2 ** -0.25))

    rows = []
    for args in [("A", 1), ("D", 1), ("D", 2), ("C", 40)]:
        fact = R(*args)
        text = f"R('{args[0]}', {args[1]})"
        query = BooleanQuery(parse_formula(text, schema), schema)
        cwa_answer = query_probability(query, table)
        try:
            interval = credal_query_probability(query, open_pdb)
            open_answer = f"[{interval.low:.3f}, {interval.high:.3f}]"
        except Exception:
            open_answer = "outside universe"
        if fact not in {f for f in open_pdb._fact_space.enumerate()}:
            open_answer = "outside universe"
        infinite_answer = infinite.fact_marginal(fact)
        rows.append((str(fact), cwa_answer, open_answer, infinite_answer))
    return rows


def test_e6_three_semantics(benchmark):
    rows = benchmark.pedantic(three_semantics, rounds=1, iterations=1)
    report("E6: CWA vs OpenPDB(λ=0.1) vs infinite completion",
           ("fact", "CWA", "OpenPDB", "infinite"), rows)
    known, d1, d2, far = rows
    # Known fact: all agree on the recorded marginal.
    assert known[1] == 0.8 and abs(known[3] - 0.8) < 1e-9
    # New facts: CWA 0, infinite positive...
    assert d1[1] == 0.0 and d1[3] > 0.0
    # ...with plausibility ordered by enumeration proximity.
    assert d1[3] > far[3] > 0.0
    # Entity 40 is outside the OpenPDB universe, but fine for us.
    assert far[2] == "outside universe"

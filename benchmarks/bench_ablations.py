"""E11 (extension) — ablations of the library's own design choices.

Not a paper experiment: these benches quantify two implementation
decisions called out in DESIGN.md.

* A-1  Shannon-expansion pivot heuristic: most-frequent-variable vs a
       naive first-variable pivot, measured in expansion cache size on a
       hard (non-hierarchical) lineage.
* A-2  Truncation rule: the certified ``tail(n) ≤ log(1+ε)/1.5`` rule of
       Prop. 6.1 vs naive fixed-size truncations, measured in guarantee
       violations across queries.
"""

import math

from benchmarks.conftest import report
from repro.core.approx import approximate_query_probability, choose_truncation
from repro.core.fact_distribution import ZetaFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import EvaluationError
from repro.finite.lineage_eval import _make_pivot, lineage_probability
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic import BooleanQuery, parse_formula
from repro.logic.lineage import Lineage, lineage_of
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]


def _h0_lineage(n: int):
    """The non-hierarchical H0 lineage over an n×n bipartite S."""
    marginals = {}
    for i in range(1, n + 1):
        marginals[R(i)] = 0.5
        marginals[T(i)] = 0.5
        for j in range(1, n + 1):
            marginals[S(i, j)] = 0.5
    table = TupleIndependentTable(schema, marginals)
    query = BooleanQuery(parse_formula(
        "EXISTS x, y. R(x) AND S(x, y) AND T(y)", schema), schema)
    expr = lineage_of(query.formula, set(table.marginals))
    return expr, table


def _count_expansions(expr: Lineage, marginal, pivot_fn) -> int:
    """Shannon expansion with a pluggable pivot; returns cache size."""
    cache = {}

    def recurse(e: Lineage) -> float:
        constant = e.is_constant()
        if constant is not None:
            return 1.0 if constant else 0.0
        key = e.node
        if key in cache:
            return cache[key]
        fact = pivot_fn(e)
        p = marginal(fact)
        value = (p * recurse(e.condition(fact, True))
                 + (1 - p) * recurse(e.condition(fact, False)))
        cache[key] = value
        return value

    recurse(expr)
    return len(cache)


def _first_pivot(expr: Lineage):
    """Naive pivot: lexicographically first fact."""
    return min(expr.facts(), key=lambda f: f.sort_key())


def pivot_ablation():
    rows = []
    for n in (2, 3, 4):
        expr, table = _h0_lineage(n)
        frequent = _count_expansions(expr, table.marginal, _make_pivot(expr))
        first = _count_expansions(expr, table.marginal, _first_pivot)
        rows.append((n, frequent, first, first / max(frequent, 1)))
    return rows


def truncation_rule_ablation():
    """Fixed-n truncations vs the certified rule on a zeta-tail PDB."""
    space = FactSpace(Schema.of(R=1), Naturals())
    zeta_schema = Schema.of(R=1)
    pdb = CountableTIPDB(
        zeta_schema, ZetaFactDistribution(space, exponent=2.0, scale=0.5))
    query = BooleanQuery(
        parse_formula("EXISTS x. R(x)", zeta_schema), zeta_schema)
    truth = 1.0 - pdb.empty_world_probability()
    epsilon = 0.01
    rows = []
    # Certified rule:
    result = approximate_query_probability(query, pdb, epsilon)
    rows.append((
        f"certified (n={result.truncation})",
        abs(result.value - truth),
        abs(result.value - truth) <= epsilon,
    ))
    # Naive fixed truncations:
    from repro.finite.evaluation import query_probability

    for n in (2, 5, 10):
        value = query_probability(query, pdb.truncate(n))
        error = abs(value - truth)
        rows.append((f"fixed n={n}", error, error <= epsilon))
    return rows


def bdd_vs_shannon():
    """A-3: compile-once ROBDD vs per-query Shannon expansion on the
    safe query at growing truncation sizes."""
    import time

    from repro.finite.bdd import compile_lineage
    from repro.core.fact_distribution import GeometricFactDistribution
    from repro.universe import FactSpace, Naturals

    rs_schema = Schema.of(R=1, S=2)
    space = FactSpace(rs_schema, Naturals())
    pdb = CountableTIPDB(
        rs_schema, GeometricFactDistribution(space, first=0.9, ratio=0.97))
    query = BooleanQuery(parse_formula(
        "EXISTS x, y. R(x) AND S(x, y)", rs_schema), rs_schema)
    rows = []
    for n in (20, 40, 80):
        table = pdb.truncate(n)
        expr = lineage_of(query.formula, set(table.marginals))
        start = time.perf_counter()
        shannon = lineage_probability(expr, table.marginal)
        shannon_time = time.perf_counter() - start
        start = time.perf_counter()
        manager, root = compile_lineage(expr)
        value = manager.probability(root, table.marginal)
        bdd_time = time.perf_counter() - start
        assert abs(value - shannon) < 1e-9
        rows.append((n, shannon_time, bdd_time,
                     manager.count_nodes(root)))
    return rows


def test_a1_pivot_heuristic(benchmark):
    rows = benchmark.pedantic(pivot_ablation, rounds=1, iterations=1)
    report("A-1: Shannon expansion cache size by pivot heuristic (H0)",
           ("n", "most-frequent", "first-var", "blowup"), rows)
    # The heuristic should never be (much) worse; typically better.
    for _, frequent, first, _ in rows:
        assert frequent <= first * 1.5


def test_a3_bdd_vs_shannon(benchmark):
    rows = benchmark.pedantic(bdd_vs_shannon, rounds=1, iterations=1)
    report("A-3: ROBDD compile+count vs Shannon expansion",
           ("facts", "shannon (s)", "bdd (s)", "bdd nodes"), rows)
    # Both exact (asserted inside); BDD node count grows mildly on this
    # read-once-ish query while Shannon re-normalizes whole trees.
    sizes = [nodes for *_, nodes in rows]
    assert sizes == sorted(sizes)


def test_a2_truncation_rule(benchmark):
    rows = benchmark.pedantic(truncation_rule_ablation, rounds=1, iterations=1)
    report("A-2: certified vs fixed truncation (ε = 0.01, zeta tail)",
           ("rule", "|error|", "within ε"), rows)
    certified = rows[0]
    assert certified[2]  # certified rule always meets the guarantee
    # At least one naive fixed truncation violates it.
    assert any(not within for _, _, within in rows[1:])

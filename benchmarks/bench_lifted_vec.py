"""A-11 — batched set-at-a-time plan execution vs the scalar interpreter.

Regenerates: the headline artifact of the vectorized lifted executor
(:mod:`repro.finite.lifted` batched path + the segmented fold kernels of
:mod:`repro.utils.probability`).  The measured workload is the anytime
serving pattern the executor was built for — an ε-style truncation
sweep where each refinement step grows the table in place, re-evaluates,
and then answers warm repeat queries at the certified truncation:

* the *scalar* arm re-interprets the safe plan candidate-at-a-time on
  every call (its per-(node, epoch) candidate memo live);
* the *batched* arm executes set-at-a-time over the columnar layer,
  delta-extends its per-plan-node binding tables across the sweep's
  truncations (``lifted.cached_groups``), and serves unchanged
  truncations from the warm fold.

Value parity ≤ 1e-12 is asserted on every refinement step before timing
counts.  Shape to hold: geometric-mean batched-over-scalar speedup
≥ 10× on the numpy backend across 10⁵–10⁶-fact sweeps, and ≥ 2× for the
pure-Python fallback (same sweep, numpy probe disabled).
Machine-readable results land in ``BENCH_lifted_vec.json`` at the repo
root so future PRs can track the perf trajectory.

Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion, no
JSON write — used by CI to exercise both executors on every Python
version and on the no-numpy leg (where the numpy workload is skipped
and the fallback workload *is* the native backend).
"""

import json
import math
import os
import platform
import sys
import time
from pathlib import Path

import repro.utils.probability as probability_module
from benchmarks.conftest import report
from repro import obs
from repro.finite import TupleIndependentTable
from repro.finite.compile_cache import CompileCache
from repro.finite.lifted import query_probability_lifted
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.relational.columns import available_backends

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")
HAS_NUMPY = "numpy" in available_backends()

schema = Schema.of(R=1, S=2, T=1, V=2)
R, S, T, V = schema["R"], schema["S"], schema["T"], schema["V"]

QUERIES = {
    "chain2": "EXISTS x, y. R(x) AND S(x, y)",
    "star3": "EXISTS x, y, z. R(x) AND S(x, y) AND V(x, z)",
}

#: Sweep cases: per-relation row count n (≈ 4n facts), the number of
#: truncation steps from 50% to 100% of the table, warm re-queries per
#: step, and which queries run.  The 10⁶-fact case uses a shorter sweep
#: to keep the scalar arm's runtime in minutes.
if SMOKE:
    NUMPY_CASES = [{"n": 300, "steps": 3, "warm": 1,
                    "queries": ["chain2", "star3"]}]
    PYTHON_CASES = [{"n": 300, "steps": 3, "warm": 1,
                     "queries": ["chain2"]}]
else:
    NUMPY_CASES = [
        {"n": 25_000, "steps": 11, "warm": 5,
         "queries": ["chain2", "star3"]},
        {"n": 250_000, "steps": 5, "warm": 5, "queries": ["chain2"]},
    ]
    PYTHON_CASES = [
        {"n": 25_000, "steps": 11, "warm": 5,
         "queries": ["chain2", "star3"]},
    ]

PARITY = 1e-12

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_lifted_vec.json"

_RESULTS = {}


def chunk(lo, hi, n):
    """Facts for rows ``lo..hi`` of the size-n table: unary marks plus
    two edge relations, marginals varied (and scaled down so the query
    probabilities stay strictly inside (0, 1) at 10⁶ facts)."""
    marginals = {}
    for i in range(lo, hi):
        marginals[R(i)] = (0.01 + (i % 7) * 0.01) / 40
        marginals[S(i, (i * 7 + 3) % n)] = (0.02 + (i % 5) * 0.01) / 40
        marginals[T((i * 7 + 5) % n)] = 0.05 / 40
        marginals[V(i, (i + 1) % n)] = 0.03 / 40
    return marginals


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def sweep_arm(query, n, steps, warm, executor):
    """One executor's sweep: grow the table step by step, re-evaluate,
    then answer ``warm`` repeat queries per step.  Table construction is
    untimed; every ``query_probability_lifted`` call is timed.  Returns
    (per-step values, total seconds, trace counters)."""
    boundaries = [
        int(n * (0.5 + 0.5 * k / max(steps - 1, 1))) for k in range(steps)
    ]
    table = TupleIndependentTable(schema, chunk(0, boundaries[0], n))
    cache = CompileCache()
    values = []
    total = 0.0
    previous = boundaries[0]
    with obs.trace() as trace:
        for boundary in boundaries:
            if boundary > previous:
                table.extend(chunk(previous, boundary, n))
                previous = boundary
            start = time.perf_counter()
            values.append(query_probability_lifted(
                query, table, plan_cache=cache, executor=executor))
            for _ in range(warm):
                query_probability_lifted(
                    query, table, plan_cache=cache, executor=executor)
            total += time.perf_counter() - start
    return values, total, dict(trace.counters)


def run_cases(cases, label):
    rows = []
    cases_json = {}
    speedups = []
    for case in cases:
        n, steps, warm = case["n"], case["steps"], case["warm"]
        for name in case["queries"]:
            query = q(QUERIES[name])
            scalar_values, scalar_s, _ = sweep_arm(
                query, n, steps, warm, "scalar")
            batched_values, batched_s, counters = sweep_arm(
                query, n, steps, warm, "batched")
            # Value parity on every refinement step before timing
            # counts for anything.
            for step, (a, b) in enumerate(
                zip(scalar_values, batched_values)
            ):
                assert abs(a - b) <= PARITY, (
                    f"{label}/{name} n={n} step {step}: "
                    f"scalar {a!r} != batched {b!r}")
            speedup = (
                scalar_s / batched_s if batched_s else float("inf"))
            speedups.append(speedup)
            facts = 4 * n
            rows.append((
                name, facts, steps, warm, scalar_s, batched_s, speedup,
                counters.get("lifted.cached_groups", 0),
            ))
            cases_json[f"{name}_f{facts}"] = {
                "query": QUERIES[name],
                "facts": facts,
                "sweep_steps": steps,
                "warm_queries_per_step": warm,
                "scalar_s": scalar_s,
                "batched_s": batched_s,
                "speedup": speedup,
                "final_value": batched_values[-1],
                "cached_groups": counters.get("lifted.cached_groups", 0),
                "vectorized_nodes": counters.get(
                    "lifted.vectorized_nodes", 0),
                "scalar_fallbacks": counters.get(
                    "lifted.scalar_fallbacks", 0),
            }
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    _RESULTS[label] = {
        "cases": cases_json,
        "geomean_speedup": geomean,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
    }
    return rows, geomean


def numpy_workload():
    return run_cases(NUMPY_CASES, "numpy_workload")


def python_workload():
    """The same differential with the numpy probe disabled: fresh
    tables, caches and indexes built inside resolve to the pure-Python
    columnar backend."""
    saved = probability_module._numpy_probe
    probability_module._numpy_probe = None
    try:
        return run_cases(PYTHON_CASES, "python_workload")
    finally:
        probability_module._numpy_probe = saved


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "lifted_vec",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": _RESULTS.get(
            "numpy_workload", {}).get("geomean_speedup", 0.0),
        "python_fallback_speedup": _RESULTS.get(
            "python_workload", {}).get("geomean_speedup", 0.0),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


HEADER = ("query", "facts", "steps", "warm", "scalar_s", "batched_s",
          "speedup", "cached_groups")


def test_a11_batched_vs_scalar_numpy(benchmark):
    if not HAS_NUMPY:
        import pytest

        pytest.skip("numpy unavailable; the fallback workload covers "
                    "the python backend")
    rows, geomean = benchmark.pedantic(numpy_workload, rounds=1,
                                       iterations=1)
    report("A11a: batched vs scalar lifted execution (numpy backend)",
           HEADER, rows)
    if not SMOKE:
        # The acceptance bar: ≥ 10× geometric-mean speedup on the
        # sweep-and-serve workload.
        assert geomean >= 10.0, f"geomean speedup {geomean:.2f}x < 10x"


def test_a11_batched_vs_scalar_python_fallback(benchmark):
    rows, geomean = benchmark.pedantic(python_workload, rounds=1,
                                       iterations=1)
    report("A11b: batched vs scalar lifted execution (pure-python)",
           HEADER, rows)
    if not SMOKE:
        assert geomean >= 2.0, (
            f"python fallback geomean {geomean:.2f}x < 2x")
    _write_json()

"""K1 — batched sampling kernels: scalar vs python vs numpy backends.

Regenerates: wall-clock comparison of the Monte-Carlo engines'
``backend=`` options at 10k samples — end-to-end query estimation,
raw world-sampling throughput, and the Karp–Luby estimator.

Shape to hold: the pure-Python batched backend is ≥ 3× faster than the
scalar reference path on end-to-end estimation (plan pre-materialisation
+ lineage compilation + per-distinct-world memoised model checking);
all backends return estimates that agree with the exact probability.

Machine-readable results (including the :class:`repro.obs.EvalReport`
telemetry attached to each estimate) land in
``BENCH_sampling_kernels.json`` at the repo root.

Smoke mode (``BENCH_SMOKE=1``): does not clobber the committed record.
"""

import json
import os
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro.finite import (
    Block,
    BlockIndependentTable,
    TupleIndependentTable,
    query_probability,
    query_probability_karp_luby,
    query_probability_monte_carlo,
)
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.sampling import available_backends

schema = Schema.of(R=1, S=2, T=1)
R, S, T = schema["R"], schema["S"], schema["T"]

SAMPLES = 10_000
SEED = 11
BACKENDS = ("scalar",) + available_backends()
SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

JSON_PATH = (Path(__file__).resolve().parent.parent
             / "BENCH_sampling_kernels.json")

_RESULTS = {}


def _write_json():
    if SMOKE:
        return
    _RESULTS.update({
        "benchmark": "sampling_kernels",
        "samples": SAMPLES,
        "seed": SEED,
        "backends": list(BACKENDS),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def join_table():
    marginals = {R(i): 0.30 + 0.04 * i for i in range(1, 4)}
    marginals.update({S(i, j): 0.25 for i in range(1, 4) for j in range(1, 4)})
    marginals.update({T(j): 0.5 for j in range(1, 4)})
    return TupleIndependentTable(schema, marginals)


def wide_table(facts=64):
    return TupleIndependentTable(
        schema, {R(i): 0.2 + 0.6 * (i % 7) / 7 for i in range(facts)})


def bid_table(blocks=32):
    return BlockIndependentTable(schema, [
        Block(f"k{i}", {R(2 * i): 0.4, R(2 * i + 1): 0.35})
        for i in range(blocks)
    ])


def h0_query():
    return BooleanQuery(
        parse_formula("EXISTS x, y. R(x) AND S(x, y) AND T(y)", schema),
        schema)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def end_to_end_rows():
    table = join_table()
    query = h0_query()
    truth = query_probability(query, table)
    rows = []
    timings = {}
    telemetry = {}
    for backend in BACKENDS:
        estimate, elapsed = timed(
            lambda b=backend: query_probability_monte_carlo(
                query, table, SAMPLES, seed=SEED, backend=b))
        timings[backend] = elapsed
        telemetry[backend] = estimate.report.to_dict()
        rows.append((
            backend, SAMPLES, elapsed, timings["scalar"] / elapsed,
            estimate.estimate, abs(estimate.estimate - truth),
        ))
    _RESULTS["end_to_end"] = {
        "truth": truth,
        "timings_s": dict(timings),
        "telemetry": telemetry,
    }
    return rows


def world_sampling_rows():
    rows = []
    for label, pdb in (("TI-64", wide_table()), ("BID-32", bid_table())):
        timings = {}
        for backend in BACKENDS:
            _, elapsed = timed(
                lambda p=pdb, b=backend: p.sample_batch(
                    SAMPLES, seed=SEED, backend=b))
            timings[backend] = elapsed
            rows.append((
                label, backend, elapsed, timings["scalar"] / elapsed,
                SAMPLES / elapsed,
            ))
    return rows


def karp_luby_rows():
    table = join_table()
    query = h0_query()
    truth = query_probability(query, table)
    rows = []
    timings = {}
    telemetry = {}
    for backend in BACKENDS:
        estimate, elapsed = timed(
            lambda b=backend: query_probability_karp_luby(
                query, table, SAMPLES, seed=SEED, backend=b))
        timings[backend] = elapsed
        telemetry[backend] = estimate.report.to_dict()
        rows.append((
            backend, elapsed, timings["scalar"] / elapsed,
            abs(estimate.estimate - truth),
        ))
    _RESULTS["karp_luby"] = {
        "truth": truth,
        "timings_s": dict(timings),
        "telemetry": telemetry,
    }
    return rows


def test_k1_end_to_end(benchmark):
    rows = benchmark.pedantic(end_to_end_rows, rounds=1, iterations=1)
    report("K1a: Monte-Carlo estimate, 10k samples (H0 join query)",
           ("backend", "samples", "seconds", "speedup", "estimate", "|err|"),
           rows)
    by_backend = {row[0]: row for row in rows}
    # The acceptance bar: pure-Python batched ≥ 3× the scalar path.
    assert by_backend["python"][3] >= 3.0
    assert all(err < 0.03 for *_, err in rows)


def test_k1_world_sampling(benchmark):
    """Raw ``sample_batch`` throughput, Instances included.

    BID batching wins big (cumulative block weights are materialised
    once instead of re-sorted per draw).  TI decoding is dominated by
    ``Instance`` construction in every backend, so batching roughly
    ties there — the Monte-Carlo engines get their speedup by model
    checking kernel rows *without* decoding to Instances at all (K1a).
    """
    rows = benchmark.pedantic(world_sampling_rows, rounds=1, iterations=1)
    report("K1b: raw world sampling, 10k worlds",
           ("table", "backend", "seconds", "speedup", "worlds/s"), rows)
    by_key = {(row[0], row[1]): row for row in rows}
    assert by_key[("BID-32", "python")][3] >= 2.0


def test_k1_karp_luby(benchmark):
    rows = benchmark.pedantic(karp_luby_rows, rounds=1, iterations=1)
    report("K1c: Karp–Luby FPRAS, 10k samples",
           ("backend", "seconds", "speedup", "|err|"), rows)
    _write_json()
    assert all(err < 0.03 for *_, err in rows)

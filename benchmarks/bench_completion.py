"""E4 — Theorem 5.5 completions on Example 5.7.

Regenerates: the completion-condition residual ``|P′({D}|Ω) − P({D})|``
over all original worlds, the open-world marginals of new facts, and
positivity of finite Boolean combinations.

Shape to hold: residual at float-noise level; new-fact probabilities
positive and decaying; Boolean combinations of distinct facts all
positive.
"""

from benchmarks.conftest import report
from repro.core.completion import complete
from repro.core.fact_distribution import GeometricFactDistribution
from repro.finite import TupleIndependentTable, query_probability
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, FiniteUniverse, Naturals

schema = Schema.of(R=2)
R = schema["R"]


def example_5_7_completion():
    table = TupleIndependentTable(schema, {
        R("A", 1): 0.8, R("B", 1): 0.4, R("B", 2): 0.5, R("C", 3): 0.9,
    })
    typed_space = FactSpace(
        schema, Naturals(),
        position_universes={
            "R": (FiniteUniverse(["A", "B", "C", "D"]), Naturals())},
    )
    return table, complete(
        table,
        GeometricFactDistribution(typed_space, first=0.5, ratio=2 ** -0.25))


def completion_condition_residuals():
    table, completed = example_5_7_completion()
    original = table.expand()
    rows = []
    worst = 0.0
    for world in original.instances():
        conditional = completed.conditioned_on_original(world)
        residual = abs(conditional - original.probability_of(world))
        worst = max(worst, residual)
    rows.append((len(original), worst))
    return rows


def open_world_marginals():
    _, completed = example_5_7_completion()
    rows = []
    for fact in (R("D", 1), R("A", 2), R("D", 7), R("C", 40)):
        rows.append((str(fact), completed.fact_marginal(fact)))
    return rows


def boolean_combinations():
    _, completed = example_5_7_completion()
    finite = completed.truncate(10)
    rows = []
    for text in [
        "R('D', 1)",
        "R('D', 1) AND R('A', 2)",
        "R('D', 1) AND NOT R('A', 2)",
        "NOT R('D', 1) AND NOT R('A', 2) AND R('A', 1)",
    ]:
        query = BooleanQuery(parse_formula(text, schema), schema)
        rows.append((text, query_probability(query, finite)))
    return rows


def test_e4_completion_condition(benchmark):
    rows = benchmark.pedantic(completion_condition_residuals, rounds=1, iterations=1)
    report("E4a: completion condition residual (Def. 5.1 CC)",
           ("original worlds", "max |P'(D|Ω) − P(D)|"), rows)
    assert rows[0][1] < 1e-9


def test_e4_open_marginals(benchmark):
    rows = benchmark.pedantic(open_world_marginals, rounds=1, iterations=1)
    report("E4b: open-world marginals of unseen facts (Thm 5.5)",
           ("fact", "P'(E_f)"), rows)
    values = [p for _, p in rows]
    assert all(p > 0 for p in values)


def test_e4_boolean_combinations(benchmark):
    rows = benchmark.pedantic(boolean_combinations, rounds=1, iterations=1)
    report("E4c: finite Boolean combinations (Example 5.7)",
           ("query", "P"), rows)
    for _, p in rows:
        assert 0.0 < p < 1.0

"""E8 — engine ablation: world enumeration vs lineage vs lifted vs
Monte Carlo on growing truncations (the "traditional closed-world
algorithm" of Prop. 6.1 instantiated four ways).

Regenerates: runtime per engine vs fact count, exactness/agreement, and
Monte-Carlo error decay.

Shape to hold: world enumeration blows up exponentially (capped ~16
facts); lineage and lifted stay polynomial on the safe query and agree
exactly; MC error shrinks ~ samples^{-1/2}.
"""

import math
import random
import time

from benchmarks.conftest import report
from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.finite import (
    query_probability,
    query_probability_monte_carlo,
)
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1, S=2)
space = FactSpace(schema, Naturals())

QUERY = "EXISTS x, y. R(x) AND S(x, y)"


def make_table(n_facts: int):
    pdb = CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.9, ratio=0.98))
    return pdb.truncate(n_facts)


def engine_runtimes():
    query = BooleanQuery(parse_formula(QUERY, schema), schema)
    rows = []
    for n in (8, 12, 100, 400):
        table = make_table(n)
        timings = {}
        values = {}
        for strategy in ("worlds", "lineage", "lifted"):
            # Each engine has a practical ceiling: world enumeration is
            # exponential; Shannon expansion rebuilds the lineage tree
            # per pivot (fine to ~10^2 facts, hopeless at 4·10^2).
            ceiling = {"worlds": 12, "lineage": 100, "lifted": 10**9}
            if n > ceiling[strategy]:
                timings[strategy] = float("nan")
                values[strategy] = float("nan")
                continue
            start = time.perf_counter()
            values[strategy] = query_probability(query, table, strategy=strategy)
            timings[strategy] = time.perf_counter() - start
        rows.append((
            n,
            timings["worlds"], timings["lineage"], timings["lifted"],
            values["lifted"],
        ))
        # Exactness: all engines that ran agree.
        ran = [v for v in values.values() if not math.isnan(v)]
        assert max(ran) - min(ran) < 1e-9
    return rows


def monte_carlo_error_decay():
    query = BooleanQuery(parse_formula(QUERY, schema), schema)
    table = make_table(60)
    truth = query_probability(query, table, strategy="lifted")
    rows = []
    for samples in (100, 1000, 10000):
        rng = random.Random(13)
        estimate = query_probability_monte_carlo(query, table, samples, rng)
        rows.append((
            samples, truth, estimate.estimate,
            abs(estimate.estimate - truth), estimate.half_width,
        ))
    return rows


def worlds_blowup():
    """World-enumeration runtime doubling per added fact."""
    query = BooleanQuery(parse_formula(QUERY, schema), schema)
    rows = []
    for n in (6, 8, 10, 12):
        table = make_table(n)
        start = time.perf_counter()
        query_probability(query, table, strategy="worlds")
        rows.append((n, 2**n, time.perf_counter() - start))
    return rows


def test_e8_engine_agreement_and_runtime(benchmark):
    rows = benchmark.pedantic(engine_runtimes, rounds=1, iterations=1)
    report("E8a: engine runtimes (s) and lifted value",
           ("facts", "worlds", "lineage", "lifted", "P(Q)"), rows)
    # Lifted handles 400 facts; worlds cannot (NaN sentinel).
    assert not math.isnan(rows[-1][3])
    assert math.isnan(rows[-1][1])


def test_e8_worlds_exponential(benchmark):
    rows = benchmark.pedantic(worlds_blowup, rounds=1, iterations=1)
    report("E8b: world enumeration blowup",
           ("facts", "worlds", "seconds"), rows)
    # Runtime grows superlinearly: last step at least 2.5× the first.
    assert rows[-1][2] > 2.5 * rows[0][2]


def test_e8_monte_carlo_decay(benchmark):
    rows = benchmark.pedantic(monte_carlo_error_decay, rounds=1, iterations=1)
    report("E8c: Monte-Carlo error vs samples",
           ("samples", "truth", "estimate", "|error|", "CI half-width"),
           rows)
    half_widths = [hw for *_, hw in rows]
    assert half_widths == sorted(half_widths, reverse=True)
    # ~ n^{-1/2}: 100× samples → ~10× narrower interval.
    assert half_widths[0] / half_widths[-1] > 5

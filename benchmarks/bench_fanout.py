"""A-10 — the persistent shard pool vs the per-call executor fan-out.

Three implementation claims of :mod:`repro.parallel`, measured:

* **Warm workers.**  A 4-step ε-sweep-shaped workload (a TI table that
  grows by an append-only delta each step, re-evaluated after every
  growth) on one warm :class:`~repro.parallel.pool.ShardPool`, against
  the legacy baseline that builds a fresh ``ProcessPoolExecutor`` per
  call, double-pickles the table (pre-flight probe + executor
  submission), and recompiles every worker-side diagram from scratch.
  Bar: **≥ 3×** end-to-end, every step bit-identical to the serial
  path.

* **Delta shipping.**  Across the same sweep the warm pool ships the
  full table only to cold workers (step 1); later steps ship the
  appended suffix.  Bar: cumulative ``fanout.ship_delta_bytes`` at
  least **10× smaller** than cumulative ``fanout.ship_full_bytes``.

* **Dynamic chunking.**  A skewed workload — the expensive answers all
  share one residue class mod 4, i.e. the legacy stride-4 split lands
  *all* of them on one unlucky worker — scheduled statically vs
  dynamically at 4 workers.  Makespans are per-worker **CPU time**
  (read from the workers' own counters via ``_worker_perf``), so the
  comparison holds on machines with fewer cores than workers.  Bar:
  dynamic **≥ 1.5×** shorter makespan, identical results.

Machine-readable results land in ``BENCH_fanout.json`` at the repo
root.  Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no bars, no JSON.
"""

import json
import os
import pickle
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro import obs
from repro.finite.evaluation import (
    _candidate_values,
    _pool_pickle_error,
    _pooled_answer_shards,
    marginal_answer_probabilities,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic import parse_formula
from repro.logic.queries import Query
from repro.parallel.pool import ShardPool
from repro.parallel.shipping import (
    SHIP_DELTA_BYTES,
    SHIP_FULL_BYTES,
    _worker_perf,
    pooled_answer_marginals,
)
from repro.relational import Schema

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

WORKERS = 2 if SMOKE else 4
#: Sweep shape: the queried slice (S facts over BASE_XS answer values)
#: rides on a large truncation table — most facts belong to the rest of
#: the fact space (the T relation the query never mentions), exactly
#: like a real open-world truncation.  Each step appends a small delta:
#: more open-world facts plus a few new alternatives for one answer.
BASE_XS = 4 if SMOKE else 12
STEPS = 2 if SMOKE else 4
FACTS_PER_X = 3 if SMOKE else 10
DEAD_BASE = 200 if SMOKE else 30_000
DEAD_STEP = 20 if SMOKE else 400
GROW_FACTS = 2 if SMOKE else 5

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_fanout.json"

_RESULTS = {}

schema = Schema.of(S=2, T=1)
S, T = schema["S"], schema["T"]

#: y-values live in a range disjoint from x-values, so the candidate
#: order (sorted active domain) keeps answer positions predictable.
Y_BASE = 100_000


def _query():
    return Query(parse_formula("EXISTS y. S(x, y)", schema), schema)


def _facts_for(x, count, offset=0):
    return {S(x, Y_BASE + x * 10_000 + offset + j): 0.5 + 0.004 * (j % 50)
            for j in range(count)}


def _dead_facts(start, count):
    """Open-world ballast: facts of the ``T`` relation the query never
    mentions.  They dominate the table's pickle size and index build —
    the costs a truncation sweep pays per step on the cold path and
    only once (plus deltas) on the warm path."""
    return {T(10_000_000 + i): 0.5 for i in range(start, start + count)}


def _sweep_tables():
    """The growing table of each sweep step: step 0 is the base, every
    later step appends — in place — a batch of open-world ``T`` facts
    plus a few new alternatives for one of the queried answers."""
    marginals = {}
    for x in range(BASE_XS):
        marginals.update(_facts_for(x, FACTS_PER_X))
    marginals.update(_dead_facts(0, DEAD_BASE))
    table = TupleIndependentTable(schema, marginals)
    yield table
    for step in range(1, STEPS):
        delta = {}
        x = (step - 1) % BASE_XS
        delta.update(_facts_for(
            x, GROW_FACTS, offset=FACTS_PER_X + step * GROW_FACTS))
        delta.update(
            _dead_facts(DEAD_BASE + (step - 1) * DEAD_STEP, DEAD_STEP))
        table.extend(delta)
        yield table


#: The queried answer slice: the sweep asks for marginals over the S
#: answer values only (``domain=``), not the whole active domain.
DOMAIN = list(range(BASE_XS))


def _candidates(query, table, domain=None):
    """The canonical candidate enumeration (same order the serial path
    and the pool workers use)."""
    return _candidate_values(query, table, domain)


def timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _legacy_call(query, table, candidates, workers):
    """One fan-out the way the per-call executor did it: pickle-probe
    the payload, spawn a fresh ``ProcessPoolExecutor``, ship the whole
    table into every worker, merge strided shards."""
    payloads = [
        (query.formula, query.schema, query.variables, query.name,
         table, candidates, offset, workers, "bdd")
        for offset in range(workers)
    ]
    error = _pool_pickle_error(payloads[0])
    assert error is None, error
    merged = {}
    for shard in _pooled_answer_shards(payloads, workers):
        merged.update(shard)
    position = {value: i for i, value in enumerate(candidates)}
    ordered = sorted(merged, key=lambda t: tuple(position[v] for v in t))
    return {a: merged[a] for a in ordered}


# ------------------------------------------------------- warm pool vs cold
def warm_vs_cold_rows():
    query = _query()

    cold_s = 0.0
    cold_steps = []
    for table in _sweep_tables():
        candidates = _candidates(query, table, DOMAIN)
        results, elapsed = timed(
            lambda: _legacy_call(query, table, candidates, WORKERS))
        cold_s += elapsed
        cold_steps.append(results)

    warm_s = 0.0
    warm_steps = []
    ship_counters = {}
    with obs.trace() as trace:
        # Pool construction is part of the warm cost — the comparison
        # is end-to-end for the whole sweep.
        (pool, *_), elapsed = timed(lambda: (ShardPool(WORKERS),))
        warm_s += elapsed
        try:
            for table in _sweep_tables():
                candidates = _candidates(query, table, DOMAIN)
                results, elapsed = timed(
                    lambda: pooled_answer_marginals(
                        pool, query, table, candidates, "bdd",
                        domain=DOMAIN))
                warm_s += elapsed
                warm_steps.append(results)
        finally:
            pool.close()
        ship_counters = {
            "ship_full_bytes": trace.counters.get(SHIP_FULL_BYTES, 0),
            "ship_delta_bytes": trace.counters.get(SHIP_DELTA_BYTES, 0),
            "chunks": trace.counters.get("fanout.chunks", 0),
        }

    # Bit-identity, step for step: warm pool == cold executor == serial.
    rows = []
    for step, table in enumerate(_sweep_tables()):
        serial = marginal_answer_probabilities(
            query, table, domain=DOMAIN, strategy="bdd")
        assert dict(warm_steps[step]) == dict(serial), f"step {step}"
        assert list(warm_steps[step]) == list(serial), f"step {step}"
        assert dict(cold_steps[step]) == dict(serial), f"step {step}"

    speedup = cold_s / warm_s if warm_s else float("inf")
    full = ship_counters["ship_full_bytes"]
    delta = ship_counters["ship_delta_bytes"]
    ratio = full / delta if delta else float("inf")
    rows.append((STEPS, len(warm_steps[-1]), cold_s, warm_s, speedup,
                 full, delta, ratio))
    _RESULTS["sweep_workload"] = {
        "workers": WORKERS,
        "steps": STEPS,
        "answers_final": len(warm_steps[-1]),
        "cold_executor_s": cold_s,
        "warm_pool_s": warm_s,
        "speedup": speedup,
        **ship_counters,
        "full_over_delta_bytes": ratio,
    }
    return rows, speedup, ratio


# --------------------------------------------------- dynamic vs static skew
SKEW_XS = 16 if SMOKE else 64
HOT_FACTS = 24 if SMOKE else 220
COLD_FACTS = 1


def _skewed_table():
    """Expensive answers on one residue class mod WORKERS — of the
    *canonical answer enumeration*, which is what the stride split
    shards — so the static split sends every hot answer to the same
    worker.  (Hotness must be assigned by enumeration position, not by
    raw x value: ``domain_sort_key`` order is not numeric order.)"""
    query = _query()
    skeleton = TupleIndependentTable(schema, {
        fact: p
        for x in range(SKEW_XS)
        for fact, p in _facts_for(x, 1).items()
    })
    xs_in_order = [
        v for v in _candidates(query, skeleton) if v in range(SKEW_XS)]
    marginals = {}
    for position, x in enumerate(xs_in_order):
        count = HOT_FACTS if position % WORKERS == 0 else COLD_FACTS
        marginals.update(_facts_for(x, count))
    return TupleIndependentTable(schema, marginals)


def _worker_cpu_makespan(pool):
    """Max per-worker evaluation CPU seconds since the last reset."""
    perfs = [
        pool.run_on(slot, _worker_perf, True)
        for slot in range(pool.workers)
    ]
    return max(p["cpu_s"] for p in perfs), perfs


def schedule_rows():
    query = _query()
    table = _skewed_table()
    candidates = _candidates(query, table)
    rows = []
    pool = ShardPool(WORKERS)
    try:
        makespans = {}
        results = {}
        for schedule in ("static", "dynamic"):
            _worker_cpu_makespan(pool)  # reset counters
            results[schedule], wall = timed(
                lambda: pooled_answer_marginals(
                    pool, query, table, candidates, "bdd",
                    schedule=schedule))
            makespan, perfs = _worker_cpu_makespan(pool)
            makespans[schedule] = makespan
            rows.append((
                schedule, len(results[schedule]), pool.last_call_stats.get(
                    "chunks"), wall, makespan,
                [round(p["cpu_s"], 3) for p in perfs],
            ))
    finally:
        pool.close()
    assert dict(results["static"]) == dict(results["dynamic"])
    assert list(results["static"]) == list(results["dynamic"])
    balance = (
        makespans["static"] / makespans["dynamic"]
        if makespans["dynamic"] else float("inf"))
    _RESULTS["skew_workload"] = {
        "workers": WORKERS,
        "answers": len(results["dynamic"]),
        "hot_every": WORKERS,
        "static_cpu_makespan_s": makespans["static"],
        "dynamic_cpu_makespan_s": makespans["dynamic"],
        "makespan_ratio": balance,
    }
    return rows, balance


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "fanout",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": _RESULTS.get(
            "sweep_workload", {}).get("speedup", 0.0),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_a10_warm_pool_vs_cold_executor(benchmark):
    (rows, speedup, ratio), _ = timed(
        lambda: benchmark.pedantic(warm_vs_cold_rows, rounds=1, iterations=1))
    report(f"A10a: {STEPS}-step growing sweep, warm shard pool vs "
           f"per-call executor ({WORKERS} workers)",
           ("steps", "answers", "cold_s", "warm_s", "speedup",
            "full_bytes", "delta_bytes", "full/delta"),
           rows)
    if not SMOKE:
        assert speedup >= 3.0, f"warm-pool speedup {speedup:.2f}x < 3x"
        assert ratio >= 10.0, \
            f"delta shipping only {ratio:.1f}x smaller than full"


def test_a10_dynamic_vs_static_schedule(benchmark):
    (rows, balance), _ = timed(
        lambda: benchmark.pedantic(schedule_rows, rounds=1, iterations=1))
    report(f"A10b: skewed fan-out, static stride vs dynamic chunks "
           f"({WORKERS} workers, CPU-time makespans)",
           ("schedule", "answers", "chunks", "wall_s", "cpu_makespan_s",
            "per_worker_cpu_s"),
           rows)
    if not SMOKE:
        assert balance >= 1.5, \
            f"dynamic chunking only {balance:.2f}x better makespan"
    _write_json()

"""E10 — analytic substrate: Lemma 2.3 truncations, the claim (∗) bound,
and the Borel–Cantelli dichotomy behind Lemma 4.6.

Regenerates: distributive-law truncation values converging; the
``Π(1−p) ≥ exp(−1.5Σp)`` bound's tightness as p → 0; the frequency of
"many events occur" under convergent vs divergent Σ P(A_i).

Shape to hold: truncations converge with exact equality at every step;
bound ratio → 1; divergent frequency → 1, convergent stays near 0.
"""

import random

from benchmarks.conftest import report
from repro.analysis.borel_cantelli import borel_cantelli_frequency
from repro.analysis.bounds import verify_star_bound
from repro.analysis.distributive import distributive_law_convergence


def distributive_truncations():
    terms = [(-1.0) / 2**i for i in range(1, 14)]
    prefixes = [terms[:k] for k in (2, 4, 8, 13)]
    return [
        (length, float(value))
        for length, value in distributive_law_convergence(prefixes)
    ]


def star_bound_tightness():
    rows = []
    for p in (0.4, 0.1, 0.01, 0.001):
        product, bound, holds = verify_star_bound([p] * 50)
        rows.append((p, product, bound, product / bound, holds))
    return rows


def borel_cantelli_dichotomy():
    rows = []
    for name, probability_of in [
        ("divergent 1/i", lambda i: 1.0 / i),
        ("convergent 1/i^2", lambda i: 1.0 / i**2),
    ]:
        for horizon in (100, 1000, 5000):
            frequency = borel_cantelli_frequency(
                probability_of, horizon=horizon, threshold=6,
                trials=120, seed=11)
            rows.append((name, horizon, frequency))
    return rows


def test_e10_distributive(benchmark):
    rows = benchmark.pedantic(distributive_truncations, rounds=1, iterations=1)
    report("E10a: Lemma 2.3 truncation values (both sides equal exactly)",
           ("prefix length", "Π(1+a_i) = Σ_J Π a_j"), rows)
    values = [v for _, v in rows]
    diffs = [abs(b - a) for a, b in zip(values, values[1:])]
    assert diffs == sorted(diffs, reverse=True)  # converging


def test_e10_star_bound(benchmark):
    rows = benchmark.pedantic(star_bound_tightness, rounds=1, iterations=1)
    report("E10b: claim (∗) Π(1−p) vs exp(−1.5Σp)",
           ("p", "product", "bound", "ratio", "holds"), rows)
    assert all(holds for *_, holds in rows)
    ratios = [ratio for _, _, _, ratio, _ in rows]
    assert ratios == sorted(ratios, reverse=True)  # tightening as p → 0


def test_e10_borel_cantelli(benchmark):
    rows = benchmark.pedantic(borel_cantelli_dichotomy, rounds=1, iterations=1)
    report("E10c: P(≥6 events occur) — Lemma 2.5 dichotomy",
           ("Σ P(A_i)", "horizon", "frequency"), rows)
    divergent = [f for name, _, f in rows if name.startswith("divergent")]
    convergent = [f for name, _, f in rows if name.startswith("convergent")]
    assert divergent[-1] > 0.9
    assert max(convergent) < 0.1

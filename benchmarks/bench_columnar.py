"""A-8 — columnar fact storage vs the historic dict-of-floats layout.

Regenerates: the headline artifact of the columnar storage layer
(:mod:`repro.relational.columns` + :mod:`repro.utils.probability`).
Two sweeps over 10⁵–10⁶-fact stores, each measured three ways — the
historic dict path (per-query linear scans and ``marginals.values()``
loops), the pure-Python columnar fallback, and the numpy fast path:

* *truncation sweep* — 64 cumulative-mass queries per store, the access
  pattern of ``PrefixCache.cumulative_mass`` / ε-truncation search.  The
  dict arm re-scans the first n marginals per query; the columnar arms
  answer from running sums (python) or one lazy ``cumsum`` (numpy).
* *rescore sweep* — 100 marginal-slice rescorings of 5000-fact subsets
  (the anytime refinement engine's per-answer pattern): gather the
  slice, fold ``Σ p``, ``Π (1 − p)`` and ``1 − Π (1 − p)``.  The dict
  arm does per-fact dict lookups + the scalar fold; the columnar arms
  gather by row id.

Value parity ≤ 1e-12 (relative) is asserted on every measured case
before timing counts.  Shape to hold: geometric-mean numpy-over-dict
speedup ≥ 10×, and the pure-Python fallback no slower than the dict
path.  Machine-readable results land in ``BENCH_columnar.json`` at the
repo root so future PRs can track the perf trajectory.

Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion, no
JSON write — used by CI to exercise all three arms on every Python
version and on the no-numpy leg (where the numpy arm is skipped).
"""

import json
import math
import os
import platform
import random
import sys
import time
from itertools import islice
from pathlib import Path

from benchmarks.conftest import report
from repro.relational import Schema
from repro.relational.columns import (
    ColumnStore,
    FloatColumn,
    available_backends,
)
from repro.utils.probability import product_complement

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

schema = Schema.of(R=1)
R = schema["R"]

#: Store sizes for both sweeps.
SIZES = [2_000] if SMOKE else [100_000, 1_000_000]
#: Cumulative-mass query points per store (truncation sweep).
TRUNCATION_QUERIES = 8 if SMOKE else 64
#: Rescore queries per store and facts per rescored subset.  5000-fact
#: subsets keep the direct-product worst-case rounding (n·ε/2) under
#: the 1e-12 parity bar.
RESCORE_QUERIES = 5 if SMOKE else 100
RESCORE_SUBSET = 200 if SMOKE else 5_000
REPEATS = 1 if SMOKE else 3

PARITY = 1e-12

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_columnar.json"

_RESULTS = {}

HAS_NUMPY = "numpy" in available_backends()


def make_weights(n):
    """Marginals in (1e-6, 0.01]: varied, no accidental symmetry, and
    small enough that 5000-factor complement products stay in a range
    where both fold orders agree to 1e-12."""
    return [1e-6 + ((i * 7919) % 997) / 99_700 for i in range(n)]


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def check_parity(case, reference, measured):
    drift = max(
        abs(a - b) / max(1.0, abs(a))
        for a, b in zip(reference, measured)
    )
    assert drift <= PARITY, (
        f"{case}: columnar drifted {drift:.3e} > {PARITY} from dict path")
    return drift


# ------------------------------------------------------------- truncation
def truncation_case(n):
    weights = make_weights(n)
    marginals = {R(i): w for i, w in enumerate(weights)}
    points = [max(1, (n * (q + 1)) // TRUNCATION_QUERIES)
              for q in range(TRUNCATION_QUERIES)]

    def dict_arm():
        values = marginals.values()
        return [sum(islice(values, p)) for p in points]

    def column_arm(backend):
        column = FloatColumn(backend)
        column.extend(weights)

        def run():
            return [column.prefix_sum(p) for p in points]
        return run

    reference, dict_s = best_of(dict_arm)
    arms = {"dict_s": dict_s}
    drifts = {}
    for backend in available_backends():
        measured, seconds = best_of(column_arm(backend))
        drifts[backend] = check_parity(
            f"truncation n={n} [{backend}]", reference, measured)
        arms[f"{backend}_s"] = seconds
    return arms, drifts


# ---------------------------------------------------------------- rescore
def rescore_case(n):
    weights = make_weights(n)
    facts = [R(i) for i in range(n)]
    marginals = dict(zip(facts, weights))
    rng = random.Random(8)
    subsets = [
        rng.sample(range(n), min(RESCORE_SUBSET, n))
        for _ in range(RESCORE_QUERIES)
    ]
    fact_subsets = [[facts[i] for i in rows] for rows in subsets]

    def dict_arm():
        out = []
        for chosen in fact_subsets:
            total = sum(marginals[f] for f in chosen)
            complement = product_complement(marginals[f] for f in chosen)
            out.append((total, complement, 1.0 - complement))
        return out

    def store_arm(backend):
        store = ColumnStore(backend)
        store.extend_items(zip(facts, weights))
        column = store.marginals

        def run():
            out = []
            for rows in subsets:
                complement = column.complement_product(rows)
                out.append(
                    (column.sum_rows(rows), complement, 1.0 - complement))
            return out
        return run

    reference = [v for triple in dict_arm() for v in triple]
    _, dict_s = best_of(dict_arm)
    arms = {"dict_s": dict_s}
    drifts = {}
    for backend in available_backends():
        measured, seconds = best_of(store_arm(backend))
        flat = [v for triple in measured for v in triple]
        drifts[backend] = check_parity(
            f"rescore n={n} [{backend}]", reference, flat)
        arms[f"{backend}_s"] = seconds
    return arms, drifts


# ------------------------------------------------------------------ sweep
def sweep(case_fn, label):
    rows = []
    cases_json = {}
    numpy_speedups = []
    python_speedups = []
    for n in SIZES:
        arms, drifts = case_fn(n)
        python_speedup = arms["dict_s"] / arms["python_s"]
        python_speedups.append(python_speedup)
        numpy_speedup = (
            arms["dict_s"] / arms["numpy_s"] if HAS_NUMPY else None)
        if numpy_speedup is not None:
            numpy_speedups.append(numpy_speedup)
        rows.append((
            n, arms["dict_s"], arms["python_s"],
            arms.get("numpy_s", float("nan")),
            python_speedup, numpy_speedup or float("nan"),
            max(drifts.values()),
        ))
        cases_json[f"n{n}"] = {
            "facts": n,
            **arms,
            "python_speedup": python_speedup,
            "numpy_speedup": numpy_speedup,
            "max_drift": max(drifts.values()),
        }
    geomean = (
        math.exp(sum(math.log(s) for s in numpy_speedups)
                 / len(numpy_speedups))
        if numpy_speedups else None)
    _RESULTS[f"{label}_workload"] = {
        "cases": cases_json,
        "geomean_numpy_speedup": geomean,
        "min_python_speedup": min(python_speedups),
    }
    return rows, geomean, min(python_speedups)


HEADER = ("facts", "dict_s", "python_s", "numpy_s",
          "py_speedup", "np_speedup", "max_drift")


def test_a8_columnar_truncation_sweep(benchmark):
    rows, geomean, python_floor = benchmark.pedantic(
        lambda: sweep(truncation_case, "truncation"), rounds=1, iterations=1)
    report("A8a: cumulative-mass truncation sweep, dict vs columnar",
           HEADER, rows)
    if not SMOKE:
        assert python_floor >= 1.0, (
            f"pure-Python columnar fallback slower than dict path "
            f"({python_floor:.2f}x)")
        if HAS_NUMPY:
            assert geomean >= 10.0, f"geomean speedup {geomean:.2f}x < 10x"


def test_a8_columnar_rescore_sweep(benchmark):
    rows, geomean, python_floor = benchmark.pedantic(
        lambda: sweep(rescore_case, "rescore"), rounds=1, iterations=1)
    report("A8b: marginal-slice rescore sweep, dict vs columnar",
           HEADER, rows)
    if not SMOKE:
        assert python_floor >= 1.0, (
            f"pure-Python columnar fallback slower than dict path "
            f"({python_floor:.2f}x)")
        if HAS_NUMPY:
            assert geomean >= 10.0, f"geomean speedup {geomean:.2f}x < 10x"
    _write_json()


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    speedups = [
        _RESULTS[w]["geomean_numpy_speedup"]
        for w in ("truncation_workload", "rescore_workload")
        if _RESULTS.get(w, {}).get("geomean_numpy_speedup")
    ]
    _RESULTS.update({
        "benchmark": "columnar",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "parity_bar": PARITY,
        "headline_speedup": (
            math.exp(sum(math.log(s) for s in speedups) / len(speedups))
            if speedups else None),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")

"""Shared helpers for the experiment benchmarks.

Each benchmark module regenerates one experiment from DESIGN.md §4
(E1–E10).  Because the paper is a theory paper with no measured tables,
each experiment prints the quantities its paper result governs — the
"rows/series" to compare are the qualitative shapes recorded in
EXPERIMENTS.md.

Run with:  pytest benchmarks/ --benchmark-only -s
(the -s lets the experiment tables through; timings work either way).
"""

from __future__ import annotations

import sys
from typing import Iterable, Sequence


def report(title: str, header: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print one experiment table to stdout."""
    print(f"\n== {title} ==", file=sys.stderr)
    widths = [max(len(str(h)), 12) for h in header]
    print(
        "  " + "  ".join(str(h).rjust(w) for h, w in zip(header, widths)),
        file=sys.stderr,
    )
    for row in rows:
        print(
            "  " + "  ".join(_format(cell).rjust(w)
                             for cell, w in zip(row, widths)),
            file=sys.stderr,
        )


def _format(cell) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.6f}"
    return str(cell)

"""A-7 — lifted safe-plan evaluation vs compiled intensional engines.

Regenerates: the headline artifact of the Dalvi–Suciu safe-plan solver
(:mod:`repro.logic.hierarchy` + :mod:`repro.finite.lifted`).  Safe
chain- and star-shaped queries are evaluated twice over growing TI
tables — through the extensional lifted plans (``strategy="lifted"``)
and through the compiled-ROBDD engine (``strategy="bdd"``) — asserting
value parity to 1e-9 on every measured case before timing counts.

The compiled arm saturates at a few tens of facts (ROBDD construction
over the grounded lineage dominates), so the differential grid is
capped where BDD still terminates and the acceptance bar — geometric-
mean lifted speedup ≥ 10× — is asserted there.  A second, lifted-only
workload sweeps the same queries across 10⁴–10⁵-fact tables, recording
that the safe-plan engine covers in seconds table sizes the intensional
engines cannot reach at all; the cross-scale guard asserts the largest
lifted sweep case stays cheaper than the *smallest* compiled grid case
scaled by the size ratio (i.e. the lifted engine is sub-product in the
data where BDD compilation is super-linear).

Shape to hold: geomean lifted-over-BDD speedup ≥ 10× on the shared
grid.  Machine-readable results land in ``BENCH_lifted.json`` at the
repo root so future PRs can track the perf trajectory.

Smoke mode (``BENCH_SMOKE=1``): tiny sizes, no speedup assertion, no
JSON write — used by CI to exercise both arms on every Python version.
"""

import json
import math
import os
import platform
import sys
import time
from pathlib import Path

from benchmarks.conftest import report
from repro import obs
from repro.finite import TupleIndependentTable, query_probability
from repro.finite.compile_cache import CompileCache
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema

SMOKE = os.environ.get("BENCH_SMOKE", "") not in ("", "0")

schema = Schema.of(R=1, S=2, T=1, V=2)
R, S, T, V = schema["R"], schema["S"], schema["T"], schema["V"]

#: Differential grid: per-relation row counts where the compiled ROBDD
#: arm still terminates in seconds.
GRID_SIZES = [4, 6] if SMOKE else [6, 9, 12]
#: Lifted-only scale sweep (facts ≈ 4× these row counts).
SCALE_SIZES = [200] if SMOKE else [10_000, 100_000]
REPEATS = 1 if SMOKE else 3

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_lifted.json"

_RESULTS = {}

#: Safe hierarchical shapes: two 2-chains and a star rooted at x.  All
#: have safe plans (independent project over a separator); none are
#: within reach of world enumeration past ~20 facts.
QUERIES = [
    ("chain2", "EXISTS x, y. R(x) AND S(x, y)"),
    ("chain2b", "EXISTS x, y. S(x, y) AND T(y)"),
    ("star3", "EXISTS x, y, z. R(x) AND S(x, y) AND V(x, z)"),
]


def make_table(n):
    """~4n facts: n unary R and T marks, n S edges, n V edges, with
    marginals varied so no accidental symmetry hides a planning bug."""
    marginals = {}
    for i in range(n):
        marginals[R(i)] = 0.01 + (i % 7) * 0.01
        marginals[S(i, (i * 7 + 3) % n)] = 0.02 + (i % 5) * 0.01
        marginals[T((i * 7 + 5) % n)] = 0.05
        marginals[V(i, (i + 1) % n)] = 0.03
    return TupleIndependentTable(schema, marginals)


def q(text):
    return BooleanQuery(parse_formula(text, schema), schema)


def best_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def grid_rows():
    rows = []
    cases_json = {}
    speedups = []
    for n in GRID_SIZES:
        table = make_table(n)
        for name, text in QUERIES:
            query = q(text)
            with obs.trace() as t:
                lifted, lifted_s = best_of(
                    lambda: query_probability(
                        query, table, strategy="lifted",
                        compile_cache=CompileCache()))
            # ROBDD compilation dominates and repeats add minutes:
            # one cold-cache measurement per case.
            compiled, bdd_s = best_of(
                lambda: query_probability(
                    query, table, strategy="bdd",
                    compile_cache=CompileCache()),
                repeats=1)
            # Value parity on the measured workload before timing
            # counts for anything.
            assert abs(lifted - compiled) < 1e-9, (
                f"{name} n={n}: lifted {lifted} != bdd {compiled}")
            speedup = bdd_s / lifted_s if lifted_s else float("inf")
            speedups.append(speedup)
            plans = t.counters.get("lifted.plans", 0)
            rows.append((name, n, len(table.marginals), plans,
                         bdd_s, lifted_s, speedup))
            cases_json[f"{name}_n{n}"] = {
                "query": text,
                "n": n,
                "facts": len(table.marginals),
                "plans": plans,
                "bdd_s": bdd_s,
                "lifted_s": lifted_s,
                "speedup": speedup,
            }
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    _RESULTS["grid_workload"] = {
        "cases": cases_json,
        "geomean_speedup": geomean,
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
    }
    return rows, geomean


def scale_rows():
    rows = []
    cases_json = {}
    for n in SCALE_SIZES:
        table = make_table(n)
        for name, text in QUERIES:
            query = q(text)
            with obs.trace() as t:
                value, lifted_s = best_of(
                    lambda: query_probability(
                        query, table, strategy="lifted",
                        compile_cache=CompileCache()),
                    repeats=1 if n >= 100_000 else REPEATS)
            facts = len(table.marginals)
            throughput = facts / lifted_s if lifted_s else float("inf")
            rows.append((name, n, facts, lifted_s, throughput,
                         t.counters.get("lifted.plans", 0)))
            cases_json[f"{name}_n{n}"] = {
                "query": text,
                "n": n,
                "facts": facts,
                "lifted_s": lifted_s,
                "facts_per_s": throughput,
                "value": value,
            }
    _RESULTS["scale_workload"] = {"cases": cases_json}
    return rows


def _write_json():
    if SMOKE:
        # CI smoke runs exercise the code path but must not clobber the
        # committed full-mode perf record.
        return
    _RESULTS.update({
        "benchmark": "lifted",
        "smoke": SMOKE,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "generated_unix": int(time.time()),
        "headline_speedup": _RESULTS.get(
            "grid_workload", {}).get("geomean_speedup", 0.0),
    })
    JSON_PATH.write_text(json.dumps(_RESULTS, indent=2, sort_keys=True) + "\n")


def test_a7_lifted_vs_bdd_grid(benchmark):
    rows, geomean = benchmark.pedantic(grid_rows, rounds=1, iterations=1)
    report("A7a: safe-plan lifted evaluation vs compiled ROBDD",
           ("query", "n", "facts", "plans", "bdd_s", "lifted_s", "speedup"),
           rows)
    if not SMOKE:
        # The acceptance bar: ≥ 10× geometric-mean speedup on the grid.
        assert geomean >= 10.0, f"geomean speedup {geomean:.2f}x < 10x"


def test_a7_lifted_scale_sweep(benchmark):
    rows = benchmark.pedantic(scale_rows, rounds=1, iterations=1)
    report("A7b: lifted-only sweep at 10^4–10^5 facts",
           ("query", "n", "facts", "lifted_s", "facts_per_s", "plans"),
           rows)
    if not SMOKE:
        # Cross-scale guard: the largest lifted case (≈ 4·10^5 facts)
        # must stay cheaper than the smallest compiled grid case scaled
        # by the fact-count ratio — i.e. lifted grows sub-product where
        # the ROBDD arm grows super-linearly.
        grid = _RESULTS["grid_workload"]["cases"]
        scale = _RESULTS["scale_workload"]["cases"]
        smallest = min(grid.values(), key=lambda c: c["facts"])
        largest = max(scale.values(), key=lambda c: c["facts"])
        ratio = largest["facts"] / smallest["facts"]
        assert largest["lifted_s"] < smallest["bdd_s"] * ratio, (
            f"lifted at {largest['facts']} facts ({largest['lifted_s']:.3f}s)"
            f" not cheaper than scaled bdd floor"
            f" ({smallest['bdd_s']:.3f}s x {ratio:.0f})")
    _write_json()

"""E2 — size distribution of countable t.i. PDBs (§3.2, Corollary 4.7).

Regenerates: empirical E(S) vs Σ p_f across sample sizes, and the size
tail ``P(S ≥ n)`` dropping to 0.

Shape to hold: empirical mean → Σ p_f as samples grow; tail monotone to
0 (eq. (6)).
"""

import random

from benchmarks.conftest import report
from repro.core.fact_distribution import GeometricFactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
space = FactSpace(schema, Naturals())


def make_pdb():
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.9, ratio=0.6))


def empirical_expected_size():
    pdb = make_pdb()
    truth = pdb.expected_size()
    rows = []
    for samples in (10**3, 10**4, 5 * 10**4):
        rng = random.Random(3)
        mean = sum(pdb.sample(rng).size for _ in range(samples)) / samples
        rows.append((samples, truth, mean, abs(mean - truth)))
    return rows


def size_tail():
    pdb = make_pdb()
    return [
        (n, pdb.size_tail(n, tolerance=1e-3)) for n in (1, 2, 4, 6, 8)
    ]


def test_e2_expected_size(benchmark):
    rows = benchmark.pedantic(empirical_expected_size, rounds=1, iterations=1)
    report("E2a: empirical E(S) vs Σ p_f (Corollary 4.7, eq. (5))",
           ("samples", "Σ p_f", "empirical", "error"), rows)
    # Error shrinks with sample size and ends small.
    assert rows[-1][3] < 0.05


def test_e2_size_tail(benchmark):
    rows = benchmark.pedantic(size_tail, rounds=1, iterations=1)
    report("E2b: P(S ≥ n) (eq. (6))", ("n", "P(S ≥ n)"), rows)
    tails = [tail for _, tail in rows]
    assert tails == sorted(tails, reverse=True)
    assert tails[-1] < 0.03

"""Regenerate every committed ``BENCH_*.json`` artifact and stamp it.

Runs each artifact-producing benchmark module in full (non-smoke) mode,
then stamps every ``BENCH_*.json`` at the repo root with the git commit
SHA and a regeneration timestamp so a perf record is always traceable
to the code that produced it.

    python benchmarks/run_all.py               # run everything, stamp
    python benchmarks/run_all.py lifted_vec    # just these modules
    python benchmarks/run_all.py --stamp-only  # only (re)stamp

A module failing its acceptance bar stops the run (its exit code is
propagated) — stamping only happens after every requested module
passed, so a committed artifact is never stamped with a SHA whose run
regressed.
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Benchmark modules that write a BENCH_<name>.json artifact.  Keys are
#: the artifact names accepted on the command line.
ARTIFACT_MODULES = {
    "columnar": "bench_columnar.py",
    "compiled_eval": "bench_compiled_eval.py",
    "fanout": "bench_fanout.py",
    "grounding": "bench_grounding.py",
    "lifted": "bench_lifted.py",
    "lifted_vec": "bench_lifted_vec.py",
    "refinement": "bench_refinement.py",
    "sampling_kernels": "bench_sampling_kernels.py",
    "serve": "bench_serve.py",
}


def git_sha():
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=REPO_ROOT,
            capture_output=True, text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    return out.stdout.strip() or None


def run_module(module):
    print(f"== {module} ==", flush=True)
    return subprocess.run(
        [sys.executable, "-m", "pytest", f"benchmarks/{module}",
         "--benchmark-only", "-q"],
        cwd=REPO_ROOT).returncode


def stamp_artifacts():
    sha = git_sha()
    now = int(time.time())
    stamped = []
    for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
        payload = json.loads(path.read_text())
        payload["git_sha"] = sha
        payload["stamped_unix"] = now
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")
        stamped.append(path.name)
    print(f"stamped {len(stamped)} artifacts "
          f"(git_sha={sha or 'unknown'}): {', '.join(stamped)}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "modules", nargs="*", metavar="NAME",
        help="artifact names to regenerate (default: all); one of: "
             + ", ".join(sorted(ARTIFACT_MODULES)))
    parser.add_argument(
        "--stamp-only", action="store_true",
        help="skip the benchmark runs and only stamp existing artifacts")
    args = parser.parse_args(argv)

    if not args.stamp_only:
        names = args.modules or sorted(ARTIFACT_MODULES)
        unknown = [n for n in names if n not in ARTIFACT_MODULES]
        if unknown:
            parser.error(f"unknown artifact name(s): {', '.join(unknown)}")
        for name in names:
            code = run_module(ARTIFACT_MODULES[name])
            if code:
                print(f"{name}: FAILED (exit {code}); not stamping",
                      file=sys.stderr)
                return code
    stamp_artifacts()
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E9 — Proposition 6.2: additive approximation works, multiplicative
cannot.

Regenerates: for TM-represented PDBs M(N), the additive approximation
error at several ε (always within guarantee), and the multiplicative
gap between a budget-limited evaluation and the truth as the machine's
acceptance is delayed.

Shape to hold: additive errors ≤ ε everywhere; for slow acceptors the
budget-limited answer is 0 while the truth is positive — an infinite
ratio no constant c can bound.
"""

from fractions import Fraction

from benchmarks.conftest import report
from repro.core.approx import approximate_query_probability
from repro.core.tm_represented import (
    TM_SCHEMA,
    TMRepresentedDistribution,
    exists_r_probability,
    machine_accept_all,
    machine_accept_slowly,
    machine_empty_language,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.logic import BooleanQuery, parse_formula


def query():
    return BooleanQuery(
        parse_formula("EXISTS x. R(x)", TM_SCHEMA), TM_SCHEMA)


def additive_works():
    rows = []
    for name, machine in [
        ("empty language", machine_empty_language()),
        ("accept all", machine_accept_all()),
    ]:
        distribution = TMRepresentedDistribution(machine)
        pdb = CountableTIPDB(TM_SCHEMA, distribution)
        truth = float(exists_r_probability(distribution, 200))
        for epsilon in (0.1, 0.01):
            result = approximate_query_probability(query(), pdb, epsilon)
            rows.append((
                name, epsilon, truth, result.value,
                abs(result.value - truth) <= epsilon,
            ))
    return rows


def multiplicative_gap():
    budget = 16
    rows = []
    for delay in (0, 20, 60, 200):
        distribution = TMRepresentedDistribution(machine_accept_slowly(delay))
        estimate = exists_r_probability(distribution, budget)
        deep = (delay + 3) * (delay + 4) // 2 + 16  # past ⟨1, delay+2⟩
        truth = exists_r_probability(distribution, deep)
        if estimate > 0:
            ratio = f"{float(truth / estimate):.2f}"
        else:
            ratio = "infinite" if truth > 0 else "0/0"
        rows.append((
            delay,
            float(estimate),
            "positive (~2^-%d)" % (
                (delay + 2) * (delay + 1) // 2) if truth > 0 else "0",
            ratio,
        ))
    return rows


def test_e9_additive(benchmark):
    rows = benchmark.pedantic(additive_works, rounds=1, iterations=1)
    report("E9a: additive approximation on M(N) (Prop. 6.1 applies)",
           ("machine", "ε", "truth", "answer", "within ε"), rows)
    assert all(within for *_, within in rows)


def test_e9_multiplicative(benchmark):
    rows = benchmark.pedantic(multiplicative_gap, rounds=1, iterations=1)
    report("E9b: multiplicative gap at inspection budget 16 (Prop. 6.2)",
           ("acceptance delay", "estimate", "truth", "truth/estimate"),
           rows)
    # Fast acceptor: finite ratio.  Slow acceptors: infinite ratio.
    assert rows[0][3] not in ("infinite", "0/0")
    assert all(row[3] == "infinite" for row in rows[1:])

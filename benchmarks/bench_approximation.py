"""E5 — Proposition 6.1: additive ε-approximation by truncation (and
Figure 1's conditioning picture).

Regenerates: measured additive error vs ε, truncation size n(ε) for
geometric vs zeta fact-probability tails, and runtime growth with n(ε).

Shape to hold: |p − P(Q)| ≤ ε at every ε; n(ε) ~ log(1/ε) for geometric
tails vs polynomially larger for zeta tails; runtime grows with n(ε).
"""

import time

from benchmarks.conftest import report
from repro.core.approx import (
    approximate_query_probability,
    choose_truncation,
)
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    ZetaFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.logic import BooleanQuery, parse_formula
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
space = FactSpace(schema, Naturals())

EPSILONS = (0.1, 0.01, 0.001, 1e-4)


def geometric_pdb():
    return CountableTIPDB(
        schema, GeometricFactDistribution(space, first=0.5, ratio=0.5))


def exists_truth(pdb):
    """Exact P(∃x R(x)) = 1 − Π(1 − p_f) (single-relation schema)."""
    return 1.0 - pdb.empty_world_probability()


def error_vs_epsilon():
    pdb = geometric_pdb()
    query = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    truth = exists_truth(pdb)
    rows = []
    for epsilon in EPSILONS:
        result = approximate_query_probability(query, pdb, epsilon)
        rows.append((
            epsilon, result.truncation, result.value,
            abs(result.value - truth), abs(result.value - truth) <= epsilon,
        ))
    return rows


def truncation_size_by_tail():
    geometric = GeometricFactDistribution(space, first=0.5, ratio=0.5)
    zeta = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
    rows = []
    for epsilon in EPSILONS:
        rows.append((
            epsilon,
            choose_truncation(geometric, epsilon),
            choose_truncation(zeta, epsilon),
        ))
    return rows


def runtime_vs_epsilon():
    pdb = CountableTIPDB(
        schema, ZetaFactDistribution(space, exponent=2.0, scale=0.5))
    query = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    rows = []
    for epsilon in (0.1, 0.01, 0.001):
        start = time.perf_counter()
        result = approximate_query_probability(query, pdb, epsilon)
        elapsed = time.perf_counter() - start
        rows.append((epsilon, result.truncation, elapsed))
    return rows


def test_e5_error_guarantee(benchmark):
    rows = benchmark.pedantic(error_vs_epsilon, rounds=1, iterations=1)
    report("E5a: additive error vs ε (Prop. 6.1 / Fig. 1)",
           ("ε", "n(ε)", "p = P(Q|Ω_n)", "|p − P(Q)|", "within ε"), rows)
    assert all(within for *_, within in rows)


def test_e5_truncation_growth(benchmark):
    rows = benchmark.pedantic(truncation_size_by_tail, rounds=1, iterations=1)
    report("E5b: n(ε) by tail family (paper §6 complexity remark)",
           ("ε", "geometric n(ε)", "zeta n(ε)"), rows)
    # Geometric grows additively per decade (log), zeta multiplicatively.
    geometric_sizes = [g for _, g, _ in rows]
    zeta_sizes = [z for _, _, z in rows]
    assert geometric_sizes[-1] < 40
    assert zeta_sizes[-1] > 100 * geometric_sizes[-1]
    growth = [b / max(a, 1) for a, b in zip(zeta_sizes, zeta_sizes[1:])]
    assert all(g > 5 for g in growth)  # ~10× per decade for 1/i²


def test_e5_runtime(benchmark):
    rows = benchmark.pedantic(runtime_vs_epsilon, rounds=1, iterations=1)
    report("E5c: runtime vs ε (zeta tail)",
           ("ε", "n(ε)", "seconds"), rows)
    assert rows[-1][1] > rows[0][1]

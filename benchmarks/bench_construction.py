"""E1 — Theorem 4.8 construction soundness (Lemmas 4.3 + 4.4).

Regenerates: enumerated measure mass vs number of worlds (→ 1), sampled
vs specified marginals, and exact pairwise-independence defects, for
geometric and zeta fact-probability families.

Shape to hold: mass → 1 monotonically; sampled marginals within
sampling error of p_f; independence defect at float-noise level.
"""

import itertools
import random

from benchmarks.conftest import report
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    ZetaFactDistribution,
)
from repro.core.tuple_independent import CountableTIPDB
from repro.relational import Schema
from repro.universe import FactSpace, Naturals

schema = Schema.of(R=1)
R = schema["R"]
space = FactSpace(schema, Naturals())


def _families():
    """Families for the mass-convergence check (E1a); zeta included —
    its enumeration is coarser but the running mass still approaches 1."""
    return {
        "geometric(0.5, 0.5)": GeometricFactDistribution(
            space, first=0.5, ratio=0.5),
        "zeta(2.0, 0.5)": ZetaFactDistribution(space, exponent=2.0, scale=0.5),
    }


def _sharply_decaying_families():
    """Families for sampling/joint checks (E1b/E1c): these paths
    enumerate worlds or flip per-fact coins, so the mass must
    concentrate on a short prefix (tail ≤ 1e−4 within ~20 facts)."""
    return {
        "geometric(0.5, 0.5)": GeometricFactDistribution(
            space, first=0.5, ratio=0.5),
        "geometric(0.25, 0.4)": GeometricFactDistribution(
            space, first=0.25, ratio=0.4),
    }


def measure_mass_convergence():
    rows = []
    for name, family in _families().items():
        pdb = CountableTIPDB(schema, family)
        for exponent in (6, 10, 14):
            worlds = 2**exponent
            mass = sum(
                m for _, m in itertools.islice(pdb.worlds(), worlds))
            rows.append((name, worlds, mass, 1.0 - mass))
    return rows


def sampled_marginals(samples=4000):
    rows = []
    for name, family in _sharply_decaying_families().items():
        pdb = CountableTIPDB(schema, family)
        rng = random.Random(1)
        drawn = [pdb.sample(rng) for _ in range(samples)]
        for i in (1, 2, 3):
            fact = R(i)
            expected = pdb.marginal(fact)
            observed = sum(1 for s in drawn if fact in s) / samples
            rows.append((name, str(fact), expected, observed))
    return rows


def independence_defect():
    rows = []
    for name, family in _sharply_decaying_families().items():
        pdb = CountableTIPDB(schema, family)
        joint = pdb.probability(
            lambda D: R(1) in D and R(2) in D, tolerance=1e-4)
        product = pdb.marginal(R(1)) * pdb.marginal(R(2))
        rows.append((name, joint, product, abs(joint - product)))
    return rows


def test_e1_mass_convergence(benchmark):
    rows = benchmark.pedantic(measure_mass_convergence, rounds=1, iterations=1)
    report("E1a: Σ_D P({D}) vs #worlds (Lemma 4.3)",
           ("family", "worlds", "mass", "deficit"), rows)
    for _, _, mass, _ in rows:
        assert mass <= 1.0 + 1e-9
    # Final truncation of each family is within 2% of full mass.
    assert rows[2][2] > 0.99 and rows[5][2] > 0.95


def test_e1_sampled_marginals(benchmark):
    rows = benchmark.pedantic(sampled_marginals, rounds=1, iterations=1)
    report("E1b: sampled vs specified marginals (Lemma 4.4)",
           ("family", "fact", "p_f", "sampled"), rows)
    for _, _, expected, observed in rows:
        assert abs(expected - observed) < 0.05


def test_e1_independence(benchmark):
    rows = benchmark.pedantic(independence_defect, rounds=1, iterations=1)
    report("E1c: joint vs product of marginals (Lemma 4.4)",
           ("family", "P(E_f1 ∩ E_f2)", "p_f1 · p_f2", "defect"), rows)
    for _, _, _, defect in rows:
        assert defect < 2e-3

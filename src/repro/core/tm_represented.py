"""Turing-machine-represented PDBs and the Proposition 6.2 reduction.

A Turing machine M *represents* a tuple-independent PDB over Σ, τ of
weight w if it computes ``p_M : F[τ, Σ*] → ℚ`` with ``Σ_f p_M(f) = w``.
Proposition 6.2 proves no algorithm can produce *multiplicative*
c-approximations of query probabilities for such PDBs: given any machine
N, the reduction builds M(N) over τ = {R, S} with

    p(R(k)) = 2^{−k}  if  k = ⟨n, t⟩ and N accepts n within t steps,
    p(S(k)) = 2^{−k}  if  k = ⟨n, t⟩ and N does not accept n in t steps,

so ``Pr(∃x R(x)) = 0  ⟺  L(N) = ∅`` — and Rice's theorem makes emptiness
undecidable.  A multiplicative approximator would decide zero-ness.

This module implements the substrate (a deterministic Turing machine
simulator), the reduction ``reduction_distribution``, and the empirical
demonstration used by the E9 bench: *additive* approximation (Prop. 6.1)
works at every precision, while the multiplicative ratio between the
truth and any finite-inspection answer is unbounded.
"""

from __future__ import annotations

import itertools
import math
from fractions import Fraction
from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.fact_distribution import FactDistribution
from repro.errors import ReproError
from repro.relational.facts import Fact
from repro.relational.schema import RelationSymbol, Schema
from repro.universe.strings import BinaryStrings
from repro.utils.enumeration import paper_pair, paper_unpair

#: The Proposition 6.2 schema: two unary relations over Σ = {0, 1}.
TM_SCHEMA = Schema.of(R=1, S=1)


class TuringMachine:
    """A deterministic single-tape Turing machine over a finite alphabet.

    Transitions map ``(state, symbol) → (state, symbol, move)`` with
    move ∈ {−1, 0, +1}; blank is ``"_"``.  Missing transitions halt; the
    machine accepts iff it halts in ``accept_state``.

    >>> accept_all = TuringMachine({}, start="acc", accept_state="acc")
    >>> accept_all.accepts("010", max_steps=5)
    True
    """

    BLANK = "_"

    def __init__(
        self,
        transitions: Mapping[Tuple[str, str], Tuple[str, str, int]],
        start: str,
        accept_state: str,
        reject_state: Optional[str] = None,
    ):
        self.transitions = dict(transitions)
        self.start = start
        self.accept_state = accept_state
        self.reject_state = reject_state
        for (_state, _symbol), (_next, _write, move) in self.transitions.items():
            if move not in (-1, 0, 1):
                raise ReproError(f"invalid head move {move}")

    def run(self, word: str, max_steps: int) -> Optional[bool]:
        """Simulate up to ``max_steps`` steps.

        Returns True (accepted), False (halted without accepting), or
        None (still running after the budget).
        """
        tape: Dict[int, str] = {i: ch for i, ch in enumerate(word)}
        head = 0
        state = self.start
        for _ in range(max_steps):
            if state == self.accept_state:
                return True
            if self.reject_state is not None and state == self.reject_state:
                return False
            symbol = tape.get(head, self.BLANK)
            transition = self.transitions.get((state, symbol))
            if transition is None:
                return state == self.accept_state
            state, write, move = transition
            tape[head] = write
            head += move
        if state == self.accept_state:
            return True
        return None

    def accepts(self, word: str, max_steps: int) -> bool:
        """``word ∈ L_{N,t}``: accepted within the step budget."""
        return self.run(word, max_steps) is True


def machine_empty_language() -> TuringMachine:
    """A machine with ``L(N) = ∅``: loops forever on every input."""
    return TuringMachine(
        {
            ("loop", "0"): ("loop", "0", 0),
            ("loop", "1"): ("loop", "1", 0),
            ("loop", "_"): ("loop", "_", 0),
        },
        start="loop",
        accept_state="acc",
    )


def machine_accept_all() -> TuringMachine:
    """A machine accepting every input immediately."""
    return TuringMachine({}, start="acc", accept_state="acc")


def machine_accept_slowly(delay: int) -> TuringMachine:
    """Accepts every input, but only after ``delay`` burned steps —
    making the accepting mass live arbitrarily deep in the fact
    enumeration (the multiplicative-hardness knob of the E9 bench)."""
    transitions = {}
    for step in range(delay):
        state = f"wait{step}"
        nxt = f"wait{step + 1}" if step + 1 < delay else "acc"
        for symbol in ("0", "1", "_"):
            transitions[(state, symbol)] = (nxt, symbol, 0)
    return TuringMachine(transitions, start="wait0" if delay else "acc",
                         accept_state="acc")


class TMRepresentedDistribution(FactDistribution):
    """The reduction's family ``p_{M(N)}`` — weight exactly 1.

    Fact indices k = 1, 2, … are split as ``k = ⟨n, t⟩``; exactly one of
    ``R(k)`` / ``S(k)`` carries mass ``2^{−k}`` depending on whether N
    accepts the word of rank n within t steps.

    >>> d = TMRepresentedDistribution(machine_accept_all())
    >>> d.total_mass()
    1.0
    >>> d.r_probability_upper_bound(0) <= 1.0
    True
    """

    def __init__(self, machine: TuringMachine):
        self.machine = machine
        self._strings = BinaryStrings()
        self._r = TM_SCHEMA["R"]
        self._s = TM_SCHEMA["S"]

    # k-th fact (k >= 1): which relation holds the 2^-k mass?
    def _fact_for_index(self, k: int) -> Fact:
        n, t = paper_unpair(k)
        # Word with "integer value" n under the 1x-binary identification.
        word = BinaryStrings.from_natural(n)
        if self.machine.accepts(word, max_steps=t):
            return Fact(self._r, (k,))
        return Fact(self._s, (k,))

    def support(self) -> Iterator[Fact]:
        for k in itertools.count(1):
            yield self._fact_for_index(k)

    def probability(self, fact: Fact) -> float:
        if fact.relation not in (self._r, self._s):
            return 0.0
        if len(fact.args) != 1 or not isinstance(fact.args[0], int):
            return 0.0
        k = fact.args[0]
        if k < 1:
            return 0.0
        return 2.0**-k if self._fact_for_index(k) == fact else 0.0

    def tail(self, n: int) -> float:
        # After the first n facts (indices 1..n), remaining mass 2^{-n}.
        return 2.0**-n

    def total_mass(self) -> float:
        return 1.0

    # ---------------------------------------------------------- Prop 6.2 view
    def r_mass_up_to(self, depth: int) -> float:
        """``Σ_{k ≤ depth} p(R(k))`` — the accepting mass visible after
        inspecting the first ``depth`` fact indices."""
        total = 0.0
        for k in range(1, depth + 1):
            fact = self._fact_for_index(k)
            if fact.relation == self._r:
                total += 2.0**-k
        return total

    def r_probability_upper_bound(self, depth: int) -> float:
        """Upper bound on ``Pr(∃x R(x))`` from a depth-limited
        inspection: visible R-mass plus the whole unseen tail."""
        return min(1.0, self.r_mass_up_to(depth) + self.tail(depth))


def exists_r_probability(
    distribution: TMRepresentedDistribution, depth: int
) -> "Fraction":
    """``Pr(∃x R(x))`` over the truncation to the first ``depth`` fact
    indices: ``1 − Π_{R-facts k ≤ depth} (1 − 2^{−k})``.

    Computed in exact rational arithmetic — the accepting mass can be as
    small as ``2^{−k}`` for huge k, far below float precision, and the
    whole point of Proposition 6.2 is that "tiny positive" and "zero"
    are worlds apart multiplicatively.

    For the empty-language machine this is 0 at *every* depth, while a
    slow acceptor keeps it 0 until the acceptance depth then jumps
    positive — the unbounded multiplicative gap.

    >>> exists_r_probability(
    ...     TMRepresentedDistribution(machine_empty_language()), 64)
    Fraction(0, 1)
    """
    complement = Fraction(1)
    for k in range(1, depth + 1):
        fact = distribution._fact_for_index(k)
        if fact.relation.name == "R":
            complement *= 1 - Fraction(1, 2**k)
    return 1 - complement


def multiplicative_gap_demonstration(
    delays, depth_budget: int
) -> Dict[int, Tuple["Fraction", "Fraction"]]:
    """For each acceptance delay, the pair (estimate-at-budget, truth at
    a generous depth): the ratio truth/estimate is ∞ whenever the budget
    misses the acceptance depth — no constant c can bound it (Prop 6.2).
    """
    results: Dict[int, Tuple[Fraction, Fraction]] = {}
    for delay in delays:
        distribution = TMRepresentedDistribution(machine_accept_slowly(delay))
        estimate = exists_r_probability(distribution, depth_budget)
        # "Truth" ~ evaluated deep enough to see the first acceptance.
        deep = max(depth_budget * 4, paper_pair(1, delay + 2) + 8)
        truth = exists_r_probability(distribution, deep)
        results[delay] = (estimate, truth)
    return results

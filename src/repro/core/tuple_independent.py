"""Countable tuple-independent PDBs — the Theorem 4.8 construction.

Given a family ``(p_f)`` with convergent ``Σ p_f`` (a certified
:class:`~repro.core.fact_distribution.FactDistribution`), the construction
defines, for every finite ``D ⊆ F_ω``,

    P({D}) = Π_{f ∈ D} p_f · Π_{f ∈ F_ω − D} (1 − p_f),

a probability measure (Lemma 4.3) that is tuple-independent with
marginals ``P(E_f) = p_f`` (Lemma 4.4).  Divergent families are rejected
with :class:`~repro.errors.ConvergenceError` — the necessity direction
(Lemma 4.6, via Borel–Cantelli).

The expected instance size is ``Σ p_f < ∞`` (Corollary 4.7), so sampled
instances are almost surely small; sampling flips an independent
Bernoulli coin per support fact and stops when the certified tail mass is
negligible.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, Iterator, List, Optional, Tuple

from repro.analysis.products import product_complement
from repro.core.fact_distribution import FactDistribution, TableFactDistribution
from repro.core.pdb import CountablePDB
from repro.errors import ApproximationError, ConvergenceError, ProbabilityError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema


def _weighted_subsets(
    pairs: List[Tuple[Fact, float]]
) -> Iterator[Tuple[Tuple[Fact, ...], float]]:
    """All subsets of ``pairs`` with weight ``Π_{chosen} p · Π_{rest} (1−p)``.

    Depth-first include/exclude recursion: one multiplication per edge,
    so enumerating all 2^k subsets costs O(2^k) multiplications total.
    """
    if not pairs:
        yield (), 1.0
        return
    fact, p = pairs[-1]
    for facts, weight in _weighted_subsets(pairs[:-1]):
        yield facts, weight * (1.0 - p)
        yield facts + (fact,), weight * p


class CountableTIPDB(CountablePDB):
    """A countable tuple-independent PDB over a certified ``(p_f)``.

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals, FactSpace
    >>> from repro.core.fact_distribution import GeometricFactDistribution
    >>> schema = Schema.of(R=1)
    >>> space = FactSpace(schema, Naturals())
    >>> pdb = CountableTIPDB(schema, GeometricFactDistribution(
    ...     space, first=0.5, ratio=0.5))
    >>> pdb.marginal(schema["R"](1))
    0.5
    >>> pdb.expected_size()
    1.0
    """

    def __init__(
        self,
        schema: Schema,
        distribution: FactDistribution,
        tolerance: float = 1e-12,
    ):
        if not distribution.convergent:
            raise ConvergenceError(
                "Theorem 4.8: no tuple-independent PDB exists for a "
                "divergent family of fact probabilities "
                f"(Σ p_f = {distribution.total_mass()})"
            )
        self.distribution = distribution
        self.tolerance = tolerance
        super().__init__(
            schema,
            self._enumerate_worlds,
            exhaustive=False,
            mass_tail=self._world_mass_tail,
        )

    # ------------------------------------------------------------ closed forms
    def marginal(self, fact: Fact) -> float:
        """``P(E_f) = p_f`` (Lemma 4.4)."""
        return self.distribution.probability(fact)

    def fact_marginal(self, fact: Fact, tolerance: float = 1e-9) -> float:
        # Closed form; the base class would enumerate worlds.
        return self.marginal(fact)

    def expected_size(self, **_ignored) -> float:
        """``E(S) = Σ p_f`` — finite by Corollary 4.7."""
        return self.distribution.total_mass()

    def size_variance(self, tolerance: float = 1e-12) -> float:
        """``Var(S) = Σ p_f (1 − p_f)`` — the independent-Bernoulli sum.

        Computed over the certified prefix; omitted terms contribute at
        most the remaining tail mass.
        """
        n = self.distribution.prefix_for_tail(tolerance)
        return sum(p * (1.0 - p) for _, p in self.distribution.prefix(n))

    def size_moment(self, k: int, tolerance: float = 1e-12) -> float:
        """``E(S^k)`` for k ∈ {1, 2} in closed form.

        Tuple-independent PDBs have all moments finite; the paper's
        Remark 4.10 gap PDBs are exactly the non-TI side of that coin.
        """
        if k == 1:
            return self.expected_size()
        if k == 2:
            mean = self.expected_size()
            return self.size_variance(tolerance) + mean * mean
        raise ProbabilityError(
            f"closed-form moments implemented for k ≤ 2, got {k}"
        )

    def instance_probability(self, instance: Instance) -> float:
        """The Theorem 4.8 product, with the infinite complement factor
        truncated at certified error ``self.tolerance``."""
        low, high = self.instance_probability_bounds(instance)
        return high  # the truncated product; true value in [low, high]

    def instance_probability_bounds(
        self, instance: Instance
    ) -> Tuple[float, float]:
        """Certified enclosure of ``P({D})``.

        When the distribution provides a closed-form complement product
        (wide-support families) the value is exact:
        ``Π_{f∈D} p_f/(1−p_f) · Π_{all f} (1−p_f)``.  Otherwise the
        truncated product over the first n support facts is an upper
        bound; multiplying by ``1 − tail(n)`` (union bound on the
        remaining complement factors) gives a lower bound.
        """
        present = 1.0
        for fact in instance:
            p = self.marginal(fact)
            if p == 0.0:
                return 0.0, 0.0
            present *= p
        log_complement = self.distribution.log_complement_product()
        # −inf means some fact has p = 1 (the empty-complement product is
        # 0); the odds trick breaks down there, so fall through to the
        # prefix-truncated path, which handles p = 1 factors exactly.
        if log_complement is not None and math.isfinite(log_complement):
            odds = 1.0
            for fact in instance:
                p = self.marginal(fact)
                if p >= 1.0:
                    odds = math.inf
                    break
                odds *= p / (1.0 - p)
            value = odds * math.exp(log_complement)
            return value, value
        n = self.distribution.prefix_for_tail(self.tolerance)
        complement = product_complement(
            p
            for fact, p in self.distribution.prefix(n)
            if fact not in instance
        )
        upper = present * complement
        lower = upper * max(0.0, 1.0 - self.distribution.tail(n))
        return lower, upper

    def empty_world_probability(self) -> float:
        """``P({∅}) = Π (1 − p_f)`` — positive because Σ p_f < ∞ and no
        fact has probability 1 ⟹ used by Theorem 5.5 (``P₁({∅}) > 0``)."""
        return self.instance_probability(Instance())

    # ----------------------------------------------------------- enumeration
    def _enumerate_worlds(self) -> Iterator[Tuple[Instance, float]]:
        """Enumerate ``D_ω`` (finite subsets of the support).

        Order: the empty instance, then for k = 1, 2, … all instances
        whose maximal support-index is k−1 (contain fact k−1, plus any
        subset of facts 0..k−2).  Every finite subset of the certified
        prefix appears exactly once; after all instances with max index
        < k the remaining mass is at most ``tail(k)``.

        Masses are computed *incrementally* (suffix complement products
        plus per-subset weights), so enumeration is O(1) multiplications
        per world rather than one full product each.  Facts beyond the
        tolerance prefix carry total mass ≤ ``self.tolerance`` and are
        not enumerated — exactly the slack already present in
        :meth:`instance_probability`.
        """
        n = self._enumeration_prefix()
        pairs = self.distribution.prefix(n)
        # suffix[k] = Π_{j ≥ k} (1 − p_j), truncated at the prefix end.
        suffix = [1.0] * (n + 1)
        for j in range(n - 1, -1, -1):
            suffix[j] = suffix[j + 1] * (1.0 - pairs[j][1])
        yield Instance(), suffix[0]
        for k in range(n):
            fact_k, p_k = pairs[k]
            base = p_k * suffix[k + 1]
            for facts, weight in _weighted_subsets(pairs[:k]):
                yield Instance(facts + (fact_k,)), weight * base

    def _enumeration_prefix(self, cap: int = 10**5) -> int:
        """Support prefix length for world enumeration.

        Ideally the prefix covers all but ``self.tolerance`` of the
        mass; families with slow (e.g. polynomial) tails cannot reach
        that within a reasonable prefix, so the bound backs off
        progressively — the un-enumerated mass is still certified via
        :meth:`_world_mass_tail`, only the coverage is coarser.
        """
        for bound in (self.tolerance, 1e-9, 1e-6, 1e-4, 1e-2):
            try:
                return self.distribution.prefix_for_tail(
                    bound, max_facts=cap)
            except (ApproximationError, ConvergenceError):
                # Budget exhausted at this bound: back off.  Sound here
                # (unlike in the Prop. 6.1 pipeline) because the
                # un-enumerated mass stays certified via
                # :meth:`_world_mass_tail`.
                continue
        return cap

    def _world_mass_tail(self, worlds_enumerated: int) -> float:
        """Certified un-enumerated mass after ``worlds_enumerated``
        worlds: if 2^k ≤ worlds, every instance with max support index
        < k has been emitted, so the rest has mass ≤ tail(k)."""
        if worlds_enumerated <= 0:
            return 1.0
        k = worlds_enumerated.bit_length() - 1  # floor(log2)
        return min(1.0, self.distribution.tail(k))

    # ------------------------------------------------------------- truncation
    def truncate(self, n: int) -> TupleIndependentTable:
        """The finite TI table on the first n support facts — the
        bridge to Section 6: this table *is* the conditional
        distribution ``P(· | Ω_n)`` (conditioning a product measure on
        "no fact beyond the first n occurs" leaves the factors on the
        first n facts untouched)."""
        return TupleIndependentTable(self.schema, self.distribution.marginals_dict(n))

    def extend_truncation(self, table: TupleIndependentTable, n: int) -> int:
        """Grow a table produced by :meth:`truncate` to the first ``n``
        support facts *in place* — the result equals ``truncate(n)``
        (same facts, same marginals) without rebuilding the reused
        prefix.  Returns the number of facts reused (the table's prior
        size)."""
        reused = len(table)
        if n > reused:
            table.extend(
                dict(self.distribution.prefix_cache().pairs(reused, n)))
        return reused

    def truncation_for_epsilon(self, epsilon: float) -> int:
        """Delegates to the Proposition 6.1 truncation-size rule."""
        from repro.core.approx import choose_truncation

        return choose_truncation(self.distribution, epsilon)

    def omega_n_probability(self, n: int) -> float:
        """``P(Ω_n)``: no support fact beyond the first n occurs —
        ``Π_{i>n} (1 − p_i)``, truncated at certified error."""
        budget = self.distribution.prefix_for_tail(self.tolerance)
        extent = max(budget, n)
        probabilities = [
            p for _, p in self.distribution.prefix(extent)[n:]
        ]
        return product_complement(probabilities)

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random, tolerance: float = 1e-9) -> Instance:
        """Independent Bernoulli per support fact, stopping once the
        remaining tail mass is below ``tolerance`` (the omitted facts
        jointly occur with probability ≤ tolerance)."""
        n = self.distribution.prefix_for_tail(tolerance)
        facts = [
            fact
            for fact, p in self.distribution.prefix(n)
            if rng.random() < p
        ]
        return Instance(facts)

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_marginals(
        cls, schema: Schema, marginals, tolerance: float = 1e-12
    ) -> "CountableTIPDB":
        """Finite-support convenience constructor.

        >>> schema = Schema.of(R=1)
        >>> R = schema["R"]
        >>> pdb = CountableTIPDB.from_marginals(schema, {R(1): 0.5})
        >>> round(pdb.instance_probability(Instance([R(1)])), 6)
        0.5
        """
        return cls(schema, TableFactDistribution(marginals), tolerance=tolerance)

    def __repr__(self) -> str:
        return (
            f"CountableTIPDB(expected_size={self.expected_size():.4g}, "
            f"schema={self.schema!r})"
        )

"""Countable probabilistic databases (Definition 3.1, discrete case).

A :class:`CountablePDB` is a discrete probability space whose outcomes
are finite database instances of a fixed schema.  The sample space may be
countably infinite; it is represented by a deterministic enumeration of
``(instance, mass)`` pairs whose running mass tends to 1, optionally with
a certified mass tail.

Concrete subclasses with closed-form point masses (the Theorem 4.8 /
4.15 / 5.5 constructions) override :meth:`instance_probability`; the base
class supplies the generic machinery: fact-marginal events ``E_f``/
``E_F``, size distribution (§3.2), expected size (eq. (5)), and the
Proposition 3.4 enumeration of positive-probability facts.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import AbstractSet, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ProbabilityError
from repro.measure.space import DiscreteProbabilitySpace
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema


class CountablePDB:
    """A countable PDB: enumerated instances with probability masses.

    Parameters
    ----------
    schema:
        The database schema τ.
    enumerate_worlds:
        Zero-argument callable yielding ``(Instance, mass)`` pairs,
        distinct instances, running mass → 1.
    exhaustive:
        True iff the enumeration is finite.
    mass_tail:
        Optional certified bound on the un-enumerated mass after the
        first n pairs.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> pdb = CountablePDB(schema, lambda: iter(
    ...     [(Instance(), 0.5), (Instance([R(1)]), 0.5)]), exhaustive=True)
    >>> pdb.fact_marginal(R(1))
    0.5
    """

    def __init__(
        self,
        schema: Schema,
        enumerate_worlds: Callable[[], Iterator[Tuple[Instance, float]]],
        exhaustive: bool,
        mass_tail: Optional[Callable[[int], float]] = None,
    ):
        self.schema = schema
        self._enumerate = enumerate_worlds
        self.exhaustive = exhaustive
        self._mass_tail = mass_tail

    # ---------------------------------------------------------------- measure
    def worlds(self) -> Iterator[Tuple[Instance, float]]:
        """Enumerate (instance, mass) pairs; fresh iterator per call."""
        return self._enumerate()

    def instance_probability(self, instance: Instance) -> float:
        """``P({D})``.  Base implementation scans the enumeration;
        constructions override with closed forms."""
        for world, mass in self.worlds():
            if world == instance:
                return mass
        return 0.0

    def probability(
        self,
        event: Callable[[Instance], bool],
        tolerance: float = 1e-9,
        max_worlds: int = 10**6,
    ) -> float:
        """``P({D : event(D)})`` to additive accuracy ``tolerance``."""
        acc = 0.0
        seen = 0.0
        for index, (world, mass) in enumerate(self.worlds()):
            if event(world):
                acc += mass
            seen += mass
            if self.exhaustive:
                continue
            remaining = (
                self._mass_tail(index + 1)
                if self._mass_tail is not None
                else 1.0 - seen
            )
            if remaining <= tolerance:
                return acc
            if index + 1 >= max_worlds:
                raise ProbabilityError(
                    f"event probability did not stabilize within "
                    f"{max_worlds} worlds (remaining mass ~{remaining:.3g})"
                )
        return acc

    def as_space(self) -> DiscreteProbabilitySpace:
        return DiscreteProbabilitySpace(
            lambda: self.worlds(), exhaustive=self.exhaustive,
            mass_tail=self._mass_tail,
        )

    # ------------------------------------------------------------ fact events
    def fact_marginal(self, fact: Fact, tolerance: float = 1e-9) -> float:
        """``P(E_f)`` — probability the fact occurs (Definition 3.1)."""
        return self.probability(lambda world: fact in world, tolerance=tolerance)

    def fact_set_marginal(
        self, facts: AbstractSet[Fact], tolerance: float = 1e-9
    ) -> float:
        """``P(E_F)`` for a set of facts F."""
        fact_set = frozenset(facts)
        return self.probability(
            lambda world: world.intersects(fact_set), tolerance=tolerance
        )

    def positive_probability_facts(
        self, limit: int, threshold: float = 0.0, max_worlds: int = 10**5
    ) -> List[Fact]:
        """Enumerate (a prefix of) the countable set ``F_ω`` of facts
        with positive marginal probability — Proposition 3.4 made
        effective: every positive-marginal fact appears in some
        positive-mass world, so scanning worlds finds them all.
        """
        found: List[Fact] = []
        seen: set = set()
        for world, mass in itertools.islice(self.worlds(), max_worlds):
            if mass <= threshold:
                continue
            for fact in world:
                if fact not in seen:
                    seen.add(fact)
                    found.append(fact)
                    if len(found) >= limit:
                        return found
        return found

    # ------------------------------------------------------------------- size
    def size_distribution(
        self, max_size: int, tolerance: float = 1e-9
    ) -> Dict[int, float]:
        """``P(S_D = n)`` for n ≤ max_size (remaining mass on larger
        sizes is implicit)."""
        dist: Dict[int, float] = {}
        seen = 0.0
        for index, (world, mass) in enumerate(self.worlds()):
            if world.size <= max_size:
                dist[world.size] = dist.get(world.size, 0.0) + mass
            seen += mass
            if not self.exhaustive:
                remaining = (
                    self._mass_tail(index + 1)
                    if self._mass_tail is not None
                    else 1.0 - seen
                )
                if remaining <= tolerance:
                    break
        return dist

    def size_tail(self, n: int, tolerance: float = 1e-9) -> float:
        """``P(S_D ≥ n)`` — eq. (6) of the paper says this tends to 0."""
        return self.probability(lambda world: world.size >= n, tolerance=tolerance)

    def expected_size(
        self,
        tolerance: float = 1e-9,
        max_worlds: int = 10**6,
        infinity_threshold: float = 1e12,
    ) -> float:
        """``E(S_D) = Σ_D P({D}) ‖D‖`` (eq. (5)).

        May legitimately be infinite (Example 3.3): partial sums
        exceeding ``infinity_threshold`` report ``math.inf``.
        """
        acc = 0.0
        seen = 0.0
        for index, (world, mass) in enumerate(self.worlds()):
            acc += mass * world.size
            seen += mass
            if acc > infinity_threshold:
                return math.inf
            if self.exhaustive:
                continue
            remaining = (
                self._mass_tail(index + 1)
                if self._mass_tail is not None
                else 1.0 - seen
            )
            if remaining <= tolerance:
                return acc
            if index + 1 >= max_worlds:
                # Unbounded sizes with slow mass decay: report the
                # partial sum; Example 3.3-style spaces hit the
                # infinity_threshold instead.
                return acc
        return acc

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> Instance:
        """Inverse-transform sampling along the enumeration."""
        u = rng.random()
        acc = 0.0
        last: Optional[Instance] = None
        for world, mass in self.worlds():
            acc += mass
            last = world
            if u < acc:
                return world
        if last is None:
            raise ProbabilityError("cannot sample from an empty PDB")
        return last

    def sample_many(self, n: int, rng: random.Random) -> List[Instance]:
        return [self.sample(rng) for _ in range(n)]

    def __repr__(self) -> str:
        kind = "finite" if self.exhaustive else "countably infinite"
        return f"CountablePDB({kind}, schema={self.schema!r})"

"""Anytime refinement of Proposition 6.1 approximations.

The one-shot entry points in :mod:`repro.core.approx` redo every piece
of work per call: re-enumerate the support prefix, rebuild the truncated
table, recompile the lineage.  A :class:`RefinementSession` binds one
(query, PDB) pair and makes a *sequence* of ε-calls incremental:

* the truncation search runs over the PDB's shared
  :class:`~repro.core.prefix_cache.PrefixCache` — each tighter ε extends
  the already-materialized prefix instead of re-enumerating it;
* the truncated table grows *in place*
  (:meth:`~repro.core.tuple_independent.CountableTIPDB.extend_truncation`
  and its BID analogue) — the facts shared with the previous truncation
  are reused, counted in the ``refine.reused_facts`` trace counter;
* compiled evaluation warm-starts: Boolean queries run through a
  :class:`~repro.finite.compile_cache.CompileCache` whose per-query
  manager extends across truncations, and answer fan-outs chain
  :meth:`~repro.finite.compile_cache.SharedGrounding.extended`
  groundings so hash-consed nodes and scoring memos carry over.

Every refinement returns exactly what the corresponding one-shot entry
point would: the same truncation size n (the logarithmic search is
bit-exact against the linear scan) and the same probability (the grown
table has identical facts and marginals, and compiled evaluation is
deterministic on the diagram structure).  The one-shot functions are
themselves thin single-``refine`` sessions.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.analysis.bounds import alpha_from_tail
from repro.core.approx import (
    ApproximationResult,
    _finish_approximation,
    choose_block_truncation,
    choose_truncation,
)
from repro.core.bid import CountableBIDPDB
from repro.core.completion import CompletedPDB
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import EvaluationError
from repro.finite.bid import BlockIndependentTable
from repro.finite.evaluation import (
    marginal_answer_probabilities,
    query_probability,
)
from repro.finite.tuple_independent import TupleIndependentTable
from repro.logic.analysis import constants_of
from repro.logic.queries import BooleanQuery, Query
from repro.relational.facts import Value

#: Trace counter: facts (TI) or blocks (BID) the current refinement
#: reused from the previous truncation instead of re-materializing.
REFINE_REUSED_FACTS = "refine.reused_facts"


def normalize_epsilons(epsilons: Iterable[float]) -> List[float]:
    """Validated sweep schedule: distinct ε values, loosest first.

    The single home for ε-sweep hygiene (the CLI ``--sweep`` parser,
    :meth:`RefinementSession.sweep`, and the serve layer's sweep op all
    route through it): every ε must be positive (a non-positive ε has no
    certified truncation), ``==``-colliding values (``1`` vs ``1.0``,
    repeated entries) are collapsed to one refinement, and the result is
    sorted descending — tightest last — so a session only ever grows its
    truncation.

    >>> normalize_epsilons([0.01, 0.1, 0.1, 0.05])
    [0.1, 0.05, 0.01]
    >>> normalize_epsilons([0.1, 0])
    Traceback (most recent call last):
        ...
    repro.errors.EvaluationError: sweep epsilons must be positive, got 0.0
    """
    distinct: List[float] = []
    seen = set()
    for epsilon in epsilons:
        value = float(epsilon)
        if not value > 0.0:
            raise EvaluationError(
                f"sweep epsilons must be positive, got {value}")
        if value in seen:
            continue
        seen.add(value)
        distinct.append(value)
    if not distinct:
        raise EvaluationError("sweep needs at least one epsilon")
    distinct.sort(reverse=True)
    return distinct


class RefinementSession:
    """Anytime ε-refinement of one query on one countable PDB.

    Supports countable tuple-independent PDBs
    (:class:`~repro.core.tuple_independent.CountableTIPDB`), countable
    BID PDBs (:class:`~repro.core.bid.CountableBIDPDB`, where the
    truncation unit is blocks), and Theorem 5.5 completions
    (:class:`~repro.core.completion.CompletedPDB`).

    ``compile_cache`` defaults to the process-wide
    :data:`~repro.finite.compile_cache.DEFAULT_COMPILE_CACHE`; pass a
    fresh :class:`~repro.finite.compile_cache.CompileCache` to keep the
    session's warm diagrams isolated.  ``max_facts`` bounds the
    truncation search (blocks for BID PDBs).

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals, FactSpace
    >>> from repro.core.fact_distribution import GeometricFactDistribution
    >>> from repro.logic import parse_formula
    >>> schema = Schema.of(R=1)
    >>> space = FactSpace(schema, Naturals())
    >>> pdb = CountableTIPDB(schema, GeometricFactDistribution(
    ...     space, first=0.25, ratio=0.5))
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> session = RefinementSession(q, pdb)
    >>> coarse = session.refine(0.1)
    >>> fine = session.refine(0.01)
    >>> fine.truncation > coarse.truncation
    True
    >>> abs(fine.value - coarse.value) <= coarse.epsilon + fine.epsilon
    True
    """

    def __init__(
        self,
        query: Query,
        pdb,
        strategy: str = "auto",
        max_facts: int = 10**7,
        compile_cache=None,
        pool=None,
    ):
        if isinstance(pdb, CountableTIPDB):
            self._kind = "ti"
        elif isinstance(pdb, CountableBIDPDB):
            self._kind = "bid"
        elif isinstance(pdb, CompletedPDB):
            self._kind = "completed"
        else:
            raise EvaluationError(
                "refinement sessions need a countable TI, countable BID, "
                f"or completed PDB, got {type(pdb).__name__}"
            )
        self.query = query
        self.pdb = pdb
        self.strategy = strategy
        self.max_facts = max_facts
        self.compile_cache = compile_cache
        #: A :class:`~repro.parallel.pool.ShardPool` every
        #: :meth:`refine_marginals` call of this session fans out on —
        #: one warm pool for the whole sweep, so workers keep their
        #: cached table (delta-shipped as the truncation grows) and
        #: extended diagrams from step to step.  Dropped from pickles
        #: (process handles don't snapshot); a restored session falls
        #: back to the process-wide shared pool when ``workers=`` is
        #: passed.
        self.pool = pool
        #: Every :class:`ApproximationResult` produced so far, in call
        #: order — the anytime trajectory.
        self.history: List[ApproximationResult] = []
        if isinstance(query, BooleanQuery):
            self._boolean: Optional[BooleanQuery] = query
        elif query.is_boolean:
            self._boolean = BooleanQuery(
                query.formula, query.schema, name=query.name)
        else:
            self._boolean = None
        self._table = None  # the session's monotonically growing table
        self._n = 0
        self._grounding = None  # warm SharedGrounding chain (fan-outs)
        #: Serializes refinements: the session's table/truncation/warm
        #: grounding form one consistent unit, so concurrent callers
        #: (the serve layer multiplexes many clients onto shared
        #: sessions) take turns rather than interleave half-grown state.
        self._lock = threading.RLock()

    # -------------------------------------------------------------- anytime API
    def refine(self, epsilon: float) -> ApproximationResult:
        """One Proposition 6.1 approximation at guarantee ε, reusing
        everything previous calls materialized.

        Equals a fresh one-shot call bit-for-bit: same truncation size,
        same probability, same α.
        """
        if self._boolean is None:
            raise EvaluationError(
                "query has free variables; use refine_marginals")
        with self._lock, obs.trace() as t:
            with obs.phase("choose_truncation"):
                n = self._choose(epsilon)
            with obs.phase("truncate"):
                table, reused = self._materialize(n)
            obs.incr(REFINE_REUSED_FACTS, reused)
            value = query_probability(
                self._boolean, table, strategy=self.strategy,
                compile_cache=self.compile_cache)
            alpha = alpha_from_tail(self._tail(n))
            result = _finish_approximation(t, value, epsilon, n, alpha)
            self.history.append(result)
        return result

    def refine_to(self, target_width: float) -> ApproximationResult:
        """Refine until the certified enclosure ``[low, high]`` is at
        most ``target_width`` wide — i.e. ε = width/2."""
        return self.refine(target_width / 2.0)

    def sweep(self, epsilons: Iterable[float]) -> Dict[float, ApproximationResult]:
        """Refine at every requested ε, loosest first, so the truncation
        only ever grows and each step extends the last.

        Ordering and dedup contract: the schedule is
        :func:`normalize_epsilons` of the input — every ε is validated
        positive, duplicates and ``==``-colliding values (``1`` vs
        ``1.0``) are *explicitly* collapsed to a single refinement
        rather than silently overwriting each other's dict entry, and
        the returned dict's insertion order is descending ε (loosest
        first, tightest last).  One entry per distinct float value; the
        tightest entry is the session's best answer.
        """
        with self._lock:
            return {
                epsilon: self.refine(epsilon)
                for epsilon in normalize_epsilons(epsilons)
            }

    def refine_marginals(
        self,
        epsilon: float,
        workers: Optional[int] = None,
        pool=None,
    ) -> Dict[Tuple[Value, ...], ApproximationResult]:
        """The non-Boolean extension (paper §6) as an anytime call.

        Ground answers over ``adom(Ω_n)`` and approximate each; repeated
        calls chain one warm
        :class:`~repro.finite.compile_cache.SharedGrounding`, so the
        compiled per-answer lineages extend rather than recompile.

        ``workers=k > 1`` fans each step's answers out on the session's
        shard pool (``pool=`` here or at construction; otherwise the
        process-wide pool for ``k``): the same warm workers serve every
        step of the sweep, receiving only the truncation delta.
        """
        if self._boolean is not None:
            return {(): self.refine(epsilon)}
        query = self.query
        pool = pool if pool is not None else self.pool
        with self._lock, obs.trace() as t:
            with obs.phase("choose_truncation"):
                n = self._choose(epsilon)
            with obs.phase("truncate"):
                table, reused = self._materialize(n)
            obs.incr(REFINE_REUSED_FACTS, reused)
            alpha = alpha_from_tail(self._tail(n))
            values = marginal_answer_probabilities(
                query, table, strategy=self.strategy, workers=workers,
                grounding_factory=self._grounding_factory(table),
                pool=pool)
            obs.gauge("truncation.n", n)
            obs.gauge("truncation.alpha", alpha)
            obs.gauge("truncation.epsilon", epsilon)
            # One shared report, as in the one-shot entry point: the
            # fan-out's telemetry applies to every answer's result.
            sampling_error = t.gauges.get("sampling.half_width", 0.0)
            report = obs.EvalReport.from_trace(t)
        return {
            answer: obs.attach_report(
                ApproximationResult(
                    float(value), epsilon, n, alpha, sampling_error),
                report)
            for answer, value in values.items()
        }

    # ------------------------------------------------------------ internals
    def _choose(self, epsilon: float) -> int:
        """Truncation size for ε, over the shared prefix cache."""
        if self._kind == "ti":
            return choose_truncation(
                self.pdb.distribution, epsilon, max_facts=self.max_facts)
        if self._kind == "completed":
            return choose_truncation(
                self.pdb.new_facts.distribution, epsilon,
                max_facts=self.max_facts)
        return choose_block_truncation(
            self.pdb.family, epsilon, max_blocks=self.max_facts)

    def _tail(self, n: int) -> float:
        if self._kind == "ti":
            return self.pdb.distribution.tail(n)
        if self._kind == "completed":
            return self.pdb.new_facts.distribution.tail(n)
        return self.pdb.family.tail(n)

    def _materialize(self, n: int):
        """The finite truncation of size exactly ``n`` plus the number
        of units (facts/blocks) reused from previous refinements.

        The session's own table only ever grows; a loosened ε (smaller
        n) is served by a fresh table built from the shared prefix cache
        so results stay bit-identical to a one-shot call at that ε.
        """
        if self._kind == "completed":
            # The completion truncation is a world product rebuilt per
            # call; the new-fact prefix underneath it is still cached.
            reused = min(n, self._n)
            self._n = max(self._n, n)
            return self.pdb.truncate(n), reused
        if self._table is None:
            self._table = self.pdb.truncate(n)
            self._n = n
            return self._table, 0
        if n > self._n:
            reused = self.pdb.extend_truncation(self._table, n)
            self._n = n
            return self._table, reused
        if n == self._n:
            return self._table, n
        return self.pdb.truncate(n), n

    def _grounding_factory(self, table) -> Optional[Callable[[], object]]:
        """A grounding builder that chains the session's warm
        :class:`~repro.finite.compile_cache.SharedGrounding` — sound
        because truncation growth never changes existing marginals (see
        :meth:`SharedGrounding.extended <repro.finite.compile_cache.SharedGrounding.extended>`)."""
        if not isinstance(
            table, (TupleIndependentTable, BlockIndependentTable)
        ):
            return None
        query = self.query

        def factory():
            from repro.finite.compile_cache import SharedGrounding

            base = set(constants_of(query.formula))
            for fact in table.facts():
                base.update(fact.args)
            if self._grounding is None:
                self._grounding = SharedGrounding(query.formula, table, base)
            else:
                self._grounding = self._grounding.extended(table, base)
            return self._grounding

        return factory

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Sessions snapshot whole (table, truncation, warm grounding
        chain, compile cache) minus the lock and the shard pool (live
        process handles) — the serve layer's snapshot/restore resumes a
        sweep exactly where it stopped."""
        state = dict(self.__dict__)
        state.pop("_lock", None)
        state["pool"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # Pre-pool snapshots have no 'pool' entry; restored sessions
        # start without a pinned pool either way.
        self.__dict__.setdefault("pool", None)
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        return (
            f"RefinementSession(kind={self._kind!r}, "
            f"truncation={self._n}, refinements={len(self.history)})"
        )

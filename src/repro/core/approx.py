"""Approximate query evaluation on countable TI PDBs (Proposition 6.1).

Given a Boolean FO query Q, ``0 < ε < 1/2``, and oracle access to a
countable tuple-independent PDB (a certified
:class:`~repro.core.fact_distribution.FactDistribution`), the algorithm:

1. chooses n so that ``α_n = (3/2)·Σ_{i>n} p_i`` satisfies
   ``e^{α_n} ≤ 1 + ε`` and ``e^{−α_n} ≥ 1 − ε`` and every tail fact has
   ``p_i ≤ 1/2`` (ensured by making the tail mass itself ≤ 1/2) — found
   by "systematically listing facts until the remaining probability mass
   is small enough";
2. computes ``p = P(Q | Ω_n)``, where ``Ω_n = 2^{{f_1,…,f_n}}``: because
   the measure is a product, this conditional *is* the finite TI table on
   the first n facts, evaluated by a traditional closed-world algorithm;
3. returns p, which satisfies ``P(Q) − ε ≤ p ≤ P(Q) + ε``.

The non-Boolean extension grounds the free variables over
``adom(Ω_n)`` and approximates each resulting sentence (paper §6).
"""

from __future__ import annotations

from typing import Dict, NamedTuple, Optional, Tuple

from repro import obs
from repro.analysis.bounds import required_alpha
from repro.core.fact_distribution import FactDistribution
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError
from repro.logic.queries import BooleanQuery, Query
from repro.relational.facts import Value


def _require_valid_epsilon(epsilon: float) -> None:
    """The shared Proposition 6.1 hypothesis ``0 < ε < 1/2``."""
    if not 0 < epsilon < 0.5:
        raise ApproximationError(
            f"Proposition 6.1 requires 0 < epsilon < 1/2, got {epsilon}"
        )


def _truncation_target_tail(epsilon: float) -> float:
    """The tail-mass bound that makes Ω_n an ε-truncation: the first
    term yields both ε-conditions on ``e^{±α_n}``, the 0.49 cap forces
    every tail fact below 1/2 (hypothesis of claim (∗))."""
    return min(required_alpha(epsilon) / 1.5, 0.49)


class ApproximationResult(NamedTuple):
    """The output of the Proposition 6.1 algorithm.

    When the finite conditional was itself *estimated*
    (``strategy="sampled"``), the truncation guarantee ε no longer
    covers the whole error: the Monte-Carlo confidence bound on the
    conditional is carried in ``sampling_error`` and the enclosure
    ``[low, high]`` is widened by it, so the interval stays honest —
    ``value ± ε`` alone would claim a certified enclosure the sampled
    conditional cannot provide.
    """

    #: The approximate answer ``p = P(Q | Ω_n)``.
    value: float
    #: The requested additive error guarantee ε.
    epsilon: float
    #: The truncation size n (number of facts kept).
    truncation: int
    #: ``α_n = (3/2) · tail(n)`` actually achieved.
    alpha: float
    #: Confidence bound on the Monte-Carlo error of the finite
    #: conditional (0 when it was computed exactly).
    sampling_error: float = 0.0

    #: The enclosure ``[value − ε − s, value + ε + s] ∩ [0, 1]`` where s
    #: is the sampling-error allowance.
    @property
    def low(self) -> float:
        return max(0.0, self.value - self.epsilon - self.sampling_error)

    @property
    def high(self) -> float:
        return min(1.0, self.value + self.epsilon + self.sampling_error)

    def contains(self, true_probability: float) -> bool:
        return self.low <= true_probability <= self.high


def choose_truncation(
    distribution: FactDistribution,
    epsilon: float,
    max_facts: int = 10**7,
) -> int:
    """The truncation size n of Proposition 6.1.

    Requires ``tail(n) ≤ min(log(1+ε)/1.5, 0.49)``: the first bound gives
    both ε-conditions on ``e^{±α_n}``, the second forces every tail fact
    below 1/2 (hypothesis of claim (∗)).

    >>> from repro.core.fact_distribution import TableFactDistribution
    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> d = TableFactDistribution({R(1): 0.9, R(2): 0.009})
    >>> choose_truncation(d, 0.1)
    1
    """
    _require_valid_epsilon(epsilon)
    try:
        return distribution.prefix_for_tail(
            _truncation_target_tail(epsilon), max_facts=max_facts)
    except ApproximationError as exc:
        raise ApproximationError(
            f"cannot certify epsilon={epsilon:g}: {exc}",
            achieved_tail=exc.achieved_tail,
        ) from exc


def choose_block_truncation(
    family,
    epsilon: float,
    max_blocks: int = 10**6,
) -> int:
    """The block-truncation size of the BID extension of Proposition
    6.1: smallest n with certified block-mass tail below
    ``min(log(1+ε)/1.5, 0.49)`` (see
    :func:`approximate_query_probability_bid` for why the proof carries
    over)."""
    _require_valid_epsilon(epsilon)
    try:
        return family.prefix_for_tail(
            _truncation_target_tail(epsilon), max_blocks=max_blocks)
    except ApproximationError as exc:
        raise ApproximationError(
            f"cannot certify epsilon={epsilon:g}: {exc}",
            achieved_tail=exc.achieved_tail,
        ) from exc


def _finish_approximation(
    trace: "obs.EvalTrace",
    value: float,
    epsilon: float,
    truncation: int,
    alpha: float,
) -> ApproximationResult:
    """Assemble an :class:`ApproximationResult` from a finished entry
    point: fold the trace's Monte-Carlo confidence bound (if the finite
    conditional was sampled) into the enclosure, record the truncation
    gauges, and attach the :class:`~repro.obs.EvalReport`."""
    sampling_error = trace.gauges.get("sampling.half_width", 0.0)
    obs.gauge("truncation.n", truncation)
    obs.gauge("truncation.alpha", alpha)
    obs.gauge("truncation.epsilon", epsilon)
    result = ApproximationResult(
        float(value), epsilon, truncation, alpha, sampling_error)
    return obs.attach_report(result, obs.EvalReport.from_trace(trace))


def approximate_query_probability(
    query: BooleanQuery,
    pdb: CountableTIPDB,
    epsilon: float,
    strategy: str = "auto",
    max_facts: int = 10**7,
) -> ApproximationResult:
    """Additive ε-approximation of ``P(Q)`` (Proposition 6.1).

    ``strategy`` is forwarded to the finite evaluator run on the
    truncation Ω_n.  ``strategy="sampled"`` is the sampled fallback for
    truncations too large for exact evaluation: the conditional
    ``P(Q | Ω_n)`` is itself estimated by seeded batched Monte Carlo on
    the :mod:`repro.sampling` kernels, so the returned value carries the
    truncation error ε *plus* the (reported-separately) sampling error
    of :data:`repro.finite.evaluation.SAMPLED_STRATEGY_SAMPLES` worlds.

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals, FactSpace
    >>> from repro.core.fact_distribution import GeometricFactDistribution
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> space = FactSpace(schema, Naturals())
    >>> pdb = CountableTIPDB(schema, GeometricFactDistribution(
    ...     space, first=0.25, ratio=0.5))
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> result = approximate_query_probability(q, pdb, epsilon=0.01)
    >>> 0.3 < result.value < 0.45 and result.truncation >= 4
    True
    """
    from repro.core.refine import RefinementSession

    return RefinementSession(
        query, pdb, strategy=strategy, max_facts=max_facts).refine(epsilon)


def approximate_query_probability_completed(
    query: BooleanQuery,
    completed,
    epsilon: float,
    strategy: str = "auto",
    max_facts: int = 10**7,
) -> ApproximationResult:
    """Proposition 6.1 extended to Theorem 5.5 completions.

    The completion is a product of the original finite PDB with a
    countable TI PDB on new facts; conditioning on Ω_n (no new fact
    beyond the first n) again factorizes, so the proof's error analysis
    applies verbatim — only the finite evaluation now runs on the
    (original × truncated-new) finite PDB.  ``strategy`` and
    ``max_facts`` are forwarded exactly as in
    :func:`approximate_query_probability`.
    """
    from repro.core.refine import RefinementSession

    return RefinementSession(
        query, completed, strategy=strategy, max_facts=max_facts,
    ).refine(epsilon)


def approximate_query_probability_bid(
    query: BooleanQuery,
    pdb,
    epsilon: float,
    max_blocks: int = 10**6,
) -> ApproximationResult:
    """Proposition 6.1 extended to countable BID PDBs (paper §4.4 +
    future-work direction).

    The proof carries over verbatim with blocks in place of facts:
    conditioning the block-product measure on Ω_n = "no block beyond
    the first n is touched" yields the finite BID table on those blocks,
    and ``P(Ω̄_n) ≤ 1 − Π_{j>n} p_⊥^j ≤ 1 − e^{−(3/2)·Σ_{j>n} mass_j}``
    by the same claim (∗) once every tail block's mass is ≤ 1/2 —
    guaranteed by pushing the certified block-mass tail below
    ``min(log(1+ε)/1.5, 0.49)``.

    >>> from repro.relational import Schema
    >>> from repro.core.bid import BlockFamily, CountableBIDPDB
    >>> from repro.finite.bid import Block
    >>> from repro.logic import parse_formula
    >>> schema = Schema.of(R=2)
    >>> R = schema["R"]
    >>> family = BlockFamily.geometric(
    ...     make_block=lambda i: Block(
    ...         f"k{i}", {R(i + 1, 1): 0.25 * 0.5**i,
    ...                   R(i + 1, 2): 0.25 * 0.5**i}),
    ...     block_mass=lambda i: 0.5 * 0.5**i, first=0.5, ratio=0.5)
    >>> pdb = CountableBIDPDB(schema, family)
    >>> q = BooleanQuery(parse_formula("EXISTS x, y. R(x, y)", schema),
    ...                  schema)
    >>> result = approximate_query_probability_bid(q, pdb, 0.01)
    >>> 0.5 < result.value < 0.75
    True
    """
    from repro.core.refine import RefinementSession

    return RefinementSession(
        query, pdb, strategy="auto", max_facts=max_blocks).refine(epsilon)


def approximate_answer_marginals(
    query: Query,
    pdb: CountableTIPDB,
    epsilon: float,
    strategy: str = "auto",
    max_facts: int = 10**7,
    workers: Optional[int] = None,
) -> Dict[Tuple[Value, ...], ApproximationResult]:
    """The non-Boolean extension of Proposition 6.1 (paper §6).

    Grounds the free variables ``x̄`` over ``adom(Ω_n)`` (plus the
    query's own constants) and approximates each sentence ``Q(ā)``.
    Tuples outside ``adom(Ω_n)^k`` have approximate probability 0 — the
    paper notes "this approximation only contains facts from Ω_n".

    The grounding loop is
    :func:`repro.finite.evaluation.marginal_answer_probabilities` on the
    truncation: compiled strategies share one lineage/BDD across every
    answer tuple, and ``workers=k`` fans the answer tuples out over a
    process pool.

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals, FactSpace
    >>> from repro.core.fact_distribution import GeometricFactDistribution
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> space = FactSpace(schema, Naturals())
    >>> pdb = CountableTIPDB(schema, GeometricFactDistribution(
    ...     space, first=0.5, ratio=0.5))
    >>> q = Query(parse_formula("R(x)", schema), schema)
    >>> marginals = approximate_answer_marginals(q, pdb, epsilon=0.05)
    >>> round(marginals[(1,)].value, 3)
    0.5
    """
    from repro.core.refine import RefinementSession

    return RefinementSession(
        query, pdb, strategy=strategy, max_facts=max_facts,
    ).refine_marginals(epsilon, workers=workers)


def truncation_profile(
    distribution: FactDistribution,
    epsilons,
    max_facts: int = 10**7,
) -> Dict[float, int]:
    """``n(ε)`` for a range of ε — the complexity profile discussed at
    the end of paper §6 (geometric tails give ``n = O(log 1/ε)``; slower
    series need far larger truncations).

    The ε values are processed loosest-first so every entry is served
    from one shared, monotonically extended prefix materialization; the
    returned dict keeps the caller's ε order (duplicates collapse).
    """
    ordered = sorted({float(epsilon) for epsilon in epsilons}, reverse=True)
    sizes = {
        epsilon: choose_truncation(distribution, epsilon, max_facts=max_facts)
        for epsilon in ordered
    }
    return {float(epsilon): sizes[float(epsilon)] for epsilon in epsilons}

"""The paper's contribution: countably infinite probabilistic databases.

* :mod:`repro.core.fact_distribution` — families ``(p_f)`` with
  convergence certificates: the Section 6 oracle (assumptions (i)/(ii)).
* :mod:`repro.core.tuple_independent` — the Theorem 4.8 construction of
  countable tuple-independent PDBs.
* :mod:`repro.core.bid` — the Theorem 4.15 block-independent-disjoint
  construction.
* :mod:`repro.core.completion` — Theorem 5.5 independent-fact
  completions (open-world semantics for finite PDBs).
* :mod:`repro.core.approx` — Proposition 6.1 truncation-based additive
  approximation of query probabilities.
* :mod:`repro.core.tm_represented` — Proposition 6.2 Turing-machine
  represented PDBs and the inapproximability reduction.
* :mod:`repro.core.size` — size distributions (§3.2), Example 3.3.
* :mod:`repro.core.views` — views on countable PDBs, Proposition 4.9.
"""

from repro.core.fact_distribution import (
    FactDistribution,
    GeometricFactDistribution,
    TableFactDistribution,
    ZetaFactDistribution,
    FilteredFactDistribution,
    UnionFactDistribution,
    DivergentFactDistribution,
    WordLengthFactDistribution,
)
from repro.core.pdb import CountablePDB
from repro.core.tuple_independent import CountableTIPDB
from repro.core.bid import CountableBIDPDB, BlockFamily
from repro.core.completion import (
    CompletedPDB,
    complete,
    closed_world_completion,
    open_world,
    extend_to_closure,
    verify_completion_condition,
)
from repro.core.approx import (
    ApproximationResult,
    approximate_query_probability,
    approximate_answer_marginals,
    choose_truncation,
    choose_block_truncation,
    truncation_profile,
)
from repro.core.prefix_cache import PrefixCache
from repro.core.refine import RefinementSession, normalize_epsilons
from repro.core.size import example_3_3_pdb, size_tail_probabilities
from repro.core.views import apply_fo_view_countable, fo_view_size_bound

__all__ = [
    "FactDistribution",
    "GeometricFactDistribution",
    "ZetaFactDistribution",
    "TableFactDistribution",
    "FilteredFactDistribution",
    "UnionFactDistribution",
    "DivergentFactDistribution",
    "WordLengthFactDistribution",
    "CountablePDB",
    "CountableTIPDB",
    "CountableBIDPDB",
    "BlockFamily",
    "CompletedPDB",
    "complete",
    "closed_world_completion",
    "open_world",
    "extend_to_closure",
    "verify_completion_condition",
    "ApproximationResult",
    "approximate_query_probability",
    "approximate_answer_marginals",
    "choose_truncation",
    "choose_block_truncation",
    "truncation_profile",
    "PrefixCache",
    "RefinementSession",
    "normalize_epsilons",
    "example_3_3_pdb",
    "size_tail_probabilities",
    "apply_fo_view_countable",
    "fo_view_size_bound",
]

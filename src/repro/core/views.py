"""Views on countable PDBs and the Proposition 4.9 expressivity gap.

Views push the measure forward (eq. (3) of the paper): the image PDB
enumerates image worlds with accumulated masses.  Proposition 4.9 shows
that — unlike the finite case — not every countable PDB is FO-definable
over a tuple-independent PDB; the obstruction is quantitative:

    ‖V(C)‖ = |φ(C)| ≤ |adom(C)| + c ≤ k·‖C‖ + c     (Fact 2.1)

so ``E(S_{V(C)}) ≤ k·E(S_C) + c < ∞`` for any TI PDB C (Corollary 4.7),
while Example 3.3 has ``E(S) = ∞``.  :func:`fo_view_size_bound` computes
the right-hand bound for a concrete view and TI PDB, which the E3 bench
compares against the diverging partial sums of Example 3.3.
"""

from __future__ import annotations

import math
from typing import Iterator, Tuple

from repro.core.pdb import CountablePDB
from repro.core.tuple_independent import CountableTIPDB
from repro.logic.analysis import constants_of
from repro.logic.queries import FOView, View
from repro.relational.instance import Instance


def apply_fo_view_countable(view: View, pdb: CountablePDB) -> CountablePDB:
    """The image PDB ``V(D)`` of a countable PDB (eq. (3)): lazily
    pushes each enumerated world through the view.

    Note: distinct pre-images with the same image appear as separate
    enumeration entries; :meth:`CountablePDB.probability` and
    :meth:`instance_probability` still aggregate correctly because they
    sum matching entries.

    >>> from repro.relational import Schema
    >>> from repro.core.tuple_independent import CountableTIPDB
    >>> from repro.logic.parser import parse_formula
    >>> source, target = Schema.of(R=2), Schema.of(T=1)
    >>> R = source["R"]
    >>> pdb = CountableTIPDB.from_marginals(source, {R(1, 2): 0.5})
    >>> view = FOView(source, target,
    ...               {"T": parse_formula("EXISTS y. R(x, y)", source)})
    >>> image = apply_fo_view_countable(view, pdb)
    >>> round(image.fact_marginal(target["T"](1)), 6)
    0.5
    """

    def worlds() -> Iterator[Tuple[Instance, float]]:
        for world, mass in pdb.worlds():
            yield view(world), mass

    image = CountablePDB(
        view.target,
        worlds,
        exhaustive=pdb.exhaustive,
        mass_tail=pdb._mass_tail,
    )

    # Aggregate duplicate images when asked for a point mass.
    def instance_probability(instance: Instance) -> float:
        return image.probability(lambda world: world == instance)

    image.instance_probability = instance_probability  # type: ignore[assignment]
    return image


def fo_view_size_bound(view: FOView, pdb: CountableTIPDB) -> float:
    """The Proposition 4.9 upper bound on ``E(S_{V(C)})`` for an FO view
    over a tuple-independent PDB:

        ``E(S_{V(C)}) ≤ Σ_R (k·E(S_C) + c_R)^{ar(R)}-ish``

    For the unary single-relation views of the proposition the bound is
    exactly ``k · E(S_C) + c`` with k the max source arity and c the
    number of constants in the view formula.  For higher-arity targets
    the answer tuples live in ``(adom(C) ∪ adom(φ))^{ar}``, giving
    ``(k·E(S) + c)^{ar}`` via Jensen-style worst case; we return the sum
    over target relations of that (finite) expression — the point being
    *finiteness*, contrasted with Example 3.3's infinity.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> source, target = Schema.of(R=2), Schema.of(T=1)
    >>> R = source["R"]
    >>> pdb = CountableTIPDB.from_marginals(source, {R(1, 2): 0.5})
    >>> view = FOView(source, target,
    ...               {"T": parse_formula("EXISTS y. R(x, y)", source)})
    >>> math.isfinite(fo_view_size_bound(view, pdb))
    True
    """
    k = pdb.schema.max_arity()
    expected = pdb.expected_size()
    total = 0.0
    for symbol, (formula, _variables) in view.formulas.items():
        c = len(constants_of(formula))
        per_world_domain = k * expected + c
        arity = max(symbol.arity, 1)
        total += per_world_domain**arity
    return total

"""Completions of probabilistic databases (Section 5).

A *completion* of a PDB ``D`` with sample space ``Ω ⊊ D[τ, U]`` is a PDB
``D′`` on all of ``D[τ, U]`` with ``P′(Ω) > 0`` satisfying the completion
condition ``P′(A | Ω) = P(A)`` (Definition 5.1).  Theorem 5.5 constructs
an *independent-fact* completion from any summable family of open-world
probabilities ``p_f ∈ [0, 1)`` on the new facts ``F[τ, U] − F(D)``: the
completion is the product

    P′({D ⊎ C}) = P({D}) · P₁({C})

of the original PDB and the Theorem 4.8 tuple-independent PDB ``P₁`` on
the new facts.  :class:`CompletedPDB` implements exactly that product.

Also here: the closed-world "completion" (Remark 5.2), the closure
extension with mass ``c`` for originals whose sample space is not closed
under subsets/union, and the completion-condition verifier.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple, Union

from repro.core.fact_distribution import (
    FactDistribution,
    FilteredFactDistribution,
    TableFactDistribution,
)
from repro.core.pdb import CountablePDB
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import CompletionError, ProbabilityError
from repro.finite.bid import BlockIndependentTable
from repro.finite.pdb import FinitePDB
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.utils.enumeration import diagonal_product
from repro.utils.iteration import powerset

OriginalPDB = Union[FinitePDB, TupleIndependentTable, BlockIndependentTable]


class CompletedPDB(CountablePDB):
    """The Theorem 5.5 product completion ``P′ = P × P₁``.

    ``original`` is an explicit finite PDB; ``new_facts`` a countable
    tuple-independent PDB whose support is disjoint from the original
    facts and contains no probability-1 fact (else ``P′(Ω) = 0`` and the
    completion condition is ill-defined).
    """

    def __init__(self, original: FinitePDB, new_facts: CountableTIPDB):
        self.original = original
        self.new_facts = new_facts
        self.original_facts = frozenset(original.facts())
        overlap = [
            fact
            for fact, _ in new_facts.distribution.prefix(
                _safe_prefix(new_facts.distribution)
            )
            if fact in self.original_facts
        ]
        if overlap:
            raise CompletionError(
                f"new-fact distribution overlaps F(D): {overlap[:3]}"
            )
        empty_mass = new_facts.empty_world_probability()
        if empty_mass <= 0:
            raise CompletionError(
                "P₁({∅}) = 0: some new fact has probability 1, "
                "so P′(Ω) = 0 and no completion exists"
            )
        self._p1_empty = empty_mass
        super().__init__(
            original.schema,
            self._enumerate_worlds,
            exhaustive=False,
            mass_tail=None,
        )

    # --------------------------------------------------------------- measure
    def decompose(self, instance: Instance) -> Tuple[Instance, Instance]:
        """The unique split ``D′ = D ⊎ C`` into original and new parts."""
        original_part = Instance(
            fact for fact in instance if fact in self.original_facts
        )
        new_part = instance - original_part
        return original_part, new_part

    def instance_probability(self, instance: Instance) -> float:
        """``P′({D ⊎ C}) = P({D}) · P₁({C})``."""
        original_part, new_part = self.decompose(instance)
        base = self.original.probability_of(original_part)
        if base == 0.0:
            return 0.0
        return base * self.new_facts.instance_probability(new_part)

    def fact_marginal(self, fact: Fact, tolerance: float = 1e-9) -> float:
        """``P′(E_f)``: the original marginal for original facts, the
        open-world probability for new facts (product independence)."""
        if fact in self.original_facts:
            return self.original.fact_marginal(fact)
        return self.new_facts.marginal(fact)

    def is_original(self, instance: Instance) -> bool:
        """Membership in Ω (the original sample space, as an event)."""
        _, new_part = self.decompose(instance)
        return new_part.size == 0 and self.original.probability_of(instance) >= 0 and (
            instance in self.original.worlds
        )

    def original_space_probability(self) -> float:
        """``P′(Ω) = P₁({∅}) > 0`` (eq. (11) territory)."""
        return self._p1_empty

    def conditioned_on_original(self, instance: Instance) -> float:
        """``P′({D} | Ω)`` — the left side of the completion condition."""
        if instance not in self.original.worlds:
            return 0.0
        return self.instance_probability(instance) / self._p1_empty

    def expected_size(self, **_ignored) -> float:
        """``E(S′) = E(S) + Σ_{new f} p_f`` (independent sum)."""
        return self.original.expected_size() + self.new_facts.expected_size()

    # ------------------------------------------------------------ enumeration
    def _enumerate_worlds(self) -> Iterator[Tuple[Instance, float]]:
        pairs = diagonal_product(
            ((w, m) for w, m in self.original.worlds.items()),
            self.new_facts.worlds(),
        )
        for (original_world, base), (new_world, extra) in pairs:
            yield original_world | new_world, base * extra

    # ------------------------------------------------------------- truncation
    def truncate(self, n: int) -> FinitePDB:
        """The finite PDB conditioned on "no new fact beyond the first n
        occurs": original worlds × subsets of the first n new facts.

        Because ``P′`` is a product measure, this conditional is again a
        product — the original PDB times the truncated TI table.
        """
        table = self.new_facts.truncate(n)
        new_part = table.expand()
        worlds: Dict[Instance, float] = {}
        for original_world, base in self.original.worlds.items():
            for extra_world in new_part.instances():
                combined = original_world | extra_world
                mass = base * new_part.probability_of(extra_world)
                if mass > 0:
                    worlds[combined] = worlds.get(combined, 0.0) + mass
        return FinitePDB(self.schema, worlds)

    def approximate_query_probability(self, query, epsilon: float):
        """Proposition 6.1 applied to the completion; see
        :func:`repro.core.approx.approximate_query_probability_completed`."""
        from repro.core.approx import approximate_query_probability_completed

        return approximate_query_probability_completed(query, self, epsilon)

    def approximate_conditional_probability(
        self, query, evidence, epsilon: float
    ) -> float:
        """``P′(Q | E)`` for Boolean query and evidence, approximated by
        the ratio of two truncation evaluations.

        The additive ε guarantees on numerator and denominator propagate
        to the ratio as long as ``P′(E)`` is not tiny; callers should
        pick ε ≪ their estimate of ``P′(E)``.  The result is clamped to
        ``[0, 1]``.
        """
        joint_formula = query.formula & evidence.formula
        from repro.logic.queries import BooleanQuery as _BQ

        joint = _BQ(joint_formula, self.schema, name="joint")
        numerator = self.approximate_query_probability(joint, epsilon).value
        denominator = self.approximate_query_probability(
            evidence, epsilon).value
        if denominator <= 0.0:
            raise ProbabilityError(
                "evidence probability ≈ 0 at this truncation; "
                "decrease epsilon or check the evidence"
            )
        return min(1.0, max(0.0, numerator / denominator))

    def __repr__(self) -> str:
        return (
            f"CompletedPDB(original_worlds={len(self.original.worlds)}, "
            f"new_expected={self.new_facts.expected_size():.4g})"
        )


def _safe_prefix(distribution: FactDistribution, bound: float = 1e-9) -> int:
    """A prefix length covering all but negligible new-fact mass, capped
    to keep overlap checks cheap."""
    try:
        return min(distribution.prefix_for_tail(bound, max_facts=10**5), 10**4)
    except Exception:
        return 10**3


def complete(
    original: OriginalPDB,
    new_fact_distribution: FactDistribution,
    tolerance: float = 1e-12,
) -> CompletedPDB:
    """Build the Theorem 5.5 independent-fact completion.

    The distribution is automatically restricted to facts outside
    ``F(D)`` and checked for probability-1 facts.  The original PDB is
    expanded to explicit worlds if given as a TI/BID table (such tables
    are closed under subsets, per Remark 5.6).

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> original = TupleIndependentTable(schema, {R(1): 0.8})
    >>> completed = complete(original, TableFactDistribution({R(2): 0.5}))
    >>> round(completed.fact_marginal(R(2)), 10)
    0.5
    >>> round(completed.conditioned_on_original(Instance([R(1)])), 10)
    0.8
    """
    finite = original if isinstance(original, FinitePDB) else original.expand()
    original_facts = frozenset(finite.facts())
    filtered = FilteredFactDistribution.excluding(
        new_fact_distribution, original_facts
    )
    # Probability-1 facts would zero out P′(Ω).  A declared bound < 1
    # settles it outright; otherwise every fact past the prefix where
    # tail < 1 has p < 1, so only that prefix needs checking.
    declared_bound = filtered.max_probability()
    if declared_bound is not None and declared_bound >= 1.0:
        raise CompletionError(
            "new-fact distribution admits probability-1 facts; "
            "completion would assign P′(Ω) = 0"
        )
    if declared_bound is None:
        prefix_length = filtered.prefix_for_tail(0.999999, max_facts=10**6)
        for fact, probability in filtered.prefix(prefix_length):
            if probability >= 1.0:
                raise CompletionError(
                    f"new fact {fact} has probability 1; completion would "
                    "assign P′(Ω) = 0"
                )
    new_pdb = CountableTIPDB(finite.schema, filtered, tolerance=tolerance)
    return CompletedPDB(finite, new_pdb)


def open_world(
    original: OriginalPDB,
    universe=None,
    total_open_mass: float = 0.5,
    decay: float = 0.5,
    position_universes=None,
    tolerance: float = 1e-12,
) -> CompletedPDB:
    """One-call open-world semantics for a finite PDB.

    Completes ``original`` (Theorem 5.5) with a geometric family over
    its fact space: the i-th unseen fact gets probability
    ``total_open_mass · (1 − decay) · decay^i`` — so the open-world
    probabilities are "bounded by the summands of a fixed convergent
    series" (paper §5.1) with total new expected size at most
    ``total_open_mass``.

    ``universe`` defaults to ℕ; pass ``position_universes`` for typed
    relations (Example 5.7 shapes).

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> completed = open_world(
    ...     TupleIndependentTable(schema, {R(1): 0.9}),
    ...     total_open_mass=0.25)
    >>> 0 < completed.fact_marginal(R(2)) < 0.25
    True
    >>> completed.new_facts.expected_size() <= 0.25
    True
    """
    from repro.core.fact_distribution import GeometricFactDistribution
    from repro.universe.factspace import FactSpace
    from repro.universe.naturals import Naturals

    if not 0 < total_open_mass:
        raise CompletionError(
            f"total open mass must be positive, got {total_open_mass}")
    if not 0 < decay < 1:
        raise CompletionError(f"decay must be in (0, 1), got {decay}")
    if universe is None:
        universe = Naturals()
    finite = original if isinstance(original, FinitePDB) else original.expand()
    space = FactSpace(
        finite.schema, universe, position_universes=position_universes)
    first = total_open_mass * (1.0 - decay)
    if first >= 1.0:
        raise CompletionError(
            "total_open_mass · (1 − decay) must stay below 1 (no fact "
            "may have probability ≥ 1)")
    distribution = GeometricFactDistribution(space, first=first, ratio=decay)
    return complete(finite, distribution, tolerance=tolerance)


def closed_world_completion(original: OriginalPDB) -> CompletedPDB:
    """Remark 5.2: the closed-world assumption as the completion that
    assigns probability 0 to every new instance.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> cwa = closed_world_completion(
    ...     TupleIndependentTable(schema, {R(1): 0.8}))
    >>> cwa.fact_marginal(R(2))
    0.0
    >>> cwa.original_space_probability()
    1.0
    """
    return complete(original, TableFactDistribution({}))


def extend_to_closure(
    original: FinitePDB,
    c: float,
    missing_weights: Optional[Mapping[Instance, float]] = None,
) -> FinitePDB:
    """The Section 5 closure trick for originals whose sample space is
    not closed under subsets/union.

    Builds a PDB over *all* subsets of ``F(D)`` with
    ``P({D}) = c · P₀({D})`` for original instances and total mass
    ``1 − c`` on the missing instances (uniform unless
    ``missing_weights`` specifies otherwise).

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> pdb = FinitePDB(schema, {Instance([R(1), R(2)]): 1.0})
    >>> extended = extend_to_closure(pdb, c=0.5)
    >>> round(extended.probability_of(Instance([R(1), R(2)])), 10)
    0.5
    >>> len(extended)   # all 4 subsets of {R(1), R(2)}
    4
    """
    if not 0 < c <= 1:
        raise CompletionError(f"closure mass c must be in (0, 1], got {c}")
    all_facts = sorted(original.facts())
    if len(all_facts) > 20:
        raise CompletionError(
            f"closure over {len(all_facts)} facts would materialize "
            f"{2 ** len(all_facts)} instances"
        )
    every_subset = [Instance(s) for s in powerset(all_facts)]
    missing = [
        instance for instance in every_subset if instance not in original.worlds
    ]
    if not missing and c < 1:
        raise CompletionError(
            "original is already closed; use c = 1 (no mass to move)"
        )
    worlds: Dict[Instance, float] = {
        instance: c * mass for instance, mass in original.worlds.items()
    }
    remaining = 1.0 - c
    if missing:
        if missing_weights is None:
            share = remaining / len(missing)
            for instance in missing:
                worlds[instance] = worlds.get(instance, 0.0) + share
        else:
            weight_total = sum(missing_weights.get(i, 0.0) for i in missing)
            if weight_total <= 0 and remaining > 0:
                raise CompletionError("missing_weights assign no mass")
            for instance in missing:
                weight = missing_weights.get(instance, 0.0)
                if weight > 0:
                    worlds[instance] = (
                        worlds.get(instance, 0.0)
                        + remaining * weight / weight_total
                    )
    return FinitePDB(original.schema, worlds)


def verify_completion_condition(
    completed: CompletedPDB,
    tolerance: float = 1e-9,
) -> float:
    """Exhaustively check ``P′({D} | Ω) = P({D})`` over all original
    worlds; returns the largest absolute violation (should be ≈ 0, up to
    the truncation tolerance of the infinite complement product).

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> completed = complete(TupleIndependentTable(schema, {R(1): 0.8}),
    ...                      TableFactDistribution({R(2): 0.5}))
    >>> verify_completion_condition(completed) < 1e-9
    True
    """
    worst = 0.0
    for instance, mass in completed.original.worlds.items():
        conditional = completed.conditioned_on_original(instance)
        worst = max(worst, abs(conditional - mass))
    if worst > tolerance:
        raise CompletionError(
            f"completion condition violated by {worst:.3g} > {tolerance}"
        )
    return worst

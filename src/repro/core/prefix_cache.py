"""Materialized enumeration prefixes with logarithmic truncation search.

The Proposition 6.1 pipeline repeatedly asks the same three questions of
a countable weighted enumeration (support facts of a
:class:`~repro.core.fact_distribution.FactDistribution`, or blocks of a
:class:`~repro.core.bid.BlockFamily`):

* *prefix materialization* — the first n items with their weights
  (``prefix``/``marginals_dict``/``truncate``);
* *cumulative mass* — partial sums of the weights;
* *truncation search* — the smallest n whose certified ``tail(n)`` drops
  below a bound (``prefix_for_tail``).

Before this module each question restarted from scratch: every call
re-ran the enumeration generator and the truncation search was a linear
scan evaluating ``tail(n)`` for every n from 0.  A :class:`PrefixCache`
answers all three incrementally from one shared materialization:

* items pulled from the enumeration are kept forever, so a later (or
  repeated) request only extends the materialized prefix;
* weights live in a shared :class:`repro.relational.columns.FloatColumn`
  (pure-Python running sums, or numpy arrays with a lazy cumulative
  mirror via the ``[fast]`` extra), so cumulative masses and truncation
  scans run on the marginal column;
* ``tail(n)`` evaluations are memoized, and
  :meth:`smallest_prefix_for_tail` replaces the linear scan with an
  exponential probe + bisection — O(log n) tail evaluations, returning
  the **bit-exact same n** because certified tails are non-increasing
  in n (all repo distributions satisfy this by construction: suffix
  sums, closed-form geometric/zeta bounds, level bounds).

Reuse is observable: ``prefix.cache.hits`` counts requests served
entirely from materialized data, ``prefix.cache.extensions`` counts
pulls on the underlying enumeration (see :mod:`repro.obs`).
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    Generic,
    Iterable,
    Iterator,
    List,
    Tuple,
    TypeVar,
)

from repro import obs
from repro.errors import ApproximationError, ConvergenceError
from repro.relational.columns import FloatColumn, resolve_backend
from repro.utils.probability import numpy_or_none as _numpy_or_none  # noqa: F401

T = TypeVar("T")

#: Obs counter: prefix requests answered without touching the enumeration.
PREFIX_CACHE_HITS = "prefix.cache.hits"
#: Obs counter: times the underlying enumeration was pulled further.
PREFIX_CACHE_EXTENSIONS = "prefix.cache.extensions"


class PrefixCache(Generic[T]):
    """A growing materialized prefix of a countable ``(item, weight)``
    enumeration, with memoized certified tails.

    Parameters
    ----------
    pairs:
        Iterable of ``(item, weight)`` in enumeration order; consumed
        lazily, each element at most once.
    tail:
        ``tail(n)`` — certified upper bound on the weight mass after the
        first n items.  Must be non-increasing in n for
        :meth:`smallest_prefix_for_tail` to match a linear scan exactly.
    backend:
        ``"python"`` (pure-Python running sums), ``"numpy"`` (vectorized
        cumulative sums; requires the ``[fast]`` extra), or ``"auto"``
        (numpy when importable, python otherwise).

    >>> cache = PrefixCache(iter([("a", 0.5), ("b", 0.25)]),
    ...                     tail=lambda n: (0.75, 0.25, 0.0)[min(n, 2)],
    ...                     backend="python")
    >>> cache.prefix(1)
    [('a', 0.5)]
    >>> cache.smallest_prefix_for_tail(0.3, 10)
    1
    >>> cache.cumulative_mass(2)
    0.75
    """

    def __init__(
        self,
        pairs: Iterable[Tuple[T, float]],
        tail: Callable[[int], float],
        backend: str = "auto",
    ):
        try:
            self.backend = resolve_backend(backend)
        except ValueError as exc:
            if "requires numpy" in str(exc):
                raise ValueError(
                    "prefix-cache backend 'numpy' requires numpy "
                    "(pip install .[fast]); use backend='python' instead"
                ) from None
            raise ValueError(f"unknown prefix-cache backend {backend!r}") from None
        self._iterator: Iterator[Tuple[T, float]] = iter(pairs)
        self._tail_fn = tail
        self._items: List[T] = []
        # The weight column: running sums on the python backend, a lazy
        # cumsum mirror on numpy (see repro.relational.columns).
        self._weights = FloatColumn(self.backend)
        self._exhausted = False
        self._tail_memo: Dict[int, float] = {}
        #: Serializes pulls on the (single-consumer) enumeration
        #: iterator and every read that touches the weight column —
        #: the numpy backend reallocates its buffer on growth, so
        #: concurrent extend/slice must not interleave.  Re-entrant:
        #: queries extend, then read, under one acquisition.
        self._lock = threading.RLock()
        #: Lifetime counters, mirrored into the active obs trace.
        self.hits = 0
        self.extensions = 0

    # ------------------------------------------------------------- basics
    def __len__(self) -> int:
        """Items materialized so far."""
        return len(self._items)

    @property
    def exhausted(self) -> bool:
        """Whether the underlying enumeration has ended."""
        return self._exhausted

    def tail(self, n: int) -> float:
        """Memoized certified tail bound after the first n items."""
        with self._lock:
            value = self._tail_memo.get(n)
            if value is None:
                value = self._tail_fn(n)
                self._tail_memo[n] = value
            return value

    # --------------------------------------------------------- extension
    def extend_to(self, n: int) -> int:
        """Materialize at least the first n pairs (or until exhaustion);
        returns the materialized length."""
        with self._lock:
            have = len(self._items)
            if n <= have or self._exhausted:
                self.hits += 1
                obs.incr(PREFIX_CACHE_HITS)
                return have
            self.extensions += 1
            obs.incr(PREFIX_CACHE_EXTENSIONS)
            items, weights = self._items, self._weights
            try:
                while len(items) < n:
                    item, weight = next(self._iterator)
                    items.append(item)
                    weights.append(float(weight))
            except StopIteration:
                self._exhausted = True
            return len(items)

    # ----------------------------------------------------------- queries
    def prefix(self, n: int) -> List[Tuple[T, float]]:
        """The first n ``(item, weight)`` pairs (fewer if exhausted)."""
        with self._lock:
            have = self.extend_to(n)
            stop = min(n, have)
            return list(
                zip(self._items[:stop], self._weights.slice(0, stop)))

    def items(self, n: int) -> List[T]:
        """The first n items (fewer if exhausted)."""
        with self._lock:
            have = self.extend_to(n)
            return list(self._items[: min(n, have)])

    def materialized_items(self) -> List[T]:
        """The items materialized so far, without extending — the live
        internal list (treat as read-only)."""
        return self._items

    def pairs(self, start: int, stop: int) -> List[Tuple[T, float]]:
        """Pairs in the half-open range ``[start, stop)`` (clipped to
        the enumeration's actual length)."""
        with self._lock:
            have = self.extend_to(stop)
            stop = min(stop, have)
            return list(zip(
                self._items[start:stop], self._weights.slice(start, stop)))

    def marginals_dict(self, n: int) -> Dict[T, float]:
        """The first n pairs as a dict, preserving enumeration order."""
        with self._lock:
            have = self.extend_to(n)
            stop = min(n, have)
            return dict(
                zip(self._items[:stop], self._weights.slice(0, stop)))

    def cumulative_mass(self, n: int) -> float:
        """``Σ`` of the first n weights (all of them if exhausted
        earlier)."""
        with self._lock:
            have = self.extend_to(n)
            return self._weights.prefix_sum(min(n, have))

    def weights_array(self):
        """The materialized weights as a numpy array (numpy backend
        only) — for vectorized consumers."""
        if self.backend != "numpy":
            raise ValueError(
                "weights_array() needs the numpy backend "
                f"(this cache uses {self.backend!r})"
            )
        with self._lock:
            return self._weights.array()

    # -------------------------------------------------- truncation search
    def smallest_prefix_for_tail(
        self,
        bound: float,
        budget: int,
        budget_name: str = "max_facts",
        what: str = "",
    ) -> int:
        """Smallest n ≤ budget with ``tail(n) ≤ bound``.

        Exponential probe (1, 2, 4, … capped at ``budget``) followed by
        bisection on the bracket ``tail(lo) > bound ≥ tail(hi)`` —
        O(log n) memoized tail evaluations.  Because the certified tail
        is non-increasing, the answer is the bit-exact n a linear scan
        from 0 would return (the differential tests assert this).

        Exhausting the budget raises
        :class:`~repro.errors.ApproximationError` carrying the tail mass
        actually achieved at ``budget`` — evaluated once (the seed's
        linear scan evaluated ``tail(budget)`` a second time just to
        build the message).
        """
        if bound <= 0:
            raise ConvergenceError(f"tail bound must be positive, got {bound}")
        if self.tail(0) <= bound:
            return 0
        if budget <= 0:
            self._raise_exhausted(bound, budget, budget_name, what)
        lo, hi = 0, 1
        while self.tail(hi) > bound:
            if hi >= budget:
                self._raise_exhausted(bound, budget, budget_name, what)
            lo, hi = hi, min(hi * 2, budget)
        # Invariant: tail(lo) > bound >= tail(hi); bisect the bracket.
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.tail(mid) <= bound:
                hi = mid
            else:
                lo = mid
        return hi

    def _raise_exhausted(
        self, bound: float, budget: int, budget_name: str, what: str
    ) -> None:
        achieved = self.tail(budget)
        raise ApproximationError(
            f"{what}tail did not reach {bound} within "
            f"{budget_name}={budget} (achieved tail mass {achieved}); "
            f"raise {budget_name} or relax the guarantee",
            achieved_tail=achieved,
        )

"""Families of fact probabilities ``(p_f)`` with convergence certificates.

A :class:`FactDistribution` is the interface Proposition 6.1 assumes:

  (i)  the expected instance size ``E(S) = Σ_f p_f`` is known (exactly or
       via a certified tail bound), and
  (ii) given a fact ``f``, its probability ``p_f`` can be queried.

Additionally the support ``F_ω = {f : p_f > 0}`` is *enumerable* in a
fixed order, with ``tail(n)`` a certified upper bound on the probability
mass of facts after the first n enumerated ones — the handle the
truncation algorithm turns into an ε-guarantee.

Theorem 4.8 in code: :class:`repro.core.tuple_independent.CountableTIPDB`
accepts exactly those distributions whose total mass is finite; the
deliberately divergent :class:`DivergentFactDistribution` exists to
exercise the rejection path.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.analysis.series import SeriesCertificate
from repro.core.prefix_cache import PrefixCache
from repro.errors import ConvergenceError, ProbabilityError
from repro.relational.facts import Fact
from repro.universe.factspace import FactSpace
from repro.utils.rationals import validate_probability


class FactDistribution:
    """Abstract family ``(p_f)`` over a countable fact space."""

    def support(self) -> Iterator[Fact]:
        """Enumerate ``F_ω`` (facts with ``p_f > 0``), fixed order."""
        raise NotImplementedError

    def probability(self, fact: Fact) -> float:
        """``p_f``; 0 for facts outside the support (oracle (ii))."""
        raise NotImplementedError

    def tail(self, n: int) -> float:
        """Certified upper bound on ``Σ`` of probabilities of support
        facts after the first n enumerated ones."""
        raise NotImplementedError

    def total_mass(self) -> float:
        """``Σ_f p_f`` — the expected instance size (oracle (i)).

        ``math.inf`` signals a (deliberately) divergent family.
        """
        raise NotImplementedError

    def log_complement_product(self) -> Optional[float]:
        """``log Π_{f ∈ F_ω} (1 − p_f)`` in closed form, if available.

        Wide-support distributions (e.g. word-length decay over large
        alphabets, where a single "level" holds ``|Σ|^ℓ`` facts) cannot
        evaluate the complement product by enumerating a prefix; they
        override this hook with an analytic evaluation, and
        :class:`~repro.core.tuple_independent.CountableTIPDB` uses it
        for exact instance probabilities.  Default: None (use the
        prefix-truncated product).
        """
        return None

    def max_probability(self) -> Optional[float]:
        """An upper bound on every individual ``p_f``, if known.

        Lets completions (Theorem 5.5) certify "no fact has probability
        1" without enumerating a prefix whose tail drops below 1 —
        impossible for wide-support families.  Default: None (unknown).
        """
        return None

    # --------------------------------------------------------------- services
    @property
    def convergent(self) -> bool:
        """Whether ``Σ p_f`` converges — the Theorem 4.8 criterion."""
        return math.isfinite(self.total_mass())

    def _support_pairs(self) -> Iterator[Tuple[Fact, float]]:
        """``(f, p_f)`` along :meth:`support` — the stream the prefix
        cache materializes.  **Must** agree with :meth:`support` in
        content and order.  Subclasses override when the pair can be
        produced cheaper than a :meth:`probability` lookup per fact."""
        return ((fact, self.probability(fact)) for fact in self.support())

    def prefix_cache(self, backend: str = "auto") -> PrefixCache:
        """This distribution's materialized prefix (created lazily, then
        shared by every ``prefix``/``marginals_dict``/``prefix_for_tail``
        call and by the refinement session).  ``backend`` only applies
        to the first call; afterwards the existing cache is returned."""
        cache = self.__dict__.get("_prefix_cache")
        if cache is None:
            cache = PrefixCache(self._support_pairs(), self.tail,
                                backend=backend)
            self._prefix_cache = cache
        return cache

    def prefix(self, n: int) -> List[Tuple[Fact, float]]:
        """The first n support facts with their probabilities (served
        from the shared :meth:`prefix_cache`)."""
        return self.prefix_cache().prefix(n)

    def prefix_for_tail(self, bound: float, max_facts: int = 10**7) -> int:
        """Smallest n with ``tail(n) ≤ bound``.

        Found by exponential probe + bisection over the memoized
        certified tails (sound and bit-exact vs the paper's linear
        "systematically listing facts" because ``tail`` is
        non-increasing in n) — O(log n) tail evaluations.

        Exhausting ``max_facts`` before the bound is met raises
        :class:`~repro.errors.ApproximationError` carrying the tail mass
        actually achieved — a truncation at ``max_facts`` would be
        *uncertified*, silently voiding the ε-guarantee of every caller
        in the Proposition 6.1 pipeline.
        """
        return self.prefix_cache().smallest_prefix_for_tail(
            bound, max_facts, budget_name="max_facts")

    def marginals_dict(self, n: int) -> Dict[Fact, float]:
        """The first n support facts as a dict (for finite truncations)."""
        return self.prefix_cache().marginals_dict(n)

    def __getstate__(self):
        # The cache holds a live generator (unpicklable); peers rebuild
        # their own prefix on demand.
        state = self.__dict__.copy()
        state.pop("_prefix_cache", None)
        return state


class TableFactDistribution(FactDistribution):
    """A finitely supported family given by an explicit table.

    Enumeration order: decreasing probability, ties broken canonically —
    matching the "best case: facts enumerated by decreasing probability"
    remark of paper §6.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> d = TableFactDistribution({R(1): 0.8, R(2): 0.3})
    >>> [str(f) for f, _ in d.prefix(2)]
    ['R(1)', 'R(2)']
    >>> d.total_mass()
    1.1
    >>> d.tail(1)
    0.3
    """

    def __init__(self, marginals: Mapping[Fact, float]):
        cleaned: Dict[Fact, float] = {}
        for fact, probability in marginals.items():
            validate_probability(probability, what=f"probability of {fact}")
            if probability > 0:
                cleaned[fact] = float(probability)
        self._order: List[Fact] = sorted(
            cleaned, key=lambda f: (-cleaned[f], f.sort_key())
        )
        self._marginals = cleaned
        self._suffix: List[float] = [0.0] * (len(self._order) + 1)
        for i in range(len(self._order) - 1, -1, -1):
            self._suffix[i] = self._suffix[i + 1] + cleaned[self._order[i]]

    def support(self) -> Iterator[Fact]:
        return iter(self._order)

    def _support_pairs(self) -> Iterator[Tuple[Fact, float]]:
        return ((fact, self._marginals[fact]) for fact in self._order)

    def probability(self, fact: Fact) -> float:
        return self._marginals.get(fact, 0.0)

    def tail(self, n: int) -> float:
        return self._suffix[min(n, len(self._order))]

    def total_mass(self) -> float:
        return self._suffix[0]

    def max_probability(self) -> float:
        if not self._order:
            return 0.0
        return self._marginals[self._order[0]]

    def log_complement_product(self) -> float:
        total = 0.0
        for p in self._marginals.values():
            if p >= 1.0:
                return -math.inf
            total += math.log1p(-p)
        return total

    def __len__(self) -> int:
        return len(self._order)


class _RankBasedDistribution(FactDistribution):
    """Shared plumbing for distributions assigning ``p = g(rank)`` along
    a fact-space enumeration."""

    def __init__(self, fact_space: FactSpace, certificate: SeriesCertificate):
        self.fact_space = fact_space
        self._certificate = certificate

    def _term(self, index: int) -> float:
        """``p`` of the fact with 0-based enumeration index ``index``."""
        raise NotImplementedError

    def support(self) -> Iterator[Fact]:
        return self.fact_space.enumerate()

    def probability(self, fact: Fact) -> float:
        if fact not in self.fact_space:
            return 0.0
        return self._term(self.fact_space.rank(fact))

    def _support_pairs(self) -> Iterator[Tuple[Fact, float]]:
        # The support is enumerated in rank order, so the enumeration
        # index *is* the rank — avoids an O(rank) lookup per fact, which
        # would make prefix materialization quadratic.
        return (
            (fact, self._term(index))
            for index, fact in enumerate(self.support())
        )

    def tail(self, n: int) -> float:
        return self._certificate.tail(n)

    def total_mass(self) -> float:
        return self._certificate.sum()


class GeometricFactDistribution(_RankBasedDistribution):
    """``p_f = first · ratio^{rank(f)}`` along the fact-space order.

    Total mass ``first / (1 − ratio)``; the open-world weights of
    Example 5.7 (``2^{−i}``) are the instance ``first = 1/2, ratio = 1/2``
    up to the fact ordering.

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals
    >>> space = FactSpace(Schema.of(R=1), Naturals())
    >>> d = GeometricFactDistribution(space, first=0.5, ratio=0.5)
    >>> d.probability(Schema.of(R=1)["R"](1))
    0.5
    >>> d.total_mass()
    1.0
    """

    def __init__(self, fact_space: FactSpace, first: float, ratio: float):
        if not 0 < first < 1:
            raise ProbabilityError(f"first must be in (0, 1), got {first}")
        if not 0 <= ratio < 1:
            raise ProbabilityError(f"ratio must be in [0, 1), got {ratio}")
        super().__init__(fact_space, SeriesCertificate.geometric(first, ratio))
        self.first = first
        self.ratio = ratio

    def _term(self, index: int) -> float:
        return self.first * self.ratio**index


class ZetaFactDistribution(_RankBasedDistribution):
    """``p_f = scale / (rank(f) + 1)^exponent`` — a slowly converging,
    heavy-tailed family (exponent > 1), the stress case for the E5
    truncation-size experiment.

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals
    >>> space = FactSpace(Schema.of(R=1), Naturals())
    >>> d = ZetaFactDistribution(space, exponent=2.0, scale=0.5)
    >>> d.probability(Schema.of(R=1)["R"](1))
    0.5
    """

    def __init__(self, fact_space: FactSpace, exponent: float, scale: float = 1.0):
        if exponent <= 1:
            raise ConvergenceError(
                f"zeta exponent must exceed 1 for convergence, got {exponent}"
            )
        if not 0 < scale <= 1:
            raise ProbabilityError(f"scale must be in (0, 1], got {scale}")
        super().__init__(fact_space, SeriesCertificate.zeta(exponent, scale))
        self.exponent = exponent
        self.scale = scale

    def _term(self, index: int) -> float:
        return self.scale / (index + 1) ** self.exponent

    def max_probability(self) -> float:
        return self.scale

    def log_complement_product(self) -> float:
        """``Σ_i log(1 − scale/i^s)`` with an integral tail estimate.

        The polynomial tail makes prefix enumeration to tolerance
        infeasible (``tail(n) ≤ 1e−12`` needs ``n ~ 10^12``), so the sum
        is split at N = 10⁵: exact below, ``−Σ p − Σ p²/2`` above using
        the closed forms ``Σ_{i>N} i^{−s} ≈ N^{1−s}/(s−1)`` and
        ``Σ_{i>N} i^{−2s} ≈ N^{1−2s}/(2s−1)`` (error O(N^{−3s}) after
        the quadratic term — far below float noise at s > 1).
        """
        if self.scale >= 1.0:
            return -math.inf  # p₁ = 1
        cutoff = 10**5
        total = sum(
            math.log1p(-self._term(i)) for i in range(cutoff)
        )
        s, c = self.exponent, self.scale
        linear_tail = c * cutoff ** (1 - s) / (s - 1)
        quadratic_tail = c * c * cutoff ** (1 - 2 * s) / (2 * s - 1) / 2.0
        return total - linear_tail - quadratic_tail


class DivergentFactDistribution(_RankBasedDistribution):
    """``p_f = scale / (rank(f) + 1)`` — the *harmonic* family whose sum
    diverges.  Exists to exercise the necessity direction of
    Theorem 4.8: constructing a countable TI PDB from it must fail.

    >>> from repro.relational import Schema
    >>> from repro.universe import Naturals
    >>> space = FactSpace(Schema.of(R=1), Naturals())
    >>> DivergentFactDistribution(space).convergent
    False
    """

    def __init__(self, fact_space: FactSpace, scale: float = 0.5):
        if not 0 < scale <= 1:
            raise ProbabilityError(f"scale must be in (0, 1], got {scale}")
        self.fact_space = fact_space
        self.scale = scale

    def _term(self, index: int) -> float:
        return self.scale / (index + 1)

    def tail(self, n: int) -> float:
        return math.inf

    def total_mass(self) -> float:
        return math.inf


class FilteredFactDistribution(FactDistribution):
    """Restriction of a distribution to facts passing a predicate.

    Used by completions (Theorem 5.5): the new-fact distribution must
    avoid ``F(D)``, so the base family is filtered by
    ``f ∉ F(D)``.  The base tail remains a sound (if slack) bound.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> base = TableFactDistribution({R(1): 0.5, R(2): 0.25})
    >>> filtered = FilteredFactDistribution(base, lambda f: f != R(1))
    >>> filtered.probability(R(1)), filtered.probability(R(2))
    (0.0, 0.25)
    """

    def __init__(
        self,
        base: FactDistribution,
        keep: Callable[[Fact], bool],
        removed_mass: Optional[float] = None,
    ):
        self.base = base
        self.keep = keep
        #: Exact total probability of the dropped facts, when known.
        self.removed_mass = removed_mass
        #: The dropped facts themselves, when finitely many and known
        #: (set by :meth:`excluding`); enables closed-form pass-through.
        self._excluded_facts: Optional[frozenset] = None

    @classmethod
    def excluding(
        cls, base: FactDistribution, facts: Iterable[Fact]
    ) -> "FilteredFactDistribution":
        """Exact exclusion of a *finite* fact set — the Theorem 5.5 case
        where the new-fact family must avoid F(D).  Total mass is exact:
        ``base.total_mass() − Σ_{f ∈ facts} p_f``.

        >>> from repro.relational import RelationSymbol
        >>> R = RelationSymbol("R", 1)
        >>> base = TableFactDistribution({R(1): 0.5, R(2): 0.25})
        >>> FilteredFactDistribution.excluding(base, [R(1)]).total_mass()
        0.25
        """
        excluded = frozenset(facts)
        removed = sum(base.probability(f) for f in excluded)
        filtered = cls(base, lambda f: f not in excluded, removed_mass=removed)
        filtered._excluded_facts = excluded
        return filtered

    def support(self) -> Iterator[Fact]:
        return (fact for fact in self.base.support() if self.keep(fact))

    def _support_pairs(self) -> Iterator[Tuple[Fact, float]]:
        return (
            (fact, p)
            for fact, p in self.base._support_pairs()
            if self.keep(fact)
        )

    def probability(self, fact: Fact) -> float:
        if not self.keep(fact):
            return 0.0
        return self.base.probability(fact)

    def tail(self, n: int) -> float:
        # Dropping facts only removes mass; after n *kept* facts, at
        # least n base facts have passed, so the base tail bounds ours.
        return self.base.tail(n)

    def total_mass(self) -> float:
        base_total = self.base.total_mass()
        if math.isinf(base_total):
            return math.inf
        if self.removed_mass is not None:
            return max(0.0, base_total - self.removed_mass)
        # Upper bound; exact mass would need enumerating the filtered-out
        # facts.  Sound for the convergence criterion, which is all the
        # constructions need.
        return base_total

    def max_probability(self) -> Optional[float]:
        return self.base.max_probability()

    def log_complement_product(self) -> Optional[float]:
        """Closed form when the base has one and the exclusions are an
        explicit finite set: divide out their ``(1 − p)`` factors."""
        base_log = self.base.log_complement_product()
        if base_log is None or self._excluded_facts is None:
            return None
        adjustment = 0.0
        for fact in self._excluded_facts:
            p = self.base.probability(fact)
            if p >= 1.0:
                return None  # base product is 0; cannot divide out
            if p > 0.0:
                adjustment -= math.log1p(-p)
        return base_log + adjustment


class UnionFactDistribution(FactDistribution):
    """Union of distributions with disjoint supports, interleaved fairly.

    The completion of Example 5.7 is a union: an explicit table on the
    original facts plus a geometric family on the open-world facts.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> left = TableFactDistribution({R(1): 0.5})
    >>> right = TableFactDistribution({R(2): 0.25})
    >>> u = UnionFactDistribution([left, right])
    >>> u.total_mass()
    0.75
    """

    def __init__(self, parts: Iterable[FactDistribution]):
        self.parts: Tuple[FactDistribution, ...] = tuple(parts)
        if not self.parts:
            raise ProbabilityError("union of no distributions")

    def support(self) -> Iterator[Fact]:
        iterators = [part.support() for part in self.parts]
        while iterators:
            alive = []
            for iterator in iterators:
                try:
                    yield next(iterator)
                except StopIteration:
                    continue
                alive.append(iterator)
            iterators = alive

    def _support_pairs(self) -> Iterator[Tuple[Fact, float]]:
        # Mirrors the fair interleaving of :meth:`support` exactly, with
        # each part producing its own (fact, p) pairs.
        iterators = [part._support_pairs() for part in self.parts]
        while iterators:
            alive = []
            for iterator in iterators:
                try:
                    yield next(iterator)
                except StopIteration:
                    continue
                alive.append(iterator)
            iterators = alive

    def probability(self, fact: Fact) -> float:
        for part in self.parts:
            p = part.probability(fact)
            if p > 0:
                return p
        return 0.0

    def tail(self, n: int) -> float:
        # After n facts of the interleaved stream, each part has emitted
        # at least ⌊n/k⌋ facts (or is exhausted); sum the parts' tails.
        per_part = n // len(self.parts)
        return sum(part.tail(per_part) for part in self.parts)

    def total_mass(self) -> float:
        return sum(part.total_mass() for part in self.parts)

    def max_probability(self) -> Optional[float]:
        bounds = [part.max_probability() for part in self.parts]
        if any(b is None for b in bounds):
            return None
        return max(bounds) if bounds else 0.0

    def log_complement_product(self) -> Optional[float]:
        logs = [part.log_complement_product() for part in self.parts]
        if any(value is None for value in logs):
            return None
        return sum(logs)


class WordLengthFactDistribution(FactDistribution):
    """String-universe facts weighted by *total word length* —
    Example 3.2's "small positive probability to all strings …,
    decaying with increasing length".

    Every relation argument ranges over ``Σ*`` for one shared alphabet;
    a fact ``R(w₁, …, w_k)`` gets

        ``p_f = scale_R · decay^(|w₁| + … + |w_k|)``.

    Unlike rank-geometric weights, real words of moderate length keep
    representable probabilities.  Convergence requires
    ``decay · |Σ| < 1``: there are ``≤ (ℓ+1)^{k−1} |Σ|^ℓ`` facts of total
    length ℓ per relation, so the mass per level decays geometrically.

    Enumeration is by total length (then lexicographic), giving an
    explicit certified tail.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> d = WordLengthFactDistribution(schema, "ab", decay=0.25, scale=0.1)
    >>> R = schema["R"]
    >>> d.probability(R("ab"))
    0.00625
    >>> d.convergent
    True
    """

    def __init__(
        self,
        schema,
        alphabet: str,
        decay: float,
        scale: float = 1.0,
    ):
        from repro.relational.schema import Schema as _Schema

        if not isinstance(schema, _Schema):
            raise ProbabilityError("schema must be a Schema")
        alphabet = "".join(alphabet)
        if not alphabet:
            raise ProbabilityError("alphabet must be non-empty")
        if not 0 < decay < 1 or decay * len(alphabet) >= 1:
            raise ConvergenceError(
                f"need 0 < decay and decay·|Σ| < 1; got decay={decay}, "
                f"|Σ|={len(alphabet)}"
            )
        if not 0 < scale <= 1:
            raise ProbabilityError(f"scale must be in (0, 1], got {scale}")
        self.schema = schema
        self.alphabet = alphabet
        self.decay = decay
        self.scale = scale
        self._relations = [r for r in schema]
        if not self._relations:
            raise ProbabilityError("schema has no relations")
        self._max_arity = max(r.arity for r in self._relations)
        #: r = decay·|Σ|: the per-level geometric factor.
        self._r = decay * len(alphabet)

    # -------------------------------------------------------------- counting
    def _facts_of_total_length(self, symbol, length: int) -> Iterator[Fact]:
        """All facts of one relation whose argument lengths sum to
        ``length``, in lexicographic order."""
        import itertools as _it

        k = symbol.arity
        if k == 0:
            if length == 0:
                yield Fact(symbol, ())
            return
        for split in self._compositions(length, k):
            word_pools = [
                ("".join(w) for w in _it.product(self.alphabet, repeat=part))
                for part in split
            ]
            for words in _it.product(*word_pools):
                yield Fact(symbol, words)

    @staticmethod
    def _compositions(total: int, k: int):
        if k == 1:
            yield (total,)
            return
        for head in range(total + 1):
            for rest in WordLengthFactDistribution._compositions(
                    total - head, k - 1):
                yield (head,) + rest

    # ------------------------------------------------------------ interface
    def support(self) -> Iterator[Fact]:
        import itertools as _it

        for length in _it.count(0):
            for symbol in self._relations:
                yield from self._facts_of_total_length(symbol, length)

    def probability(self, fact: Fact) -> float:
        if fact.relation not in self.schema:
            return 0.0
        total_length = 0
        for arg in fact.args:
            if not isinstance(arg, str) or any(
                    ch not in self.alphabet for ch in arg):
                return 0.0
            total_length += len(arg)
        return self.scale * self.decay**total_length

    def _level_mass_bound(self, length: int) -> float:
        """Upper bound on the mass of one total-length level across all
        relations: ``Σ_R scale·(ℓ+1)^{k−1}·r^ℓ``."""
        bound = 0.0
        for symbol in self._relations:
            k = max(symbol.arity, 1)
            bound += self.scale * (length + 1) ** (k - 1) * self._r**length
        return bound

    def tail(self, n: int) -> float:
        """After n enumerated facts, at least the levels covered by n
        facts are done; conservatively: find the largest complete level
        L(n) and sum the level bounds beyond it (geometric-dominated)."""
        # Count facts per level until the budget n is exhausted.
        level = 0
        remaining = n
        while True:
            level_count = 0
            for symbol in self._relations:
                k = symbol.arity
                if k == 0:
                    level_count += 1 if level == 0 else 0
                else:
                    level_count += (
                        math.comb(level + k - 1, k - 1)
                        * len(self.alphabet) ** level
                    )
            if remaining >= level_count:
                remaining -= level_count
                level += 1
            else:
                break
        # Mass of levels ≥ `level`: Σ_{ℓ≥L} bound(ℓ), dominated by a
        # geometric with an (ℓ+1)^{k−1} nuisance: bound each factor of
        # (ℓ+1)^{k−1} by C·s^ℓ with r·s = (1+r)/2 < 1.
        r = self._r
        rs = (1.0 + r) / 2.0
        s = rs / r
        c = 1.0
        k = self._max_arity
        if k > 1:
            # C = max_ℓ (ℓ+1)^{k-1} / s^ℓ — scan until decreasing.
            best = 0.0
            value = 1.0
            for ell in range(0, 10_000):
                candidate = (ell + 1) ** (k - 1) / s**ell
                best = max(best, candidate)
                if ell > 10 and candidate < best / 10:
                    break
            c = best
        per_relation = len(self._relations)
        return per_relation * self.scale * c * rs**level / (1.0 - rs)

    def total_mass(self) -> float:
        """Exact: ``Σ_R scale · (Σ_w decay^{|w|})^{ar(R)}`` with
        ``Σ_w decay^{|w|} = 1/(1 − decay·|Σ|)``."""
        per_word = 1.0 / (1.0 - self._r)
        return sum(
            self.scale * per_word**symbol.arity for symbol in self._relations
        )

    def max_probability(self) -> float:
        """Every fact has ``p ≤ scale`` (length-0 arguments)."""
        return self.scale

    def log_complement_product(self) -> float:
        """Closed form: within a total-length level all facts share the
        same probability ``scale·decay^ℓ``, so

            ``log Π (1 − p_f) = Σ_R Σ_ℓ count_R(ℓ) · log1p(−scale·decay^ℓ)``

        with ``count_R(ℓ) = C(ℓ+k−1, k−1)·|Σ|^ℓ``.  The level masses
        decay geometrically (``r = decay·|Σ| < 1``), so the sum is
        truncated once the remaining mass bound is negligible: by
        ``−x ≥ log(1−x) ≥ −x/(1−x)`` the omitted levels change the log
        by less than their total mass over ``1 − scale``.
        """
        total = 0.0
        sigma = len(self.alphabet)
        log_sigma = math.log(sigma)
        log_decay = math.log(self.decay)
        for symbol in self._relations:
            k = symbol.arity
            if k == 0:
                if self.scale >= 1.0:
                    return -math.inf
                total += math.log1p(-self.scale)  # single length-0 fact
                continue
            previous_log_increment = None
            level = 0
            while True:
                # log of count = C(level+k−1, k−1) · σ^level, in log space
                # (the raw count overflows floats within a few hundred
                # levels for realistic alphabets).
                log_count = (
                    math.lgamma(level + k)
                    - math.lgamma(level + 1)
                    - math.lgamma(k)
                    + level * log_sigma
                )
                p = self.scale * self.decay**level
                if p >= 1.0:
                    return -math.inf
                if p > 0.0:
                    log_term = math.log(-math.log1p(-p))
                else:
                    # decay^level underflowed; −log1p(−p) ≈ p in logs.
                    log_term = math.log(self.scale) + level * log_decay
                log_increment = log_count + log_term
                total -= math.exp(log_increment)
                converged = (
                    previous_log_increment is not None
                    and log_increment < previous_log_increment
                    and log_increment < math.log(1e-18)
                )
                if converged:
                    # Remaining levels dominated by a geometric with the
                    # observed per-level ratio (< 1 once decreasing).
                    ratio = math.exp(log_increment - previous_log_increment)
                    total -= math.exp(log_increment) * ratio / (1.0 - ratio)
                    break
                previous_log_increment = log_increment
                level += 1
        return total


class ScaledFactDistribution(FactDistribution):
    """``p_f ↦ c · p_f`` for ``c ∈ (0, 1]`` — thins an existing family.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> d = ScaledFactDistribution(TableFactDistribution({R(1): 0.5}), 0.5)
    >>> d.probability(R(1))
    0.25
    """

    def __init__(self, base: FactDistribution, factor: float):
        if not 0 < factor <= 1:
            raise ProbabilityError(f"scale factor must be in (0, 1], got {factor}")
        self.base = base
        self.factor = factor

    def support(self) -> Iterator[Fact]:
        return self.base.support()

    def _support_pairs(self) -> Iterator[Tuple[Fact, float]]:
        return (
            (fact, self.factor * p) for fact, p in self.base._support_pairs()
        )

    def probability(self, fact: Fact) -> float:
        return self.factor * self.base.probability(fact)

    def tail(self, n: int) -> float:
        return self.factor * self.base.tail(n)

    def total_mass(self) -> float:
        return self.factor * self.base.total_mass()

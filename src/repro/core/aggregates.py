"""Expected aggregates over countable PDBs.

The paper's query semantics (§3.1) returns marginal answer-tuple
probabilities; the natural next aggregate is the *expected answer count*

    E[|Q(D)|]  =  Σ_ā Pr(ā ∈ Q(D))     (linearity of expectation)

which for countable TI PDBs is approximable with certified error by the
same truncation idea as Proposition 6.1: answers involving only the
first n facts are evaluated exactly, and the contribution of tuples
touching the tail is bounded by the tail mass times the query's answer
multiplicity.

For *atomic* queries ``Q(x̄) = R(x̄)`` the expected count is exactly the
expected number of R-facts, ``Σ_{f ∈ R} p_f`` — computed in closed form.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.approx import approximate_answer_marginals, choose_truncation
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ApproximationError
from repro.logic.analysis import atoms_of, free_variables
from repro.logic.queries import Query
from repro.logic.syntax import Atom, Variable


class ExpectedCount(NamedTuple):
    """An expected answer count with a certified error bound."""

    value: float
    #: Upper bound on the absolute error.
    error: float
    #: Truncation size used.
    truncation: int


def expected_answer_count(
    query: Query,
    pdb: CountableTIPDB,
    epsilon: float = 0.01,
    max_facts: int = 10**6,
) -> ExpectedCount:
    """Approximate ``E[|Q(D)|]`` for a monotone query on a countable TI
    PDB.

    The per-tuple marginals over ``adom(Ω_n)`` are summed; every answer
    tuple outside ``adom(Ω_n)^k`` requires at least one fact beyond the
    truncation, and for a query whose every answer is *witnessed* by at
    least one fact (monotone queries with at least one atom containing
    all free variables), each tail fact can witness at most
    ``witness_bound`` answers, giving the error term
    ``witness_bound · tail(n)`` plus the per-tuple ε·count slack.

    >>> from repro.relational import Schema
    >>> from repro.universe import FactSpace, Naturals
    >>> from repro.core.fact_distribution import GeometricFactDistribution
    >>> from repro.logic import parse_formula
    >>> schema = Schema.of(R=1)
    >>> pdb = CountableTIPDB(schema, GeometricFactDistribution(
    ...     FactSpace(schema, Naturals()), first=0.5, ratio=0.5))
    >>> q = Query(parse_formula("R(x)", schema), schema)
    >>> result = expected_answer_count(q, pdb, epsilon=0.001)
    >>> abs(result.value - 1.0) < 0.05   # E[#R-facts] = Σ p_f = 1
    True
    """
    if query.is_boolean:
        raise ApproximationError(
            "expected_answer_count needs free variables; Boolean queries "
            "have E[|Q|] = P(Q)"
        )
    witness_bound = _witness_bound(query)
    if witness_bound is None:
        raise ApproximationError(
            "expected count requires an atom containing all free "
            "variables (so tail facts witness boundedly many answers)"
        )
    marginals = approximate_answer_marginals(
        query, pdb, epsilon, max_facts=max_facts)
    value = sum(result.value for result in marginals.values())
    n = choose_truncation(pdb.distribution, epsilon, max_facts=max_facts)
    tail_mass = pdb.distribution.tail(n)
    error = epsilon * max(len(marginals), 1) + witness_bound * tail_mass
    return ExpectedCount(value, error, n)


def _witness_bound(query: Query):
    """If some atom contains every free variable, each fact of that
    atom's relation witnesses at most one assignment of the free
    variables per occurrence pattern — return the number of such guard
    atoms (the multiplicity bound per tail fact)."""
    head = set(free_variables(query.formula))
    guards = 0
    for atom in atoms_of(query.formula):
        atom_variables = {t for t in atom.terms if isinstance(t, Variable)}
        if head <= atom_variables:
            guards += 1
    return guards if guards > 0 else None


def exact_relation_expected_count(
    relation_name: str, pdb: CountableTIPDB, tolerance: float = 1e-12
) -> float:
    """Closed form for the atomic query ``Q(x̄) = R(x̄)``:
    ``E[|R|] = Σ_{f over R} p_f``.

    >>> from repro.relational import Schema
    >>> from repro.core.fact_distribution import TableFactDistribution
    >>> schema = Schema.of(R=1, S=1)
    >>> R, S = schema["R"], schema["S"]
    >>> pdb = CountableTIPDB(schema, TableFactDistribution(
    ...     {R(1): 0.5, R(2): 0.25, S(1): 0.9}))
    >>> exact_relation_expected_count("R", pdb)
    0.75
    """
    n = pdb.distribution.prefix_for_tail(tolerance)
    return sum(
        p
        for fact, p in pdb.distribution.prefix(n)
        if fact.relation.name == relation_name
    )

"""Size distributions of countable PDBs (paper §3.2) and Example 3.3.

Example 3.3: schema ``τ = {R}`` (unary), universe ℕ; world
``D_n = {R(1), …, R(2^n)}`` has probability ``p_n = 6/(π² n²)``.
Then ``E(S) = Σ 6·2^n/(π² n²) = ∞`` — a countable PDB with infinite
expected instance size, and (via Proposition 4.9) the witness that not
every countable PDB is FO-definable over a tuple-independent one.

Despite ``E(S) = ∞``, eq. (6) holds: ``P(S ≥ n) → 0``, which
:func:`size_tail_probabilities` demonstrates.

Because the worlds ``D_n`` grow exponentially, the Example 3.3 object
overrides the generic world-scanning methods with closed forms; the
generic enumeration is still available (and exercised by tests) for
small n.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.pdb import CountablePDB
from repro.relational.instance import Instance
from repro.relational.schema import Schema

#: Enumerating worlds beyond this index would materialize instances with
#: more than 2^20 facts; the closed-form overrides avoid ever needing to.
_MAX_MATERIALIZED_EXPONENT = 20


class Example33PDB(CountablePDB):
    """The Example 3.3 PDB, with closed-form size statistics.

    >>> pdb = Example33PDB()
    >>> math.isinf(pdb.expected_size())
    True
    >>> pdb.world_probability(1) == 6.0 / math.pi**2
    True
    """

    def __init__(self, schema: Optional[Schema] = None):
        if schema is None:
            schema = Schema.of(R=1)
        self.symbol = schema["R"]
        super().__init__(
            schema,
            self._enumerate_worlds,
            exhaustive=False,
            mass_tail=self._mass_tail,
        )

    @staticmethod
    def world_probability(n: int) -> float:
        """``p_n = 6/(π² n²)`` for the world ``D_n``."""
        if n < 1:
            raise ValueError("world index must be positive")
        return 6.0 / (math.pi**2 * n**2)

    def world(self, n: int) -> Instance:
        """``D_n = {R(1), …, R(2^n)}`` (materialized; small n only)."""
        if n > _MAX_MATERIALIZED_EXPONENT:
            raise ValueError(
                f"world {n} has 2^{n} facts; refusing to materialize"
            )
        return Instance(self.symbol(i) for i in range(1, 2**n + 1))

    def _enumerate_worlds(self) -> Iterator[Tuple[Instance, float]]:
        for n in itertools.count(1):
            yield self.world(n), self.world_probability(n)

    @staticmethod
    def _mass_tail(worlds_enumerated: int) -> float:
        # Σ_{n > N} 6/(π² n²) ≤ 6/(π² N)  (integral bound).
        if worlds_enumerated <= 0:
            return 1.0
        return 6.0 / (math.pi**2 * worlds_enumerated)

    # ------------------------------------------------------------ closed forms
    def expected_size(self, **_ignored) -> float:
        """``E(S) = Σ 6·2^n/(π² n²) = ∞`` — the terms themselves diverge."""
        return math.inf

    def size_tail(self, n: int, tolerance: float = 1e-9) -> float:
        """``P(S ≥ n) = Σ_{2^m ≥ n} 6/(π² m²)`` in closed form.

        Computed as ``1 − Σ_{m < log₂ n} p_m`` (the complement is a
        short finite sum), demonstrating eq. (6): the tail → 0.
        """
        if n <= 2:  # every world has size 2^m ≥ 2
            return 1.0
        cutoff = math.ceil(math.log2(n))  # smallest m with 2^m >= n
        below = sum(self.world_probability(m) for m in range(1, cutoff))
        return max(0.0, 1.0 - below)

    def partial_expected_size(self, terms: int) -> float:
        """The diverging partial sums ``Σ_{n≤N} 6·2^n/(π² n²)``."""
        return sum(
            self.world_probability(n) * 2**n for n in range(1, terms + 1)
        )

    # ---------------------------------------------------------------- sampling
    def sample_index(self, rng) -> int:
        """Draw the world index n with probability ``p_n`` (closed-form
        inverse transform; no world is materialized)."""
        u = rng.random()
        acc = 0.0
        for n in itertools.count(1):
            acc += self.world_probability(n)
            if u < acc:
                return n

    def sample(self, rng) -> Instance:
        """Draw a world.  Indices beyond 2^20 facts raise (astronomically
        unlikely: ``P(n > 20) ≈ 0.03``... use :meth:`sample_index` for
        size-only statistics)."""
        return self.world(self.sample_index(rng))


def example_3_3_pdb(schema: Optional[Schema] = None) -> Example33PDB:
    """The Example 3.3 PDB with ``E(S_D) = ∞``.

    >>> pdb = example_3_3_pdb()
    >>> math.isinf(pdb.expected_size())
    True
    """
    return Example33PDB(schema)


def example_3_3_partial_expected_size(terms: int) -> float:
    """Module-level convenience for the diverging partial sums.

    >>> example_3_3_partial_expected_size(2) < \
        example_3_3_partial_expected_size(4)
    True
    """
    return Example33PDB().partial_expected_size(terms)


class MomentGapPDB(CountablePDB):
    """Remark 4.10's refinement: ``E(S^j) < ∞`` for j ≤ k but
    ``E(S^{k+1}) = ∞``.

    World ``W_m = {R(1), …, R(m)}`` has probability ``c/m^{k+2}``:
    ``Σ m^k · c/m^{k+2} = c Σ 1/m² < ∞`` while
    ``Σ m^{k+1} · c/m^{k+2} = c Σ 1/m = ∞``.

    >>> pdb = MomentGapPDB(1)
    >>> pdb.moment(1) < float("inf")
    True
    >>> math.isinf(pdb.moment(2))
    True
    """

    def __init__(self, k: int, schema: Optional[Schema] = None, horizon: int = 10**5):
        if k < 1:
            raise ValueError("k must be at least 1")
        if schema is None:
            schema = Schema.of(R=1)
        self.symbol = schema["R"]
        self.k = k
        self._exponent = k + 2
        self._normalizer = sum(
            1.0 / m**self._exponent for m in range(1, horizon)
        )
        super().__init__(
            schema,
            self._enumerate_worlds,
            exhaustive=False,
            mass_tail=self._mass_tail,
        )

    def world_probability(self, m: int) -> float:
        return (1.0 / m**self._exponent) / self._normalizer

    def _enumerate_worlds(self) -> Iterator[Tuple[Instance, float]]:
        for m in itertools.count(1):
            instance = Instance(self.symbol(i) for i in range(1, m + 1))
            yield instance, self.world_probability(m)

    def _mass_tail(self, worlds_enumerated: int) -> float:
        if worlds_enumerated <= 0:
            return 1.0
        bound = worlds_enumerated ** (1 - self._exponent) / (self._exponent - 1)
        return bound / self._normalizer

    def moment(self, j: int, terms: int = 10**4, threshold: float = 1e9) -> float:
        """``E(S^j)`` by closed-form partial sums (sizes are just m, so
        no worlds are materialized): infinite when j > k."""
        acc = 0.0
        for m in range(1, terms + 1):
            acc += m**j * self.world_probability(m)
            if acc > threshold:
                return math.inf
        # Integral tail bound on the remainder:
        # Σ_{m>T} m^{j-(k+2)} ≤ T^{j-k-1}/(k+1-j) for j < k+1.
        if j >= self.k + 1:
            return math.inf
        return acc

    def expected_size(self, **_ignored) -> float:
        return self.moment(1)


def moment_gap_pdb(k: int, schema: Optional[Schema] = None) -> MomentGapPDB:
    """Factory for :class:`MomentGapPDB` (Remark 4.10)."""
    return MomentGapPDB(k, schema)


def size_tail_probabilities(
    pdb: CountablePDB, thresholds: List[int], tolerance: float = 1e-6
) -> Dict[int, float]:
    """``P(S_D ≥ n)`` for each threshold — eq. (6): tends to 0 even when
    ``E(S) = ∞``.

    >>> tails = size_tail_probabilities(example_3_3_pdb(), [4, 1024])
    >>> tails[4] > tails[1024]
    True
    """
    return {n: pdb.size_tail(n, tolerance=tolerance) for n in thresholds}


def empirical_size_distribution(samples) -> Dict[int, float]:
    """Empirical ``P(S = n)`` from sampled instances.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> empirical_size_distribution([Instance([R(1)]), Instance()])
    {0: 0.5, 1: 0.5}
    """
    counts: Dict[int, int] = {}
    total = 0
    for instance in samples:
        counts[instance.size] = counts.get(instance.size, 0) + 1
        total += 1
    if total == 0:
        return {}
    return {
        size: count / total for size, count in sorted(counts.items())
    }

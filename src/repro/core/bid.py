"""Countable block-independent-disjoint PDBs — the Theorem 4.15
construction (via Proposition 4.13).

Facts are partitioned into countably many blocks; within a block facts
are mutually exclusive (with remainder mass ``p_⊥^B = 1 − Σ_{f∈B} p_f``
on "no fact of this block"), across blocks independent.  The instance
probability of a *good* instance D (at most one fact per block) is

    P({D}) = Π_B p^B_{β(B, D)}

(bad instances get 0), and the measure exists iff ``Σ_B Σ_{f∈B} p^B_f``
converges (Theorem 4.15) — divergent specifications are rejected.
"""

from __future__ import annotations

import itertools
import math
import random
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.products import product_complement
from repro.core.pdb import CountablePDB
from repro.core.prefix_cache import PrefixCache
from repro.errors import ApproximationError, ConvergenceError, ProbabilityError
from repro.finite.bid import Block, BlockIndependentTable
from repro.relational.facts import Fact
from repro.relational.instance import Instance
from repro.relational.schema import Schema


class BlockFamily:
    """A countable family of blocks with a certified mass tail.

    Parameters
    ----------
    enumerate_blocks:
        Zero-argument callable yielding :class:`Block` objects with
        globally disjoint fact sets, fixed order.
    tail:
        ``tail(n)`` bounds ``Σ`` of the total alternative mass of blocks
        after the first n; must tend to 0 for convergent families.
    total_mass:
        ``Σ_B Σ_{f∈B} p_f`` if known (``math.inf`` for divergent).
    """

    def __init__(
        self,
        enumerate_blocks: Callable[[], Iterator[Block]],
        tail: Callable[[int], float],
        total_mass: Optional[float] = None,
    ):
        self._enumerate = enumerate_blocks
        self._tail = tail
        self._total = total_mass
        self._cache: Optional[PrefixCache] = None
        # Incremental fact → block index over the materialized prefix.
        self._fact_index: Dict[Fact, Block] = {}
        self._fact_index_upto = 0

    def __getstate__(self):
        """Drop the prefix cache (it holds a live generator) and the
        lazy fact→block index derived from it; peers re-materialize
        their own prefix on demand — the same discipline as
        :meth:`repro.core.fact_distribution.FactDistribution.__getstate__`."""
        state = dict(self.__dict__)
        state["_cache"] = None
        state["_fact_index"] = {}
        state["_fact_index_upto"] = 0
        return state

    @classmethod
    def finite(cls, blocks: Sequence[Block]) -> "BlockFamily":
        """A finitely supported family.

        >>> from repro.relational import RelationSymbol
        >>> R = RelationSymbol("R", 1)
        >>> family = BlockFamily.finite([Block("b", {R(1): 0.5})])
        >>> family.total_mass()
        0.5
        """
        blocks = list(blocks)
        masses = [sum(b.alternatives.values()) for b in blocks]
        suffix = [0.0] * (len(blocks) + 1)
        for i in range(len(blocks) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + masses[i]
        return cls(
            lambda: iter(blocks),
            lambda n: suffix[min(n, len(blocks))],
            total_mass=suffix[0],
        )

    @classmethod
    def geometric(
        cls,
        make_block: Callable[[int], Block],
        block_mass: Callable[[int], float],
        first: float,
        ratio: float,
    ) -> "BlockFamily":
        """Countably many blocks where block i (i ≥ 0) has total
        alternative mass ``block_mass(i) ≤ first · ratio^i``."""
        if not 0 <= ratio < 1:
            raise ConvergenceError(f"ratio must be in [0, 1), got {ratio}")

        def enumerate_blocks() -> Iterator[Block]:
            for i in itertools.count():
                yield make_block(i)

        def tail(n: int) -> float:
            return first * ratio**n / (1 - ratio)

        return cls(enumerate_blocks, tail, total_mass=None)

    def blocks(self) -> Iterator[Block]:
        return self._enumerate()

    def prefix_cache(self) -> PrefixCache:
        """The family's materialized block prefix: pairs each enumerated
        block with its total alternative mass, shared by every
        ``prefix``/``prefix_for_tail``/``total_mass`` call and by the
        refinement session."""
        if self._cache is None:
            self._cache = PrefixCache(
                (
                    (block, sum(block.alternatives.values()))
                    for block in self._enumerate()
                ),
                self._tail,
            )
        return self._cache

    def tail(self, n: int) -> float:
        return self._tail(n)

    def total_mass(self) -> float:
        if self._total is not None:
            return self._total
        cache = self.prefix_cache()
        try:
            n = cache.smallest_prefix_for_tail(
                1e-12, 10**6, budget_name="max_blocks", what="block ")
        except ApproximationError:
            # The certified tail never stabilizes within the budget; a
            # finite enumeration that simply ends first still has an
            # exact sum.
            n = cache.extend_to(10**6)
            if not cache.exhausted:
                raise ConvergenceError("block mass sum did not stabilize")
        self._total = cache.cumulative_mass(n)
        return self._total

    @property
    def convergent(self) -> bool:
        try:
            return math.isfinite(self.total_mass()) and math.isfinite(
                self.tail(0)
            )
        except ConvergenceError:
            return False

    def prefix(self, n: int) -> List[Block]:
        """The first n blocks, served from the shared
        :meth:`prefix_cache` materialization."""
        return self.prefix_cache().items(n)

    def prefix_for_tail(self, bound: float, max_blocks: int = 10**6) -> int:
        """Smallest n with ``tail(n) ≤ bound`` — exponential probe +
        bisection over the memoized certified tails (bit-exact vs a
        linear scan because the tail is non-increasing).

        Exhausting ``max_blocks`` raises
        :class:`~repro.errors.ApproximationError` with the achieved tail
        mass — the same certification guard as
        :meth:`repro.core.fact_distribution.FactDistribution.prefix_for_tail`,
        protecting ``approximate_query_probability_bid``'s ``max_blocks``
        path from returning an uncertified block truncation.
        """
        return self.prefix_cache().smallest_prefix_for_tail(
            bound, max_blocks, budget_name="max_blocks", what="block ")

    def _indexed_block_of(self, fact: Fact) -> Optional[Block]:
        """O(1) lookup over the already-materialized prefix (the index
        catches up lazily with the cache)."""
        if self._cache is None:
            return None
        blocks = self._cache.materialized_items()
        while self._fact_index_upto < len(blocks):
            block = blocks[self._fact_index_upto]
            for known in block.alternatives:
                self._fact_index[known] = block
            self._fact_index_upto += 1
        return self._fact_index.get(fact)

    def block_of(self, fact: Fact, max_blocks: int = 10**5) -> Optional[Block]:
        """The block containing ``fact``: constant-time over the
        materialized prefix, bounded transient scan beyond it."""
        found = self._indexed_block_of(fact)
        if found is not None:
            return found
        skip = self._fact_index_upto
        for block in itertools.islice(self.blocks(), skip, max_blocks):
            if fact in block.alternatives:
                return block
        return None


def _weighted_block_choices(
    blocks: List[Block],
) -> Iterator[Tuple[Tuple[Fact, ...], float]]:
    """All good combinations over ``blocks`` (one alternative or ⊥ per
    block), with weight ``Π p_{choice}``.  One multiplication per edge.
    """
    if not blocks:
        yield (), 1.0
        return
    block = blocks[-1]
    for facts, weight in _weighted_block_choices(blocks[:-1]):
        yield facts, weight * block.bottom_mass
        for fact in block.facts():
            yield facts + (fact,), weight * block.alternatives[fact]


class CountableBIDPDB(CountablePDB):
    """A countable BID PDB over a certified block family.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=2)
    >>> R = schema["R"]
    >>> family = BlockFamily.finite([
    ...     Block("k1", {R(1, 1): 0.5, R(1, 2): 0.5}),
    ...     Block("k2", {R(2, 1): 0.25}),
    ... ])
    >>> pdb = CountableBIDPDB(schema, family)
    >>> round(pdb.instance_probability(Instance([R(1, 1)])), 10)
    0.375
    >>> pdb.instance_probability(Instance([R(1, 1), R(1, 2)]))  # bad
    0.0
    """

    def __init__(
        self,
        schema: Schema,
        family: BlockFamily,
        tolerance: float = 1e-12,
    ):
        if not family.convergent:
            raise ConvergenceError(
                "Theorem 4.15: no block-independent-disjoint PDB exists "
                "for a divergent family of block masses"
            )
        self.family = family
        self.tolerance = tolerance
        super().__init__(
            schema,
            self._enumerate_worlds,
            exhaustive=False,
            mass_tail=self._world_mass_tail,
        )

    # ------------------------------------------------------------ closed forms
    def marginal(self, fact: Fact) -> float:
        """``P(E_f) = p_f`` within its block."""
        block = self.family.block_of(fact)
        if block is None:
            return 0.0
        return block.probability(fact)

    def fact_marginal(self, fact: Fact, tolerance: float = 1e-9) -> float:
        return self.marginal(fact)

    def expected_size(self, **_ignored) -> float:
        """``Σ_B Σ_f p_f`` — finite by the Lemma 4.14 criterion."""
        return self.family.total_mass()

    def instance_probability(self, instance: Instance) -> float:
        """The Proposition 4.13 product; 0 for bad instances."""
        n = self.family.prefix_for_tail(self.tolerance)
        blocks = self.family.prefix(n)
        block_index: Dict[str, Block] = {b.name: b for b in blocks}
        chosen: Dict[str, Fact] = {}
        for fact in instance:
            owner = None
            for block in blocks:
                if fact in block.alternatives:
                    owner = block
                    break
            if owner is None:
                # Fact not in any enumerated block: impossible (or in the
                # far tail with mass ≤ tolerance); treat as impossible.
                return 0.0
            if owner.name in chosen:
                return 0.0  # two facts from the same block: bad instance
            chosen[owner.name] = fact
        product = 1.0
        for block in blocks:
            product *= block.probability(chosen.get(block.name))
            if product == 0.0:
                return 0.0
        return product

    # ------------------------------------------------------------ enumeration
    def _enumerate_worlds(self) -> Iterator[Tuple[Instance, float]]:
        """Good instances ordered by the maximal block index they touch.

        For k = 0, 1, …: all good instances whose highest-indexed
        touched block is block k (one alternative from block k, one or
        none from each earlier block).  Masses are built incrementally:
        suffix ⊥-products for the untouched later blocks, per-choice
        weights for the earlier ones.  Blocks beyond the tolerance
        prefix carry total mass ≤ ``self.tolerance``.
        """
        n = self._enumeration_prefix()
        blocks = self.family.prefix(n)
        # suffix[k] = Π_{j ≥ k} p_⊥(block j) over the prefix.
        suffix = [1.0] * (n + 1)
        for j in range(n - 1, -1, -1):
            suffix[j] = suffix[j + 1] * blocks[j].bottom_mass
        yield Instance(), suffix[0]
        for k in range(n):
            block_k = blocks[k]
            for fact_k in block_k.facts():
                base = block_k.alternatives[fact_k] * suffix[k + 1]
                for facts, weight in _weighted_block_choices(blocks[:k]):
                    yield Instance(facts + (fact_k,)), weight * base

    def _enumeration_prefix(self, cap: int = 10**4) -> int:
        """Block prefix length for world enumeration, with progressive
        back-off for slowly converging families (cf. the TI analogue)."""
        for bound in (self.tolerance, 1e-9, 1e-6, 1e-4, 1e-2):
            try:
                return self.family.prefix_for_tail(bound, max_blocks=cap)
            except (ApproximationError, ConvergenceError):
                # Back off on budget exhaustion; the un-enumerated mass
                # stays certified via :meth:`_world_mass_tail`.
                continue
        return cap

    def _world_mass_tail(self, worlds_enumerated: int) -> float:
        """After ``Π_{j<k} (|block_j| + 1)`` worlds, every instance with
        max block index < k has been emitted, so the rest has mass at
        most ``family.tail(k)``.  Uses the true per-block choice counts
        (blocks are not binary, unlike the TI case)."""
        if worlds_enumerated <= 0:
            return 1.0
        if not hasattr(self, "_cumulative_counts"):
            counts = [1]
            for block in self.family.prefix(self._enumeration_prefix()):
                counts.append(counts[-1] * (len(block) + 1))
            self._cumulative_counts = counts
        covered = 0
        for k, needed in enumerate(self._cumulative_counts):
            if worlds_enumerated >= needed:
                covered = k
            else:
                break
        return min(1.0, self.family.tail(covered))

    # ------------------------------------------------------------- truncation
    def truncate(self, n_blocks: int) -> BlockIndependentTable:
        """Finite BID table over the first ``n_blocks`` blocks."""
        return BlockIndependentTable(self.schema, self.family.prefix(n_blocks))

    def extend_truncation(
        self, table: BlockIndependentTable, n_blocks: int
    ) -> int:
        """Grow a table produced by :meth:`truncate` to the first
        ``n_blocks`` blocks *in place* — the result equals
        ``truncate(n_blocks)`` (same blocks, same order) without
        rebuilding the reused prefix.  Returns the number of blocks
        reused (the table's prior size)."""
        reused = len(table.blocks)
        if n_blocks > reused:
            table.extend(
                block
                for block, _ in self.family.prefix_cache().pairs(
                    reused, n_blocks)
            )
        return reused

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random, tolerance: float = 1e-9) -> Instance:
        """One independent choice per block (alternative or ⊥), stopping
        when the remaining blocks' mass is below ``tolerance``."""
        n = self.family.prefix_for_tail(tolerance)
        facts = []
        for block in self.family.prefix(n):
            fact = block.sample(rng)
            if fact is not None:
                facts.append(fact)
        return Instance(facts)

    def __repr__(self) -> str:
        return f"CountableBIDPDB(schema={self.schema!r})"

"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the more specific conditions below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A schema is malformed or a fact/instance violates its schema.

    Raised e.g. for duplicate relation names, non-positive arities, or
    facts whose argument count does not match the relation's arity.
    """


class UniverseError(ReproError):
    """A value does not belong to the expected universe, or a universe
    operation (ranking, enumeration) is applied to an unsupported value."""


class ParseError(ReproError):
    """A textual formula or fact could not be parsed."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        #: Character offset of the error in the input, or -1 if unknown.
        self.position = position


class EvaluationError(ReproError):
    """Query/formula evaluation failed (e.g. unbound free variables or a
    quantifier over an uncomputable domain)."""


class ConvergenceError(ReproError):
    """A series or infinite product required by a construction diverges,
    or convergence could not be certified.

    This is the error that enforces Theorem 4.8 / Theorem 4.15: asking
    for a countable tuple-independent (or BID) PDB whose fact-probability
    series diverges raises :class:`ConvergenceError`.
    """


class ProbabilityError(ReproError):
    """A probability is outside ``[0, 1]``, a distribution does not sum to
    the required mass, or an operation would produce an invalid measure."""


class IndependenceError(ReproError):
    """An independence assumption was violated where it is required
    (e.g. block constraints in BID constructions)."""


class UnsafeQueryError(ReproError):
    """A query is not safe, so no lifted evaluation plan exists for it
    (Dalvi–Suciu dichotomy).

    ``subquery`` carries the (sub)query the safe-plan solver got stuck
    on — the connected component without a separator variable, the
    inclusion–exclusion term whose plan failed, or the whole query when
    it is not even a UCQ.  It is a
    :class:`~repro.logic.normalform.ConjunctiveQuery`, a
    :class:`~repro.logic.normalform.UnionOfConjunctiveQueries`, or None
    when no UCQ structure was recovered.
    """

    def __init__(self, message: str, subquery=None):
        super().__init__(message)
        #: The minimal offending subquery the solver identified (or None).
        self.subquery = subquery


class ApproximationError(ReproError):
    """The approximation machinery of Section 6 cannot meet the requested
    guarantee (e.g. ``epsilon`` outside ``(0, 1/2)``, or the truncation
    search exceeded its budget for a slowly converging tail).

    When a truncation search exhausts its fact/block budget,
    ``achieved_tail`` carries the certified tail mass actually reached —
    so callers can tell how far from the requested guarantee the search
    ended up, instead of silently receiving an uncertified truncation.
    """

    def __init__(self, message: str, achieved_tail: "float | None" = None):
        super().__init__(message)
        #: Tail mass reached when the search budget ran out (or None).
        self.achieved_tail = achieved_tail


class CompletionError(ReproError):
    """A completion (Section 5) is ill-posed: new facts with probability 1,
    original PDB not closed under subsets without an extension mass, or a
    completion-condition check failed."""


class ServeError(ReproError):
    """A serve-layer request cannot be admitted or dispatched: unknown
    session name, duplicate creation, a malformed session spec, or an
    admission-control limit (session count, refinement queue depth)
    reached."""


class SnapshotError(ReproError):
    """A serve-layer snapshot cannot be written or restored: unknown
    envelope format, unsupported snapshot version, or a payload that does
    not contain a session manager."""

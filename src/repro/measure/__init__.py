"""Discrete probability spaces (paper §2.3).

Countable sample spaces with lazily enumerated point masses, an event
algebra, independence checking, random variables and product spaces.
These are the measure-theoretic bones under both the finite PDB engine
and the countable constructions of Sections 4–5.
"""

from repro.measure.space import DiscreteProbabilitySpace, PointMass
from repro.measure.events import Event
from repro.measure.independence import (
    are_independent,
    are_pairwise_independent,
    independence_defect,
)
from repro.measure.random_variables import RandomVariable, expectation, moment
from repro.measure.product import product_space

__all__ = [
    "DiscreteProbabilitySpace",
    "PointMass",
    "Event",
    "are_independent",
    "are_pairwise_independent",
    "independence_defect",
    "RandomVariable",
    "expectation",
    "moment",
    "product_space",
]

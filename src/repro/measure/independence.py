"""Independence of event families (paper §2.3, Definition 4.1).

A collection ``(A_i)`` is independent if ``P(⋂_{i∈M} A_i) = Π P(A_i)``
for every finite ``M``.  On finite/countable spaces we can check this
exactly (up to enumeration tolerance) for every subset of a finite
family — which is how the tests verify Lemma 4.4 (the construction's
events ``E_f`` are independent).
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Hashable, Sequence, Tuple

from repro.measure.events import Event
from repro.measure.space import DiscreteProbabilitySpace


def independence_defect(
    space: DiscreteProbabilitySpace,
    events: Sequence[Event],
    tolerance: float = 1e-9,
) -> float:
    """The largest violation ``|P(⋂ A_i) − Π P(A_i)|`` over all subsets
    of size ≥ 2 of the given (finite) event family.

    >>> space = DiscreteProbabilitySpace.from_dict(
    ...     {(0, 0): 0.25, (0, 1): 0.25, (1, 0): 0.25, (1, 1): 0.25})
    >>> first = Event(lambda o: o[0] == 1)
    >>> second = Event(lambda o: o[1] == 1)
    >>> independence_defect(space, [first, second]) < 1e-12
    True
    """
    marginals = [space.probability(e.predicate, tolerance=tolerance) for e in events]
    worst = 0.0
    for size in range(2, len(events) + 1):
        for subset in combinations(range(len(events)), size):
            joint_event = Event.intersection_of([events[i] for i in subset])
            joint = space.probability(joint_event.predicate, tolerance=tolerance)
            product = 1.0
            for i in subset:
                product *= marginals[i]
            worst = max(worst, abs(joint - product))
    return worst


def are_independent(
    space: DiscreteProbabilitySpace,
    events: Sequence[Event],
    tolerance: float = 1e-7,
) -> bool:
    """True iff the family is independent up to ``tolerance``.

    >>> space = DiscreteProbabilitySpace.from_dict({(0,): 0.5, (1,): 0.5})
    >>> e = Event(lambda o: o[0] == 1)
    >>> are_independent(space, [e, e])   # an event is dependent on itself
    False
    """
    return independence_defect(space, events, tolerance=tolerance) <= tolerance


def are_pairwise_independent(
    space: DiscreteProbabilitySpace,
    events: Sequence[Event],
    tolerance: float = 1e-7,
) -> bool:
    """Pairwise (not mutual) independence — what Lemma 2.5 needs."""
    marginals = [space.probability(e.predicate) for e in events]
    for (i, left), (j, right) in combinations(enumerate(events), 2):
        joint = space.probability((left & right).predicate)
        if abs(joint - marginals[i] * marginals[j]) > tolerance:
            return False
    return True


def mutually_exclusive(
    space: DiscreteProbabilitySpace,
    events: Sequence[Event],
    tolerance: float = 1e-9,
) -> bool:
    """True iff ``P(A_i ∩ A_j) = 0`` for all i ≠ j — the within-block
    condition (1) of Definition 4.11 (BID PDBs)."""
    for left, right in combinations(events, 2):
        if space.probability((left & right).predicate) > tolerance:
            return False
    return True

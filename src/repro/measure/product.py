"""Product of discrete probability spaces.

The proof of Theorem 5.5 builds the completion as a *product
distribution*: ``P′({D ⊎ C}) = P({D}) · P₁({C})`` where D ranges over the
original PDB and C over a fresh tuple-independent PDB on the new facts.
This module provides the generic product; ``repro.core.completion``
specializes it to disjoint unions of instances.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, Optional, Tuple

from repro.measure.space import DiscreteProbabilitySpace
from repro.utils.enumeration import diagonal_product


def product_space(
    left: DiscreteProbabilitySpace,
    right: DiscreteProbabilitySpace,
    combine: Optional[Callable[[Hashable, Hashable], Hashable]] = None,
) -> DiscreteProbabilitySpace:
    """The independent product of two discrete spaces.

    Outcomes are ``combine(a, b)`` (default: the pair ``(a, b)``) with
    mass ``P_left({a}) · P_right({b})``.  If either space is infinite the
    product is enumerated diagonally, so every pair appears after
    finitely many steps and the running mass still converges to 1.

    ``combine`` must be injective on the support for masses to stay
    per-outcome correct (disjoint-union of instances in Theorem 5.5 is
    injective because the two fact sets are disjoint).

    >>> coin = DiscreteProbabilitySpace.from_dict({"H": 0.5, "T": 0.5})
    >>> two = product_space(coin, coin)
    >>> round(two.probability_of(("H", "T")), 10)
    0.25
    """
    if combine is None:
        combine = lambda a, b: (a, b)  # noqa: E731 - tiny adapter

    exhaustive = left.exhaustive and right.exhaustive

    def enumerate_masses() -> Iterator[Tuple[Hashable, float]]:
        if exhaustive:
            for a, mass_a in ((p.outcome, p.mass) for p in left.point_masses()):
                for b, mass_b in (
                    (p.outcome, p.mass) for p in right.point_masses()
                ):
                    yield combine(a, b), mass_a * mass_b
        else:
            pairs = diagonal_product(
                ((p.outcome, p.mass) for p in left.point_masses()),
                ((p.outcome, p.mass) for p in right.point_masses()),
            )
            for (a, mass_a), (b, mass_b) in pairs:
                yield combine(a, b), mass_a * mass_b

    return DiscreteProbabilitySpace(enumerate_masses, exhaustive=exhaustive)

"""Events as predicates with an algebra.

An :class:`Event` wraps a membership predicate on outcomes.  Countable
σ-algebra operations are supported symbolically: complement, finite and
countable unions/intersections (countable ones lazily, evaluated per
outcome).  This mirrors how the paper's generic σ-algebras are generated
from the fact events ``E_f`` / ``E_F``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

Predicate = Callable[[Hashable], bool]


class Event:
    """A measurable event, represented by its indicator predicate.

    >>> even = Event(lambda n: n % 2 == 0, name="even")
    >>> even(4), (~even)(4)
    (True, False)
    >>> (even & Event(lambda n: n > 2))(4)
    True
    """

    __slots__ = ("predicate", "name")

    def __init__(self, predicate: Predicate, name: str = "E"):
        self.predicate = predicate
        self.name = name

    def __call__(self, outcome: Hashable) -> bool:
        return bool(self.predicate(outcome))

    def __invert__(self) -> "Event":
        return Event(lambda o: not self.predicate(o), name=f"¬{self.name}")

    def __and__(self, other: "Event") -> "Event":
        return Event(
            lambda o: self.predicate(o) and other.predicate(o),
            name=f"({self.name} ∩ {other.name})",
        )

    def __or__(self, other: "Event") -> "Event":
        return Event(
            lambda o: self.predicate(o) or other.predicate(o),
            name=f"({self.name} ∪ {other.name})",
        )

    def __sub__(self, other: "Event") -> "Event":
        return Event(
            lambda o: self.predicate(o) and not other.predicate(o),
            name=f"({self.name} − {other.name})",
        )

    def __repr__(self) -> str:
        return f"Event({self.name})"

    @classmethod
    def always(cls) -> "Event":
        """The sure event Ω."""
        return cls(lambda o: True, name="Ω")

    @classmethod
    def never(cls) -> "Event":
        """The null event ∅."""
        return cls(lambda o: False, name="∅")

    @classmethod
    def union_of(cls, events: Iterable["Event"], name: str = "∪") -> "Event":
        """Countable union, evaluated lazily per outcome.

        The iterable is re-materialized eagerly if it is a sequence;
        generators are consumed once and cached.
        """
        events = list(events)
        return cls(lambda o: any(e.predicate(o) for e in events), name=name)

    @classmethod
    def intersection_of(
        cls, events: Iterable["Event"], name: str = "∩"
    ) -> "Event":
        """Countable intersection, evaluated lazily per outcome."""
        events = list(events)
        return cls(lambda o: all(e.predicate(o) for e in events), name=name)

    @classmethod
    def limsup(cls, events: Sequence["Event"], name: str = "limsup") -> "Event":
        """``⋂_i ⋃_{j≥i} E_j`` truncated to the given finite prefix —
        the "infinitely many occur" event of Borel–Cantelli (Lemma 2.5),
        approximated as "at least one occurs in every suffix window"."""
        events = list(events)

        def predicate(outcome: Hashable) -> bool:
            # On a finite prefix, limsup degenerates to the last event
            # window; we interpret it as "some event with index ≥ i occurs
            # for every i", which on a finite list means the last
            # occurring index is the controlling one.
            occurring = [i for i, e in enumerate(events) if e.predicate(outcome)]
            if not occurring:
                return False
            return occurring[-1] == len(events) - 1

        return cls(predicate, name=name)

"""Countable (discrete) probability spaces.

A discrete probability space is fully determined by its point masses
``P({ω})`` (σ-additivity, paper §2.3).  We represent the sample space as
a *deterministic enumeration* of (outcome, mass) pairs: finite spaces
list them eagerly; countably infinite spaces provide a generator ordered
so that the enumerated mass converges to 1 (the enumerator's
responsibility, certified by a tail bound where available).
"""

from __future__ import annotations

import itertools
import random
from typing import (
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    TypeVar,
)

from repro.errors import ProbabilityError
from repro.utils.rationals import validate_probability

Outcome = TypeVar("Outcome", bound=Hashable)


class PointMass(NamedTuple):
    """An outcome with its probability mass."""

    outcome: Hashable
    mass: float


class DiscreteProbabilitySpace(Generic[Outcome]):
    """A countable probability space given by enumerated point masses.

    Parameters
    ----------
    enumerate_masses:
        Zero-argument callable returning a fresh iterator of
        ``(outcome, mass)`` pairs; outcomes must be distinct and masses
        non-negative.  For infinite spaces the running mass must tend
        to 1.
    exhaustive:
        True iff the enumeration terminates (finite space).  Finite
        spaces are checked to sum to 1 (within tolerance) on first use.

    >>> space = DiscreteProbabilitySpace.from_dict({"a": 0.5, "b": 0.5})
    >>> space.probability_of("a")
    0.5
    >>> space.total_mass()
    1.0
    """

    #: Tolerance on total mass for finite spaces.
    MASS_TOLERANCE = 1e-9

    def __init__(
        self,
        enumerate_masses: Callable[[], Iterator[Tuple[Outcome, float]]],
        exhaustive: bool,
        mass_tail: Optional[Callable[[int], float]] = None,
    ):
        self._enumerate = enumerate_masses
        self.exhaustive = exhaustive
        self._mass_tail = mass_tail
        self._finite_cache: Optional[Dict[Outcome, float]] = None
        if exhaustive:
            self._materialize()

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_dict(cls, masses: Dict[Outcome, float]) -> "DiscreteProbabilitySpace":
        """Finite space from an outcome → mass mapping."""
        items = list(masses.items())
        return cls(lambda: iter(items), exhaustive=True)

    @classmethod
    def degenerate(cls, outcome: Outcome) -> "DiscreteProbabilitySpace":
        """The Dirac measure at a single outcome."""
        return cls.from_dict({outcome: 1.0})

    @classmethod
    def mixture(
        cls,
        components: "list[tuple[float, DiscreteProbabilitySpace]]",
    ) -> "DiscreteProbabilitySpace":
        """The convex mixture ``Σ w_i · P_i`` (weights summing to 1).

        This is the Example 2.4 construction: a measure on ``Σ* ∪ ℝ``
        mixing a word distribution and a (here: discretized) real
        distribution with weights ½/½.  Component supports may overlap;
        masses add.  Infinite components are interleaved.

        >>> words = DiscreteProbabilitySpace.from_dict({"a": 1.0})
        >>> reals = DiscreteProbabilitySpace.from_dict({1.5: 1.0})
        >>> mixed = DiscreteProbabilitySpace.mixture(
        ...     [(0.5, words), (0.5, reals)])
        >>> mixed.probability_of("a")
        0.5
        """
        components = list(components)
        total = sum(weight for weight, _ in components)
        if abs(total - 1.0) > cls.MASS_TOLERANCE:
            raise ProbabilityError(f"mixture weights sum to {total}, not 1")
        if any(weight < 0 for weight, _ in components):
            raise ProbabilityError("mixture weights must be non-negative")
        exhaustive = all(space.exhaustive for _, space in components)
        if exhaustive:
            masses: Dict[Outcome, float] = {}
            for weight, space in components:
                for point in space.point_masses():
                    masses[point.outcome] = (
                        masses.get(point.outcome, 0.0) + weight * point.mass
                    )
            return cls.from_dict(masses)

        def enumerate_masses() -> Iterator[Tuple[Outcome, float]]:
            iterators = [
                (weight, space.point_masses())
                for weight, space in components
            ]
            while iterators:
                alive = []
                for weight, iterator in iterators:
                    try:
                        point = next(iterator)
                    except StopIteration:
                        continue
                    yield point.outcome, weight * point.mass
                    alive.append((weight, iterator))
                iterators = alive

        mixed = cls(enumerate_masses, exhaustive=False)
        # Overlapping supports may repeat outcomes in the lazy stream;
        # point-mass queries must aggregate.
        mixed.probability_of = (  # type: ignore[assignment]
            lambda outcome: mixed.probability(lambda o: o == outcome)
        )
        return mixed

    @classmethod
    def uniform(cls, outcomes: Iterable[Outcome]) -> "DiscreteProbabilitySpace":
        """Uniform distribution on a finite outcome list."""
        outcomes = list(outcomes)
        if not outcomes:
            raise ProbabilityError("uniform distribution needs outcomes")
        mass = 1.0 / len(outcomes)
        return cls.from_dict({o: mass for o in outcomes})

    # ---------------------------------------------------------------- internal
    def _materialize(self) -> Dict[Outcome, float]:
        if self._finite_cache is None:
            cache: Dict[Outcome, float] = {}
            for outcome, mass in self._enumerate():
                if mass < 0:
                    raise ProbabilityError(f"negative mass {mass} at {outcome!r}")
                if outcome in cache:
                    raise ProbabilityError(f"duplicate outcome {outcome!r}")
                cache[outcome] = mass
            total = sum(cache.values())
            if abs(total - 1.0) > self.MASS_TOLERANCE:
                raise ProbabilityError(
                    f"finite space total mass {total} differs from 1"
                )
            self._finite_cache = cache
        return self._finite_cache

    # ----------------------------------------------------------------- queries
    def point_masses(self) -> Iterator[PointMass]:
        """Enumerate (outcome, mass) pairs; fresh iterator each call."""
        if self._finite_cache is not None:
            source: Iterable[Tuple[Outcome, float]] = self._finite_cache.items()
        else:
            source = self._enumerate()
        for outcome, mass in source:
            yield PointMass(outcome, mass)

    def outcomes(self) -> Iterator[Outcome]:
        for point in self.point_masses():
            yield point.outcome

    def probability_of(self, outcome: Outcome) -> float:
        """``P({outcome})``.

        For infinite spaces this scans the enumeration; prefer subclass
        overrides with closed forms (the PDB constructions provide them).
        """
        if self._finite_cache is not None:
            return self._finite_cache.get(outcome, 0.0)
        for point in self.point_masses():
            if point.outcome == outcome:
                return point.mass
        return 0.0

    def probability(
        self,
        event: Callable[[Outcome], bool],
        tolerance: float = 1e-9,
        max_outcomes: int = 10**6,
    ) -> float:
        """``P({ω : event(ω)})`` by enumeration.

        For finite spaces this is exact; for infinite spaces enumeration
        stops when the un-enumerated mass (1 − running total, or the
        certified tail) is below ``tolerance``, giving that additive
        accuracy.
        """
        acc = 0.0
        seen_mass = 0.0
        for index, point in enumerate(self.point_masses()):
            if event(point.outcome):
                acc += point.mass
            seen_mass += point.mass
            if not self.exhaustive:
                remaining = (
                    self._mass_tail(index + 1)
                    if self._mass_tail is not None
                    else 1.0 - seen_mass
                )
                if remaining <= tolerance:
                    return acc
                if index + 1 >= max_outcomes:
                    raise ProbabilityError(
                        f"enumerated {max_outcomes} outcomes, remaining mass "
                        f"~{remaining:.3g} still above tolerance {tolerance}"
                    )
        return acc

    def total_mass(self, max_outcomes: int = 10**6) -> float:
        """Sum of enumerated masses (≈1; exactly summed for finite)."""
        if self._finite_cache is not None:
            return sum(self._finite_cache.values())
        return sum(
            point.mass
            for point in itertools.islice(self.point_masses(), max_outcomes)
        )

    def support(self, max_outcomes: int = 10**6) -> List[Outcome]:
        """Outcomes with positive mass (finite spaces, or a prefix)."""
        out = []
        for point in itertools.islice(self.point_masses(), max_outcomes):
            if point.mass > 0:
                out.append(point.outcome)
        return out

    # ---------------------------------------------------------------- sampling
    def sample(self, rng: random.Random) -> Outcome:
        """Draw one outcome via inverse transform over the enumeration."""
        u = rng.random()
        acc = 0.0
        last: Optional[Outcome] = None
        for point in self.point_masses():
            acc += point.mass
            last = point.outcome
            if u < acc:
                return point.outcome
        if last is None:
            raise ProbabilityError("cannot sample from an empty space")
        return last  # numeric slack: return the final outcome

    def sample_many(self, n: int, rng: random.Random) -> List[Outcome]:
        return [self.sample(rng) for _ in range(n)]

    # ------------------------------------------------------------- combinators
    def map(self, function: Callable[[Outcome], Hashable]) -> "DiscreteProbabilitySpace":
        """Pushforward measure under ``function`` (image distribution).

        This is the semantics of views on countable PDBs, eq. (3) of the
        paper: ``P′({D′}) = P(V⁻¹(D′))``.

        >>> space = DiscreteProbabilitySpace.from_dict({1: 0.3, -1: 0.7})
        >>> space.map(abs).probability_of(1)
        1.0
        """
        if self.exhaustive:
            masses: Dict[Hashable, float] = {}
            for point in self.point_masses():
                image = function(point.outcome)
                masses[image] = masses.get(image, 0.0) + point.mass
            return DiscreteProbabilitySpace.from_dict(masses)

        def enumerate_pushforward() -> Iterator[Tuple[Hashable, float]]:
            # Lazy grouping: accumulate masses of already-seen images and
            # re-emit corrected pairs is not possible in a single pass, so
            # we emit per-preimage masses; probability_of/probability
            # aggregate them.  Duplicate outcomes are therefore allowed in
            # the *lazy* representation; we mark it non-exhaustive.
            for point in self.point_masses():
                yield function(point.outcome), point.mass

        pushforward = DiscreteProbabilitySpace(
            enumerate_pushforward, exhaustive=False, mass_tail=self._mass_tail
        )
        # Lazy pushforwards may repeat outcomes; probability_of must sum.
        pushforward.probability_of = (  # type: ignore[assignment]
            lambda outcome: pushforward.probability(lambda o: o == outcome)
        )
        return pushforward

    def condition(
        self, event: Callable[[Outcome], bool]
    ) -> "DiscreteProbabilitySpace":
        """The conditional space ``P(· | event)``; finite spaces only.

        >>> space = DiscreteProbabilitySpace.from_dict({1: 0.2, 2: 0.8})
        >>> space.condition(lambda o: o == 2).probability_of(2)
        1.0
        """
        if not self.exhaustive:
            raise ProbabilityError(
                "exact conditioning requires a finite space; use "
                "probability() ratios for infinite spaces"
            )
        masses = {
            point.outcome: point.mass
            for point in self.point_masses()
            if event(point.outcome)
        }
        total = sum(masses.values())
        if total <= 0:
            raise ProbabilityError("conditioning on a null event")
        return DiscreteProbabilitySpace.from_dict(
            {o: m / total for o, m in masses.items()}
        )

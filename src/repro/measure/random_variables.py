"""Random variables on discrete spaces: expectation, moments, and the
instance-size variable ``S_D`` of paper §3.2.

Linearity of expectation for countable sums of non-negative RVs (used in
eq. (5): ``E(S_D) = Σ_f P(E_f)``) is exercised by the tests.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Hashable, Iterator, Optional

from repro.errors import ProbabilityError
from repro.measure.space import DiscreteProbabilitySpace


class RandomVariable:
    """A real-valued function on outcomes, bound to no particular space.

    >>> X = RandomVariable(lambda o: o * 2.0, name="double")
    >>> X(3)
    6.0
    """

    __slots__ = ("function", "name")

    def __init__(self, function: Callable[[Hashable], float], name: str = "X"):
        self.function = function
        self.name = name

    def __call__(self, outcome: Hashable) -> float:
        return float(self.function(outcome))

    def __add__(self, other: "RandomVariable") -> "RandomVariable":
        return RandomVariable(
            lambda o: self(o) + other(o), name=f"({self.name}+{other.name})"
        )

    def __mul__(self, scalar: float) -> "RandomVariable":
        return RandomVariable(
            lambda o: self(o) * scalar, name=f"({scalar}·{self.name})"
        )

    __rmul__ = __mul__

    def power(self, k: int) -> "RandomVariable":
        """``X^k`` — for the moment conditions of Remark 4.10."""
        return RandomVariable(lambda o: self(o) ** k, name=f"{self.name}^{k}")

    def __repr__(self) -> str:
        return f"RandomVariable({self.name})"

    @classmethod
    def indicator(cls, predicate: Callable[[Hashable], bool], name: str = "1") -> "RandomVariable":
        """The 0/1 indicator of an event; E[1_A] = P(A)."""
        return cls(lambda o: 1.0 if predicate(o) else 0.0, name=name)


def expectation(
    space: DiscreteProbabilitySpace,
    variable: RandomVariable,
    tolerance: float = 1e-9,
    max_outcomes: int = 10**6,
    allow_infinite: bool = True,
) -> float:
    """``E[X] = Σ_ω X(ω) P({ω})`` by enumeration.

    For infinite spaces the sum runs until the remaining mass is below
    ``tolerance``; if ``X`` is unbounded this is only a *partial* sum —
    a divergent expectation (Example 3.3) shows up as estimates growing
    without bound as the tolerance shrinks, not as an automatic
    ``inf``.  Returns ``math.inf`` when partial sums exceed
    ``1/tolerance`` and ``allow_infinite`` (which catches fast
    divergence like Example 3.3's ``2^n`` worlds).

    >>> space = DiscreteProbabilitySpace.from_dict({0: 0.5, 10: 0.5})
    >>> expectation(space, RandomVariable(float))
    5.0
    """
    acc = 0.0
    seen_mass = 0.0
    for index, point in enumerate(space.point_masses()):
        acc += variable(point.outcome) * point.mass
        seen_mass += point.mass
        if allow_infinite and acc > 1.0 / tolerance:
            return math.inf
        if not space.exhaustive:
            if 1.0 - seen_mass <= tolerance:
                return acc
            if index + 1 >= max_outcomes:
                raise ProbabilityError(
                    f"expectation did not stabilize in {max_outcomes} outcomes"
                )
    return acc


def moment(
    space: DiscreteProbabilitySpace,
    variable: RandomVariable,
    k: int,
    tolerance: float = 1e-9,
) -> float:
    """The k-th raw moment ``E[X^k]`` (Remark 4.10 uses k ≥ 2).

    >>> space = DiscreteProbabilitySpace.from_dict({1: 0.5, 3: 0.5})
    >>> moment(space, RandomVariable(float), 2)
    5.0
    """
    return expectation(space, variable.power(k), tolerance=tolerance)


def variance(
    space: DiscreteProbabilitySpace,
    variable: RandomVariable,
    tolerance: float = 1e-9,
) -> float:
    """``Var[X] = E[X²] − E[X]²``."""
    mean = expectation(space, variable, tolerance=tolerance)
    if math.isinf(mean):
        return math.inf
    second = moment(space, variable, 2, tolerance=tolerance)
    return second - mean * mean


def empirical_expectation(samples, variable: RandomVariable) -> float:
    """Monte-Carlo estimate ``(1/n) Σ X(sample_i)``."""
    samples = list(samples)
    if not samples:
        raise ProbabilityError("empirical expectation of no samples")
    return sum(variable(s) for s in samples) / len(samples)

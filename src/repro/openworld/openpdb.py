"""OpenPDBs: λ-completions of finite TI tables over a finite universe.

Ceylan et al. define an OpenPDB ``G = (P, λ)`` as the *set* of all finite
TI PDBs obtained from P by assigning each unlisted fact (over the fixed
finite universe) any probability in ``[0, λ]``.  This module represents
G and enumerates its extreme completions — each unlisted fact at 0 or at
λ — which suffice to compute credal bounds for monotone queries.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProbabilityError, SchemaError
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational.facts import Fact
from repro.relational.schema import Schema
from repro.universe.base import Universe
from repro.universe.factspace import FactSpace
from repro.utils.rationals import validate_probability


class OpenPDB:
    """An OpenPDB ``(P, λ)`` over a finite universe.

    >>> from repro.universe import FiniteUniverse
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> g = OpenPDB(
    ...     TupleIndependentTable(schema, {R("a"): 0.8}),
    ...     lambd=0.1,
    ...     universe=FiniteUniverse(["a", "b"]),
    ... )
    >>> [str(f) for f in g.open_facts()]
    ["R('b')"]
    """

    def __init__(
        self,
        table: TupleIndependentTable,
        lambd: float,
        universe: Universe,
        position_universes: Optional[Mapping[str, Sequence[Universe]]] = None,
    ):
        validate_probability(lambd, what="lambda threshold")
        if not universe.finite and position_universes is None:
            raise SchemaError(
                "OpenPDBs require a finite universe; the infinite case is "
                "exactly what the paper's Theorem 5.5 generalizes"
            )
        self.table = table
        self.lambd = float(lambd)
        self.universe = universe
        self._fact_space = FactSpace(
            table.schema, universe, position_universes=position_universes
        )
        if not self._fact_space.finite:
            raise SchemaError("OpenPDB fact space must be finite")

    def open_facts(self) -> List[Fact]:
        """The unlisted facts — those free to take mass in ``[0, λ]``."""
        listed = set(self.table.marginals)
        return [
            fact for fact in self._fact_space.enumerate() if fact not in listed
        ]

    def lower_completion(self) -> TupleIndependentTable:
        """Every open fact at probability 0 — the closed-world member."""
        return self.table

    def upper_completion(self) -> TupleIndependentTable:
        """Every open fact at probability λ."""
        marginals: Dict[Fact, float] = dict(self.table.marginals)
        for fact in self.open_facts():
            marginals[fact] = self.lambd
        return TupleIndependentTable(self.table.schema, marginals)

    def extreme_completions(
        self, max_open_facts: int = 16
    ) -> Iterator[TupleIndependentTable]:
        """All 2^m completions with each open fact at 0 or λ.

        For monotone queries the credal bounds are attained at the two
        completions above; for general queries the optimum is at *some*
        extreme point of the credal set (linearity in each fact's
        probability), which this enumeration covers.
        """
        open_facts = self.open_facts()
        if len(open_facts) > max_open_facts:
            raise ProbabilityError(
                f"{len(open_facts)} open facts would give "
                f"{2 ** len(open_facts)} extreme completions"
            )
        for assignment in itertools.product((0.0, self.lambd), repeat=len(open_facts)):
            marginals = dict(self.table.marginals)
            for fact, probability in zip(open_facts, assignment):
                if probability > 0:
                    marginals[fact] = probability
            yield TupleIndependentTable(self.table.schema, marginals)

    def __repr__(self) -> str:
        return (
            f"OpenPDB(listed={len(self.table.marginals)}, "
            f"lambda={self.lambd}, universe={self.universe!r})"
        )

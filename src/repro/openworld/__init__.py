"""The OpenPDB model of Ceylan, Darwiche & Van den Broeck (KR 2016) —
the finite-universe open-world baseline the paper generalizes.

An OpenPDB is a finite TI table plus a threshold λ: facts over the
*finite* universe that are not listed may take any probability in
``[0, λ]``.  Queries get *credal* interval semantics ``[P_min, P_max]``.
The paper's Theorem 5.5 recovers this as the special case of a finite
universe, and generalizes the fixed λ to the summands of a convergent
series (paper §5.1 closing remarks).
"""

from repro.openworld.openpdb import OpenPDB
from repro.openworld.credal import CredalInterval, credal_query_probability

__all__ = ["OpenPDB", "CredalInterval", "credal_query_probability"]

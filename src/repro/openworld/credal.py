"""Credal (interval) query semantics for OpenPDBs.

A query's probability under an OpenPDB is an interval
``[P_min, P_max]`` over all completions of the credal set.  Because the
query probability is multilinear in the individual fact probabilities,
the extrema are attained at extreme completions (each open fact at 0 or
λ); for *monotone* queries (UCQs — no negation) they are attained at the
all-0 and all-λ completions directly.
"""

from __future__ import annotations

import math
from typing import NamedTuple

from repro.finite.evaluation import query_probability
from repro.logic.analysis import is_positive
from repro.logic.queries import BooleanQuery
from repro.openworld.openpdb import OpenPDB


class CredalInterval(NamedTuple):
    """The interval ``[low, high]`` of attainable query probabilities."""

    low: float
    high: float

    def contains(self, value: float) -> bool:
        return self.low - 1e-12 <= value <= self.high + 1e-12

    @property
    def width(self) -> float:
        return self.high - self.low


def credal_query_probability(
    query: BooleanQuery,
    open_pdb: OpenPDB,
    strategy: str = "auto",
    max_open_facts: int = 12,
) -> CredalInterval:
    """``[P_min(Q), P_max(Q)]`` over the OpenPDB's credal set.

    Monotone (negation-free) queries use the two canonical extreme
    completions; general queries enumerate all extreme completions.

    >>> from repro.relational import Schema
    >>> from repro.universe import FiniteUniverse
    >>> from repro.finite.tuple_independent import TupleIndependentTable
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> g = OpenPDB(TupleIndependentTable(schema, {R("a"): 0.8}),
    ...             lambd=0.5, universe=FiniteUniverse(["a", "b"]))
    >>> q = BooleanQuery(parse_formula("R('b')", schema), schema)
    >>> credal_query_probability(q, g)
    CredalInterval(low=0.0, high=0.5)
    """
    if is_positive(query.formula):
        low = query_probability(query, open_pdb.lower_completion(), strategy=strategy)
        high = query_probability(query, open_pdb.upper_completion(), strategy=strategy)
        return CredalInterval(low, high)
    low, high = math.inf, -math.inf
    for completion in open_pdb.extreme_completions(max_open_facts=max_open_facts):
        value = query_probability(query, completion, strategy=strategy)
        low = min(low, value)
        high = max(high, value)
    return CredalInterval(low, high)

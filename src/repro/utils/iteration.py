"""Generic iterator tools shared across the library."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Hashable, Iterable, Iterator, List, Optional, TypeVar

T = TypeVar("T")


def take(n: int, iterable: Iterable[T]) -> List[T]:
    """Return the first ``n`` elements of ``iterable`` as a list.

    >>> take(3, iter(range(100)))
    [0, 1, 2]
    """
    if n < 0:
        raise ValueError("take requires n >= 0")
    return list(itertools.islice(iterable, n))


def merge_sorted(
    iterables: Iterable[Iterable[T]],
    key: Optional[Callable[[T], object]] = None,
    reverse: bool = False,
) -> Iterator[T]:
    """Merge already-sorted iterables into one sorted stream.

    A thin wrapper over :func:`heapq.merge`; exists so call sites read as
    intent rather than as a stdlib reference.
    """
    return heapq.merge(*iterables, key=key, reverse=reverse)


def unique_everseen(
    iterable: Iterable[T], key: Optional[Callable[[T], Hashable]] = None
) -> Iterator[T]:
    """Yield elements of ``iterable``, skipping any already yielded.

    >>> list(unique_everseen([1, 2, 1, 3, 2]))
    [1, 2, 3]
    """
    seen = set()
    for element in iterable:
        marker = element if key is None else key(element)
        if marker not in seen:
            seen.add(marker)
            yield element


def pairwise_disjoint(sets: Iterable[frozenset]) -> bool:
    """True iff the given finite collection of sets is pairwise disjoint.

    >>> pairwise_disjoint([frozenset({1}), frozenset({2, 3})])
    True
    >>> pairwise_disjoint([frozenset({1, 2}), frozenset({2, 3})])
    False
    """
    seen: set = set()
    for s in sets:
        if seen & s:
            return False
        seen |= s
    return True


def powerset(items: Iterable[T]) -> Iterator[frozenset]:
    """All subsets of a finite collection, smallest first.

    >>> sorted(len(s) for s in powerset([1, 2]))
    [0, 1, 1, 2]
    """
    pool = list(items)
    for r in range(len(pool) + 1):
        for combo in itertools.combinations(pool, r):
            yield frozenset(combo)

"""Shared probability arithmetic: complements, disjunctions, log space.

Every engine in the repo keeps meeting the same two quantities —

* the *complement product* ``Π (1 − p_i)`` (empty-world probability,
  Theorem 4.8 absent-fact factor, Shannon pivot weights), and
* the *independent disjunction* ``1 − Π (1 − p_i)`` (independent
  project/union folds of the lifted evaluator, block remainders) —

and before this module each call site re-implemented the naive
``complement *= 1.0 - p`` loop.  That loop is wrong twice at scale: for
``p`` below one ulp of 1.0 the factor ``1 − p`` rounds to exactly 1.0
(so 10⁵ facts of marginal 1e-20 "contribute nothing" instead of the
true ≈1e-15), and long products underflow to 0.0 past ~1e-308.

This module is the single home for that arithmetic.  The policy is the
one :func:`product_complement` has always used (moved here verbatim from
``repro.analysis.products``, which now re-exports it):

* multiply directly — one rounding per factor keeps dyadic marginals
  **bit-exact**, which is what lets the exact query strategies agree to
  the last ulp;
* accumulate in log space only where direct multiplication loses
  information: probabilities below 1e-16 (``log1p(−p) = −p`` to double
  precision there) and products at the edge of underflow (< 1e-300).

:class:`ComplementAccumulator` is the streaming form of the same policy,
for evaluator loops that need early exit; the ``vector_*`` helpers are
the batch form over numpy arrays for the columnar fast path
(:mod:`repro.relational.columns`).

>>> product_complement([0.5, 0.5])
0.25
>>> disjunction([0.5, 0.5])
0.75
>>> disjunction([1e-20] * 10) > 0.0   # the naive loop returns 0.0 here
True
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Optional, Sequence

from repro.errors import ConvergenceError

__all__ = [
    "ComplementAccumulator",
    "disjunction",
    "log_product_complement",
    "numpy_or_none",
    "product_complement",
    "segmented_complement_product",
    "segmented_disjunction",
    "segmented_log_complement",
    "vector_complement_product",
    "vector_disjunction",
    "vector_log_complement",
]

#: Below this, ``1 − p`` rounds to exactly 1.0 (one ulp of 1.0 is
#: ~2.2e-16); such factors are accumulated in log space instead, where
#: ``log1p(−p) = −p`` to double precision.
TINY_PROBABILITY = 1e-16
#: Products below this are within ~8 factors of underflowing to 0.0;
#: the running product is folded into the log residual and restarted.
UNDERFLOW_FLOOR = 1e-300


_NUMPY_PROBE_LOCK = threading.Lock()
_NUMPY_UNPROBED = object()
_numpy_probe = _NUMPY_UNPROBED


def numpy_or_none():
    """The imported numpy module, or None without the ``[fast]`` extra.

    Probed exactly once per process, under a lock: concurrent first
    imports of a *failing* numpy (e.g. a raising stub on the path)
    can transiently leave a half-initialized module in ``sys.modules``,
    letting two threads disagree on availability — and a
    ``resolve_backend("auto")`` that says ``"numpy"`` while the next
    call says absent crashes mid-construction.  Memoizing pins one
    answer for the process lifetime.
    """
    global _numpy_probe
    if _numpy_probe is _NUMPY_UNPROBED:
        with _NUMPY_PROBE_LOCK:
            if _numpy_probe is _NUMPY_UNPROBED:
                try:
                    import numpy
                except ImportError:
                    _numpy_probe = None
                else:
                    _numpy_probe = numpy
    return _numpy_probe


class ComplementAccumulator:
    """Streaming ``Π (1 − p_i)`` with the hybrid direct/log-space policy.

    Feeds one probability at a time — the form the lifted evaluator's
    union/project folds need, where each ``p_i`` is itself a recursive
    plan evaluation and a factor of 0 should short-circuit the loop.

    The running state is ``product · exp(residual_log)``: ``product``
    collects ordinary factors by direct multiplication (bit-identical to
    the historical ``complement *= 1.0 - p`` loop on such inputs), while
    ``residual_log`` collects the factors direct multiplication would
    drop — tiny probabilities and underflowed partial products.

    >>> acc = ComplementAccumulator()
    >>> for p in (0.5, 0.25):
    ...     acc.add(p)
    >>> acc.complement()
    0.375
    >>> acc.disjunction()
    0.625
    >>> acc = ComplementAccumulator()
    >>> for p in [1e-20] * 100000:
    ...     acc.add(p)
    >>> round(acc.disjunction() / 1e-15, 6)   # naive loop: exactly 0.0
    1.0
    """

    __slots__ = ("product", "residual_log", "_zero")

    def __init__(self) -> None:
        self.product = 1.0
        self.residual_log = 0.0
        self._zero = False

    def add(self, probability: float) -> None:
        """Fold one factor ``1 − probability`` into the product."""
        if probability >= 1.0:
            self._zero = True
            return
        if probability < TINY_PROBABILITY:
            if probability > 0.0:
                self.residual_log -= probability
            return
        self.product *= 1.0 - probability
        if self.product < UNDERFLOW_FLOOR:
            self.residual_log += math.log(self.product)
            self.product = 1.0

    @property
    def is_zero(self) -> bool:
        """True once a factor of 1.0 made the whole product 0."""
        return self._zero

    def complement(self) -> float:
        """The product ``Π (1 − p_i)`` folded so far."""
        if self._zero:
            return 0.0
        if self.residual_log == 0.0:
            return self.product
        return self.product * math.exp(self.residual_log)

    def disjunction(self) -> float:
        """``1 − Π (1 − p_i)`` — exact where the subtraction would
        cancel (all mass in the log residual) via ``−expm1``."""
        if self._zero:
            return 1.0
        if self.residual_log == 0.0:
            # Bit-identical to the historical ``1.0 - complement`` exit.
            return 1.0 - self.product
        if self.product == 1.0:
            return -math.expm1(self.residual_log)
        return -math.expm1(math.log(self.product) + self.residual_log)


def product_complement(probabilities: Iterable[float]) -> float:
    """Finite product ``Π (1 − p_i)`` for probabilities ``p_i ∈ [0, 1]``.

    Multiplies directly — one rounding per factor, so dyadic marginals
    stay *bit-exact* (which lets the exact query-evaluation strategies
    agree to the last ulp) and the hot path of world expansion skips a
    ``log1p``/``exp`` round-trip per fact.  Probabilities below one ulp
    of 1.0 (where ``1 − p`` would round to 1) and products at the edge
    of underflow are accumulated in log space as before.

    >>> product_complement([0.5, 0.5])
    0.25
    >>> product_complement([1.0, 0.3])
    0.0
    """
    product = 1.0
    residual_log = 0.0
    for p in probabilities:
        if not 0 <= p <= 1:
            raise ConvergenceError(f"probability {p} outside [0, 1]")
        if p == 1.0:
            return 0.0
        if p < TINY_PROBABILITY:
            # 1 − p rounds to 1.0; log1p(−p) is −p to double precision.
            residual_log -= p
            continue
        product *= 1.0 - p
        if product < UNDERFLOW_FLOOR:
            residual_log += math.log(product)
            product = 1.0
    if residual_log == 0.0:
        return product
    return product * math.exp(residual_log)


def disjunction(probabilities: Iterable[float]) -> float:
    """Independent disjunction ``1 − Π (1 − p_i)``.

    The complement goes through :func:`product_complement`'s hybrid
    policy, and when the whole product lives in the log residual the
    subtraction happens as ``−expm1`` — so a sea of tiny marginals sums
    instead of vanishing.

    >>> disjunction([0.5, 0.5])
    0.75
    >>> disjunction([])
    0.0
    >>> round(disjunction([1e-20] * 100000) / 1e-15, 6)
    1.0
    """
    acc = ComplementAccumulator()
    for p in probabilities:
        if not 0 <= p <= 1:
            raise ConvergenceError(f"probability {p} outside [0, 1]")
        acc.add(p)
        if acc.is_zero:
            return 1.0
    return acc.disjunction()


def log_product_complement(probabilities: Iterable[float]) -> float:
    """``log Π (1 − p_i) = Σ log1p(−p_i)``; −inf if any ``p_i = 1``.

    >>> log_product_complement([0.5]) == math.log(0.5)
    True
    """
    total = 0.0
    for p in probabilities:
        if not 0 <= p <= 1:
            raise ConvergenceError(f"probability {p} outside [0, 1]")
        if p == 1.0:
            return -math.inf
        total += math.log1p(-p)
    return total


# --------------------------------------------------------------- numpy batch
# The vectorized forms used by the columnar layer.  They take the numpy
# module explicitly so the caller (which already resolved its backend)
# pays the import check once, not per kernel call.

def vector_log_complement(np, marginals) -> float:
    """``Σ log1p(−p_i)`` over a float array; −inf if any ``p_i = 1``."""
    if marginals.size == 0:
        return 0.0
    if float(marginals.max(initial=0.0)) >= 1.0:
        return -math.inf
    return float(np.log1p(-marginals).sum())


def vector_complement_product(np, marginals) -> float:
    """``Π (1 − p_i)`` over a float array, via the log-space sum —
    underflow-free, bit-near (≤1e-12 relative) the sequential product."""
    log_total = vector_log_complement(np, marginals)
    if log_total == -math.inf:
        return 0.0
    return math.exp(log_total)


def vector_disjunction(np, marginals) -> float:
    """``1 − Π (1 − p_i)`` over a float array via ``−expm1(Σ log1p)`` —
    keeps the tiny-marginal mass the elementwise subtraction drops."""
    log_total = vector_log_complement(np, marginals)
    if log_total == -math.inf:
        return 1.0
    return -math.expm1(log_total)


# ----------------------------------------------------------- segmented batch
# Segmented forms for the set-at-a-time plan executor: one call folds
# *many* independent groups at once over contiguous segments
# ``values[offsets[i]:offsets[i+1]]`` (``offsets`` has ``n_groups + 1``
# entries, first 0, last ``len(values)``).  Empty segments fold the
# empty product: complement 1.0, disjunction 0.0, log-complement 0.0.
#
# The numpy path must honour the same hybrid policy as
# :class:`ComplementAccumulator` — in particular per-segment products of
# ordinary factors are *sequential in-order multiplications* (exact on
# dyadic marginals), which is precisely what ``np.multiply.reduceat``
# computes.  Tiny probabilities and underflowed segments move to a log
# residual exactly as the streaming accumulator does, so the two forms
# agree bit-for-bit wherever the accumulator never enters log space.


def _segmented_python(values, offsets):
    """Per-segment ``ComplementAccumulator`` states for the fallback."""
    accs = []
    for start, end in zip(offsets, offsets[1:]):
        acc = ComplementAccumulator()
        for j in range(start, end):
            acc.add(values[j])
            if acc.is_zero:
                break
        accs.append(acc)
    return accs


def _segmented_state(np, values, offsets):
    """Per-segment ``(product, residual_log, is_zero)`` of the hybrid
    complement fold — the vector form of ``ComplementAccumulator``."""
    values = np.asarray(values, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.intp)
    starts = offsets[:-1]
    counts = np.diff(offsets)
    n_segments = len(starts)
    if n_segments == 0:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy(), np.empty(0, dtype=bool)
    ones = values >= 1.0
    tiny = (values > 0.0) & (values < TINY_PROBABILITY)
    # Ordinary factors multiply directly; tiny and saturating entries
    # become the identity here and are folded via the masks below.
    factors = np.where(ones | tiny, 1.0, 1.0 - values)
    # ``reduceat`` quirks: a start index equal to ``len(values)`` raises,
    # and ``start == next_start`` returns the single element instead of
    # the empty product — so pad with one identity element (folding it
    # into the final real segment is exact) and overwrite empty segments
    # from the ``counts`` mask afterwards.
    empty_mask = counts == 0
    products = np.multiply.reduceat(np.append(factors, 1.0), starts)
    products[empty_mask] = 1.0
    residual = np.add.reduceat(np.append(np.where(tiny, -values, 0.0), 0.0), starts)
    residual[empty_mask] = 0.0
    one_counts = np.add.reduceat(np.append(ones, False).astype(np.float64), starts)
    one_counts[empty_mask] = 0.0
    is_zero = one_counts > 0.0
    # Segments whose sequential product slid under the underflow floor
    # lost information the accumulator would have kept (it folds the
    # partial product into the residual and restarts); redo just those
    # segments as a log-space sum.  ``factors`` is strictly positive
    # wherever it is not 1.0 (p < 1 implies 1 − p ≥ 2⁻⁵³), so the log is
    # finite.
    low = (products < UNDERFLOW_FLOOR) & ~is_zero & ~empty_mask
    if bool(low.any()):
        with np.errstate(divide="ignore"):
            log_products = np.add.reduceat(np.append(np.log(factors), 0.0), starts)
        residual = np.where(low, residual + log_products, residual)
        products = np.where(low, 1.0, products)
    return products, residual, is_zero


def segmented_complement_product(np, values, offsets):
    """Per-segment ``Π (1 − p_i)`` over contiguous segments.

    With ``np=None`` runs the pure-Python streaming accumulator per
    segment and returns a list; with numpy returns a float64 array.

    >>> segmented_complement_product(None, [0.5, 0.5, 0.25], [0, 2, 2, 3])
    [0.25, 1.0, 0.75]
    """
    if np is None:
        return [acc.complement() for acc in _segmented_python(values, offsets)]
    products, residual, is_zero = _segmented_state(np, values, offsets)
    # ``exp(0.0) == 1.0`` and multiplying by exactly 1.0 preserves bits,
    # so segments with no residual keep the accumulator's direct product.
    out = products * np.exp(residual)
    return np.where(is_zero, 0.0, out)


def segmented_disjunction(np, values, offsets):
    """Per-segment ``1 − Π (1 − p_i)`` over contiguous segments.

    Matches :meth:`ComplementAccumulator.disjunction` per segment: the
    no-residual exit is the bit-identical ``1.0 − product``, and
    residual-bearing segments go through ``−expm1``.

    >>> segmented_disjunction(None, [0.5, 0.5, 0.25], [0, 2, 2, 3])
    [0.75, 0.0, 0.25]
    """
    if np is None:
        return [acc.disjunction() for acc in _segmented_python(values, offsets)]
    products, residual, is_zero = _segmented_state(np, values, offsets)
    if len(products) == 0:
        return products
    with np.errstate(divide="ignore", invalid="ignore"):
        rescued = -np.expm1(np.log(products) + residual)
    out = np.where(residual == 0.0, 1.0 - products, rescued)
    return np.where(is_zero, 1.0, out)


def segmented_log_complement(np, values, offsets):
    """Per-segment ``Σ log1p(−p_i)``; −inf where any ``p_i ≥ 1``.

    >>> segmented_log_complement(None, [0.5], [0, 1, 1]) == [math.log(0.5), 0.0]
    True
    """
    if np is None:
        out = []
        for start, end in zip(offsets, offsets[1:]):
            total = 0.0
            for j in range(start, end):
                if values[j] >= 1.0:
                    total = -math.inf
                    break
                total += math.log1p(-values[j])
            out.append(total)
        return out
    values = np.asarray(values, dtype=np.float64)
    offsets = np.asarray(offsets, dtype=np.intp)
    starts = offsets[:-1]
    if len(starts) == 0:
        return np.empty(0, dtype=np.float64)
    counts = np.diff(offsets)
    ones = values >= 1.0
    logs = np.log1p(-np.where(ones, 0.0, values))
    totals = np.add.reduceat(np.append(logs, 0.0), starts)
    totals[counts == 0] = 0.0
    one_counts = np.add.reduceat(np.append(ones, False).astype(np.float64), starts)
    one_counts[counts == 0] = 0.0
    return np.where(one_counts > 0.0, -math.inf, totals)


def sum_values(values: Sequence[float], np: Optional[object] = None) -> float:
    """``Σ values`` — ``math.fsum``-free plain sum matching the historic
    dict-path rounding on lists, ``ndarray.sum()`` on arrays."""
    if np is not None and isinstance(values, np.ndarray):
        return float(values.sum())
    return sum(values)

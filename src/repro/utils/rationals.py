"""Exact probability arithmetic helpers.

The theorem-verification parts of the library (measure sums to 1,
completion condition, independence identities) are computed with
:class:`fractions.Fraction` so that equalities proven in the paper can be
checked *exactly* rather than up to floating-point tolerance.  The hot
paths (sampling, large benchmarks) use floats.  These helpers convert and
validate between the two regimes.
"""

from __future__ import annotations

import math
from fractions import Fraction
from numbers import Rational
from typing import Union

from repro.errors import ProbabilityError

Probability = Union[int, float, Fraction]

#: Default tolerance for floating-point probability comparisons.
DEFAULT_TOLERANCE = 1e-12


def as_fraction(value: Probability) -> Fraction:
    """Convert a number to an exact :class:`Fraction`.

    Floats are converted via ``Fraction(value)`` (exact binary expansion),
    which preserves the float's value precisely.

    >>> as_fraction(Fraction(1, 3))
    Fraction(1, 3)
    >>> as_fraction(0.5)
    Fraction(1, 2)
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, Rational):
        return Fraction(value.numerator, value.denominator)
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            raise ProbabilityError(f"cannot convert non-finite float {value!r}")
        return Fraction(value)
    if isinstance(value, int):
        return Fraction(value)
    raise ProbabilityError(f"cannot interpret {value!r} as a probability value")


def is_probability(value: Probability) -> bool:
    """True iff ``value`` lies in the closed interval ``[0, 1]``.

    >>> is_probability(0.3), is_probability(Fraction(7, 5)), is_probability(-0.0)
    (True, False, True)
    """
    try:
        frac = as_fraction(value)
    except ProbabilityError:
        return False
    return 0 <= frac <= 1


def validate_probability(value: Probability, what: str = "probability") -> Probability:
    """Return ``value`` unchanged if it is a valid probability, else raise.

    >>> validate_probability(0.25)
    0.25
    """
    if not is_probability(value):
        raise ProbabilityError(f"{what} must lie in [0, 1], got {value!r}")
    return value


def float_close(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Symmetric absolute/relative closeness test for probabilities.

    >>> float_close(0.1 + 0.2, 0.3)
    True
    """
    return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)


def complement(value: Probability) -> Probability:
    """``1 - value``, preserving exactness of Fractions.

    >>> complement(Fraction(1, 3))
    Fraction(2, 3)
    >>> complement(0.25)
    0.75
    """
    validate_probability(value)
    if isinstance(value, Fraction):
        return Fraction(1) - value
    return 1 - value

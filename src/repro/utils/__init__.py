"""Shared utilities: enumeration combinatorics, exact arithmetic helpers
and generic iterator tools used across the library."""

from repro.utils.enumeration import (
    cantor_pair,
    cantor_unpair,
    diagonal_product,
    interleave,
    kleene_star,
    paper_pair,
)
from repro.utils.iteration import take, merge_sorted, unique_everseen
from repro.utils.rationals import (
    as_fraction,
    float_close,
    is_probability,
    validate_probability,
)

__all__ = [
    "cantor_pair",
    "cantor_unpair",
    "diagonal_product",
    "interleave",
    "kleene_star",
    "paper_pair",
    "take",
    "merge_sorted",
    "unique_everseen",
    "as_fraction",
    "float_close",
    "is_probability",
    "validate_probability",
]

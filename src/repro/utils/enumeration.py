"""Enumeration combinatorics for countable sets.

Countable universes, fact spaces and instance spaces throughout the
library are represented as *deterministic enumerations*: generators that
yield every element exactly once, in a fixed order.  This module collects
the pairing functions and product/star enumerations those representations
are built from.

The pairing function :func:`paper_pair` is the one used in the proof of
Proposition 6.2 of the paper,

    ``⟨m, n⟩ = (m + n − 1)(m + n − 2) / 2 + m``

(a bijection ``ℕ≥1 × ℕ≥1 → ℕ≥1``), while :func:`cantor_pair` is the
standard Cantor pairing on ``ℕ≥0``.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterable, Iterator, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def cantor_pair(x: int, y: int) -> int:
    """Cantor pairing bijection ``ℕ₀² → ℕ₀``.

    >>> cantor_pair(0, 0), cantor_pair(1, 0), cantor_pair(0, 1)
    (0, 1, 2)
    """
    if x < 0 or y < 0:
        raise ValueError("cantor_pair requires non-negative integers")
    return (x + y) * (x + y + 1) // 2 + y


def cantor_unpair(z: int) -> Tuple[int, int]:
    """Inverse of :func:`cantor_pair`.

    >>> all(cantor_unpair(cantor_pair(x, y)) == (x, y)
    ...     for x in range(20) for y in range(20))
    True
    """
    if z < 0:
        raise ValueError("cantor_unpair requires a non-negative integer")
    w = (math.isqrt(8 * z + 1) - 1) // 2
    t = w * (w + 1) // 2
    y = z - t
    x = w - y
    return x, y


def paper_pair(m: int, n: int) -> int:
    """The pairing function ``⟨m, n⟩`` from Proposition 6.2 of the paper.

    A bijection from pairs of *positive* integers to positive integers:
    ``⟨m, n⟩ = (m + n − 1)(m + n − 2)/2 + m``.

    >>> paper_pair(1, 1)
    1
    >>> sorted(paper_pair(m, n) for m in range(1, 4) for n in range(1, 4))
    [1, 2, 3, 4, 5, 6, 8, 9, 13]
    """
    if m < 1 or n < 1:
        raise ValueError("paper_pair requires positive integers")
    s = m + n
    return (s - 1) * (s - 2) // 2 + m


def paper_unpair(k: int) -> Tuple[int, int]:
    """Inverse of :func:`paper_pair` on positive integers.

    >>> all(paper_unpair(paper_pair(m, n)) == (m, n)
    ...     for m in range(1, 15) for n in range(1, 15))
    True
    """
    if k < 1:
        raise ValueError("paper_unpair requires a positive integer")
    # Find the diagonal s = m + n with (s-1)(s-2)/2 < k <= (s-1)(s-2)/2 + (s-1).
    s = 2
    while (s - 1) * (s - 2) // 2 + (s - 1) < k:
        s += 1
    m = k - (s - 1) * (s - 2) // 2
    n = s - m
    return m, n


def diagonal_product(*iterables: Iterable[T]) -> Iterator[Tuple[T, ...]]:
    """Enumerate the cartesian product of countably infinite iterables.

    Unlike :func:`itertools.product`, this works when the inputs are
    infinite: tuples are produced in order of increasing *total index sum*
    (Cantor's diagonal argument), so every tuple appears after finitely
    many steps.

    >>> from itertools import count
    >>> it = diagonal_product(count(), count())
    >>> [next(it) for _ in range(6)]
    [(0, 0), (0, 1), (1, 0), (0, 2), (1, 1), (2, 0)]
    """
    if not iterables:
        yield ()
        return
    caches: List[List[T]] = [[] for _ in iterables]
    iterators = [iter(it) for it in iterables]
    exhausted = [False] * len(iterables)
    k = len(iterables)

    def ensure(i: int, n: int) -> bool:
        """Grow cache i to at least n+1 elements; return True on success."""
        while len(caches[i]) <= n and not exhausted[i]:
            try:
                caches[i].append(next(iterators[i]))
            except StopIteration:
                exhausted[i] = True
        return len(caches[i]) > n

    total = 0
    while True:
        produced = False
        for split in _compositions(total, k):
            if all(ensure(i, split[i]) for i in range(k)):
                produced = True
                yield tuple(caches[i][split[i]] for i in range(k))
        if not produced:
            # Learn exhaustion for every factor (ensure() above may have
            # short-circuited before touching later ones).
            for i in range(k):
                ensure(i, total)
            if any(exhausted[i] and not caches[i] for i in range(k)):
                return  # an empty factor: the product is empty
            if all(exhausted):
                max_total = sum(len(c) - 1 for c in caches)
                if total > max_total:
                    return
        total += 1


def _compositions(total: int, k: int) -> Iterator[Tuple[int, ...]]:
    """All k-tuples of non-negative integers summing to ``total``."""
    if k == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for rest in _compositions(total - head, k - 1):
            yield (head,) + rest


def interleave(*iterables: Iterable[T]) -> Iterator[T]:
    """Fair round-robin interleaving of countably many (finitely listed)
    iterables; exhausted inputs are dropped.

    >>> list(interleave([1, 2, 3], 'ab'))
    [1, 'a', 2, 'b', 3]
    """
    iterators = [iter(it) for it in iterables]
    while iterators:
        alive = []
        for it in iterators:
            try:
                yield next(it)
            except StopIteration:
                continue
            alive.append(it)
        iterators = alive


def kleene_star(alphabet: Sequence[T]) -> Iterator[Tuple[T, ...]]:
    """Enumerate ``Σ*`` in length-lexicographic (shortlex) order.

    Yields tuples of alphabet symbols: the empty word first, then all
    length-1 words in alphabet order, then length-2 words, and so on.

    >>> [''.join(w) for w in take(7, kleene_star('ab'))]
    ['', 'a', 'b', 'aa', 'ab', 'ba', 'bb']
    """
    if not alphabet:
        yield ()
        return
    for length in itertools.count(0):
        for word in itertools.product(alphabet, repeat=length):
            yield word


# Re-exported here to keep doctests self-contained.
def take(n: int, iterable: Iterable[T]) -> List[T]:
    """Return the first ``n`` elements of ``iterable`` as a list."""
    return list(itertools.islice(iterable, n))

"""Loading and saving probabilistic tables.

Two interchange formats:

* **Fact lines** — one ``R(arg, …) : p`` per line, ``#`` comments; the
  human-friendly format used in docs and tests.
* **JSON** — a dict with ``schema`` (name → arity), ``facts``
  (list of ``[relation, args, probability]``) and, for BID tables,
  ``blocks`` (name → list of fact entries).

Round-trips preserve marginals exactly up to float formatting.
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, TextIO, Tuple, Union

from repro.errors import ParseError, SchemaError
from repro.finite.bid import Block, BlockIndependentTable
from repro.finite.tuple_independent import TupleIndependentTable
from repro.relational.facts import Fact, parse_fact
from repro.relational.schema import RelationSymbol, Schema


# ------------------------------------------------------------------ fact lines
def parse_fact_lines(text: str, schema: Schema) -> Dict[Fact, float]:
    """Parse ``R(1, 'x') : 0.5`` lines into a marginal dict.

    >>> schema = Schema.of(R=1)
    >>> marginals = parse_fact_lines('''
    ... # a comment
    ... R(1) : 0.5
    ... R(2) : 0.25
    ... ''', schema)
    >>> len(marginals)
    2
    """
    marginals: Dict[Fact, float] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if ":" not in line:
            raise ParseError(f"line {lineno}: expected 'fact : probability'")
        fact_text, _, probability_text = line.rpartition(":")
        try:
            fact = parse_fact(fact_text.strip(), schema)
            probability = float(probability_text.strip())
        except (ParseError, ValueError, SchemaError) as err:
            raise ParseError(f"line {lineno}: {err}") from err
        if fact in marginals:
            raise ParseError(f"line {lineno}: duplicate fact {fact}")
        marginals[fact] = probability
    return marginals


def load_tuple_independent(text: str, schema: Schema) -> TupleIndependentTable:
    """Load a TI table from fact lines.

    >>> schema = Schema.of(R=1)
    >>> table = load_tuple_independent("R(1): 0.5", schema)
    >>> table.marginal(schema["R"](1))
    0.5
    """
    return TupleIndependentTable(schema, parse_fact_lines(text, schema))


def dump_tuple_independent(table: TupleIndependentTable) -> str:
    """Serialize a TI table to fact lines (canonical fact order).

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> print(dump_tuple_independent(
    ...     TupleIndependentTable(schema, {R(1): 0.5})))
    R(1) : 0.5
    """
    lines = [
        f"{fact} : {table.marginal(fact)!r}" for fact in table.facts()
    ]
    return "\n".join(lines)


# ------------------------------------------------------------------------ JSON
def _schema_to_json(schema: Schema) -> Dict[str, int]:
    return {relation.name: relation.arity for relation in schema}


def _schema_from_json(data: Mapping[str, int]) -> Schema:
    return Schema(
        RelationSymbol(name, arity) for name, arity in sorted(data.items())
    )


def _fact_to_json(fact: Fact, probability: float) -> list:
    return [fact.relation.name, list(fact.args), probability]


def _fact_from_json(entry: list, schema: Schema) -> Tuple[Fact, float]:
    if len(entry) != 3:
        raise ParseError(f"fact entry must be [name, args, p]: {entry!r}")
    name, args, probability = entry
    symbol = schema[name]
    return Fact(symbol, tuple(_revive(a) for a in args)), float(probability)


def _revive(value):
    # JSON has no tuples; lists in argument position become tuples.
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    return value


def tuple_independent_to_json(table: TupleIndependentTable) -> str:
    """Serialize a TI table to a JSON string.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> text = tuple_independent_to_json(
    ...     TupleIndependentTable(schema, {R(1): 0.5}))
    >>> '"R"' in text
    True
    """
    payload = {
        "kind": "tuple-independent",
        "schema": _schema_to_json(table.schema),
        "facts": [
            _fact_to_json(fact, table.marginal(fact))
            for fact in table.facts()
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def tuple_independent_from_json(text: str) -> TupleIndependentTable:
    """Inverse of :func:`tuple_independent_to_json`.

    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> original = TupleIndependentTable(schema, {R(1): 0.5})
    >>> restored = tuple_independent_from_json(
    ...     tuple_independent_to_json(original))
    >>> restored.marginal(R(1))
    0.5
    """
    payload = json.loads(text)
    if payload.get("kind") != "tuple-independent":
        raise ParseError(f"not a tuple-independent payload: {payload.get('kind')!r}")
    schema = _schema_from_json(payload["schema"])
    marginals = dict(
        _fact_from_json(entry, schema) for entry in payload["facts"]
    )
    return TupleIndependentTable(schema, marginals)


def block_independent_to_json(table: BlockIndependentTable) -> str:
    """Serialize a BID table to a JSON string."""
    payload = {
        "kind": "block-independent-disjoint",
        "schema": _schema_to_json(table.schema),
        "blocks": {
            block.name: [
                _fact_to_json(fact, block.alternatives[fact])
                for fact in block.facts()
            ]
            for block in table.blocks
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def block_independent_from_json(text: str) -> BlockIndependentTable:
    """Inverse of :func:`block_independent_to_json`.

    >>> from repro.relational import Schema
    >>> schema = Schema.of(R=1)
    >>> R = schema["R"]
    >>> original = BlockIndependentTable(
    ...     schema, [Block("b", {R(1): 0.5, R(2): 0.25})])
    >>> restored = block_independent_from_json(
    ...     block_independent_to_json(original))
    >>> restored.marginal(R(2))
    0.25
    """
    payload = json.loads(text)
    if payload.get("kind") != "block-independent-disjoint":
        raise ParseError(
            f"not a BID payload: {payload.get('kind')!r}")
    schema = _schema_from_json(payload["schema"])
    blocks = [
        Block(name, dict(
            _fact_from_json(entry, schema) for entry in entries
        ))
        for name, entries in sorted(payload["blocks"].items())
    ]
    return BlockIndependentTable(schema, blocks)


def save(obj: Union[TupleIndependentTable, BlockIndependentTable],
         stream: TextIO) -> None:
    """Write a table to an open text stream as JSON."""
    if isinstance(obj, TupleIndependentTable):
        stream.write(tuple_independent_to_json(obj))
    elif isinstance(obj, BlockIndependentTable):
        stream.write(block_independent_to_json(obj))
    else:
        raise ParseError(f"cannot serialize {type(obj).__name__}")


def load(stream: TextIO):
    """Read a table (either kind) from an open text stream."""
    text = stream.read()
    payload = json.loads(text)
    kind = payload.get("kind")
    if kind == "tuple-independent":
        return tuple_independent_from_json(text)
    if kind == "block-independent-disjoint":
        return block_independent_from_json(text)
    raise ParseError(f"unknown payload kind {kind!r}")

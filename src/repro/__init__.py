"""repro — Infinite open-world probabilistic databases.

A complete implementation of "Probabilistic Databases with an Infinite
Open-World Assumption" (Grohe & Lindner, PODS 2019): countable
tuple-independent and block-independent-disjoint PDB constructions
(Theorems 4.8 / 4.15), independent-fact completions giving open-world
semantics to finite PDBs (Theorem 5.5), and truncation-based additive
approximation of query probabilities (Proposition 6.1) — together with
the relational, logical, analytic and finite-PDB substrates they stand
on.

Quickstart::

    from repro import (
        Schema, TupleIndependentTable, GeometricFactDistribution,
        FactSpace, Naturals, complete, BooleanQuery, parse_formula,
    )

    schema = Schema.of(Likes=2)
    Likes = schema["Likes"]
    known = TupleIndependentTable(schema, {Likes(1, 2): 0.9})
    open_world = complete(
        known,
        GeometricFactDistribution(
            FactSpace(schema, Naturals()), first=0.25, ratio=0.5),
    )
    q = BooleanQuery(parse_formula("EXISTS x, y. Likes(x, y)", schema), schema)
    print(open_world.approximate_query_probability(q, epsilon=0.01).value)
"""

from repro.errors import (
    ApproximationError,
    CompletionError,
    ConvergenceError,
    EvaluationError,
    IndependenceError,
    ParseError,
    ProbabilityError,
    ReproError,
    SchemaError,
    UniverseError,
    UnsafeQueryError,
)
from repro.relational import (
    Fact,
    Instance,
    RelationSymbol,
    Schema,
    parse_fact,
)
from repro.logic import (
    BooleanQuery,
    FOView,
    Query,
    View,
    parse_formula,
)
from repro.universe import (
    FactSpace,
    FiniteUniverse,
    IntegerRange,
    Naturals,
    ProductUniverse,
    StringUniverse,
    TaggedUnion,
    Universe,
)
from repro.finite import (
    Block,
    BlockIndependentTable,
    FinitePDB,
    MonteCarloEstimate,
    TupleIndependentTable,
    marginal_answer_probabilities,
    query_probability,
    query_probability_monte_carlo,
)
from repro.core import (
    ApproximationResult,
    BlockFamily,
    RefinementSession,
    truncation_profile,
    CompletedPDB,
    CountableBIDPDB,
    CountablePDB,
    CountableTIPDB,
    DivergentFactDistribution,
    FactDistribution,
    FilteredFactDistribution,
    GeometricFactDistribution,
    TableFactDistribution,
    UnionFactDistribution,
    WordLengthFactDistribution,
    ZetaFactDistribution,
    approximate_answer_marginals,
    approximate_query_probability,
    choose_truncation,
    closed_world_completion,
    complete,
    open_world,
    example_3_3_pdb,
    extend_to_closure,
    verify_completion_condition,
)
from repro.openworld import CredalInterval, OpenPDB, credal_query_probability
from repro.sampling import (
    SampleStream,
    available_backends,
    get_kernel,
    numpy_available,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "SchemaError",
    "UniverseError",
    "ParseError",
    "EvaluationError",
    "ConvergenceError",
    "ProbabilityError",
    "IndependenceError",
    "UnsafeQueryError",
    "ApproximationError",
    "CompletionError",
    # relational
    "RelationSymbol",
    "Schema",
    "Fact",
    "parse_fact",
    "Instance",
    # logic
    "parse_formula",
    "Query",
    "BooleanQuery",
    "View",
    "FOView",
    # universes
    "Universe",
    "Naturals",
    "IntegerRange",
    "StringUniverse",
    "FiniteUniverse",
    "TaggedUnion",
    "ProductUniverse",
    "FactSpace",
    # finite engine
    "FinitePDB",
    "TupleIndependentTable",
    "BlockIndependentTable",
    "Block",
    "query_probability",
    "marginal_answer_probabilities",
    "query_probability_monte_carlo",
    "MonteCarloEstimate",
    # sampling kernels
    "SampleStream",
    "available_backends",
    "get_kernel",
    "numpy_available",
    # core (the paper)
    "FactDistribution",
    "GeometricFactDistribution",
    "ZetaFactDistribution",
    "TableFactDistribution",
    "FilteredFactDistribution",
    "UnionFactDistribution",
    "WordLengthFactDistribution",
    "DivergentFactDistribution",
    "CountablePDB",
    "CountableTIPDB",
    "CountableBIDPDB",
    "BlockFamily",
    "CompletedPDB",
    "complete",
    "closed_world_completion",
    "open_world",
    "extend_to_closure",
    "verify_completion_condition",
    "ApproximationResult",
    "approximate_query_probability",
    "approximate_answer_marginals",
    "choose_truncation",
    "truncation_profile",
    "RefinementSession",
    "example_3_3_pdb",
    # open-world baseline
    "OpenPDB",
    "CredalInterval",
    "credal_query_probability",
    "__version__",
]

"""Batched sampling kernels.

A *kernel* is the backend that turns probability arrays into batches of
random draws.  Engines (Monte Carlo, Karp–Luby, world sampling) never
loop over ``random.Random`` fact-by-fact themselves; they pre-materialise
a :mod:`~repro.sampling.plans` plan once and then ask a kernel for ``k``
draws at a time.  Two kernels ship:

* ``"python"`` — pure Python, zero dependencies, batches by hoisting all
  per-fact attribute/dict lookups out of the sampling loop;
* ``"numpy"`` — vectorised over a ``k × n`` uniform matrix, available
  when NumPy is importable (the ``[fast]`` extra).

``backend="auto"`` selects numpy when available and falls back to the
pure-Python kernel otherwise, so NumPy never silently becomes a hard
dependency.  ``backend="scalar"`` is *not* a kernel: it names the
engines' original one-draw-at-a-time reference paths, which they keep
for differential testing.

Determinism contract: a kernel seeded with the same integer produces
bit-identical draws on every run *of the same backend*.  Different
backends consume randomness differently and agree only statistically —
the differential suite in ``tests/sampling`` checks both properties.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence, Tuple

try:  # Python 3.8+: typing.Protocol
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from repro.sampling.stream import SampleStream, as_stream

#: Engine-level name for the unbatched reference paths (not a kernel).
SCALAR = "scalar"

#: Default number of worlds generated per kernel call.
DEFAULT_BATCH_SIZE = 2048


class Kernel(Protocol):
    """Backend protocol for batched random draws.

    RNG objects are opaque to callers: obtain one from :meth:`make_rng`
    (seeded, per batch) or :meth:`adapt_rng` (wrap a caller-supplied
    ``random.Random``) and pass it back into the draw methods.
    """

    name: str

    def make_rng(self, seed: int):
        """A fresh backend RNG seeded with ``seed``."""

    def adapt_rng(self, rng: random.Random):
        """Adapt a caller-supplied ``random.Random`` for this backend."""

    def bernoulli_rows(self, probs: Sequence[float], k: int, rng) -> List[Tuple[int, ...]]:
        """``k`` independent Bernoulli field draws.

        Each row is the sorted tuple of indices ``i`` whose coin
        ``u_i < probs[i]`` came up heads.
        """

    def categorical(
        self,
        cumulative: Sequence[float],
        k: int,
        rng,
        scale: Optional[float] = None,
    ) -> List[int]:
        """``k`` draws from the categorical with cumulative weights.

        Draws ``u ~ U[0, scale)`` (default ``scale = cumulative[-1]``)
        and returns the insertion index; an index equal to
        ``len(cumulative)`` selects the remainder mass
        ``scale − cumulative[-1]`` (the BID ``p_⊥``).
        """


class PythonKernel:
    """Pure-Python batched kernel (the zero-dependency default)."""

    name = "python"

    def make_rng(self, seed: int) -> random.Random:
        return random.Random(seed)

    def adapt_rng(self, rng: random.Random) -> random.Random:
        if not isinstance(rng, random.Random):
            raise TypeError(f"python kernel needs random.Random, got {type(rng)!r}")
        return rng

    def bernoulli_rows(self, probs, k, rng):
        uniform = rng.random
        indexed = tuple(enumerate(probs))
        return [
            tuple(i for i, p in indexed if uniform() < p) for _ in range(k)
        ]

    def categorical(self, cumulative, k, rng, scale=None):
        top = cumulative[-1] if scale is None else scale
        uniform = rng.random
        locate = bisect.bisect_right
        return [locate(cumulative, uniform() * top) for _ in range(k)]


_PYTHON = PythonKernel()
_NUMPY_KERNEL = None


def numpy_available() -> bool:
    """True iff the optional NumPy backend can be used."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def _numpy_kernel():
    global _NUMPY_KERNEL
    if _NUMPY_KERNEL is None:
        from repro.sampling.numpy_kernel import NumpyKernel

        _NUMPY_KERNEL = NumpyKernel()
    return _NUMPY_KERNEL


def available_backends() -> Tuple[str, ...]:
    """Kernel backends usable right now (excludes ``"scalar"``)."""
    if numpy_available():
        return ("python", "numpy")
    return ("python",)


def get_kernel(backend: str = "auto") -> Kernel:
    """Resolve a backend name to a kernel instance.

    >>> get_kernel("python").name
    'python'
    """
    if backend == "auto":
        return _numpy_kernel() if numpy_available() else _PYTHON
    if backend == "python":
        return _PYTHON
    if backend == "numpy":
        if not numpy_available():
            raise ValueError(
                "backend 'numpy' requested but numpy is not installed; "
                "install the [fast] extra or use backend='python'"
            )
        return _numpy_kernel()
    if backend == SCALAR:
        raise ValueError(
            "backend 'scalar' is the engines' unbatched reference path, "
            "not a kernel; pass it to the engine entry point instead"
        )
    raise ValueError(f"unknown sampling backend {backend!r}")


def resolve_rng(kernel: Kernel, rng=None, seed=None, batch_index: int = 0):
    """One backend RNG from either a caller RNG or a ``(seed, batch)`` pair."""
    if rng is not None:
        return kernel.adapt_rng(rng)
    if seed is not None:
        return kernel.make_rng(as_stream(seed).child_seed(batch_index))
    raise ValueError("provide rng= or seed=")


def batch_rngs(kernel: Kernel, rng=None, seed=None):
    """A ``batch_index -> rng`` provider for multi-batch estimators.

    With ``seed`` every batch gets an independent RNG derived from
    ``(seed, batch_index)``; with a caller ``rng`` the single adapted RNG
    is consumed sequentially across batches.
    """
    if seed is not None:
        stream = as_stream(seed)
        return lambda batch_index: kernel.make_rng(stream.child_seed(batch_index))
    if rng is not None:
        adapted = kernel.adapt_rng(rng)
        return lambda batch_index: adapted
    raise ValueError("provide rng= or seed=")

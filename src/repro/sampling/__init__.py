"""Batched sampling kernels for the Monte-Carlo engines.

The paper's approximation stack (Proposition 6.1 truncation, the
Karp–Luby FPRAS, plain Monte Carlo) reduces everything to repeated
finite-world sampling, so this package centralises world generation:

* :mod:`~repro.sampling.stream` — seeded :class:`SampleStream` objects
  making every estimate reproducible from ``(seed, batch_index)``;
* :mod:`~repro.sampling.kernels` — the :class:`Kernel` protocol, the
  pure-Python batched backend, and the lazily-loaded optional NumPy
  backend (``pip install .[fast]``), with ``backend="auto"`` selection;
* :mod:`~repro.sampling.plans` — pre-materialised per-representation
  sampling plans (TI / BID / explicit worlds) with batch-level model
  checking (compile the query once, memoise truth per distinct world).

Engines keep their original one-draw-at-a-time code paths under
``backend="scalar"`` as the differential-testing reference.
"""

from repro.sampling.kernels import (
    DEFAULT_BATCH_SIZE,
    Kernel,
    PythonKernel,
    SCALAR,
    available_backends,
    batch_rngs,
    get_kernel,
    numpy_available,
    resolve_rng,
)
from repro.sampling.plans import (
    BIDPlan,
    TIPlan,
    WorldPlan,
    plan_for,
    sample_instances,
)
from repro.sampling.stream import SampleStream, as_stream

__all__ = [
    "BIDPlan",
    "DEFAULT_BATCH_SIZE",
    "Kernel",
    "PythonKernel",
    "SCALAR",
    "SampleStream",
    "TIPlan",
    "WorldPlan",
    "as_stream",
    "available_backends",
    "batch_rngs",
    "get_kernel",
    "numpy_available",
    "plan_for",
    "resolve_rng",
    "sample_instances",
]

"""Deterministic seed streams for batched sampling.

A :class:`SampleStream` turns one root seed into an unbounded family of
statistically independent per-batch seeds, so that every batch of every
estimate is reproducible from ``(seed, batch_index)`` alone — regardless
of batch size scheduling, platform, or which kernel backend consumes the
stream.  Child seeds are derived with SHA-256 rather than Python's
``hash`` so they are stable across processes and interpreter versions
(``PYTHONHASHSEED`` does not affect them).
"""

from __future__ import annotations

import hashlib
import random

from repro import obs


class SampleStream:
    """A reproducible family of per-batch RNG seeds.

    >>> stream = SampleStream(42)
    >>> stream.child_seed(0) == SampleStream(42).child_seed(0)
    True
    >>> stream.child_seed(0) != stream.child_seed(1)
    True
    """

    __slots__ = ("seed",)

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def child_seed(self, batch_index: int) -> int:
        """A 64-bit seed derived from ``(seed, batch_index)``."""
        if batch_index < 0:
            raise ValueError(f"batch_index must be >= 0, got {batch_index}")
        obs.incr("stream.child_seeds")
        payload = f"{self.seed}:{batch_index}".encode("ascii")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def python_rng(self, batch_index: int) -> random.Random:
        """A :class:`random.Random` seeded for the given batch."""
        return random.Random(self.child_seed(batch_index))

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SampleStream) and self.seed == other.seed

    def __hash__(self) -> int:
        return hash((SampleStream, self.seed))

    def __repr__(self) -> str:
        return f"SampleStream(seed={self.seed})"


def as_stream(seed) -> SampleStream:
    """Coerce an int seed (or an existing stream) to a :class:`SampleStream`."""
    if isinstance(seed, SampleStream):
        return seed
    return SampleStream(seed)

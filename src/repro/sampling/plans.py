"""Pre-materialised sampling plans and batch-level model checking.

A *plan* freezes everything about a finite PDB representation that the
scalar samplers recompute per draw — canonical fact order, probability
arrays, per-block cumulative weights, the sorted world table — so a
kernel can generate thousands of worlds without touching the table
again.  Worlds travel as compact *rows* (tuples of small ints), and are
only decoded to :class:`~repro.relational.instance.Instance` objects at
the API boundary.

Batch-level model checking: a plan compiles a query once — to its
lineage over the plan's possible facts where it can, to a cached
``holds_in`` otherwise — and then memoises truth per distinct row, so a
batch containing the same world many times (the common case for small
truncations) pays for one model check, not one per sample.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.relational.instance import Instance

Row = Tuple[int, ...]


class TIPlan:
    """Sampling plan for a tuple-independent table.

    Rows are sorted index tuples into :attr:`facts` (the facts present in
    the sampled world).
    """

    __slots__ = ("facts", "probs")

    def __init__(self, facts: Sequence, probs: Sequence[float]):
        self.facts = tuple(facts)
        self.probs = tuple(probs)

    @classmethod
    def from_table(cls, table) -> "TIPlan":
        # Canonical fact order + one marginal-slice gather off the
        # table's columnar mirror (dict lookups on the python backend).
        facts = table.facts()
        return cls(facts, (float(p) for p in table.marginal_values(facts)))

    def sample_rows(self, kernel, k: int, rng) -> List[Row]:
        return kernel.bernoulli_rows(self.probs, k, rng)

    def decode(self, row: Row) -> Instance:
        facts = self.facts
        return Instance(facts[i] for i in row)

    def world(self, row: Row) -> set:
        facts = self.facts
        return {facts[i] for i in row}

    def model_checker(self, query) -> Callable[[Row], bool]:
        return _lineage_checker(query, self.facts, self.world)

    def event_checker(self, event) -> Callable[[Row], bool]:
        return _memoised(lambda row: event(self.decode(row)))


class BIDPlan:
    """Sampling plan for a block-independent-disjoint table.

    Rows have one entry per block: the index of the chosen alternative
    in the block's canonical fact order, or ``len(block)`` for the
    remainder mass ``p_⊥`` ("no fact from this block").
    """

    __slots__ = ("block_facts", "block_cumulative", "facts")

    def __init__(self, block_facts, block_cumulative):
        self.block_facts = tuple(tuple(facts) for facts in block_facts)
        self.block_cumulative = tuple(tuple(c) for c in block_cumulative)
        self.facts = tuple(
            fact for facts in self.block_facts for fact in facts
        )

    @classmethod
    def from_table(cls, table) -> "BIDPlan":
        block_facts = []
        block_cumulative = []
        for block in table.blocks:
            facts = block.facts()
            cumulative = []
            acc = 0.0
            for fact in facts:
                acc += block.alternatives[fact]
                cumulative.append(acc)
            block_facts.append(facts)
            block_cumulative.append(cumulative)
        return cls(block_facts, block_cumulative)

    def sample_rows(self, kernel, k: int, rng) -> List[Row]:
        # One categorical per block, k draws each; u ≥ total mass lands
        # on index len(block) — the p_⊥ outcome.
        per_block = [
            kernel.categorical(cumulative, k, rng, scale=1.0)
            for cumulative in self.block_cumulative
        ]
        return list(zip(*per_block)) if per_block else [()] * k

    def decode(self, row: Row) -> Instance:
        return Instance(self._chosen(row))

    def world(self, row: Row) -> set:
        return set(self._chosen(row))

    def _chosen(self, row: Row):
        block_facts = self.block_facts
        return [
            block_facts[b][i]
            for b, i in enumerate(row)
            if i < len(block_facts[b])
        ]

    def model_checker(self, query) -> Callable[[Row], bool]:
        return _lineage_checker(query, self.facts, self.world)

    def event_checker(self, event) -> Callable[[Row], bool]:
        return _memoised(lambda row: event(self.decode(row)))


class WorldPlan:
    """Sampling plan for an explicit finite PDB (categorical on worlds).

    Rows are single world indices into the sorted world table, so model
    checking is at most one query evaluation per *distinct* world over
    the whole run.
    """

    __slots__ = ("instances", "cumulative")

    def __init__(self, instances: Sequence[Instance], cumulative: Sequence[float]):
        self.instances = tuple(instances)
        self.cumulative = tuple(cumulative)

    @classmethod
    def from_pdb(cls, pdb) -> "WorldPlan":
        instances = list(pdb.instances())
        cumulative = []
        acc = 0.0
        for instance in instances:
            acc += pdb.worlds[instance]
            cumulative.append(acc)
        return cls(instances, cumulative)

    def sample_rows(self, kernel, k: int, rng) -> List[Row]:
        last = len(self.instances) - 1
        draws = kernel.categorical(self.cumulative, k, rng, scale=1.0)
        # Clamp the measure-zero float edge u ≥ cumulative[-1] (total
        # mass 1 up to rounding), mirroring the scalar sampler's
        # fall-through to the last world.
        return [(index if index <= last else last,) for index in draws]

    def decode(self, row: Row) -> Instance:
        return self.instances[row[0]]

    def model_checker(self, query) -> Callable[[Row], bool]:
        return _memoised(lambda row: query.holds_in(self.instances[row[0]]))

    def event_checker(self, event) -> Callable[[Row], bool]:
        return _memoised(lambda row: event(self.instances[row[0]]))


def _memoised(check: Callable[[Row], bool]) -> Callable[[Row], bool]:
    cache: Dict[Row, bool] = {}

    def checked(row: Row) -> bool:
        hit = cache.get(row)
        if hit is None:
            hit = cache[row] = check(row)
        return hit

    return checked


def _lineage_checker(query, facts, world_of) -> Callable[[Row], bool]:
    """Compile ``query`` once against the plan's possible facts.

    Lineage evaluation on a set of facts skips the FO interpreter (and
    ``Instance`` construction) entirely — positive-existential queries
    additionally ground set-at-a-time through the hash-join engine;
    queries the lineage grounder cannot handle fall back to cached
    ``holds_in``.
    """
    try:
        from repro.logic.lineage import lineage_of

        expr = lineage_of(query.formula, frozenset(facts))
    except (EvaluationError, TypeError):
        expr = None
    if expr is not None:
        constant = expr.is_constant()
        if constant is not None:
            return lambda row: constant
        evaluate = expr.evaluate
        return _memoised(lambda row: evaluate(world_of(row)))
    holds = query.holds_in
    return _memoised(lambda row: holds(Instance(world_of(row))))


def plan_for(pdb):
    """Build the sampling plan matching a finite PDB representation."""
    from repro.finite.bid import BlockIndependentTable
    from repro.finite.pdb import FinitePDB
    from repro.finite.tuple_independent import TupleIndependentTable

    if isinstance(pdb, TupleIndependentTable):
        return TIPlan.from_table(pdb)
    if isinstance(pdb, BlockIndependentTable):
        return BIDPlan.from_table(pdb)
    if isinstance(pdb, FinitePDB):
        return WorldPlan.from_pdb(pdb)
    raise EvaluationError(f"no sampling plan for {type(pdb).__name__}")


def sample_instances(
    pdb,
    n: int,
    rng=None,
    seed=None,
    backend: str = "auto",
    batch_index: int = 0,
) -> List[Instance]:
    """Draw ``n`` worlds from a finite representation with a kernel.

    Reproducible from ``(seed, batch_index)``; with ``rng`` the caller's
    stream is consumed instead.  This is the batched engine behind the
    tables' ``sample_batch`` methods.
    """
    from repro.sampling.kernels import get_kernel, resolve_rng

    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    kernel = get_kernel(backend)
    plan = plan_for(pdb)
    backend_rng = resolve_rng(kernel, rng=rng, seed=seed, batch_index=batch_index)
    return [plan.decode(row) for row in plan.sample_rows(kernel, n, backend_rng)]

"""Vectorised NumPy sampling kernel (the optional ``[fast]`` extra).

Importing this module requires NumPy; everything else in
:mod:`repro.sampling` only touches it through the lazily-importing
registry in :mod:`repro.sampling.kernels`, so the library works with
NumPy absent.
"""

from __future__ import annotations

import random

import numpy as np


class NumpyKernel:
    """Batched draws via ``numpy.random.Generator`` (PCG64)."""

    name = "numpy"

    def make_rng(self, seed: int) -> np.random.Generator:
        return np.random.default_rng(seed)

    def adapt_rng(self, rng) -> np.random.Generator:
        if isinstance(rng, np.random.Generator):
            return rng
        if isinstance(rng, random.Random):
            # Deterministic bridge: derive the generator seed from the
            # caller's stream so repeated runs with the same Random state
            # reproduce exactly.
            return np.random.default_rng(rng.getrandbits(64))
        raise TypeError(
            f"numpy kernel needs numpy Generator or random.Random, got {type(rng)!r}"
        )

    def bernoulli_rows(self, probs, k, rng):
        p = np.asarray(probs, dtype=np.float64)
        matrix = rng.random((k, p.size)) < p
        return [tuple(np.flatnonzero(row).tolist()) for row in matrix]

    def categorical(self, cumulative, k, rng, scale=None):
        cum = np.asarray(cumulative, dtype=np.float64)
        top = float(cum[-1]) if scale is None else float(scale)
        draws = rng.random(k) * top
        return np.searchsorted(cum, draws, side="right").tolist()

"""Thread-local evaluation traces: counters, gauges, timers, events.

The observability layer every entry point of the Proposition 6.1
pipeline reports through.  Design constraints:

* **zero dependencies** — standard library only;
* **near-zero cost when idle** — every helper starts with one
  thread-local read and returns immediately if no trace is active, so
  instrumented hot paths pay a dict lookup, not a feature;
* **nestable** — entry points call each other (``approximate_query_probability``
  → ``query_probability`` → the compile cache), so traces form a
  thread-local *stack* and every recording is applied to **all** active
  traces: an outer trace sees everything its callees did, while each
  callee still gets a self-contained trace for its own
  :class:`~repro.obs.report.EvalReport`.

Instrumented code never touches :class:`EvalTrace` objects directly; it
calls the module-level helpers (:func:`incr`, :func:`gauge`,
:func:`event`, :func:`note`, :func:`phase`), which are no-ops outside
any :func:`trace` scope.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, NamedTuple, Optional


class TraceEvent(NamedTuple):
    """One structured trace event: a name plus a small payload dict."""

    name: str
    payload: Dict[str, object]


class EvalTrace:
    """A mutable recording of one evaluation: counters, gauges, phase
    timings, events, and free-form metadata.

    >>> with trace() as t:
    ...     incr("cache.hit")
    ...     gauge("truncation.n", 7)
    >>> t.counters["cache.hit"], t.gauges["truncation.n"]
    (1, 7.0)
    """

    __slots__ = ("counters", "gauges", "timings", "events", "meta")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.timings: Dict[str, float] = {}
        self.events: List[TraceEvent] = []
        self.meta: Dict[str, object] = {}

    # ------------------------------------------------------------ recording
    def incr(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def add_time(self, name: str, seconds: float) -> None:
        self.timings[name] = self.timings.get(name, 0.0) + seconds

    def event(self, name: str, **payload: object) -> None:
        self.events.append(TraceEvent(name, payload))

    def note(self, **meta: object) -> None:
        self.meta.update(meta)

    def __repr__(self) -> str:
        return (
            f"EvalTrace(counters={self.counters!r}, gauges={self.gauges!r}, "
            f"timings={list(self.timings)!r}, events={len(self.events)})"
        )


_LOCAL = threading.local()


def _stack() -> List[EvalTrace]:
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = []
        _LOCAL.stack = stack
    return stack


def current_trace() -> Optional[EvalTrace]:
    """The innermost active trace of this thread, or None."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def trace() -> Iterator[EvalTrace]:
    """Activate a fresh :class:`EvalTrace` for the dynamic extent.

    Nested scopes stack: recordings go to every active trace, so an
    outer scope's trace includes everything nested entry points record.
    """
    t = EvalTrace()
    stack = _stack()
    stack.append(t)
    try:
        yield t
    finally:
        stack.pop()


# ------------------------------------------------- module-level recorders
def incr(name: str, by: int = 1) -> None:
    """Add ``by`` to counter ``name`` on every active trace (no-op when
    no trace is active)."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return
    for t in stack:
        t.incr(name, by)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (last write wins) on every active trace."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return
    for t in stack:
        t.gauge(name, value)


def gauge_max(name: str, value: float) -> None:
    """Set gauge ``name`` to the max of its current and ``value`` — for
    quantities like per-answer sampling error where the fan-out's report
    should carry the worst case."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return
    value = float(value)
    for t in stack:
        previous = t.gauges.get(name)
        if previous is None or value > previous:
            t.gauges[name] = value


def event(name: str, **payload: object) -> None:
    """Append a structured event to every active trace."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return
    for t in stack:
        t.event(name, **payload)


def note(**meta: object) -> None:
    """Merge free-form metadata (e.g. ``strategy="bdd"``) into every
    active trace."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        return
    for t in stack:
        t.note(**meta)


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Time a named phase; the wall-clock duration is accumulated into
    ``timings[name]`` of every active trace.  Free when idle."""
    stack = getattr(_LOCAL, "stack", None)
    if not stack:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        for t in stack:
            t.add_time(name, elapsed)

"""Evaluation observability: structured metrics, traces, and reports.

The zero-dependency instrumentation layer of the Proposition 6.1
pipeline (see DESIGN.md §Observability).  Subsystems record through the
module-level helpers (:func:`incr`, :func:`gauge`, :func:`event`,
:func:`note`, :func:`phase`) — free when no trace is active — and every
public evaluation entry point opens a :func:`trace` scope and attaches
an :class:`EvalReport` to its result via :func:`attach_report`.
"""

from repro.obs.trace import (
    EvalTrace,
    TraceEvent,
    current_trace,
    event,
    gauge,
    gauge_max,
    incr,
    note,
    phase,
    trace,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    AnswerMarginals,
    EvalReport,
    TracedProbability,
    attach_report,
    validate_report_dict,
)

__all__ = [
    "EvalTrace",
    "TraceEvent",
    "current_trace",
    "trace",
    "incr",
    "gauge",
    "gauge_max",
    "event",
    "note",
    "phase",
    "EvalReport",
    "REPORT_SCHEMA",
    "AnswerMarginals",
    "TracedProbability",
    "attach_report",
    "validate_report_dict",
]

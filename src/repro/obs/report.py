"""The :class:`EvalReport` attached to every evaluation result.

An :class:`EvalReport` is the structured summary of one evaluation run,
distilled from an :class:`~repro.obs.trace.EvalTrace`: which strategy
actually fired, truncation size and achieved α versus requested ε,
compile-cache hit/miss/extension counts and diagram node counts,
sampling batch counts and estimated standard error, and wall-clock per
phase.  It renders both human-readable (``render()``) and as JSON
(``to_json()``), and :data:`REPORT_SCHEMA` documents the JSON shape so
CI can validate ``--stats json`` output with
:func:`validate_report_dict`.

Results keep their existing types (floats, dicts, NamedTuples): the
report rides along as a ``.report`` attribute via :func:`attach_report`,
which substitutes a transparent subclass when the original type cannot
carry attributes.  Equality, hashing, arithmetic, and unpacking are all
unchanged.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Type

from repro.obs.trace import EvalTrace

#: Counter names the instrumented subsystems use (also the contract the
#: Hypothesis counter-consistency tests check against).
CACHE_HIT = "cache.hit"
CACHE_MISS = "cache.miss"
CACHE_EXTENSION = "cache.extension"
SAMPLING_BATCHES = "sampling.batches"
SAMPLING_SAMPLES = "sampling.samples"
STREAM_CHILD_SEEDS = "stream.child_seeds"
PREFIX_CACHE_HITS = "prefix.cache.hits"
PREFIX_CACHE_EXTENSIONS = "prefix.cache.extensions"
REFINE_REUSED_FACTS = "refine.reused_facts"

#: Gauge names.
GAUGE_TRUNCATION = "truncation.n"
GAUGE_ALPHA = "truncation.alpha"
GAUGE_EPSILON = "truncation.epsilon"
GAUGE_HALF_WIDTH = "sampling.half_width"
GAUGE_STD_ERROR = "sampling.std_error"
GAUGE_BDD_NODES = "bdd.nodes"


@dataclass
class EvalReport:
    """Structured telemetry of one evaluation/approximation run."""

    #: The strategy that actually fired (``"auto"`` resolves to the
    #: concrete engine, e.g. ``"lifted"`` or ``"bdd"``).
    strategy: Optional[str] = None
    #: Requested additive guarantee ε (approximation entry points only).
    epsilon: Optional[float] = None
    #: Truncation size n actually used.
    truncation: Optional[int] = None
    #: Achieved ``α_n = (3/2)·tail(n)``.
    alpha: Optional[float] = None
    #: Monte-Carlo confidence-bound on the sampled conditional
    #: (0 when every evaluation was exact).
    sampling_error: float = 0.0
    #: Estimated standard error of the latest sampling estimate.
    sampling_std_error: Optional[float] = None
    #: Worlds drawn and batches issued across all sampling phases.
    samples: int = 0
    sample_batches: int = 0
    #: Compile-cache telemetry.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_extensions: int = 0
    #: Nodes of the most recently compiled diagram.
    bdd_nodes: Optional[int] = None
    #: Wall-clock seconds per named phase.
    timings: Dict[str, float] = field(default_factory=dict)
    #: Raw counters (superset of the dedicated fields above).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Structured trace events, e.g. the fan-out pickle fallback.
    events: List[Dict[str, object]] = field(default_factory=list)

    # ----------------------------------------------------------- builders
    @classmethod
    def from_trace(cls, trace: EvalTrace, **overrides: object) -> "EvalReport":
        """Distill a finished trace into a report; ``overrides`` set
        fields the caller knows better (e.g. ``epsilon``)."""
        counters = dict(trace.counters)
        gauges = trace.gauges
        truncation = gauges.get(GAUGE_TRUNCATION)
        report = cls(
            strategy=trace.meta.get("strategy"),
            epsilon=gauges.get(GAUGE_EPSILON),
            truncation=None if truncation is None else int(truncation),
            alpha=gauges.get(GAUGE_ALPHA),
            sampling_error=gauges.get(GAUGE_HALF_WIDTH, 0.0),
            sampling_std_error=gauges.get(GAUGE_STD_ERROR),
            samples=counters.get(SAMPLING_SAMPLES, 0),
            sample_batches=counters.get(SAMPLING_BATCHES, 0),
            cache_hits=counters.get(CACHE_HIT, 0),
            cache_misses=counters.get(CACHE_MISS, 0),
            cache_extensions=counters.get(CACHE_EXTENSION, 0),
            bdd_nodes=(
                None if GAUGE_BDD_NODES not in gauges
                else int(gauges[GAUGE_BDD_NODES])
            ),
            timings=dict(trace.timings),
            counters=counters,
            events=[
                {"name": e.name, **e.payload} for e in trace.events
            ],
        )
        for name, value in overrides.items():
            setattr(report, name, value)
        return report

    # ---------------------------------------------------------- renderers
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict matching :data:`REPORT_SCHEMA`."""
        return {
            "strategy": self.strategy,
            "epsilon": self.epsilon,
            "truncation": self.truncation,
            "alpha": self.alpha,
            "sampling_error": self.sampling_error,
            "sampling_std_error": self.sampling_std_error,
            "samples": self.samples,
            "sample_batches": self.sample_batches,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "extensions": self.cache_extensions,
            },
            "bdd_nodes": self.bdd_nodes,
            "timings_s": dict(self.timings),
            "counters": dict(self.counters),
            "events": list(self.events),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human-readable multi-line summary for the CLI ``--stats``."""
        lines = ["eval report"]
        if self.strategy is not None:
            lines.append(f"  strategy        : {self.strategy}")
        if self.epsilon is not None:
            lines.append(f"  epsilon         : {self.epsilon:g}")
        if self.truncation is not None:
            alpha = "" if self.alpha is None else f"  (alpha {self.alpha:.3g})"
            lines.append(f"  truncation n    : {self.truncation}{alpha}")
        if self.samples:
            lines.append(
                f"  samples         : {self.samples} "
                f"in {self.sample_batches} batches"
            )
            if self.sampling_error:
                lines.append(
                    f"  sampling error  : ±{self.sampling_error:.4g}"
                    + (
                        f"  (std err {self.sampling_std_error:.4g})"
                        if self.sampling_std_error
                        else ""
                    )
                )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"  compile cache   : {self.cache_hits} hits, "
                f"{self.cache_misses} misses, "
                f"{self.cache_extensions} extensions"
            )
        if self.bdd_nodes is not None:
            lines.append(f"  bdd nodes       : {self.bdd_nodes}")
        prefix_hits = self.counters.get(PREFIX_CACHE_HITS, 0)
        prefix_extensions = self.counters.get(PREFIX_CACHE_EXTENSIONS, 0)
        if prefix_hits or prefix_extensions:
            lines.append(
                f"  prefix cache    : {prefix_hits} hits, "
                f"{prefix_extensions} extensions"
            )
        if REFINE_REUSED_FACTS in self.counters:
            lines.append(
                "  refine reuse    : "
                f"{self.counters[REFINE_REUSED_FACTS]} facts"
            )
        for name in sorted(self.timings):
            lines.append(f"  t[{name:<12}] : {self.timings[name]:.6f}s")
        for entry in self.events:
            payload = {k: v for k, v in entry.items() if k != "name"}
            lines.append(f"  event           : {entry.get('name')} {payload}")
        return "\n".join(lines)


#: The documented shape of :meth:`EvalReport.to_dict` — the contract the
#: CI ``--stats json`` smoke job validates against (see DESIGN.md).
REPORT_SCHEMA: Dict[str, object] = {
    "strategy": (str, type(None)),
    "epsilon": (int, float, type(None)),
    "truncation": (int, type(None)),
    "alpha": (int, float, type(None)),
    "sampling_error": (int, float),
    "sampling_std_error": (int, float, type(None)),
    "samples": (int,),
    "sample_batches": (int,),
    "cache": dict,
    "bdd_nodes": (int, type(None)),
    "timings_s": dict,
    "counters": dict,
    "events": list,
}

_CACHE_SCHEMA = {"hits": (int,), "misses": (int,), "extensions": (int,)}


def validate_report_dict(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless ``payload`` matches
    :data:`REPORT_SCHEMA` (key set and value types, booleans rejected
    where ints are expected)."""
    if not isinstance(payload, dict):
        raise ValueError(f"report must be a dict, got {type(payload).__name__}")
    missing = set(REPORT_SCHEMA) - set(payload)
    extra = set(payload) - set(REPORT_SCHEMA)
    if missing or extra:
        raise ValueError(
            f"report keys mismatch: missing {sorted(missing)}, "
            f"unexpected {sorted(extra)}"
        )
    for key, expected in REPORT_SCHEMA.items():
        value = payload[key]
        if expected is dict or expected is list:
            if not isinstance(value, expected):
                raise ValueError(f"{key!r} must be {expected.__name__}")
            continue
        if isinstance(value, bool) or not isinstance(value, expected):
            raise ValueError(
                f"{key!r} has type {type(value).__name__}, "
                f"expected one of {[t.__name__ for t in expected]}"
            )
    cache = payload["cache"]
    missing = set(_CACHE_SCHEMA) - set(cache)
    if missing:
        raise ValueError(f"cache block missing keys {sorted(missing)}")
    for key, expected in _CACHE_SCHEMA.items():
        value = cache[key]
        if isinstance(value, bool) or not isinstance(value, expected):
            raise ValueError(f"cache[{key!r}] must be an int")
    for name, seconds in payload["timings_s"].items():
        if not isinstance(name, str) or isinstance(seconds, bool) or \
                not isinstance(seconds, (int, float)):
            raise ValueError(f"timings_s[{name!r}] must map str -> seconds")


# -------------------------------------------------------- result carriers
class TracedProbability(float):
    """A probability (plain ``float`` semantics) carrying a ``.report``."""

    __slots__ = ("report",)


class AnswerMarginals(dict):
    """An answer-marginals dict (plain ``dict`` semantics) with a
    ``.report`` attribute."""

    __slots__ = ("report",)


_SHADOW_CLASSES: Dict[type, type] = {}


def _rebuild_shadow(base_cls: type, values: tuple, report):
    """Pickle reconstructor for shadow-class carriers: re-derive the
    shadow from its (module-level, picklable) base class."""
    instance = _shadow_class(base_cls)(*values)
    if report is not None:
        instance.report = report
    return instance


def _shadow_reduce(self):
    return (
        _rebuild_shadow,
        (type(self).__mro__[1], tuple(self), getattr(self, "report", None)),
    )


def _shadow_class(cls: type) -> Type:
    """A subclass of ``cls`` whose instances accept attribute assignment
    (NamedTuples declare ``__slots__ = ()``; the subclass does not, so it
    gains a ``__dict__``).  Tuple semantics — equality, unpacking, field
    access — are inherited unchanged.  The generated class is not
    importable by name, so it pickles via :func:`_rebuild_shadow` —
    session snapshots carry refinement histories made of these."""
    shadow = _SHADOW_CLASSES.get(cls)
    if shadow is None:
        shadow = type(
            f"Traced{cls.__name__}", (cls,), {"__reduce__": _shadow_reduce})
        _SHADOW_CLASSES[cls] = shadow
    return shadow


def attach_report(result, report: EvalReport):
    """Return ``result`` carrying ``report`` as a ``.report`` attribute,
    substituting a transparent subclass where needed.

    >>> p = attach_report(0.75, EvalReport(strategy="lifted"))
    >>> p == 0.75 and p.report.strategy == "lifted"
    True
    """
    try:
        result.report = report
        return result
    except (AttributeError, TypeError):
        pass
    if isinstance(result, float):
        traced = TracedProbability(result)
    elif isinstance(result, tuple):
        traced = _shadow_class(type(result))(*result)
    elif isinstance(result, dict):
        traced = AnswerMarginals(result)
    else:  # pragma: no cover - no current caller hits this
        return result
    traced.report = report
    return traced

"""Asyncio front-end: newline-delimited JSON over TCP or stdio.

One :class:`QueryServer` multiplexes any number of clients onto a shared
:class:`~repro.serve.session.SessionManager`.  The protocol is one JSON
object per line in each direction::

    → {"op": "create", "session": "s1",
       "spec": {"schema": {"R": 1},
                "family": {"kind": "geometric", "first": 0.3, "ratio": 0.9},
                "query": "EXISTS x. R(x)"}}
    ← {"ok": true, "result": {"name": "s1", ...}}

    → {"op": "query", "session": "s1", "epsilon": 0.01}
    ← {"ok": true, "result": {"value": ..., "epsilon": 0.01, ...},
       "partial": false}

Every response carries ``"ok"``; failures carry ``"error"`` with the
message of the :class:`~repro.errors.ReproError` that caused them — a
bad request never kills the connection, let alone the server.

Blocking work (refinement, sweeps, snapshot pickling) runs on a small
thread pool via ``run_in_executor``, so slow refinements never stall the
event loop and concurrent clients genuinely overlap — which is exactly
what the cache-locking work underneath exists to make safe.  When a
``query`` is admitted as *queued* (ε tighter than the session budget,
see :meth:`ManagedSession.submit
<repro.serve.session.ManagedSession.submit>`), the client gets the
current best answer immediately with ``"partial": true`` and a per-
session drain task works the queue loosest-first in the background;
``"wait": true`` opts out and blocks for the full refinement.

Operations: ``ping``, ``create``, ``query``, ``sweep``, ``marginals``,
``best``, ``sessions``, ``stats``, ``drop``, ``snapshot``, ``restore``,
``shutdown``.

Answer fan-out: a server started with ``shard_workers=k > 1`` holds one
process-wide :class:`~repro.parallel.pool.ShardPool` (via
:func:`~repro.parallel.pool.get_shared_pool`) that *every* session's
``marginals`` requests fan out on — the pool's warm workers cache each
session's truncation table (delta-shipped as it grows) and worker-side
compiled diagrams, shared across all sessions and requests.
"""

from __future__ import annotations

import asyncio
import functools
import json
import sys
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro.errors import ReproError, ServeError
from repro.serve.session import ManagedSession, SessionManager, result_to_json
from repro.serve.snapshot import load_snapshot, save_snapshot

DEFAULT_PORT = 7532


class QueryServer:
    """The serve-layer front-end over one shared session manager."""

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        max_workers: int = 4,
        snapshot_path: Optional[str] = None,
        shard_workers: Optional[int] = None,
    ):
        self.manager = manager if manager is not None else SessionManager()
        #: Where ``{"op": "snapshot"}`` / ``{"op": "restore"}`` default
        #: to, and where a final snapshot lands on shutdown.
        self.snapshot_path = snapshot_path
        #: One warm shard pool shared by all sessions' answer fan-outs
        #: (``marginals`` op).  Created eagerly — before any request
        #: threads run, so forked workers never inherit a mid-flight
        #: lock — and owned by the process-wide registry, which keeps it
        #: warm across server restarts in one process and shuts it down
        #: at interpreter exit.
        self.shard_pool = None
        if shard_workers is not None and int(shard_workers) > 1:
            from repro.parallel import get_shared_pool

            self.shard_pool = get_shared_pool(int(shard_workers))
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve")
        self._draining: set = set()
        self._drain_tasks: set = set()
        self._shutdown = asyncio.Event()

    # ----------------------------------------------------------- dispatching
    async def dispatch(self, request) -> Dict:
        """One request object → one response object (never raises for
        protocol-level errors)."""
        if not isinstance(request, dict):
            return {"ok": False, "error": "request must be a JSON object"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None)
        if op is None or handler is None:
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return await handler(request)
        except ReproError as err:
            return {"ok": False, "error": str(err)}

    async def dispatch_line(self, line) -> Dict:
        if isinstance(line, bytes):
            line = line.decode("utf-8", errors="replace")
        try:
            request = json.loads(line)
        except json.JSONDecodeError as err:
            return {"ok": False, "error": f"bad JSON: {err}"}
        return await self.dispatch(request)

    async def _blocking(self, func, *args, **kwargs):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._pool, functools.partial(func, *args, **kwargs))

    def _session(self, request) -> ManagedSession:
        name = request.get("session")
        if not name:
            raise ServeError("request needs a 'session' name")
        return self.manager.get(name)

    # ------------------------------------------------------------ operations
    async def _op_ping(self, request) -> Dict:
        return {"ok": True, "result": "pong"}

    async def _op_create(self, request) -> Dict:
        name = request.get("session")
        spec = request.get("spec")
        if not name or not isinstance(spec, dict):
            raise ServeError("create needs 'session' and an object 'spec'")
        managed = await self._blocking(self.manager.create, name, spec)
        return {"ok": True, "result": managed.summary()}

    async def _op_query(self, request) -> Dict:
        managed = self._session(request)
        epsilon = request.get("epsilon")
        if epsilon is None:
            raise ServeError("query needs an 'epsilon'")
        wait = bool(request.get("wait", False))
        result, partial = await self._blocking(
            managed.submit, float(epsilon), wait=wait)
        if partial:
            self._kick_drain(managed)
        return {
            "ok": True,
            "result": result_to_json(result),
            "partial": partial,
        }

    async def _op_sweep(self, request) -> Dict:
        managed = self._session(request)
        epsilons = request.get("epsilons")
        if not isinstance(epsilons, list) or not epsilons:
            raise ServeError("sweep needs a non-empty 'epsilons' list")
        results = await self._blocking(managed.sweep, epsilons)
        return {
            "ok": True,
            "result": [
                dict(result_to_json(result), requested_epsilon=epsilon)
                for epsilon, result in results.items()
            ],
        }

    async def _op_marginals(self, request) -> Dict:
        managed = self._session(request)
        epsilon = request.get("epsilon")
        if epsilon is None:
            raise ServeError("marginals needs an 'epsilon'")
        results = await self._blocking(
            managed.marginals, float(epsilon), pool=self.shard_pool)
        return {
            "ok": True,
            "result": [
                dict(result_to_json(result), answer=list(answer))
                for answer, result in results.items()
            ],
        }

    async def _op_best(self, request) -> Dict:
        managed = self._session(request)
        best = managed.best
        return {
            "ok": True,
            "result": result_to_json(best) if best is not None else None,
            "pending": len(managed.pending),
        }

    async def _op_sessions(self, request) -> Dict:
        return {"ok": True, "result": self.manager.summaries()}

    async def _op_stats(self, request) -> Dict:
        return {"ok": True, "result": self.manager.stats()}

    async def _op_drop(self, request) -> Dict:
        name = request.get("session")
        if not name:
            raise ServeError("drop needs a 'session' name")
        self.manager.drop(name)
        return {"ok": True, "result": {"dropped": name}}

    async def _op_snapshot(self, request) -> Dict:
        path = request.get("path") or self.snapshot_path
        if not path:
            raise ServeError(
                "snapshot needs a 'path' (or start the server with "
                "--snapshot)")
        size = await self._blocking(save_snapshot, self.manager, path)
        return {"ok": True, "result": {"path": path, "bytes": size}}

    async def _op_restore(self, request) -> Dict:
        path = request.get("path") or self.snapshot_path
        if not path:
            raise ServeError(
                "restore needs a 'path' (or start the server with "
                "--snapshot)")
        manager = await self._blocking(load_snapshot, path)
        self.manager = manager
        return {"ok": True, "result": self.manager.stats()}

    async def _op_shutdown(self, request) -> Dict:
        self._shutdown.set()
        return {"ok": True, "result": "shutting down"}

    # ------------------------------------------------------------ drain loop
    def _kick_drain(self, managed: ManagedSession) -> None:
        """Start (at most one) background drain task for a session with
        queued guarantees."""
        if managed.name in self._draining:
            return
        self._draining.add(managed.name)
        task = asyncio.get_running_loop().create_task(self._drain(managed))
        self._drain_tasks.add(task)
        task.add_done_callback(self._drain_tasks.discard)

    async def _drain(self, managed: ManagedSession) -> None:
        try:
            while True:
                result = await self._blocking(managed.drain_one)
                if result is None:
                    return
        finally:
            self._draining.discard(managed.name)

    async def _settle(self) -> None:
        """Let in-flight drain tasks finish (shutdown path)."""
        if self._drain_tasks:
            await asyncio.gather(
                *list(self._drain_tasks), return_exceptions=True)

    # -------------------------------------------------------------- transports
    async def handle_connection(self, reader, writer) -> None:
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    return
                if not line.strip():
                    continue
                response = await self.dispatch_line(line)
                writer.write(
                    (json.dumps(response) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def serve_tcp(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        ready=None,
    ) -> None:
        """Serve until a ``shutdown`` op arrives.  ``ready(port)`` is
        called with the *bound* port (pass ``port=0`` for an ephemeral
        one — how the tests avoid port collisions)."""
        server = await asyncio.start_server(
            self.handle_connection, host, port)
        bound = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(bound)
        async with server:
            await self._shutdown.wait()
        await self._settle()
        await self._final_snapshot()

    async def serve_stdio(self, infile=None, outfile=None) -> None:
        """Serve one client over stdin/stdout (the pipe-friendly mode:
        ``echo '{"op":"ping"}' | python -m repro serve --stdio``)."""
        infile = infile if infile is not None else sys.stdin
        outfile = outfile if outfile is not None else sys.stdout
        loop = asyncio.get_running_loop()
        while not self._shutdown.is_set():
            line = await loop.run_in_executor(None, infile.readline)
            if not line:
                break
            if not line.strip():
                continue
            response = await self.dispatch_line(line)
            outfile.write(json.dumps(response) + "\n")
            outfile.flush()
        await self._settle()
        await self._final_snapshot()

    async def _final_snapshot(self) -> None:
        if self.snapshot_path and len(self.manager):
            await self._blocking(
                save_snapshot, self.manager, self.snapshot_path)

    def close(self) -> None:
        self._pool.shutdown(wait=False)


def request_over_tcp(host: str, port: int, requests):
    """Tiny synchronous client: send each request dict, return the
    response dicts.  Used by tests and the CI smoke step; also the
    reference for writing real clients."""
    import socket

    responses = []
    with socket.create_connection((host, port)) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        for request in requests:
            stream.write(json.dumps(request) + "\n")
            stream.flush()
            line = stream.readline()
            if not line:
                raise ServeError("server closed the connection")
            responses.append(json.loads(line))
    return responses

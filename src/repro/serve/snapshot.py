"""Versioned snapshot/restore of serve-layer session state.

A snapshot file is a two-layer pickle: an *envelope* dict with the
format marker, an integer version, and the session payload as an opaque
``bytes`` blob.  :func:`load_snapshot` validates the marker and version
**before** unpickling the payload — an old server refuses a new-format
snapshot with a clear :class:`~repro.errors.SnapshotError` instead of
exploding half-way through reconstructing classes whose pickled layout
has since changed.

The payload pickles the :class:`~repro.serve.session.SessionManager`
whole, which transitively snapshots every warm
:class:`~repro.core.refine.RefinementSession`: the grown truncation
table, the per-session compile cache with its flattened BDD node stores
(:meth:`BDDManager.__getstate__ <repro.finite.bdd.BDDManager.__getstate__>`),
cached safe plans, and the still-pending guarantee queues.  Derived
columnar mirrors, locks and live generators are dropped by each class's
own ``__getstate__`` discipline and rebuilt lazily after restore — so a
restored server resumes a sweep by *extending* its diagrams, not
recompiling them (observable as ``cache.extension`` /
``lifted.plan_cache_hits`` without fresh ``lifted.plans``).

Writes are atomic (temp file + ``os.replace``) so a crash mid-snapshot
never corrupts the previous good snapshot.
"""

from __future__ import annotations

import os
import pickle
import tempfile

from repro import obs
from repro.errors import SnapshotError
from repro.serve.session import SessionManager

#: Envelope format marker; anything else is rejected unread.
SNAPSHOT_FORMAT = "repro-serve-snapshot"
#: Bump when the pickled layout of session state changes incompatibly.
SNAPSHOT_VERSION = 1
#: Trace counter: bytes written by the last snapshot.
SNAPSHOT_BYTES_COUNTER = "serve.snapshot_bytes"


def dump_snapshot(manager: SessionManager) -> bytes:
    """The snapshot file contents for ``manager``, as bytes."""
    payload = pickle.dumps(manager, protocol=pickle.HIGHEST_PROTOCOL)
    envelope = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "payload": payload,
    }
    return pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)


def save_snapshot(manager: SessionManager, path: str) -> int:
    """Atomically write ``manager`` to ``path``; returns bytes written."""
    data = dump_snapshot(manager)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=".snapshot-", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    obs.incr(SNAPSHOT_BYTES_COUNTER, len(data))
    return len(data)


def loads_snapshot(data: bytes) -> SessionManager:
    """Restore a manager from snapshot bytes (see :func:`load_snapshot`)."""
    try:
        envelope = pickle.loads(data)
    except Exception as err:
        raise SnapshotError(f"unreadable snapshot envelope: {err}") from err
    if not isinstance(envelope, dict) or "format" not in envelope:
        raise SnapshotError(
            "not a serve snapshot (missing envelope); was this file "
            "written by save_snapshot?"
        )
    if envelope["format"] != SNAPSHOT_FORMAT:
        raise SnapshotError(
            f"unknown snapshot format {envelope['format']!r} "
            f"(expected {SNAPSHOT_FORMAT!r})"
        )
    version = envelope.get("version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} is not supported "
            f"(this server reads version {SNAPSHOT_VERSION}); "
            "re-create the snapshot with a matching server"
        )
    try:
        manager = pickle.loads(envelope["payload"])
    except Exception as err:
        raise SnapshotError(f"corrupt snapshot payload: {err}") from err
    if not isinstance(manager, SessionManager):
        raise SnapshotError(
            f"snapshot payload is a {type(manager).__name__}, "
            "expected a SessionManager"
        )
    return manager


def load_snapshot(path: str) -> SessionManager:
    """Restore a :class:`SessionManager` from a snapshot file.

    Raises :class:`~repro.errors.SnapshotError` on format or version
    mismatch — checked before the session payload is unpickled.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    return loads_snapshot(data)

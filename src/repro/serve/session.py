"""Long-lived refinement sessions behind the serve front-end.

The batch entry points (CLI ``query``, the one-shot functions in
:mod:`repro.core.approx`) pay the full cost of every request: load the
table, build the completion, enumerate the prefix, compile the lineage.
A *service* amortizes that work: a :class:`SessionManager` holds named
:class:`~repro.core.refine.RefinementSession` instances whose warm state
— the materialized prefix, the grown truncation table, the per-session
:class:`~repro.finite.compile_cache.CompileCache` with its extended BDD
managers and cached safe plans — persists across requests, so the
steady-state cost of a query is one incremental refinement (often just a
cache hit) instead of a cold rebuild.

ε-budget scheduling (:meth:`ManagedSession.submit`): each session has an
``epsilon_budget`` separating *interactive* from *background* work.
Requests at ε ≥ budget run inline.  A tighter ε is *queued* and the
current best result is returned immediately as a certified-but-partial
anytime answer; the server's drain loop then works the queue loosest
first, so the truncation only ever grows and every queued guarantee is
eventually met.  A request the current best already satisfies
(``best.epsilon ≤ ε``) is answered from memory without touching the
session at all.

Everything here is plain threads-and-locks Python — the asyncio
front-end (:mod:`repro.serve.server`) runs these blocking calls on a
thread pool.  Thread safety: :class:`ManagedSession` serializes its
bookkeeping under its own lock while actual refinement serializes on the
underlying session's lock; :class:`SessionManager` locks only the name
table, so requests against different sessions never contend.
"""

from __future__ import annotations

import io
import json
import threading
from typing import Dict, Iterable, List, Mapping, Optional

from repro import obs
from repro.core.approx import ApproximationResult
from repro.core.completion import complete
from repro.core.fact_distribution import (
    GeometricFactDistribution,
    ZetaFactDistribution,
)
from repro.core.refine import RefinementSession, normalize_epsilons
from repro.core.tuple_independent import CountableTIPDB
from repro.errors import ServeError
from repro.finite.compile_cache import CompileCache
from repro.finite.tuple_independent import TupleIndependentTable
from repro.io import load as load_table
from repro.logic.analysis import free_variables
from repro.logic.parser import parse_formula
from repro.logic.queries import BooleanQuery, Query
from repro.relational.schema import Schema
from repro.universe import FactSpace, Naturals

#: Trace counters of the serve layer (wrap calls in ``obs.trace()`` to
#: observe them; outside a trace they are no-ops, like all obs counters).
SESSIONS_COUNTER = "serve.sessions"
REQUESTS_COUNTER = "serve.requests"
QUEUED_COUNTER = "serve.queued"

#: Default ε separating inline from queued-background refinement.
DEFAULT_EPSILON_BUDGET = 0.05


def _family_distribution(spec: Mapping, space: FactSpace):
    """An open-world fact distribution from its JSON spec."""
    kind = spec.get("kind", "geometric")
    if kind == "geometric":
        return GeometricFactDistribution(
            space,
            first=float(spec.get("first", 0.5)),
            ratio=float(spec.get("ratio", 0.5)),
        )
    if kind == "zeta":
        return ZetaFactDistribution(
            space,
            exponent=float(spec.get("exponent", 2.0)),
            scale=float(spec.get("scale", 1.0)),
        )
    raise ServeError(
        f"unknown open-world family kind {kind!r} "
        "(expected 'geometric' or 'zeta')"
    )


def build_session(spec: Mapping) -> RefinementSession:
    """A fresh :class:`RefinementSession` from a JSON session spec.

    Two shapes are accepted (mirroring the CLI's two entry paths):

    ``{"schema": {"R": 1}, "family": {...}, "query": "..."}``
        A pure countable TI PDB over ``FactSpace(schema, Naturals())``
        with the given rank-based family — the open-world table with no
        observed facts.

    ``{"table": {...repro.io JSON...}, "open_world": {...}, "query": "..."}``
        A finite tuple-independent table completed (Theorem 5.5) with an
        open-world family over its fact space, exactly like the CLI's
        ``query --open-world`` path.

    Optional keys: ``strategy`` (default ``"auto"``), ``max_facts``.
    The session gets its own :class:`CompileCache`, so its warm diagrams
    are isolated from other sessions and travel with it in snapshots.
    """
    query_text = spec.get("query")
    if not query_text:
        raise ServeError("session spec needs a 'query'")
    strategy = spec.get("strategy", "auto")
    max_facts = int(spec.get("max_facts", 10**7))

    if "table" in spec:
        if "open_world" not in spec:
            raise ServeError(
                "a 'table' session needs 'open_world' (a finite table has "
                "nothing to refine); use query --strategy for closed-world"
            )
        table_spec = spec["table"]
        text = (
            table_spec if isinstance(table_spec, str)
            else json.dumps(table_spec)
        )
        table = load_table(io.StringIO(text))
        if not isinstance(table, TupleIndependentTable):
            raise ServeError(
                "open-world completion needs a tuple-independent table, "
                f"got {type(table).__name__}"
            )
        schema = table.schema
        ow = spec["open_world"]
        pdb = complete(
            table,
            GeometricFactDistribution(
                FactSpace(schema, Naturals()),
                first=float(ow.get("first", 0.5)),
                ratio=float(ow.get("ratio", 0.5)),
            ),
        )
    elif "schema" in spec:
        arities = {name: int(k) for name, k in spec["schema"].items()}
        schema = Schema.of(**arities)
        space = FactSpace(schema, Naturals())
        family = spec.get("family", {})
        pdb = CountableTIPDB(schema, _family_distribution(family, space))
    else:
        raise ServeError(
            "session spec needs either 'table' + 'open_world' or "
            "'schema' + 'family'"
        )

    formula = parse_formula(query_text, schema)
    if free_variables(formula):
        # A free-variable query makes an answer-marginal session: the
        # 'marginals' op fans its answers out on the server's shared
        # shard pool instead of answering one Boolean probability.
        query: Query = Query(formula, schema)
    else:
        query = BooleanQuery(formula, schema)
    return RefinementSession(
        query, pdb, strategy=strategy, max_facts=max_facts,
        compile_cache=CompileCache(),
    )


def result_to_json(result: ApproximationResult) -> Dict:
    """The wire form of one anytime answer."""
    return {
        "value": result.value,
        "epsilon": result.epsilon,
        "truncation": result.truncation,
        "alpha": result.alpha,
        "sampling_error": result.sampling_error,
        "low": result.low,
        "high": result.high,
    }


class ManagedSession:
    """One named refinement session plus serve-side bookkeeping: the
    tightest answer so far, the queue of not-yet-met guarantees, and
    request counters."""

    def __init__(
        self,
        name: str,
        session: RefinementSession,
        epsilon_budget: float = DEFAULT_EPSILON_BUDGET,
        max_pending: int = 32,
    ):
        self.name = name
        self.session = session
        self.epsilon_budget = float(epsilon_budget)
        self.max_pending = int(max_pending)
        #: Tightest :class:`ApproximationResult` produced so far.
        self.best: Optional[ApproximationResult] = None
        #: Guarantees accepted but not yet met, drained loosest first.
        self.pending: List[float] = []
        self.requests = 0
        self.refinements = 0
        self._lock = threading.RLock()

    # ------------------------------------------------------------ refinement
    def refine(self, epsilon: float) -> ApproximationResult:
        """One inline refinement; tracks the tightest answer."""
        result = self.session.refine(epsilon)
        with self._lock:
            self.refinements += 1
            if self.best is None or result.epsilon < self.best.epsilon:
                self.best = result
        return result

    def submit(self, epsilon: float, wait: bool = False):
        """ε-budget admission: returns ``(result, partial)``.

        * ``best.epsilon ≤ ε`` → the remembered best already certifies
          the request; answered from memory, ``partial=False``.
        * ``wait=True``, ε ≥ the session budget, or no answer exists yet
          → refine inline, ``partial=False``.
        * otherwise → queue ε for background refinement (bounded by
          ``max_pending`` — admission control) and return the current
          best immediately, ``partial=True``: an anytime answer whose
          own ε still certifies *it*, just not yet the requested one.
        """
        epsilon = float(epsilon)
        if not epsilon > 0.0:
            raise ServeError(f"epsilon must be positive, got {epsilon}")
        with self._lock:
            self.requests += 1
            best = self.best
        obs.incr(REQUESTS_COUNTER)
        if best is not None and best.epsilon <= epsilon and not wait:
            return best, False
        if wait or best is None or epsilon >= self.epsilon_budget:
            return self.refine(epsilon), False
        with self._lock:
            if epsilon not in self.pending:
                if len(self.pending) >= self.max_pending:
                    raise ServeError(
                        f"session {self.name!r}: refinement queue full "
                        f"({self.max_pending} pending); retry with "
                        "wait=true or a looser epsilon"
                    )
                self.pending.append(epsilon)
                obs.incr(QUEUED_COUNTER)
            best = self.best  # may have tightened while we queued
        return best, True

    def marginals(
        self,
        epsilon: float,
        workers: Optional[int] = None,
        pool=None,
    ) -> Dict:
        """One answer-marginal refinement at guarantee ε (free-variable
        sessions; a Boolean session returns its single ``()`` answer).

        ``pool`` is the server's shared
        :class:`~repro.parallel.pool.ShardPool` — every session fans
        out on the same warm workers, which cache each session's table
        (delta-shipped between calls) and compiled diagrams.
        """
        epsilon = float(epsilon)
        if not epsilon > 0.0:
            raise ServeError(f"epsilon must be positive, got {epsilon}")
        with self._lock:
            self.requests += 1
        obs.incr(REQUESTS_COUNTER)
        results = self.session.refine_marginals(
            epsilon, workers=workers, pool=pool)
        with self._lock:
            self.refinements += 1
        return results

    def sweep(self, epsilons: Iterable[float]) -> Dict[float, ApproximationResult]:
        """A full ε-sweep (loosest first, see
        :func:`~repro.core.refine.normalize_epsilons`), inline."""
        schedule = normalize_epsilons(epsilons)
        with self._lock:
            self.requests += len(schedule)
        obs.incr(REQUESTS_COUNTER, len(schedule))
        results = self.session.sweep(schedule)
        with self._lock:
            self.refinements += len(results)
            for result in results.values():
                if self.best is None or result.epsilon < self.best.epsilon:
                    self.best = result
        return results

    # ----------------------------------------------------------- drain loop
    def drain_one(self) -> Optional[ApproximationResult]:
        """Work one queued guarantee, loosest first; None when idle.

        A queued ε the best answer meanwhile covers is dequeued without
        refining (a tighter earlier drain already did the work).
        """
        with self._lock:
            if not self.pending:
                return None
            epsilon = max(self.pending)
            self.pending.remove(epsilon)
            best = self.best
        if best is not None and best.epsilon <= epsilon:
            return best
        return self.refine(epsilon)

    def drain(self) -> int:
        """Drain the whole queue; returns the number of entries worked."""
        worked = 0
        while self.drain_one() is not None:
            worked += 1
        return worked

    # ------------------------------------------------------------- summaries
    def summary(self) -> Dict:
        with self._lock:
            return {
                "name": self.name,
                "strategy": self.session.strategy,
                "truncation": self.session._n,
                "requests": self.requests,
                "refinements": self.refinements,
                "pending": len(self.pending),
                "epsilon_budget": self.epsilon_budget,
                "best": (
                    result_to_json(self.best)
                    if self.best is not None else None
                ),
            }

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        """Snapshots keep the warm session, the best answer and the
        still-pending guarantees (a restored server resumes the queue);
        only the lock is dropped."""
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        return (
            f"ManagedSession({self.name!r}, requests={self.requests}, "
            f"pending={len(self.pending)})"
        )


class SessionManager:
    """The server's name → :class:`ManagedSession` table.

    Admission control: at most ``max_sessions`` concurrent sessions and
    ``max_pending`` queued guarantees per session; both raise
    :class:`~repro.errors.ServeError` when exceeded rather than letting
    a single client grow the server without bound.
    """

    def __init__(
        self,
        max_sessions: int = 16,
        max_pending: int = 32,
        default_epsilon_budget: float = DEFAULT_EPSILON_BUDGET,
    ):
        self.max_sessions = int(max_sessions)
        self.max_pending = int(max_pending)
        self.default_epsilon_budget = float(default_epsilon_budget)
        self._sessions: Dict[str, ManagedSession] = {}
        self._lock = threading.RLock()

    # -------------------------------------------------------------- lifecycle
    def create(self, name: str, spec: Mapping) -> ManagedSession:
        """Admit and build a named session from its JSON spec."""
        if not name or not isinstance(name, str):
            raise ServeError("session name must be a non-empty string")
        with self._lock:
            if name in self._sessions:
                raise ServeError(f"session {name!r} already exists")
            if len(self._sessions) >= self.max_sessions:
                raise ServeError(
                    f"session limit reached ({self.max_sessions}); "
                    "drop a session first"
                )
        # Build outside the lock (table loading / completion can be
        # slow); double-check the name on publication.
        budget = float(spec.get("epsilon_budget", self.default_epsilon_budget))
        if not budget > 0.0:
            raise ServeError(f"epsilon_budget must be positive, got {budget}")
        managed = ManagedSession(
            name, build_session(spec),
            epsilon_budget=budget, max_pending=self.max_pending,
        )
        with self._lock:
            if name in self._sessions:
                raise ServeError(f"session {name!r} already exists")
            self._sessions[name] = managed
        obs.incr(SESSIONS_COUNTER)
        return managed

    def get(self, name: str) -> ManagedSession:
        with self._lock:
            try:
                return self._sessions[name]
            except KeyError:
                raise ServeError(f"no session named {name!r}") from None

    def drop(self, name: str) -> None:
        with self._lock:
            if self._sessions.pop(name, None) is None:
                raise ServeError(f"no session named {name!r}")

    def adopt(self, managed: ManagedSession) -> None:
        """Install an already-built session (snapshot restore path)."""
        with self._lock:
            self._sessions[managed.name] = managed

    # ------------------------------------------------------------- inspection
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def summaries(self) -> List[Dict]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [managed.summary() for managed in sessions]

    def stats(self) -> Dict:
        with self._lock:
            sessions = list(self._sessions.values())
        return {
            "sessions": len(sessions),
            "max_sessions": self.max_sessions,
            "requests": sum(s.requests for s in sessions),
            "refinements": sum(s.refinements for s in sessions),
            "pending": sum(len(s.pending) for s in sessions),
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._sessions

    # ------------------------------------------------------------- pickling
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        return f"SessionManager(sessions={len(self)})"

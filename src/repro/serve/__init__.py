"""The serving layer: long-lived refinement sessions behind a JSON
protocol.

* :mod:`repro.serve.session` — :class:`SessionManager` /
  :class:`ManagedSession`: named warm
  :class:`~repro.core.refine.RefinementSession` state, ε-budget
  scheduling with anytime partial answers, admission control.
* :mod:`repro.serve.server` — :class:`QueryServer`: asyncio
  newline-delimited JSON over TCP or stdio.
* :mod:`repro.serve.snapshot` — versioned pickle snapshot/restore of
  the whole manager.

CLI entry point: ``python -m repro serve``.
"""

from repro.serve.session import (
    DEFAULT_EPSILON_BUDGET,
    ManagedSession,
    QUEUED_COUNTER,
    REQUESTS_COUNTER,
    SESSIONS_COUNTER,
    SessionManager,
    build_session,
    result_to_json,
)
from repro.serve.server import DEFAULT_PORT, QueryServer, request_over_tcp
from repro.serve.snapshot import (
    SNAPSHOT_BYTES_COUNTER,
    SNAPSHOT_FORMAT,
    SNAPSHOT_VERSION,
    dump_snapshot,
    load_snapshot,
    loads_snapshot,
    save_snapshot,
)

__all__ = [
    "DEFAULT_EPSILON_BUDGET",
    "DEFAULT_PORT",
    "ManagedSession",
    "QUEUED_COUNTER",
    "QueryServer",
    "REQUESTS_COUNTER",
    "SESSIONS_COUNTER",
    "SessionManager",
    "SNAPSHOT_BYTES_COUNTER",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_VERSION",
    "build_session",
    "dump_snapshot",
    "load_snapshot",
    "loads_snapshot",
    "request_over_tcp",
    "result_to_json",
    "save_snapshot",
]

"""Queries and views (paper §2.1, §3.1).

A *view* of source schema τ and target schema τ′ is a mapping
``V : D[τ, U] → D[τ′, U]``; a *query* is a view whose target schema has a
single relation.  An *FO-view* is given by one FO formula per target
relation: ``R^{V(D)} = φ_R(D)``.

These are plain deterministic mappings on instances; their probabilistic
semantics (pushforward measures, eq. (3)/(4) of the paper) lives in
``repro.finite.views`` and ``repro.core.views``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import EvaluationError, SchemaError
from repro.logic.analysis import free_variables, is_sentence
from repro.logic.semantics import answer_tuples, evaluate
from repro.logic.syntax import Formula, Variable
from repro.relational.facts import Fact, Value
from repro.relational.instance import Instance
from repro.relational.schema import RelationSymbol, Schema


class View:
    """A view ``V : D[τ, U] → D[τ′, U]`` backed by an arbitrary function.

    >>> source = Schema.of(R=1)
    >>> target = Schema.of(T=1)
    >>> T = target["T"]
    >>> double = View(source, target,
    ...     lambda D: Instance(T(a * 2) for (a,) in D.relation(source["R"])))
    >>> R = source["R"]
    >>> sorted(double(Instance([R(1), R(3)])).relation(T))
    [(2,), (6,)]
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        mapping: Callable[[Instance], Instance],
    ):
        self.source = source
        self.target = target
        self._mapping = mapping

    def __call__(self, instance: Instance) -> Instance:
        image = self._mapping(instance)
        return image.validate_schema(self.target)

    def __repr__(self) -> str:
        return f"View({self.source!r} -> {self.target!r})"


class FOView(View):
    """An FO-view: one formula per target relation (paper §2.1).

    ``formulas`` maps each target relation symbol to a pair
    ``(formula, variables)`` where ``variables`` fixes the answer column
    order; a bare formula is accepted, with free variables sorted by name.

    >>> from repro.logic.parser import parse_formula
    >>> source = Schema.of(R=2)
    >>> target = Schema.of(T=1)
    >>> view = FOView(source, target,
    ...     {"T": parse_formula("EXISTS y. R(x, y)", source)})
    >>> R = source["R"]
    >>> sorted(view(Instance([R(1, 2), R(3, 1)])).relation(target["T"]))
    [(1,), (3,)]
    """

    def __init__(
        self,
        source: Schema,
        target: Schema,
        formulas: Mapping[str, object],
    ):
        normalized: Dict[RelationSymbol, Tuple[Formula, Tuple[Variable, ...]]] = {}
        for name, spec in formulas.items():
            symbol = target[name]
            if isinstance(spec, tuple):
                formula, variables = spec
                variables = tuple(variables)
            else:
                formula = spec
                variables = tuple(
                    sorted(free_variables(formula), key=lambda v: v.name)
                )
            if len(variables) != symbol.arity:
                raise SchemaError(
                    f"view formula for {symbol} has {len(variables)} answer "
                    f"variables but the relation has arity {symbol.arity}"
                )
            if set(variables) != set(free_variables(formula)):
                raise SchemaError(
                    f"answer variables {[v.name for v in variables]} must be "
                    f"exactly the free variables of the formula for {symbol}"
                )
            normalized[symbol] = (formula, variables)
        missing = {r.name for r in target} - {r.name for r in normalized}
        if missing:
            raise SchemaError(f"no formula for target relations {sorted(missing)}")
        self.formulas = normalized
        super().__init__(source, target, self._apply)

    def _apply(self, instance: Instance) -> Instance:
        facts = []
        for symbol, (formula, variables) in self.formulas.items():
            for answer in answer_tuples(formula, instance, variables):
                facts.append(Fact(symbol, answer))
        return Instance(facts)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{symbol.name}={formula}" for symbol, (formula, _) in self.formulas.items()
        )
        return f"FOView({inner})"


class Query:
    """A k-ary query: an FO formula with k answer variables.

    ``Q(D)`` denotes the answer relation (a set of k-tuples).  For k = 0
    the query is Boolean and ``{()}``/``{}`` are identified with
    True/False (paper §2.1).

    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> q = Query(parse_formula("EXISTS y. R(x, y)", schema), schema)
    >>> R = schema["R"]
    >>> sorted(q(Instance([R(1, 5)])))
    [(1,)]
    """

    def __init__(
        self,
        formula: Formula,
        schema: Schema,
        variables: Optional[Iterable[Variable]] = None,
        name: str = "Q",
    ):
        self.formula = formula
        self.schema = schema
        self.name = name
        if variables is None:
            self.variables: Tuple[Variable, ...] = tuple(
                sorted(free_variables(formula), key=lambda v: v.name)
            )
        else:
            self.variables = tuple(variables)
            if set(self.variables) != set(free_variables(formula)):
                raise EvaluationError(
                    "answer variables must be exactly the free variables"
                )

    @property
    def arity(self) -> int:
        return len(self.variables)

    @property
    def is_boolean(self) -> bool:
        return self.arity == 0

    def __call__(self, instance: Instance):
        answers = answer_tuples(self.formula, instance, self.variables)
        if self.is_boolean:
            return bool(answers)
        return answers

    def holds_in(self, instance: Instance) -> bool:
        """For Boolean queries: ``D ⊨ Q``."""
        if not self.is_boolean:
            raise EvaluationError(f"{self.name} is not Boolean (arity {self.arity})")
        return evaluate(self.formula, instance)

    def as_view(self, target_name: str = "Answer") -> FOView:
        """Wrap this query as a single-relation FO-view."""
        target = Schema([RelationSymbol(target_name, self.arity)])
        return FOView(
            self.schema, target, {target_name: (self.formula, self.variables)}
        )

    def __repr__(self) -> str:
        return f"Query({self.name}: {self.formula})"


class BooleanQuery(Query):
    """A 0-ary (sentence) query; rejects formulas with free variables.

    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> q = BooleanQuery(parse_formula("EXISTS x. R(x)", schema), schema)
    >>> q.holds_in(Instance([schema["R"](9)]))
    True
    """

    def __init__(self, formula: Formula, schema: Schema, name: str = "Q"):
        if not is_sentence(formula):
            raise EvaluationError(
                f"Boolean query must be a sentence, free variables: "
                f"{sorted(v.name for v in free_variables(formula))}"
            )
        super().__init__(formula, schema, variables=(), name=name)

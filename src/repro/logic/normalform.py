"""Normal forms: negation normal form, prenex normal form, and extraction
of unions of conjunctive queries (UCQs).

The lifted inference engine (``repro.finite.lifted``) works on UCQs; the
truncation algorithm of Proposition 6.1 works on arbitrary FO sentences
via model checking, so these conversions are the bridge between "any FO
query" and "query class with efficient evaluation".
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import EvaluationError
from repro.logic.analysis import free_variables, is_positive
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Term,
    Variable,
    _Truth,
    FALSE,
    TRUE,
)

_fresh_counter = itertools.count()


def _fresh_variable(base: str) -> Variable:
    return Variable(f"{base}#{next(_fresh_counter)}")


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed to atoms, no implications.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> str(to_nnf(parse_formula("NOT (EXISTS x. R(x))", schema)))
    'FORALL x. (NOT (R(x)))'
    """
    return _nnf(formula, negate=False)


def _nnf(formula: Formula, negate: bool) -> Formula:
    if isinstance(formula, _Truth):
        return FALSE if (formula.value == negate) else TRUE
    if isinstance(formula, (Atom, Equals)):
        return Not(formula) if negate else formula
    if isinstance(formula, Not):
        return _nnf(formula.operand, not negate)
    if isinstance(formula, And):
        left = _nnf(formula.left, negate)
        right = _nnf(formula.right, negate)
        return Or(left, right) if negate else And(left, right)
    if isinstance(formula, Or):
        left = _nnf(formula.left, negate)
        right = _nnf(formula.right, negate)
        return And(left, right) if negate else Or(left, right)
    if isinstance(formula, Implies):
        # φ -> ψ ≡ ¬φ ∨ ψ
        return _nnf(Or(Not(formula.left), formula.right), negate)
    if isinstance(formula, Exists):
        body = _nnf(formula.body, negate)
        return Forall(formula.variable, body) if negate else Exists(
            formula.variable, body
        )
    if isinstance(formula, Forall):
        body = _nnf(formula.body, negate)
        return Exists(formula.variable, body) if negate else Forall(
            formula.variable, body
        )
    raise TypeError(f"unknown formula node {formula!r}")


def rename_variable(formula: Formula, old: Variable, new: Variable) -> Formula:
    """Capture-avoiding substitution of variable ``old`` by ``new``."""
    if isinstance(formula, _Truth):
        return formula
    if isinstance(formula, Atom):
        return Atom(
            formula.relation,
            tuple(new if t == old else t for t in formula.terms),
        )
    if isinstance(formula, Equals):
        return Equals(
            new if formula.left == old else formula.left,
            new if formula.right == old else formula.right,
        )
    if isinstance(formula, Not):
        return Not(rename_variable(formula.operand, old, new))
    if isinstance(formula, And):
        return And(
            rename_variable(formula.left, old, new),
            rename_variable(formula.right, old, new),
        )
    if isinstance(formula, Or):
        return Or(
            rename_variable(formula.left, old, new),
            rename_variable(formula.right, old, new),
        )
    if isinstance(formula, Implies):
        return Implies(
            rename_variable(formula.left, old, new),
            rename_variable(formula.right, old, new),
        )
    if isinstance(formula, (Exists, Forall)):
        if formula.variable == old:
            return formula  # old is shadowed; nothing free to rename
        builder = type(formula)
        return builder(formula.variable, rename_variable(formula.body, old, new))
    raise TypeError(f"unknown formula node {formula!r}")


def substitute(formula: Formula, binding: Dict[Variable, object]) -> Formula:
    """Replace free variables by constants (grounding).

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> str(substitute(parse_formula("R(x)", schema), {Variable("x"): 7}))
    'R(7)'
    """
    if isinstance(formula, _Truth):
        return formula
    if isinstance(formula, Atom):
        terms: List[Term] = []
        for term in formula.terms:
            if isinstance(term, Variable) and term in binding:
                terms.append(Constant(binding[term]))
            else:
                terms.append(term)
        return Atom(formula.relation, terms)
    if isinstance(formula, Equals):
        def sub(term: Term) -> Term:
            if isinstance(term, Variable) and term in binding:
                return Constant(binding[term])
            return term

        return Equals(sub(formula.left), sub(formula.right))
    if isinstance(formula, Not):
        return Not(substitute(formula.operand, binding))
    if isinstance(formula, And):
        return And(
            substitute(formula.left, binding), substitute(formula.right, binding)
        )
    if isinstance(formula, Or):
        return Or(
            substitute(formula.left, binding), substitute(formula.right, binding)
        )
    if isinstance(formula, Implies):
        return Implies(
            substitute(formula.left, binding), substitute(formula.right, binding)
        )
    if isinstance(formula, (Exists, Forall)):
        inner = {v: c for v, c in binding.items() if v != formula.variable}
        builder = type(formula)
        return builder(formula.variable, substitute(formula.body, inner))
    raise TypeError(f"unknown formula node {formula!r}")


def standardize_apart(formula: Formula) -> Formula:
    """Rename every quantified variable to a fresh one, so distinct
    quantifier scopes never share a variable name.

    Required before UCQ extraction: ``(∃x. R(x)) ∧ (∃x. S(x, y))`` must
    not conflate the two x's into a join variable.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> from repro.logic.analysis import free_variables
    >>> schema = Schema.of(R=1)
    >>> renamed = standardize_apart(parse_formula(
    ...     "(EXISTS x. R(x)) AND (EXISTS x. R(x))", schema))
    >>> len({v for node in [renamed.left, renamed.right]
    ...      for v in [node.variable]})
    2
    """
    if isinstance(formula, (Atom, Equals, _Truth)):
        return formula
    if isinstance(formula, Not):
        return Not(standardize_apart(formula.operand))
    if isinstance(formula, (And, Or, Implies)):
        builder = type(formula)
        return builder(
            standardize_apart(formula.left), standardize_apart(formula.right)
        )
    if isinstance(formula, (Exists, Forall)):
        fresh = _fresh_variable(formula.variable.name.split("#")[0])
        body = rename_variable(formula.body, formula.variable, fresh)
        builder = type(formula)
        return builder(fresh, standardize_apart(body))
    raise TypeError(f"unknown formula node {formula!r}")


def to_prenex(formula: Formula) -> Formula:
    """Prenex normal form: all quantifiers pulled to the front.

    Bound variables are freshened to avoid capture, so the result may use
    renamed variables.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1, S=1)
    >>> pnf = to_prenex(parse_formula(
    ...     "(EXISTS x. R(x)) AND (EXISTS x. S(x))", schema))
    >>> str(pnf).count("EXISTS")
    2
    """
    nnf = to_nnf(formula)
    prefix, matrix = _pull_quantifiers(nnf)
    result = matrix
    for builder, variable in reversed(prefix):
        result = builder(variable, result)
    return result


def _pull_quantifiers(formula: Formula) -> Tuple[List[tuple], Formula]:
    if isinstance(formula, (Atom, Equals, _Truth)):
        return [], formula
    if isinstance(formula, Not):
        # NNF: operand is an atom/equality.
        return [], formula
    if isinstance(formula, (And, Or)):
        left_prefix, left_matrix = _pull_quantifiers(formula.left)
        right_prefix, right_matrix = _pull_quantifiers(formula.right)
        builder = type(formula)
        return left_prefix + right_prefix, builder(left_matrix, right_matrix)
    if isinstance(formula, (Exists, Forall)):
        fresh = _fresh_variable(formula.variable.name.split("#")[0])
        body = rename_variable(formula.body, formula.variable, fresh)
        prefix, matrix = _pull_quantifiers(body)
        return [(type(formula), fresh)] + prefix, matrix
    raise TypeError(f"unexpected node in NNF {formula!r}")


class ConjunctiveQuery:
    """A conjunctive query: ``∃x̄. A₁ ∧ … ∧ A_m`` over relational atoms.

    ``head_variables`` are the free (answer) variables; all other
    variables in the atoms are existentially quantified.
    """

    __slots__ = ("atoms", "head_variables")

    def __init__(
        self,
        atoms: Sequence[Atom],
        head_variables: Sequence[Variable] = (),
    ):
        self.atoms: Tuple[Atom, ...] = tuple(atoms)
        if not self.atoms:
            raise EvaluationError("a conjunctive query needs at least one atom")
        self.head_variables: Tuple[Variable, ...] = tuple(head_variables)

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        variables: set = set()
        for atom in self.atoms:
            variables.update(t for t in atom.terms if isinstance(t, Variable))
        return frozenset(variables - set(self.head_variables))

    def to_formula(self) -> Formula:
        body: Formula = self.atoms[0]
        for atom in self.atoms[1:]:
            body = And(body, atom)
        for variable in sorted(self.existential_variables, key=lambda v: v.name):
            body = Exists(variable, body)
        return body

    def __repr__(self) -> str:
        inner = " AND ".join(str(a) for a in self.atoms)
        return f"CQ({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            set(self.atoms) == set(other.atoms)
            and self.head_variables == other.head_variables
        )

    def __hash__(self) -> int:
        return hash((frozenset(self.atoms), self.head_variables))


class UnionOfConjunctiveQueries:
    """A UCQ: a disjunction of conjunctive queries with a shared head."""

    __slots__ = ("disjuncts",)

    def __init__(self, disjuncts: Sequence[ConjunctiveQuery]):
        self.disjuncts: Tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        if not self.disjuncts:
            raise EvaluationError("a UCQ needs at least one disjunct")

    def to_formula(self) -> Formula:
        result = self.disjuncts[0].to_formula()
        for cq in self.disjuncts[1:]:
            result = Or(result, cq.to_formula())
        return result

    def __repr__(self) -> str:
        return f"UCQ({' OR '.join(repr(d) for d in self.disjuncts)})"


# ------------------------------------------------- containment & minimization
def _match_atom(
    source: Atom,
    target: Atom,
    mapping: Dict[Variable, Term],
    fixed: FrozenSet[Variable],
) -> Optional[Dict[Variable, Term]]:
    """Extend ``mapping`` so that ``source`` maps onto ``target``, or
    None.  Constants must match exactly; fixed variables map to
    themselves."""
    if source.relation != target.relation:
        return None
    extended = dict(mapping)
    for s, t in zip(source.terms, target.terms):
        if isinstance(s, Constant):
            if not (isinstance(t, Constant) and t.value == s.value):
                return None
        elif s in fixed:
            if t != s:
                return None
        else:
            bound = extended.get(s)
            if bound is None:
                extended[s] = t
            elif bound != t:
                return None
    return extended


def cq_homomorphism(
    source: ConjunctiveQuery,
    target: ConjunctiveQuery,
    fixed: FrozenSet[Variable] = frozenset(),
) -> Optional[Dict[Variable, Term]]:
    """A homomorphism from ``source`` onto ``target``: a variable mapping
    (identity on head and ``fixed`` variables) sending every atom of
    ``source`` to an atom of ``target``.

    Existence proves containment in the classical direction: a
    homomorphism ``source → target`` witnesses ``target ⊆ source``.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> x, y = Variable("x"), Variable("y")
    >>> hom = cq_homomorphism(
    ...     ConjunctiveQuery([Atom(R, (x,))]),
    ...     ConjunctiveQuery([Atom(R, (Constant(1),))]))
    >>> hom[x]
    Constant(1)
    >>> cq_homomorphism(
    ...     ConjunctiveQuery([Atom(R, (Constant(2),))]),
    ...     ConjunctiveQuery([Atom(R, (Constant(1),))])) is None
    True
    """
    all_fixed = frozenset(fixed) | set(source.head_variables)
    atoms = list(source.atoms)
    targets = list(target.atoms)

    def search(i: int, mapping: Dict[Variable, Term]):
        if i == len(atoms):
            return mapping
        for candidate in targets:
            extended = _match_atom(atoms[i], candidate, mapping, all_fixed)
            if extended is not None:
                result = search(i + 1, extended)
                if result is not None:
                    return result
        return None

    return search(0, {})


def cq_contained_in(
    sub: ConjunctiveQuery,
    sup: ConjunctiveQuery,
    fixed: FrozenSet[Variable] = frozenset(),
) -> bool:
    """``sub ⊆ sup`` (every model of ``sub`` models ``sup``), decided by
    searching for a homomorphism ``sup → sub``."""
    return cq_homomorphism(sup, sub, fixed) is not None


def cq_equivalent(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    fixed: FrozenSet[Variable] = frozenset(),
) -> bool:
    """Logical equivalence of two CQs (mutual containment)."""
    return cq_contained_in(left, right, fixed) and cq_contained_in(
        right, left, fixed
    )


def minimize_cq(
    cq: ConjunctiveQuery,
    fixed: FrozenSet[Variable] = frozenset(),
) -> ConjunctiveQuery:
    """The core of a CQ: drop atoms while an equivalent sub-conjunction
    remains (folding witnessed by a homomorphism fixing head and
    ``fixed`` variables).

    This is what lets the safe-plan solver treat limited self-joins:
    ``∃x. R(x) ∧ R(1)`` minimizes to ``R(1)``, and after grounding a
    separator variable, redundant copies like ``R(x, y) ∧ R(x, z)``
    (``x`` bound) collapse to one atom.

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> x = Variable("x")
    >>> minimize_cq(ConjunctiveQuery([Atom(R, (x,)), Atom(R, (Constant(1),))]))
    CQ(R(1))
    """
    atoms: List[Atom] = list(dict.fromkeys(cq.atoms))
    changed = True
    while changed and len(atoms) > 1:
        changed = False
        for i in range(len(atoms)):
            reduced = atoms[:i] + atoms[i + 1:]
            full = ConjunctiveQuery(atoms, cq.head_variables)
            candidate = ConjunctiveQuery(reduced, cq.head_variables)
            if cq_homomorphism(full, candidate, fixed) is not None:
                atoms = reduced
                changed = True
                break
    return ConjunctiveQuery(atoms, cq.head_variables)


def minimize_ucq(
    ucq: UnionOfConjunctiveQueries,
    fixed: FrozenSet[Variable] = frozenset(),
) -> UnionOfConjunctiveQueries:
    """Minimize a UCQ: core every disjunct, then drop disjuncts contained
    in another (keeping the first of an equivalence class).

    >>> from repro.relational import RelationSymbol
    >>> R = RelationSymbol("R", 1)
    >>> x = Variable("x")
    >>> minimize_ucq(UnionOfConjunctiveQueries([
    ...     ConjunctiveQuery([Atom(R, (x,))]),
    ...     ConjunctiveQuery([Atom(R, (Constant(1),))]),
    ... ]))
    UCQ(CQ(R(x)))
    """
    cores = [minimize_cq(cq, fixed) for cq in ucq.disjuncts]
    kept: List[ConjunctiveQuery] = []
    for i, cq in enumerate(cores):
        redundant = False
        for j, other in enumerate(cores):
            if i == j:
                continue
            if cq_contained_in(cq, other, fixed):
                if not cq_contained_in(other, cq, fixed):
                    redundant = True  # strictly subsumed
                    break
                if j < i:
                    redundant = True  # equivalent; keep the earliest
                    break
        if not redundant:
            kept.append(cq)
    return UnionOfConjunctiveQueries(kept)


def rename_cq_apart(
    cq: ConjunctiveQuery,
    suffix: str,
    keep: FrozenSet[Variable] = frozenset(),
) -> ConjunctiveQuery:
    """Deterministically rename every existential variable of ``cq`` by
    appending ``suffix`` — used to standardize inclusion–exclusion terms
    apart without consuming the global fresh counter (plan construction
    must be reproducible across runs).  Variables in ``keep`` (already
    bound by an enclosing project) are left untouched."""
    renaming = {
        v: Variable(f"{v.name}{suffix}")
        for v in cq.existential_variables
        if v not in keep
    }
    atoms = [
        Atom(
            atom.relation,
            tuple(
                renaming.get(t, t) if isinstance(t, Variable) else t
                for t in atom.terms
            ),
        )
        for atom in cq.atoms
    ]
    return ConjunctiveQuery(atoms, cq.head_variables)


def extract_ucq(formula: Formula) -> Optional[UnionOfConjunctiveQueries]:
    """Try to recognize ``formula`` as a UCQ (up to NNF/flattening).

    Returns None for formulas using negation, ∀, equality or implications
    that don't simplify away.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1, S=2)
    >>> ucq = extract_ucq(parse_formula(
    ...     "(EXISTS x. R(x)) OR (EXISTS x, y. S(x, y))", schema))
    >>> len(ucq.disjuncts)
    2
    """
    nnf = standardize_apart(to_nnf(formula))
    head = tuple(sorted(free_variables(nnf), key=lambda v: v.name))
    try:
        disjunct_atom_sets = _ucq_disjuncts(nnf)
    except _NotUCQ:
        return None
    disjuncts = [
        ConjunctiveQuery(atoms, head_variables=head)
        for atoms in disjunct_atom_sets
        if atoms
    ]
    if not disjuncts:
        return None
    return UnionOfConjunctiveQueries(disjuncts)


class _NotUCQ(Exception):
    pass


def _ucq_disjuncts(formula: Formula) -> List[Tuple[Atom, ...]]:
    """DNF-style expansion of an NNF positive-existential formula into
    lists of atoms.  Raises _NotUCQ on ∀/¬/=/⊥⊤ oddities."""
    if isinstance(formula, Atom):
        return [(formula,)]
    if isinstance(formula, Or):
        return _ucq_disjuncts(formula.left) + _ucq_disjuncts(formula.right)
    if isinstance(formula, And):
        left = _ucq_disjuncts(formula.left)
        right = _ucq_disjuncts(formula.right)
        return [l + r for l in left for r in right]
    if isinstance(formula, Exists):
        # Existential variables stay implicit in the CQ representation.
        return _ucq_disjuncts(formula.body)
    raise _NotUCQ(formula)

"""Compilation of safe-range FO formulas to relational algebra.

The evaluable (domain-independent) fragment of relational calculus is
the safe-range one (:func:`repro.logic.analysis.is_safe_range`); this
module translates it into the operators of
:mod:`repro.relational.algebra`, giving a second, independent evaluator
whose answers are checked against direct model checking by the tests.

Supported shapes (sufficient for the safe-range normal form):

* relational atoms with variables, constants and repeated variables;
* conjunction (natural join), including *guarded* negation
  ``φ ∧ ¬ψ`` where ``ψ``'s free variables are bound by ``φ``;
* equality selections ``x = c`` / ``x = y`` guarded by a conjunct;
* disjunction of subformulas with identical free variables (union);
* existential quantification (projection);
* universal quantification via the classical rewrite
  ``∀x. φ ≡ ¬∃x. ¬φ`` when the result is guarded.

Unsupported shapes raise :class:`~repro.errors.UnsafeQueryError` —
use :func:`repro.logic.semantics.answer_tuples` (active-domain model
checking) for those.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.errors import UnsafeQueryError
from repro.logic.analysis import free_variables
from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    Variable,
    _Truth,
)
from repro.relational.algebra import (
    Relation,
    difference,
    join,
    project,
    rename,
    select,
    union,
)
from repro.relational.instance import Instance


def compile_and_evaluate(
    formula: Formula,
    instance: Instance,
) -> Relation:
    """Evaluate a safe-range formula via relational algebra.

    Columns of the result are the free variables' names.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1, S=2)
    >>> R, S = schema["R"], schema["S"]
    >>> D = Instance([R(1), S(1, 2), S(3, 4)])
    >>> result = compile_and_evaluate(
    ...     parse_formula("R(x) AND S(x, y)", schema), D)
    >>> result.tuples(("x", "y"))
    {(1, 2)}
    """
    # NOTE: no NNF pass — pushing negation inward would turn the guarded
    # shape ``φ ∧ ¬∃ȳ.ψ`` into an (untranslatable) universal quantifier;
    # negation is handled structurally inside conjunctions instead.
    return _translate(formula, instance)


def _columns(formula: Formula) -> Tuple[str, ...]:
    return tuple(sorted(v.name for v in free_variables(formula)))


def _translate(formula: Formula, instance: Instance) -> Relation:
    if isinstance(formula, _Truth):
        return Relation.nullary(formula.value)
    if isinstance(formula, Atom):
        return _atom_relation(formula, instance)
    if isinstance(formula, And):
        return _translate_conjunction(_flatten_and(formula), instance)
    if isinstance(formula, Or):
        left = _translate(formula.left, instance)
        right = _translate(formula.right, instance)
        if set(left.columns) != set(right.columns):
            raise UnsafeQueryError(
                "disjuncts must share free variables for union translation"
            )
        return union(left, right)
    if isinstance(formula, Exists):
        body = _translate(formula.body, instance)
        keep = tuple(c for c in body.columns if c != formula.variable.name)
        return project(body, keep)
    if isinstance(formula, Forall):
        # ∀x. φ ≡ ¬∃x. ¬φ; only evaluable when the complement is guarded
        # — handled inside conjunctions; a bare ∀ is only allowed as a
        # sentence (then we can check it by model checking semantics).
        raise UnsafeQueryError(
            "bare universal quantification is not safe-range; rewrite "
            "with a guard (∀x. guard(x) -> ψ inside a conjunction)"
        )
    if isinstance(formula, Not):
        raise UnsafeQueryError(
            "negation must be guarded by a positive conjunct"
        )
    if isinstance(formula, Equals):
        raise UnsafeQueryError(
            "bare equality is not range-restricted; guard it with an atom"
        )
    from repro.logic.syntax import Implies

    if isinstance(formula, Implies):
        # φ → ψ ≡ ¬φ ∨ ψ: only translatable when both branches are
        # (sentences or) identically-ranged — delegate to Or/Not rules.
        return _translate(Or(Not(formula.left), formula.right), instance)
    raise UnsafeQueryError(f"unsupported node {type(formula).__name__}")


def _flatten_and(formula: Formula) -> List[Formula]:
    if isinstance(formula, And):
        return _flatten_and(formula.left) + _flatten_and(formula.right)
    return [formula]


def _translate_conjunction(
    conjuncts: List[Formula], instance: Instance
) -> Relation:
    """Positive conjuncts join first; selections and guarded negations
    apply afterwards over the bound columns."""
    positives: List[Formula] = []
    equalities: List[Equals] = []
    negations: List[Formula] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, Equals):
            equalities.append(conjunct)
        elif isinstance(conjunct, Not):
            negations.append(conjunct.operand)
        elif isinstance(conjunct, _Truth):
            if not conjunct.value:
                return Relation((), [])
            # TRUE conjuncts are dropped.
        else:
            positives.append(conjunct)
    if not positives:
        raise UnsafeQueryError(
            "conjunction needs at least one positive range-restricting "
            "conjunct"
        )
    result = _translate(positives[0], instance)
    for positive in positives[1:]:
        result = join(result, _translate(positive, instance))
    # Equality selections: x = c filters, x = y filters (both must be
    # bound by the positive part).
    for equality in equalities:
        result = _apply_equality(result, equality)
    # Guarded negations: anti-join / difference.
    for negation in negations:
        negated = _translate(negation, instance)
        missing = set(negated.columns) - set(result.columns)
        if missing:
            raise UnsafeQueryError(
                f"negated conjunct has unbound variables {sorted(missing)}"
            )
        if negated.columns == ():
            # Boolean guard: ¬ψ for a sentence ψ.
            if not negated.is_empty():
                return Relation(result.columns, [])
            continue
        matching = project(result, tuple(negated.columns))
        surviving = difference(matching, negated)
        result = join(result, surviving)
    return result


def _apply_equality(relation: Relation, equality: Equals) -> Relation:
    left, right = equality.left, equality.right
    if isinstance(left, Constant) and isinstance(right, Constant):
        if left.value == right.value:
            return relation
        return Relation(relation.columns, [])
    if isinstance(left, Constant):
        left, right = right, left  # normalize: variable on the left
    if isinstance(left, Variable) and isinstance(right, Constant):
        if left.name not in relation.columns:
            raise UnsafeQueryError(
                f"equality variable {left.name} is not range-restricted"
            )
        value = right.value
        return select(relation, lambda row: row[left.name] == value)
    assert isinstance(left, Variable) and isinstance(right, Variable)
    if (left.name not in relation.columns
            or right.name not in relation.columns):
        raise UnsafeQueryError(
            "both sides of a variable equality must be range-restricted"
        )
    return select(
        relation, lambda row: row[left.name] == row[right.name]
    )


def _atom_relation(atom: Atom, instance: Instance) -> Relation:
    """Base relation access with constant selection, repeated-variable
    selection and renaming to variable-named columns."""
    tuples = instance.relation(atom.relation)
    positional = [f"#{i}" for i in range(atom.relation.arity)]
    relation = Relation.from_tuples(positional, tuples)
    # Constants: select matching positions.
    for i, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            column, value = positional[i], term.value
            relation = select(
                relation, lambda row, c=column, v=value: row[c] == v)
    # Repeated variables: equality selections between their positions.
    first_position: Dict[str, str] = {}
    for i, term in enumerate(atom.terms):
        if isinstance(term, Variable):
            if term.name in first_position:
                left, right = first_position[term.name], positional[i]
                relation = select(
                    relation,
                    lambda row, a=left, b=right: row[a] == row[b])
            else:
                first_position[term.name] = positional[i]
    # Project to one column per variable, named after it.
    keep = tuple(first_position.values())
    relation = project(relation, keep)
    renaming = {pos: name for name, pos in first_position.items()}
    return rename(relation, renaming)

"""Static analysis of FO formulas: free variables, quantifier rank,
constants, atoms, and safe-range (domain-independence) checking.

Quantifier rank drives the r-equivalence argument in the proof of
Proposition 6.1 ("every instance of Ω_n is r-equivalent to some finite
structure of size O(n + r + s)"); ``adom(φ)`` is the constant set of
Fact 2.1.
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from repro.logic.syntax import (
    And,
    Atom,
    Constant,
    Equals,
    Exists,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    Variable,
    _Truth,
    walk,
)
from repro.relational.facts import Value
from repro.relational.schema import RelationSymbol


def free_variables(formula: Formula) -> FrozenSet[Variable]:
    """The free variables of ``formula``.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> sorted(v.name for v in free_variables(
    ...     parse_formula("EXISTS x. R(x, y)", schema)))
    ['y']
    """
    if isinstance(formula, Atom):
        return frozenset(t for t in formula.terms if isinstance(t, Variable))
    if isinstance(formula, Equals):
        return frozenset(
            t for t in (formula.left, formula.right) if isinstance(t, Variable)
        )
    if isinstance(formula, _Truth):
        return frozenset()
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (And, Or, Implies)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, Forall)):
        return free_variables(formula.body) - {formula.variable}
    raise TypeError(f"unknown formula node {formula!r}")


def quantifier_rank(formula: Formula) -> int:
    """Maximum nesting depth of quantifiers (paper §6, the parameter r).

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> quantifier_rank(parse_formula("EXISTS x. EXISTS y. R(x, y)", schema))
    2
    >>> quantifier_rank(parse_formula("(EXISTS x. R(x, x)) AND "
    ...                               "(EXISTS y. R(y, y))", schema))
    1
    """
    if isinstance(formula, (Atom, Equals, _Truth)):
        return 0
    if isinstance(formula, Not):
        return quantifier_rank(formula.operand)
    if isinstance(formula, (And, Or, Implies)):
        return max(quantifier_rank(formula.left), quantifier_rank(formula.right))
    if isinstance(formula, (Exists, Forall)):
        return 1 + quantifier_rank(formula.body)
    raise TypeError(f"unknown formula node {formula!r}")


def constants_of(formula: Formula) -> FrozenSet[Value]:
    """``adom(φ)``: all constants from U occurring in the formula
    (Fact 2.1; the parameter s of Proposition 6.1 is its size).

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=2)
    >>> sorted(constants_of(parse_formula("R(x, 3) AND R(x, 5)", schema)))
    [3, 5]
    """
    found: Set[Value] = set()
    for node in walk(formula):
        if isinstance(node, Atom):
            found.update(t.value for t in node.terms if isinstance(t, Constant))
        elif isinstance(node, Equals):
            for term in (node.left, node.right):
                if isinstance(term, Constant):
                    found.add(term.value)
    return frozenset(found)


# Keep the paper's name available as an alias.
adom_of_formula = constants_of


def atoms_of(formula: Formula) -> Tuple[Atom, ...]:
    """All relational atoms, in pre-order."""
    return tuple(node for node in walk(formula) if isinstance(node, Atom))


def relations_of(formula: Formula) -> FrozenSet[RelationSymbol]:
    """The relation symbols mentioned by the formula."""
    return frozenset(atom.relation for atom in atoms_of(formula))


def is_sentence(formula: Formula) -> bool:
    """True iff the formula has no free variables (Boolean query)."""
    return not free_variables(formula)


def is_quantifier_free(formula: Formula) -> bool:
    """True iff no quantifier occurs anywhere in the formula."""
    return not any(isinstance(node, (Exists, Forall)) for node in walk(formula))


def is_positive(formula: Formula) -> bool:
    """True iff the formula contains no negation or implication."""
    return not any(isinstance(node, (Not, Implies)) for node in walk(formula))


def is_safe_range(formula: Formula) -> bool:
    """Conservative safe-range (domain-independence) test.

    Returns True only if every free or quantified variable is *range
    restricted*: it occurs in a positive relational atom within the scope
    that binds it.  Safe-range formulas evaluated under active-domain
    semantics are domain independent, so their answers don't depend on
    the (possibly infinite) universe beyond ``adom(D) ∪ adom(φ)``
    (Fact 2.1 territory).  The test is sound but not complete.

    >>> from repro.relational import Schema
    >>> from repro.logic.parser import parse_formula
    >>> schema = Schema.of(R=1)
    >>> is_safe_range(parse_formula("EXISTS x. R(x)", schema))
    True
    >>> is_safe_range(parse_formula("EXISTS x. NOT R(x)", schema))
    False
    """

    def restricted(node: Formula, positive: bool) -> FrozenSet[Variable]:
        """Variables guaranteed bound to the active domain by ``node``
        when it appears in the given polarity."""
        if isinstance(node, Atom):
            if positive:
                return frozenset(
                    t for t in node.terms if isinstance(t, Variable)
                )
            return frozenset()
        if isinstance(node, (Equals, _Truth)):
            return frozenset()
        if isinstance(node, Not):
            return restricted(node.operand, not positive)
        if isinstance(node, And):
            if positive:
                return restricted(node.left, True) | restricted(node.right, True)
            return restricted(node.left, False) & restricted(node.right, False)
        if isinstance(node, Or):
            if positive:
                return restricted(node.left, True) & restricted(node.right, True)
            return restricted(node.left, False) | restricted(node.right, False)
        if isinstance(node, Implies):
            # φ -> ψ  ≡  ¬φ ∨ ψ
            if positive:
                return restricted(node.left, False) & restricted(node.right, True)
            return restricted(node.left, True) | restricted(node.right, False)
        if isinstance(node, (Exists, Forall)):
            return restricted(node.body, positive) - {node.variable}
        raise TypeError(f"unknown formula node {node!r}")

    def check(node: Formula, positive: bool) -> bool:
        if isinstance(node, Exists):
            inner_positive = positive
            if node.variable not in restricted(node.body, inner_positive):
                return False
            return check(node.body, inner_positive)
        if isinstance(node, Forall):
            # ∀x. φ ≡ ¬∃x.¬φ: the variable must be restricted in ¬φ.
            if node.variable not in restricted(node.body, not positive):
                return False
            return check(node.body, positive)
        if isinstance(node, Not):
            return check(node.operand, not positive)
        if isinstance(node, (And, Or)):
            return check(node.left, positive) and check(node.right, positive)
        if isinstance(node, Implies):
            return check(node.left, not positive) and check(node.right, positive)
        return True

    outer = restricted(formula, True)
    if not free_variables(formula) <= outer:
        return False
    return check(formula, True)
